package speedlight_test

import (
	"fmt"
	"time"

	"speedlight"
)

// Example takes one synchronized network snapshot of packet counters on
// the paper's testbed fabric and verifies conservation across the cut:
// the count where the flow entered the network equals the count where
// it left.
func Example() {
	net, err := speedlight.New(speedlight.Config{
		Fabric: speedlight.Fabric{Leaves: 2, Spines: 2, HostsPerLeaf: 3},
		Metric: speedlight.PacketCount,
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}

	// 100 packets from host 0 (leaf 0) to host 3 (leaf 1).
	for i := 0; i < 100; i++ {
		net.Send(0, 3, 1000, uint16(1000+i), 80)
	}
	net.Run(2 * time.Millisecond)

	snap, err := net.Snapshot()
	if err != nil {
		panic(err)
	}
	in, _ := snap.Value(0, 0, "ingress") // leaf 0, host 0's port
	out, _ := snap.Value(1, 0, "egress") // leaf 1, host 3's port
	fmt.Println(snap.Consistent, in, out)
	// Output: true 100 100
}

// ExampleNetwork_Snapshot shows a snapshot campaign: counters are
// cumulative, so consecutive consistent snapshots give exact per-epoch
// deltas.
func ExampleNetwork_Snapshot() {
	net, err := speedlight.New(speedlight.Config{Seed: 2})
	if err != nil {
		panic(err)
	}
	var prev uint64
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			net.Send(1, 4, 500, uint16(round*10+i), 80)
		}
		net.Run(time.Millisecond)
		snap, err := net.Snapshot()
		if err != nil {
			panic(err)
		}
		v, _ := snap.Value(0, 1, "ingress") // host 1's access port
		fmt.Println(v - prev)
		prev = v
	}
	// Output:
	// 10
	// 10
	// 10
}
