module speedlight

go 1.22
