// Package speedlight is a Go implementation of Synchronized Network
// Snapshots (Yaseen, Sonchack, Liu — SIGCOMM 2018) and of Speedlight,
// the paper's realization of them for programmable switches.
//
// A synchronized network snapshot is a set of per-processing-unit
// measurements that is causally consistent (a modified multi-initiator
// Chandy–Lamport protocol run in the switch data planes) and nearly
// synchronous (PTP-coordinated initiation keeps all measurements within
// tens of microseconds). Any value a data plane can read at line rate —
// packet counters, byte counters, queue depth, EWMAs of packet timing —
// can be snapshotted.
//
// This package is the high-level facade: it builds an emulated
// leaf-spine network (there is no Tofino here; the data plane is a
// faithful software model driven by a deterministic discrete-event
// simulator), lets the caller inject traffic, and takes snapshots.
//
//	net, err := speedlight.New(speedlight.Config{
//	        Fabric: speedlight.Fabric{Leaves: 2, Spines: 2, HostsPerLeaf: 3},
//	})
//	...
//	net.Run(2 * time.Millisecond)
//	snap, err := net.Snapshot()
//	for _, v := range snap.Values { ... }
//
// The full machinery — the per-unit protocol state machines, the
// control plane, the observer, the concurrent goroutine runtime, the
// workload generators, and the harnesses that regenerate every table
// and figure of the paper's evaluation — lives in the internal
// packages; see DESIGN.md for the map.
package speedlight

// The protocol-invariant analyzer suite (internal/lint) runs over the
// whole module via `go generate .` or `make lint`; CI runs the same
// gate before the tests.
//
//go:generate go build -o bin/speedlightvet ./cmd/speedlightvet
//go:generate go vet -vettool=bin/speedlightvet ./...

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"speedlight/internal/audit"
	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/epochtrace"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/reconcile"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// HostID identifies a host in the fabric.
type HostID uint32

// Metric selects what each processing unit snapshots.
type Metric int

const (
	// PacketCount counts packets per unit; with channel state enabled,
	// in-flight packets are folded in so counts are conserved across
	// the snapshot cut.
	PacketCount Metric = iota
	// ByteCount sums frame bytes per unit.
	ByteCount
	// EWMAInterarrival tracks the exponentially weighted moving average
	// of packet interarrival time (the paper's Section 8 counter) on
	// egress units, with packet counts on ingress units.
	EWMAInterarrival
	// QueueDepth snapshots the instantaneous egress queue occupancy.
	QueueDepth
)

// Balancer selects the load-balancing algorithm the switches run.
type Balancer int

const (
	// ECMP is flow-based equal-cost multipath.
	ECMP Balancer = iota
	// Flowlet is flowlet switching with a 100 µs gap.
	Flowlet
)

// Fabric describes a leaf-spine network like the paper's testbed.
type Fabric struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
}

// Config parameterizes a network.
type Config struct {
	// Fabric is the topology. The zero value defaults to the paper's
	// testbed: 2 leaves, 2 spines, 3 hosts per leaf.
	Fabric Fabric
	// Metric selects the snapshot target. Default PacketCount.
	Metric Metric
	// ChannelState enables in-flight packet recording.
	ChannelState bool
	// Balancer selects the load balancer. Default ECMP.
	Balancer Balancer
	// CoSLevels is the number of Class-of-Service levels (strict
	// priority, each its own FIFO snapshot channel). Default 1.
	CoSLevels int
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// Shards selects the simulation engine: 0 or 1 runs the serial
	// reference engine; >= 2 runs the sharded parallel engine with that
	// many workers. Results are byte-identical for the same seed either
	// way; see DESIGN.md ("Parallel simulation").
	Shards int
	// Registry, when set, enables telemetry on every layer of the
	// emulation (data plane, control plane, observer, network). Nil
	// disables instrumentation at zero hot-path cost.
	Registry *telemetry.Registry
	// Tracer, when set, records snapshot-lifecycle spans (initiate →
	// per-device results → assembled).
	Tracer *telemetry.Tracer
	// Journal, when set, records every protocol event into per-switch
	// flight-recorder rings; Network.Audit then replays them to verify
	// the protocol's consistency invariants. Nil disables journaling at
	// zero hot-path cost.
	Journal *journal.Set
	// OnAnomaly receives a flight-recorder tail dump whenever a
	// snapshot finalizes inconsistent or with excluded devices.
	// Requires Journal.
	OnAnomaly func(reason string, snapshotID packet.SeqID, dump []journal.Event)
	// Snapstore, when set, retains every completed snapshot as a
	// sealed delta-encoded epoch in the snapshot-history store
	// (internal/snapstore): query it with Store views or serve it with
	// snapstore.HTTPHandler.
	Snapstore *snapstore.Store
	// Invariants, when set, streams every epoch sealed into Snapstore
	// through the registered invariants (internal/invariant);
	// violations fire OnAnomaly with a flight-recorder dump. Requires
	// Snapstore.
	Invariants *invariant.Engine
}

// UnitValue is one processing unit's recorded value in a snapshot.
type UnitValue struct {
	Switch     int
	Port       int
	Direction  string // "ingress" or "egress"
	Value      uint64
	Consistent bool
}

// Snapshot is an assembled network-wide snapshot.
type Snapshot struct {
	ID packet.SeqID
	// Consistent reports whether every unit's value is consistent.
	Consistent bool
	// Values holds one entry per processing unit, ordered by switch,
	// port, direction.
	Values []UnitValue
	// Sync is the measured synchronization of the snapshot: the spread
	// between the earliest and latest data-plane notification
	// timestamps carrying its ID.
	Sync time.Duration
}

// Value returns the recorded value of one unit.
func (s *Snapshot) Value(sw, port int, direction string) (uint64, bool) {
	for _, v := range s.Values {
		if v.Switch == sw && v.Port == port && v.Direction == direction && v.Consistent {
			return v.Value, true
		}
	}
	return 0, false
}

// Network is an emulated Speedlight deployment.
type Network struct {
	cfg   Config
	inner *emunet.Network
	ls    *topology.LeafSpine
}

// New builds a network.
func New(cfg Config) (*Network, error) {
	if cfg.Fabric == (Fabric{}) {
		cfg.Fabric = Fabric{Leaves: 2, Spines: 2, HostsPerLeaf: 3}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves:            cfg.Fabric.Leaves,
		Spines:            cfg.Fabric.Spines,
		HostsPerLeaf:      cfg.Fabric.HostsPerLeaf,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	ecfg := emunet.Config{
		Topo:         ls.Topology,
		Seed:         cfg.Seed,
		Shards:       cfg.Shards,
		MaxID:        256,
		WrapAround:   true,
		ChannelState: cfg.ChannelState,
		NumCoS:       cfg.CoSLevels,
		Registry:     cfg.Registry,
		Tracer:       cfg.Tracer,
		Journal:      cfg.Journal,
		OnAnomaly:    cfg.OnAnomaly,
		Snapstore:    cfg.Snapstore,
		Invariants:   cfg.Invariants,
	}
	ecfg.Metrics = func(net *emunet.Network, id dataplane.UnitID) core.Metric {
		switch cfg.Metric {
		case ByteCount:
			return &counters.ByteCount{}
		case EWMAInterarrival:
			if id.Dir == dataplane.Egress {
				// The clock source must be the unit's own domain: under
				// shards, the engine-wide clock lags the shard-local one.
				proc := net.Proc(id.Node)
				return counters.NewEWMAInterarrival(func() int64 { return int64(proc.Now()) })
			}
			return &counters.PacketCount{}
		case QueueDepth:
			if id.Dir == dataplane.Egress {
				return net.Gauge(id)
			}
			return &counters.PacketCount{}
		default:
			return &counters.PacketCount{}
		}
	}
	if cfg.Balancer == Flowlet {
		ecfg.NewBalancer = func(_ topology.NodeID, r *rand.Rand) routing.Balancer {
			return routing.NewFlowlet(100*sim.Microsecond, r)
		}
	}
	n, err := emunet.New(ecfg)
	if err != nil {
		return nil, err
	}
	return &Network{cfg: cfg, inner: n, ls: ls}, nil
}

// Hosts lists the fabric's host IDs.
func (n *Network) Hosts() []HostID {
	var out []HostID
	for _, h := range n.ls.Hosts {
		out = append(out, HostID(h.ID))
	}
	return out
}

// Send injects one packet from src to dst with the given frame size and
// flow ports, at class of service 0.
func (n *Network) Send(src, dst HostID, size int, srcPort, dstPort uint16) {
	n.SendCoS(src, dst, size, srcPort, dstPort, 0)
}

// SendCoS injects one packet at the given class of service.
func (n *Network) SendCoS(src, dst HostID, size int, srcPort, dstPort uint16, cos uint8) {
	n.inner.InjectFromHost(topology.HostID(src), &packet.Packet{
		DstHost: uint32(dst),
		SrcPort: srcPort,
		DstPort: dstPort,
		Proto:   6,
		Size:    uint32(size),
		CoS:     cos,
	})
}

// Run advances the emulation by d of virtual time.
func (n *Network) Run(d time.Duration) {
	n.inner.RunFor(sim.Duration(d.Nanoseconds()))
}

// Snapshot takes one synchronized network snapshot: it schedules the
// snapshot one virtual millisecond out, advances the emulation until
// the observer assembles it, and returns the global result.
func (n *Network) Snapshot() (*Snapshot, error) {
	eng := n.inner.Engine()
	id, err := n.inner.ScheduleSnapshot(eng.Now().Add(sim.Millisecond))
	if err != nil {
		return nil, err
	}
	// Advance until this snapshot completes (bounded: recovery timers
	// guarantee progress).
	deadline := eng.Now().Add(2 * sim.Second)
	for eng.Now() < deadline {
		n.inner.RunFor(sim.Millisecond)
		for _, g := range n.inner.Snapshots() {
			if g.ID != id {
				continue
			}
			snap := &Snapshot{ID: id, Consistent: g.Consistent}
			if d, ok := n.inner.SyncSpread(id); ok {
				snap.Sync = time.Duration(d)
			}
			for u, res := range g.Results {
				snap.Values = append(snap.Values, UnitValue{
					Switch:     int(u.Node),
					Port:       u.Port,
					Direction:  u.Dir.String(),
					Value:      res.Value,
					Consistent: res.Consistent,
				})
			}
			sort.Slice(snap.Values, func(a, b int) bool {
				x, y := snap.Values[a], snap.Values[b]
				if x.Switch != y.Switch {
					return x.Switch < y.Switch
				}
				if x.Port != y.Port {
					return x.Port < y.Port
				}
				return x.Direction < y.Direction
			})
			return snap, nil
		}
	}
	return nil, fmt.Errorf("speedlight: snapshot %d did not complete", id)
}

// Uplinks returns the uplink egress locations of a leaf switch, for
// load-balance analyses.
func (n *Network) Uplinks(leaf int) [][2]int {
	var out [][2]int
	for _, p := range n.ls.UplinkPorts(topology.NodeID(leaf)) {
		out = append(out, [2]int{leaf, p})
	}
	return out
}

// NumSwitches returns the fabric's switch count (leaves then spines).
func (n *Network) NumSwitches() int { return len(n.ls.Switches) }

// Journal returns the flight-recorder set the network was built with,
// or nil when journaling is disabled.
func (n *Network) Journal() *journal.Set { return n.inner.Journal() }

// Snapstore returns the snapshot-history store the network was built
// with, or nil when history is disabled.
func (n *Network) Snapstore() *snapstore.Store { return n.cfg.Snapstore }

// Invariants returns the streaming invariant engine the network was
// built with, or nil when disabled.
func (n *Network) Invariants() *invariant.Engine { return n.cfg.Invariants }

// Audit replays the flight-recorder journal and independently verifies
// every snapshot's causal-consistency invariants (see internal/audit).
// Nil when journaling is disabled.
func (n *Network) Audit() *audit.Report { return n.inner.Audit() }

// EpochTraces reconstructs per-epoch causal traces from the journal:
// the propagation wavefront, per-switch span tree, and the critical
// path whose segment durations sum exactly to each epoch's completion
// latency (see internal/epochtrace). Nil when journaling is disabled.
func (n *Network) EpochTraces() []*epochtrace.EpochTrace { return n.inner.EpochTraces() }

// BarrierProfile returns the sharded engine's cumulative per-shard
// work/wait split (the shard-barrier profiler), or nil on a serial
// engine or when metrics are disabled.
func (n *Network) BarrierProfile() []sim.BarrierShardStats { return n.inner.BarrierProfile() }

// BlockedProfile returns the sharded engine's per-pair stall
// attribution (which waiter shard lost how much wall time to which
// holdup shard's published clock), most blocking pair first, or nil on
// a serial engine or when metrics are disabled.
func (n *Network) BlockedProfile() []epochtrace.ShardBlocking { return n.inner.BlockedProfile() }

// Reconciler builds a fabric reconciliation controller over this
// network: declare desired churn on its Spec (switches down, links
// drained, config pushes) and the controller converges the fabric —
// directly via Reconcile, on a periodic watcher via Start, or from
// scripted scenarios (see internal/reconcile). All reconciliation runs
// as deterministic global-domain events, so churned campaigns keep the
// serial-vs-sharded byte-identical artifact contract.
func (n *Network) Reconciler() (*reconcile.Controller, error) {
	return reconcile.New(reconcile.Config{
		Fabric: n.inner,
		Proc:   n.inner.Engine().Proc(sim.GlobalDomain),
	})
}

// LeakCheck verifies pooled-packet leak-freedom: after traffic stops
// and the network drains, every pooled packet must be back in a free
// list. A non-nil error means a teardown or drop path lost a packet.
func (n *Network) LeakCheck() error { return n.inner.LeakCheck() }

// ClassifyChurn grades every journaled churn event against the
// snapshots it overlapped — clean, excluded, inconsistent-caught, or
// (a defect) silent-disagreement. Nil when journaling is disabled.
func (n *Network) ClassifyChurn() []reconcile.Classified {
	if n.cfg.Journal == nil {
		return nil
	}
	return reconcile.Classify(n.cfg.Journal.Events(), n.Audit())
}

// Inner exposes the underlying emulation for advanced use: attaching
// the workload generators, custom metrics, or direct engine access.
// Most callers never need it.
func (n *Network) Inner() *emunet.Network { return n.inner }
