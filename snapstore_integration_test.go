package speedlight

import (
	"strings"
	"testing"
	"time"

	"speedlight/internal/dataplane"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/snapstore"
	"speedlight/internal/topology"
)

func topoNode(sw int) topology.NodeID { return topology.NodeID(sw) }

func dirOf(s string) dataplane.Direction {
	if s == "egress" {
		return dataplane.Egress
	}
	return dataplane.Ingress
}

// TestSnapshotHistoryThroughFacade drives a campaign with the
// snapshot-history store and invariant engine attached, then verifies
// every completed snapshot was sealed and reconstructs to the same cut
// the facade returned.
func TestSnapshotHistoryThroughFacade(t *testing.T) {
	store := snapstore.New(snapstore.Config{Retention: 16, CheckpointEvery: 4})
	eng := invariant.New(invariant.Config{})
	eng.Register(invariant.Monotone("counters-monotone", []dataplane.UnitID{
		{Node: 0, Port: 0, Dir: dataplane.Ingress},
		{Node: 0, Port: 1, Dir: dataplane.Ingress},
	}))
	n, err := New(Config{Snapstore: store, Invariants: eng})
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Hosts()
	var snaps []*Snapshot
	for i := 0; i < 5; i++ {
		for j := 0; j < 50; j++ {
			n.Send(hosts[j%3], hosts[3+j%3], 200, uint16(j), 9000)
		}
		n.Run(time.Millisecond)
		snap, err := n.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}

	if got := store.Sealed(); got != 5 {
		t.Fatalf("store sealed %d epochs, want 5", got)
	}
	v := n.Snapstore().View()
	for _, snap := range snaps {
		st, err := v.State(snap.ID)
		if err != nil {
			t.Fatalf("epoch %d: %v", snap.ID, err)
		}
		for _, uv := range snap.Values {
			u := dataplane.UnitID{Node: topoNode(uv.Switch), Port: uv.Port, Dir: dirOf(uv.Direction)}
			r, ok := st.Value(u)
			if !ok {
				t.Fatalf("epoch %d: unit %v missing from reconstructed cut", snap.ID, u)
			}
			if r.Value != uv.Value || r.Consistent != uv.Consistent {
				t.Fatalf("epoch %d unit %v: store has %d/%v, facade saw %d/%v",
					snap.ID, u, r.Value, r.Consistent, uv.Value, uv.Consistent)
			}
		}
	}
	st := n.Invariants().Status()
	if len(st) != 1 || st[0].Evals == 0 {
		t.Fatalf("invariant never evaluated: %+v", st)
	}
	if st[0].Violations != 0 {
		t.Fatalf("monotone counters violated on a clean campaign: %+v", st[0])
	}
}

// TestSeededViolationFiresAnomaly seeds an invariant that cannot hold
// — zero provisioning headroom on units that carry traffic — and
// verifies the violation surfaces through OnAnomaly with a
// flight-recorder dump attached.
func TestSeededViolationFiresAnomaly(t *testing.T) {
	store := snapstore.New(snapstore.Config{})
	eng := invariant.New(invariant.Config{})
	// Threshold 0, no units allowed over: any traffic violates.
	eng.Register(invariant.Bound("provisioning-headroom", []dataplane.UnitID{
		{Node: 0, Port: 0, Dir: dataplane.Ingress},
		{Node: 0, Port: 1, Dir: dataplane.Ingress},
		{Node: 0, Port: 2, Dir: dataplane.Ingress},
	}, 0, 0))

	type anomaly struct {
		reason string
		id     packet.SeqID
		dump   []journal.Event
	}
	var got []anomaly
	n, err := New(Config{
		Journal:    journal.NewSet(1 << 12),
		Snapstore:  store,
		Invariants: eng,
		OnAnomaly: func(reason string, id packet.SeqID, dump []journal.Event) {
			got = append(got, anomaly{reason, id, dump})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := n.Hosts()
	for j := 0; j < 30; j++ {
		n.Send(hosts[0], hosts[3], 200, uint16(j), 9000)
	}
	n.Run(time.Millisecond)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var hit *anomaly
	for i := range got {
		if strings.Contains(got[i].reason, "provisioning-headroom") {
			hit = &got[i]
		}
	}
	if hit == nil {
		t.Fatalf("seeded violation did not fire OnAnomaly; anomalies: %+v", got)
	}
	if hit.id != snap.ID {
		t.Errorf("anomaly for snapshot %d, want %d", hit.id, snap.ID)
	}
	if !strings.Contains(hit.reason, "invariant") {
		t.Errorf("anomaly reason %q does not identify the invariant path", hit.reason)
	}
	if len(hit.dump) == 0 {
		t.Error("anomaly carried no flight-recorder dump")
	}
	if vs := eng.Violations(); len(vs) == 0 {
		t.Error("violation missing from engine history")
	}
}
