#!/bin/sh
# bench_json.sh regenerates BENCH_5.json: the machine-readable record of
# the zero-allocation hot-path work (PR 5). It runs the gated hot-path
# benchmarks (-benchmem) and the serial-vs-sharded scaling benchmarks,
# and emits one JSON document with events/sec, ns/op, and allocs/op,
# alongside the frozen pre-PR baseline for the same benchmarks.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_5.json)
set -eu

out=${1:-BENCH_5.json}

hot=$(go test -run '^$' \
  -bench 'BenchmarkUnitOnPacket$|BenchmarkHeaderCodec$|BenchmarkTelemetryHotPath$|BenchmarkEmulationThroughput$' \
  -benchmem -benchtime 1s -timeout 30m .)
shards=$(go test -run '^$' -bench BenchmarkShardScaling -benchtime 2x -timeout 30m .)

printf '%s\n%s\n' "$hot" "$shards" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns = allocs = bytes = eps = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns = $i
        if ($(i+1) == "allocs/op")  allocs = $i
        if ($(i+1) == "B/op")       bytes = $i
        if ($(i+1) == "events/sec") eps = $i
    }
    order[++n] = name
    line[name] = sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"events_per_sec\": %s}",
                         ns, allocs, bytes, eps)
}
END {
    printf "{\n"
    printf "  \"pr\": 5,\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"note\": \"before = seed benchmarks at the parent commit of PR 5 (pre-pooling); after = this tree. events_per_sec on EmulationThroughput was added by PR 5 and has no before value.\",\n"
    printf "  \"before\": {\n"
    printf "    \"UnitOnPacket\": {\"ns_per_op\": 31.84, \"allocs_per_op\": 0, \"bytes_per_op\": 0, \"events_per_sec\": null},\n"
    printf "    \"HeaderCodec\": {\"ns_per_op\": 2.200, \"allocs_per_op\": 0, \"bytes_per_op\": 0, \"events_per_sec\": null},\n"
    printf "    \"TelemetryHotPath\": {\"ns_per_op\": 33.65, \"allocs_per_op\": 0, \"bytes_per_op\": 0, \"events_per_sec\": null},\n"
    printf "    \"EmulationThroughput\": {\"ns_per_op\": 2274, \"allocs_per_op\": 15, \"bytes_per_op\": 971, \"events_per_sec\": null},\n"
    printf "    \"ShardScaling/leafspine8x4/shards0\": {\"events_per_sec\": 1378099},\n"
    printf "    \"ShardScaling/leafspine8x4/shards2\": {\"events_per_sec\": 1903578},\n"
    printf "    \"ShardScaling/leafspine8x4/shards4\": {\"events_per_sec\": 2061697},\n"
    printf "    \"ShardScaling/leafspine8x4/shards8\": {\"events_per_sec\": 2505802},\n"
    printf "    \"ShardScaling/fattree4/shards0\": {\"events_per_sec\": 1852204},\n"
    printf "    \"ShardScaling/fattree4/shards2\": {\"events_per_sec\": 2202981},\n"
    printf "    \"ShardScaling/fattree4/shards4\": {\"events_per_sec\": 1999812},\n"
    printf "    \"ShardScaling/fattree4/shards8\": {\"events_per_sec\": 2505429}\n"
    printf "  },\n"
    printf "  \"after\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": %s%s\n", order[i], line[order[i]], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}
' > "$out"

echo "wrote $out"
