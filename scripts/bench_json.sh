#!/bin/sh
# bench_json.sh regenerates BENCH_7.json: the machine-readable record of
# the epoch-causal-tracer work (PR 7). It runs the gated hot-path
# benchmarks (-benchmem, including the trace-overhead pair
# EmulationThroughputSnapshots/EmulationThroughputTraced), the snapshot
# history-store ingest/query benchmarks on the 1024-port fabric, and
# the serial-vs-sharded scaling benchmarks, and emits one JSON document
# with ns/op, allocs/op, registers/sec, queries/sec and events/sec,
# alongside the frozen pre-PR baseline for the benchmarks that existed
# before this PR.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_7.json)
set -eu

out=${1:-BENCH_7.json}

hot=$(go test -run '^$' \
  -bench 'BenchmarkUnitOnPacket$|BenchmarkHeaderCodec$|BenchmarkTelemetryHotPath$|BenchmarkEmulationThroughput$|BenchmarkSnapshotIngestHot$' \
  -benchmem -benchtime 1s -timeout 30m .)
# The trace-overhead pair runs at a fixed iteration count in fresh
# alternating processes and keeps each benchmark's best events/sec:
# run-to-run scheduler noise (~8%) and in-process heap-state bias
# against the later benchmark would otherwise swamp the <=3% stamp
# overhead being recorded.
go test -run '^$' -bench 'BenchmarkEmulationThroughputTraced$' -c -o /tmp/speedlight-bench.test .
tracedraw=""
for i in 1 2 3 4 5 6 7 8; do
  tracedraw="$tracedraw
$(/tmp/speedlight-bench.test -test.run '^$' -test.bench 'BenchmarkEmulationThroughputTraced$' -test.benchtime 500000x | grep ^Benchmark)
$(/tmp/speedlight-bench.test -test.run '^$' -test.bench 'BenchmarkEmulationThroughputSnapshots$' -test.benchtime 500000x | grep ^Benchmark)"
done
rm -f /tmp/speedlight-bench.test
trace=$(printf '%s\n' "$tracedraw" |
  awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) if ($(i+1) == "events/sec" && $i > best[name]) best[name] = $i
  }
  END { for (n in best) printf "%sBest %s events/sec\n", n, best[n] }')
store=$(go test -run '^$' \
  -bench 'BenchmarkStoreIngest$|BenchmarkSnapshotQuery$' \
  -benchmem -benchtime 1s -timeout 30m .)
shards=$(go test -run '^$' -bench BenchmarkShardScaling -benchtime 2x -timeout 30m .)

printf '%s\n%s\n%s\n%s\n' "$hot" "$trace" "$store" "$shards" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns = allocs = bytes = eps = regs = qps = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")         ns = $i
        if ($(i+1) == "allocs/op")     allocs = $i
        if ($(i+1) == "B/op")          bytes = $i
        if ($(i+1) == "events/sec")    eps = $i
        if ($(i+1) == "registers/sec") regs = $i
        if ($(i+1) == "queries/sec")   qps = $i
    }
    order[++n] = name
    line[name] = sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"events_per_sec\": %s, \"registers_per_sec\": %s, \"queries_per_sec\": %s}",
                         ns, allocs, bytes, eps, regs, qps)
}
END {
    printf "{\n"
    printf "  \"pr\": 7,\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"note\": \"before = PR 6 numbers for the benchmarks that predate this PR (BENCH_6.json after-column). EmulationThroughputSnapshots/EmulationThroughputTraced are new in PR 7 (epoch causal tracer): same snapshotting workload with the journal detached vs attached, so their gap is the trace-stamp overhead, gated within 3%% at best-of fixed-iteration runs (the *Best entries) and at 0 allocs/op. Both report lower events/sec than EmulationThroughput because snapshots add protocol work.\",\n"
    printf "  \"before\": {\n"
    printf "    \"UnitOnPacket\": {\"ns_per_op\": 25.89, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"HeaderCodec\": {\"ns_per_op\": 0.9603, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"TelemetryHotPath\": {\"ns_per_op\": 32.28, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"EmulationThroughput\": {\"ns_per_op\": 1200, \"allocs_per_op\": 0, \"bytes_per_op\": 0, \"events_per_sec\": 5799354},\n"
    printf "    \"SnapshotIngestHot\": {\"ns_per_op\": 47.89, \"allocs_per_op\": 0, \"bytes_per_op\": 42},\n"
    printf "    \"StoreIngest\": {\"ns_per_op\": 295028, \"allocs_per_op\": 9, \"bytes_per_op\": 42690, \"registers_per_sec\": 3470864},\n"
    printf "    \"SnapshotQuery\": {\"ns_per_op\": 29694, \"allocs_per_op\": 2, \"bytes_per_op\": 18601, \"queries_per_sec\": 33676},\n"
    printf "    \"ShardScaling/leafspine8x4/shards0\": {\"events_per_sec\": 3092661},\n"
    printf "    \"ShardScaling/leafspine8x4/shards2\": {\"events_per_sec\": 3191360},\n"
    printf "    \"ShardScaling/leafspine8x4/shards4\": {\"events_per_sec\": 3658103},\n"
    printf "    \"ShardScaling/leafspine8x4/shards8\": {\"events_per_sec\": 3729232},\n"
    printf "    \"ShardScaling/fattree4/shards0\": {\"events_per_sec\": 3187070},\n"
    printf "    \"ShardScaling/fattree4/shards2\": {\"events_per_sec\": 3214276},\n"
    printf "    \"ShardScaling/fattree4/shards4\": {\"events_per_sec\": 3621735},\n"
    printf "    \"ShardScaling/fattree4/shards8\": {\"events_per_sec\": 3585568}\n"
    printf "  },\n"
    printf "  \"after\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": %s%s\n", order[i], line[order[i]], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}
' > "$out"

echo "wrote $out"
