#!/bin/sh
# bench_json.sh regenerates BENCH_6.json: the machine-readable record of
# the snapshot-analysis work (PR 6). It runs the gated hot-path
# benchmarks (-benchmem, including the snapstore ingest hot path), the
# snapshot history-store ingest/query benchmarks on the 1024-port
# fabric, and the serial-vs-sharded scaling benchmarks, and emits one
# JSON document with ns/op, allocs/op, registers/sec, queries/sec and
# events/sec, alongside the frozen pre-PR baseline for the benchmarks
# that existed before this PR.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_6.json)
set -eu

out=${1:-BENCH_6.json}

hot=$(go test -run '^$' \
  -bench 'BenchmarkUnitOnPacket$|BenchmarkHeaderCodec$|BenchmarkTelemetryHotPath$|BenchmarkEmulationThroughput$|BenchmarkSnapshotIngestHot$' \
  -benchmem -benchtime 1s -timeout 30m .)
store=$(go test -run '^$' \
  -bench 'BenchmarkStoreIngest$|BenchmarkSnapshotQuery$' \
  -benchmem -benchtime 1s -timeout 30m .)
shards=$(go test -run '^$' -bench BenchmarkShardScaling -benchtime 2x -timeout 30m .)

printf '%s\n%s\n%s\n' "$hot" "$store" "$shards" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns = allocs = bytes = eps = regs = qps = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")         ns = $i
        if ($(i+1) == "allocs/op")     allocs = $i
        if ($(i+1) == "B/op")          bytes = $i
        if ($(i+1) == "events/sec")    eps = $i
        if ($(i+1) == "registers/sec") regs = $i
        if ($(i+1) == "queries/sec")   qps = $i
    }
    order[++n] = name
    line[name] = sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"events_per_sec\": %s, \"registers_per_sec\": %s, \"queries_per_sec\": %s}",
                         ns, allocs, bytes, eps, regs, qps)
}
END {
    printf "{\n"
    printf "  \"pr\": 6,\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"note\": \"before = PR 5 numbers for the benchmarks that predate this PR (BENCH_5.json after-column). SnapshotIngestHot, StoreIngest and SnapshotQuery are new in PR 6 (snapshot history store + query plane) and have no before value. SnapshotIngestHot is gated at 0 allocs/op; SnapshotQuery runs against a 1024-port fabric with a concurrent writer.\",\n"
    printf "  \"before\": {\n"
    printf "    \"UnitOnPacket\": {\"ns_per_op\": 27.46, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"HeaderCodec\": {\"ns_per_op\": 1.614, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"TelemetryHotPath\": {\"ns_per_op\": 35.08, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"EmulationThroughput\": {\"ns_per_op\": 1248, \"allocs_per_op\": 0, \"bytes_per_op\": 0, \"events_per_sec\": 5579101},\n"
    printf "    \"ShardScaling/leafspine8x4/shards0\": {\"events_per_sec\": 2532613},\n"
    printf "    \"ShardScaling/leafspine8x4/shards2\": {\"events_per_sec\": 2497994},\n"
    printf "    \"ShardScaling/leafspine8x4/shards4\": {\"events_per_sec\": 3139122},\n"
    printf "    \"ShardScaling/leafspine8x4/shards8\": {\"events_per_sec\": 3277165},\n"
    printf "    \"ShardScaling/fattree4/shards0\": {\"events_per_sec\": 2730231},\n"
    printf "    \"ShardScaling/fattree4/shards2\": {\"events_per_sec\": 2948385},\n"
    printf "    \"ShardScaling/fattree4/shards4\": {\"events_per_sec\": 3272820},\n"
    printf "    \"ShardScaling/fattree4/shards8\": {\"events_per_sec\": 3493008}\n"
    printf "  },\n"
    printf "  \"after\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": %s%s\n", order[i], line[order[i]], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}
' > "$out"

echo "wrote $out"
