#!/bin/sh
# bench_json.sh regenerates BENCH_10.json: the machine-readable record
# of the per-pair synchronization work (PR 10 — per-pair lookahead
# clocks, lock-free cross-shard rings, deserialized global domain). It
# runs the gated hot-path benchmarks (-benchmem, including the
# trace-overhead pair EmulationThroughputSnapshots/
# EmulationThroughputTraced), the snapshot history-store ingest/query
# benchmarks on the 1024-port fabric, and the serial-vs-sharded scaling
# benchmarks, and emits one JSON document with ns/op, allocs/op,
# registers/sec, queries/sec and events/sec, alongside the frozen
# pre-PR baseline (BENCH_7.json's after-column) for the benchmarks that
# existed before this PR. The document records the CPU count of the
# machine that produced it: shard-scaling ratios are only meaningful
# when cpus >= the shard count.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_10.json)
set -eu

out=${1:-BENCH_10.json}

hot=$(go test -run '^$' \
  -bench 'BenchmarkUnitOnPacket$|BenchmarkHeaderCodec$|BenchmarkTelemetryHotPath$|BenchmarkEmulationThroughput$|BenchmarkSnapshotIngestHot$' \
  -benchmem -benchtime 1s -timeout 30m .)
# The trace-overhead pair runs at a fixed iteration count in fresh
# alternating processes and keeps each benchmark's best events/sec:
# run-to-run scheduler noise (~8%) and in-process heap-state bias
# against the later benchmark would otherwise swamp the <=3% stamp
# overhead being recorded.
go test -run '^$' -bench 'BenchmarkEmulationThroughputTraced$' -c -o /tmp/speedlight-bench.test .
tracedraw=""
for i in 1 2 3 4 5 6 7 8; do
  tracedraw="$tracedraw
$(/tmp/speedlight-bench.test -test.run '^$' -test.bench 'BenchmarkEmulationThroughputTraced$' -test.benchtime 500000x | grep ^Benchmark)
$(/tmp/speedlight-bench.test -test.run '^$' -test.bench 'BenchmarkEmulationThroughputSnapshots$' -test.benchtime 500000x | grep ^Benchmark)"
done
rm -f /tmp/speedlight-bench.test
trace=$(printf '%s\n' "$tracedraw" |
  awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) if ($(i+1) == "events/sec" && $i > best[name]) best[name] = $i
  }
  END { for (n in best) printf "%sBest %s events/sec\n", n, best[n] }')
store=$(go test -run '^$' \
  -bench 'BenchmarkStoreIngest$|BenchmarkSnapshotQuery$' \
  -benchmem -benchtime 1s -timeout 30m .)
shards=$(go test -run '^$' -bench BenchmarkShardScaling -benchtime 2x -timeout 30m .)

printf '%s\n%s\n%s\n%s\n' "$hot" "$trace" "$store" "$shards" | awk \
  -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v cpus="$(nproc)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns = allocs = bytes = eps = regs = qps = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")         ns = $i
        if ($(i+1) == "allocs/op")     allocs = $i
        if ($(i+1) == "B/op")          bytes = $i
        if ($(i+1) == "events/sec")    eps = $i
        if ($(i+1) == "registers/sec") regs = $i
        if ($(i+1) == "queries/sec")   qps = $i
    }
    order[++n] = name
    line[name] = sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"events_per_sec\": %s, \"registers_per_sec\": %s, \"queries_per_sec\": %s}",
                         ns, allocs, bytes, eps, regs, qps)
}
END {
    printf "{\n"
    printf "  \"pr\": 10,\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cpus\": %s,\n", cpus
    printf "  \"note\": \"before = PR 7 numbers (BENCH_7.json after-column), recorded on the barrier-round engine with the observer on the serialized global domain. PR 10 replaces fleet-wide barrier rounds with per-pair channel clocks and SPSC ring handoff, and moves snapshot ingest / invariants / epoch stamping into an observer shard domain. ShardScaling ratios are meaningful only when cpus >= shard count: on a single-CPU machine shards time-share one core and the sharded rows measure synchronization overhead, not speedup (CI gates 8-shard >= 2.5x serial on >=8-CPU runners).\",\n"
    printf "  \"before\": {\n"
    printf "    \"UnitOnPacket\": {\"ns_per_op\": 34.91, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"HeaderCodec\": {\"ns_per_op\": 1.2, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"TelemetryHotPath\": {\"ns_per_op\": 36.58, \"allocs_per_op\": 0, \"bytes_per_op\": 0},\n"
    printf "    \"EmulationThroughput\": {\"ns_per_op\": 1606, \"allocs_per_op\": 0, \"bytes_per_op\": 0, \"events_per_sec\": 4334598},\n"
    printf "    \"SnapshotIngestHot\": {\"ns_per_op\": 56.39, \"allocs_per_op\": 0, \"bytes_per_op\": 42},\n"
    printf "    \"EmulationThroughputSnapshotsBest\": {\"events_per_sec\": 5897557},\n"
    printf "    \"EmulationThroughputTracedBest\": {\"events_per_sec\": 5871174},\n"
    printf "    \"StoreIngest\": {\"ns_per_op\": 325382, \"allocs_per_op\": 9, \"bytes_per_op\": 42816, \"registers_per_sec\": 3147074},\n"
    printf "    \"SnapshotQuery\": {\"ns_per_op\": 35324, \"allocs_per_op\": 2, \"bytes_per_op\": 18671, \"queries_per_sec\": 28309},\n"
    printf "    \"ShardScaling/leafspine8x4/shards0\": {\"events_per_sec\": 3124343},\n"
    printf "    \"ShardScaling/leafspine8x4/shards2\": {\"events_per_sec\": 2976185},\n"
    printf "    \"ShardScaling/leafspine8x4/shards4\": {\"events_per_sec\": 3529779},\n"
    printf "    \"ShardScaling/leafspine8x4/shards8\": {\"events_per_sec\": 3420281},\n"
    printf "    \"ShardScaling/fattree4/shards0\": {\"events_per_sec\": 2955000},\n"
    printf "    \"ShardScaling/fattree4/shards2\": {\"events_per_sec\": 3146862},\n"
    printf "    \"ShardScaling/fattree4/shards4\": {\"events_per_sec\": 3391900},\n"
    printf "    \"ShardScaling/fattree4/shards8\": {\"events_per_sec\": 3707868}\n"
    printf "  },\n"
    printf "  \"after\": {\n"
    for (i = 1; i <= n; i++) {
        printf "    \"%s\": %s%s\n", order[i], line[order[i]], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}
' > "$out"

echo "wrote $out"
