// Loadbalance answers the paper's opening question — "is my load
// balancing protocol balancing the load?" — the way Section 8.3 does:
// it runs a Hadoop-style shuffle over the fabric twice, once with ECMP
// and once with flowlet switching, snapshots the EWMA of packet
// interarrival time on every uplink, and compares the standard
// deviation across each leaf's uplinks. The same analysis is repeated
// with traditional asynchronous counter polling, to show why
// unsynchronized measurements cannot answer the question.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/invariant"
	"speedlight/internal/packet"
	"speedlight/internal/polling"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

func main() {
	for _, balancer := range []string{"ecmp", "flowlet"} {
		snap, poll, skewEvals, skewViols := measure(balancer)
		fmt.Printf("%-8s  snapshots: median stddev %6.2fµs  p90 %6.2fµs   (n=%d)\n",
			balancer, snap.Median(), snap.Quantile(0.9), snap.N())
		fmt.Printf("%-8s  polling:   median stddev %6.2fµs  p90 %6.2fµs   (n=%d)\n",
			balancer, poll.Median(), poll.Quantile(0.9), poll.N())
		fmt.Printf("%-8s  streaming uplink-skew invariant: %d cuts checked, %d skew violations\n",
			balancer, skewEvals, skewViols)
	}
	fmt.Println("\nlower stddev = better balance; snapshots measure it at single instants,")
	fmt.Println("polling smears each reading across milliseconds of unrelated instants.")
}

// measure runs the shuffle under one balancer and returns snapshot- and
// polling-based imbalance distributions, plus the streaming skew
// invariant's evaluation and violation totals.
func measure(balancer string) (snapCDF, pollCDF *stats.CDF, skewEvals, skewViols uint64) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The uplink egress units of each leaf.
	var groups [][]dataplane.UnitID
	var flat []dataplane.UnitID
	for _, leaf := range ls.Leaves {
		var g []dataplane.UnitID
		for _, port := range ls.UplinkPorts(leaf) {
			g = append(g, dataplane.UnitID{Node: leaf, Port: port, Dir: dataplane.Egress})
		}
		groups = append(groups, g)
		flat = append(flat, g...)
	}

	// Every sealed epoch also streams through a per-leaf skew invariant:
	// the stddev of a leaf's uplink EWMAs must stay under a quarter of
	// the group mean. The same question the offline CDFs answer below,
	// asked of every single cut as it seals — ECMP trips it constantly,
	// flowlet switching never does.
	store := snapstore.New(snapstore.Config{Retention: 256, CheckpointEvery: 16})
	inv := invariant.New(invariant.Config{})
	for i, g := range groups {
		inv.Register(invariant.Skew(fmt.Sprintf("leaf%d-uplink-skew", i), g, 0.25))
	}

	cfg := emunet.Config{
		Topo:  ls.Topology,
		Seed:  7,
		MaxID: 256, WrapAround: true,
		Metrics: func(net *emunet.Network, id dataplane.UnitID) core.Metric {
			if id.Dir == dataplane.Egress {
				eng := net.Engine()
				return counters.NewEWMAInterarrival(func() int64 { return int64(eng.Now()) })
			}
			return &counters.PacketCount{}
		},
		Snapstore:  store,
		Invariants: inv,
	}
	if balancer == "flowlet" {
		cfg.NewBalancer = func(_ topology.NodeID, r *rand.Rand) routing.Balancer {
			return routing.NewFlowlet(100*sim.Microsecond, r)
		}
	}
	net, err := emunet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var hosts []topology.HostID
	for _, h := range ls.Hosts {
		hosts = append(hosts, h.ID)
	}
	shuffle := &workload.Terasort{Net: net, Mappers: hosts, Reducers: hosts}
	shuffle.Start()
	defer shuffle.Stop()
	net.RunFor(5 * sim.Millisecond)

	poller := polling.New(net, polling.Config{})
	var snapStd, pollStd []float64
	var ids []packet.SeqID
	const rounds = 100
	for i := 0; i < rounds; i++ {
		net.Engine().After(sim.Millisecond, func() {
			if id, err := net.ScheduleSnapshot(net.Engine().Now().Add(200 * sim.Microsecond)); err == nil {
				ids = append(ids, id)
			}
			poller.PollAll(flat, func(s []polling.Sample) {
				byUnit := map[dataplane.UnitID]float64{}
				for _, smp := range s {
					byUnit[smp.Unit] = float64(smp.Value) / 1000
				}
				pollStd = append(pollStd, groupStddev(groups, byUnit)...)
			})
		})
		net.RunFor(sim.Millisecond)
	}
	net.RunFor(50 * sim.Millisecond)

	byID := map[packet.SeqID]bool{}
	for _, g := range net.Snapshots() {
		if byID[g.ID] {
			continue
		}
		byID[g.ID] = true
		byUnit := map[dataplane.UnitID]float64{}
		for _, u := range flat {
			if v, ok := g.Value(u); ok {
				byUnit[u] = float64(v) / 1000
			}
		}
		snapStd = append(snapStd, groupStddev(groups, byUnit)...)
	}
	for _, s := range inv.Status() {
		skewEvals += s.Evals
		skewViols += s.Violations
	}
	return stats.NewCDF(snapStd), stats.NewCDF(pollStd), skewEvals, skewViols
}

func groupStddev(groups [][]dataplane.UnitID, values map[dataplane.UnitID]float64) []float64 {
	var out []float64
	for _, g := range groups {
		var xs []float64
		for _, u := range g {
			if v, ok := values[u]; ok {
				xs = append(xs, v)
			}
		}
		if len(xs) == len(g) {
			out = append(out, stats.PopStddev(xs))
		}
	}
	return out
}
