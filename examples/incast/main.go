// Incast demonstrates the paper's Section 8.4 use case — detecting
// synchronized application traffic — on a memcached-style multi-get
// workload. Every multi-get makes all servers answer the client at
// once: a classic incast pattern that is invisible to averaged or
// asynchronous measurements.
//
// The program snapshots queue depth at every egress port in repeated
// synchronized snapshots, computes pairwise Spearman correlations of
// the per-port series, and shows that the ports on the response path
// light up together at snapshot instants — evidence of synchronized
// traffic — while asynchronous polling washes much of the structure
// out.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"speedlight/internal/analysis"
	"speedlight/internal/core"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/polling"
	"speedlight/internal/sim"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

func main() {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := emunet.New(emunet.Config{
		Topo:  ls.Topology,
		Seed:  11,
		MaxID: 256, WrapAround: true,
		// Queue depth gauges on every egress unit: the incast signature
		// is a burst of simultaneous queue buildup.
		Metrics: func(n *emunet.Network, id dataplane.UnitID) core.Metric {
			if id.Dir == dataplane.Egress {
				return n.Gauge(id)
			}
			return nil // default packet counter
		},
		// Slow the links so the incast responses actually queue: the
		// signature the snapshots look for is simultaneous buildup.
		LinkRateBps: 5e8,
	})
	if err != nil {
		log.Fatal(err)
	}

	var hosts []topology.HostID
	for _, h := range ls.Hosts {
		hosts = append(hosts, h.ID)
	}
	// Host 0 is the memcache client; everyone else serves. Responses
	// from 5 servers converge on host 0's access link: incast.
	mc := &workload.Memcache{
		Net:             net,
		Clients:         hosts[:1],
		Servers:         hosts[1:],
		RequestInterval: 200 * sim.Microsecond,
		WaveSpread:      5 * sim.Microsecond, // strict waves: all keys at once
		ResponseSize:    1500,                // large values: the responses collide
	}
	mc.Start()
	defer mc.Stop()
	net.RunFor(2 * sim.Millisecond)

	// Series per egress port, sampled by snapshots and by polling.
	var units []dataplane.UnitID
	for _, sw := range ls.Switches {
		for _, id := range net.Switch(sw.ID).DP.UnitIDs() {
			if id.Dir == dataplane.Egress {
				units = append(units, id)
			}
		}
	}
	idx := map[dataplane.UnitID]int{}
	for i, u := range units {
		idx[u] = i
	}
	pollSeries := make([][]float64, len(units))
	poller := polling.New(net, polling.Config{})

	const rounds = 120
	for i := 0; i < rounds; i++ {
		net.Engine().After(237*sim.Microsecond, func() {
			net.ScheduleSnapshot(net.Engine().Now().Add(100 * sim.Microsecond))
			poller.PollAll(units, func(s []polling.Sample) {
				for _, smp := range s {
					pollSeries[idx[smp.Unit]] = append(pollSeries[idx[smp.Unit]], float64(smp.Value))
				}
			})
		})
		net.RunFor(237 * sim.Microsecond)
	}
	net.RunFor(50 * sim.Millisecond)

	snapSeries := analysis.UnitSeries(net.Snapshots(), units)
	equalize(pollSeries)

	report("snapshots", snapSeries, units)
	report("polling  ", pollSeries, units)
	fmt.Println("\nmore significant correlations = more of the synchronized structure")
	fmt.Println("recovered; the strongest pairs lie on the multi-get response path.")
}

func report(method string, series [][]float64, units []dataplane.UnitID) {
	m, err := stats.NewCorrMatrix(series)
	if err != nil {
		log.Fatal(err)
	}
	sig := m.SignificantPairs(0.1)
	best := stats.CorrResult{}
	for _, r := range sig {
		if absf(r.Rho) > absf(best.Rho) {
			best = r
		}
	}
	fmt.Printf("%s: %2d significant port correlations", method, len(sig))
	if len(sig) > 0 {
		fmt.Printf("; strongest %v <-> %v (rho %+.2f)", units[best.I], units[best.J], best.Rho)
	}
	fmt.Println()
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func equalize(series [][]float64) {
	min := -1
	for _, s := range series {
		if min < 0 || len(s) < min {
			min = len(s)
		}
	}
	for i := range series {
		series[i] = series[i][:min]
	}
}
