// Loopdetect demonstrates the paper's Section 10 discussion of
// snapshotting forwarding state, and the Section 2.2 warning that
// without a consistent snapshot "we can observe states that are
// impossible".
//
// Two leaves migrate a route from version 1 to version 2: leaf 0 flips
// first, leaf 1 follows 200µs later (the update propagating). The
// ground truth therefore passes through (v2, v1) — a real transient
// inconsistency window — but NEVER through (v1, v2).
//
// Each switch exposes its FIB version as a snapshot-able register (the
// paper's version-tagging technique). The program observes the
// migration many times with synchronized snapshots and with
// asynchronous polling, and counts how often each method reports the
// impossible (v1, v2) state. Snapshots, being microsecond-synchronous,
// never do; polling — whose readings are milliseconds apart — routinely
// fabricates it.
//
//	go run ./examples/loopdetect
package main

import (
	"fmt"
	"log"

	"speedlight/internal/core"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/invariant"
	"speedlight/internal/packet"
	"speedlight/internal/polling"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

func main() {
	const trials = 60
	snapImpossible, pollImpossible := 0, 0
	snapTransient, pollTransient := 0, 0
	var invEvals, invViolations uint64

	for trial := 0; trial < trials; trial++ {
		si, st, pi, pt, evals, viols := runTrial(int64(trial + 1))
		snapImpossible += si
		snapTransient += st
		pollImpossible += pi
		pollTransient += pt
		invEvals += evals
		invViolations += viols
	}

	fmt.Printf("over %d route migrations, observing FIB versions at both leaves:\n\n", trials)
	fmt.Printf("  %-10s impossible (v1,v2) states: %2d   real transient (v2,v1) caught: %2d\n",
		"snapshots", snapImpossible, snapTransient)
	fmt.Printf("  %-10s impossible (v1,v2) states: %2d   real transient (v2,v1) caught: %2d\n",
		"polling", pollImpossible, pollTransient)
	fmt.Printf("\nstreaming fib-order invariant: %d consistent cuts checked, %d loop windows flagged\n",
		invEvals, invViolations)
	fmt.Println("\na consistent snapshot can show the real transient window but never an")
	fmt.Println("impossible ordering; asynchronous polling cannot tell the two apart.")
}

// runTrial performs one migration and one observation with each method,
// returning (snapshot impossible, snapshot transient, polling
// impossible, polling transient) counts plus the streaming invariant
// engine's evaluation and violation totals for the trial.
func runTrial(seed int64) (si, st, pi, pt int, evals, viols uint64) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every sealed epoch streams through the history store and the
	// fib-order invariant: leaf 1 may never run a newer FIB than leaf 0.
	// A consistent cut can catch the real (v2, v1) transient but never
	// the impossible (v1, v2) ordering, so the invariant holds for the
	// whole campaign — continuously checked, not spot-sampled.
	store := snapstore.New(snapstore.Config{Retention: 128, CheckpointEvery: 16})
	eng := invariant.New(invariant.Config{})
	net, err := emunet.New(emunet.Config{
		Topo:  ls.Topology,
		Seed:  seed,
		MaxID: 256, WrapAround: true,
		// Each ingress unit snapshots its switch's FIB version gauge.
		Metrics: func(n *emunet.Network, id dataplane.UnitID) core.Metric {
			if id.Dir == dataplane.Ingress && id.Port == 0 {
				return n.Gauge(id)
			}
			return nil
		},
		Snapstore:  store,
		Invariants: eng,
	})
	if err != nil {
		log.Fatal(err)
	}
	leaf0 := dataplane.UnitID{Node: ls.Leaves[0], Port: 0, Dir: dataplane.Ingress}
	leaf1 := dataplane.UnitID{Node: ls.Leaves[1], Port: 0, Dir: dataplane.Ingress}
	eng.Register(invariant.Order("fib-migration-order", leaf0, leaf1))
	net.Gauge(leaf0).Set(1)
	net.Gauge(leaf1).Set(1)

	// Background traffic keeps the snapshot protocol advancing.
	var hosts []topology.HostID
	for _, h := range ls.Hosts {
		hosts = append(hosts, h.ID)
	}
	bg := &workload.Uniform{Net: net, Hosts: hosts, Interval: 2 * sim.Microsecond}
	bg.Start()
	defer bg.Stop()
	net.RunFor(sim.Millisecond)

	// The migration: leaf 0 at t0, leaf 1 at t0+200µs. The observation
	// lands somewhere inside the event (per-seed phase).
	t0 := 500 * sim.Microsecond
	net.Engine().After(t0, func() { net.Gauge(leaf0).Set(2) })
	net.Engine().After(t0+200*sim.Microsecond, func() { net.Gauge(leaf1).Set(2) })

	// Synchronized snapshot aimed somewhere inside the migration; the
	// per-trial phase sweeps the whole event window.
	phase := sim.Duration(100+(seed*71)%500) * sim.Microsecond
	var snapID packet.SeqID
	net.Engine().After(phase, func() {
		snapID, _ = net.ScheduleSnapshot(net.Engine().Now().Add(300 * sim.Microsecond))
	})

	// Polling sweep of the same two registers, starting near the same
	// time; its two readings land ~ milliseconds apart mid-sequence.
	var pollA, pollB uint64
	gotPoll := false
	poller := polling.New(net, polling.Config{})
	net.Engine().After(phase, func() {
		// Sweep everything, as a real polling framework would; extract
		// the two version registers.
		var sweep []dataplane.UnitID
		for _, sw := range ls.Switches {
			sweep = append(sweep, net.Switch(sw.ID).DP.UnitIDs()...)
		}
		poller.PollAll(sweep, func(s []polling.Sample) {
			for _, smp := range s {
				switch smp.Unit {
				case leaf0:
					pollA = smp.Value
				case leaf1:
					pollB = smp.Value
				}
			}
			gotPoll = true
		})
	})

	net.RunFor(60 * sim.Millisecond)

	for _, g := range net.Snapshots() {
		if g.ID != snapID {
			continue
		}
		a, okA := g.Value(leaf0)
		b, okB := g.Value(leaf1)
		if okA && okB {
			si, st = classify(a, b)
		}
	}
	if gotPoll {
		pi, pt = classify(pollA, pollB)
	}
	for _, s := range eng.Status() {
		evals += s.Evals
		viols += s.Violations
	}
	return si, st, pi, pt, evals, viols
}

// classify returns (impossible, transient) indicator counts for an
// observed (leaf0, leaf1) version pair.
func classify(a, b uint64) (impossible, transient int) {
	switch {
	case a == 1 && b == 2:
		return 1, 0 // leaf 1 can never be ahead of leaf 0
	case a == 2 && b == 1:
		return 0, 1 // the genuine transient window
	default:
		return 0, 0
	}
}
