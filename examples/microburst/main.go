// Microburst shows why the choice of snapshotted metric matters for
// the O(10 µs) traffic bursts the paper's Section 2.1 cites (after
// Zhang et al., IMC'17): an instantaneous queue-depth gauge read by a
// snapshot almost always misses a microsecond-scale burst, while a
// high-water-mark register — equally implementable in a data plane —
// catches every one.
//
// One microburst (five hosts converging on one) fires in every 2 ms
// snapshot interval, lasting ~50 µs. Both metrics are snapshotted at
// the same consistent instants; only their register semantics differ.
//
//	go run ./examples/microburst
package main

import (
	"fmt"
	"log"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

const (
	interval = 2 * sim.Millisecond
	rounds   = 50
)

func main() {
	gaugeHits := run(false)
	hwHits := run(true)
	fmt.Printf("of %d snapshot intervals, each containing one ~50µs microburst:\n", rounds)
	fmt.Printf("  instantaneous queue depth:  burst visible in %2d snapshots\n", gaugeHits)
	fmt.Printf("  high-water queue depth:     burst visible in %2d snapshots\n", hwHits)
	fmt.Println("\nthe snapshot primitive is metric-agnostic; pairing it with a")
	fmt.Println("high-water register catches events shorter than any sampling rate.")
}

// run executes the campaign with one of the two metrics and counts the
// snapshots in which the victim's egress queue shows the burst.
func run(highWater bool) int {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	victim := dataplane.UnitID{Node: 0, Port: 0, Dir: dataplane.Egress}
	var hw *counters.HighWater
	var net *emunet.Network
	net, err = emunet.New(emunet.Config{
		Topo:  ls.Topology,
		Seed:  13,
		MaxID: 256, WrapAround: true,
		LinkRateBps: 2e9, // slow enough for the burst to queue
		Metrics: func(n *emunet.Network, id dataplane.UnitID) core.Metric {
			if id != victim {
				return nil
			}
			if highWater {
				hw = &counters.HighWater{}
				return hw
			}
			return n.Gauge(id)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mirror queue occupancy into the high-water register (the gauge
	// path is wired automatically by the emulation).
	if highWater {
		net.Engine().NewTicker(sim.Microsecond, func() {
			hw.Set(uint64(net.Switch(0).QueueLen(0)))
		})
	}

	// One microburst per interval: hosts 1..5 each fire 8 packets at
	// host 0 simultaneously, at a phase the snapshots don't know.
	eng := net.Engine()
	eng.NewTicker(interval, func() {
		eng.After(313*sim.Microsecond, func() {
			for src := topology.HostID(1); src <= 5; src++ {
				for p := 0; p < 8; p++ {
					net.InjectFromHost(src, &packet.Packet{
						DstHost: 0, SrcPort: uint16(100 + p), DstPort: 80,
						Proto: 6, Size: 1500,
					})
				}
			}
		})
	})
	net.RunFor(sim.Millisecond)

	hits := 0
	for i := 0; i < rounds; i++ {
		id, err := net.ScheduleSnapshot(eng.Now().Add(100 * sim.Microsecond))
		if err != nil {
			net.RunFor(interval)
			continue
		}
		if highWater {
			// The control plane clears the register right after the
			// data plane records it (read-and-clear), arming it for
			// the next epoch.
			eng.After(400*sim.Microsecond, func() { hw.Reset() })
		}
		// Run one full interval: the snapshot completes (control-plane
		// processing takes ~1 ms across the fabric) and exactly one new
		// microburst fires.
		net.RunFor(interval)
		for _, g := range net.Snapshots() {
			if g.ID != id {
				continue
			}
			if v, ok := g.Value(victim); ok && v >= 4 {
				hits++
			}
		}
	}
	return hits
}
