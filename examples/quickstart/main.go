// Quickstart: build the paper's testbed fabric, push some traffic
// through it, and take one synchronized network snapshot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"speedlight"
)

func main() {
	// The paper's testbed: 2 leaves, 2 spines, 3 hosts per leaf
	// (Figure 8), snapshotting per-unit packet counters.
	net, err := speedlight.New(speedlight.Config{
		Fabric: speedlight.Fabric{Leaves: 2, Spines: 2, HostsPerLeaf: 3},
		Metric: speedlight.PacketCount,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 100 packets from host 0 (leaf 0) to host 3 (leaf 1), across the
	// fabric, on distinct flows so ECMP spreads them.
	for i := 0; i < 100; i++ {
		net.Send(0, 3, 1000, uint16(1000+i), 80)
	}
	net.Run(2 * time.Millisecond)

	// One synchronized snapshot: every processing unit in the network
	// records its counter as part of a causally consistent, nearly
	// simultaneous cut.
	snap, err := net.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("snapshot %d: consistent=%v, synchronization=%.1fµs\n",
		snap.ID, snap.Consistent, float64(snap.Sync.Nanoseconds())/1000)
	fmt.Println("per-unit packet counts:")
	for _, v := range snap.Values {
		if v.Value == 0 {
			continue // idle unit
		}
		fmt.Printf("  switch %d port %d %-7s  %4d packets\n",
			v.Switch, v.Port, v.Direction, v.Value)
	}

	// The ingress where the flow entered and the egress where it left
	// agree exactly: nothing is lost or double-counted across the cut.
	in, _ := snap.Value(0, 0, "ingress")
	out, _ := snap.Value(1, 0, "egress")
	fmt.Printf("\nentered at leaf0/port0: %d, delivered at leaf1/port0: %d\n", in, out)
}
