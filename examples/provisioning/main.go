// Provisioning demonstrates the paper's Section 2.2 capacity-planning
// question: two workloads with IDENTICAL average utilization can need
// completely different provisioning, and only contemporaneous
// measurements can tell them apart.
//
// Scenario A: every host bursts at the same instant (synchronized
// load). Scenario B: the same bursts, staggered so they never overlap.
// Long-term averages — all that asynchronous measurement can offer —
// are the same for both. Synchronized snapshots of queue depth reveal
// the difference immediately: in A many queues are loaded in the same
// instant (the network needs headroom for coinciding peaks), in B at
// most one is (it does not).
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"speedlight/internal/analysis"
	"speedlight/internal/core"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/invariant"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
)

const (
	burstPeriod  = sim.Millisecond
	burstPackets = 40
	packetSize   = 1500
	rounds       = 100
)

func main() {
	for _, scenario := range []string{"synchronized", "staggered"} {
		loaded, avgUtil, evals, viols := run(scenario)
		fmt.Printf("%-13s bursts: avg utilization %4.1f%% (averages cannot tell these apart)\n",
			scenario, avgUtil*100)
		fmt.Printf("%-13s         concurrently-loaded uplink queues per snapshot: median %.0f, p90 %.0f of 4\n",
			"", loaded.Median(), loaded.Quantile(0.9))
		fmt.Printf("%-13s         streaming headroom invariant: %d cuts checked, %d headroom violations\n",
			"", evals, viols)
	}
	fmt.Println("\nsynchronized peaks collide -> provision for the sum of bursts;")
	fmt.Println("staggered peaks never do   -> the average is the whole story.")
}

// run executes one scenario and returns the distribution of
// concurrently loaded uplink queues per snapshot, the long-term
// average utilization of the uplinks, and the streaming headroom
// invariant's evaluation and violation totals.
func run(scenario string) (*stats.CDF, float64, uint64, uint64) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The uplink egress units whose queue depths the snapshots capture.
	var unitList []dataplane.UnitID
	for _, leaf := range ls.Leaves {
		for _, port := range ls.UplinkPorts(leaf) {
			unitList = append(unitList, dataplane.UnitID{Node: leaf, Port: port, Dir: dataplane.Egress})
		}
	}

	// Every sealed epoch streams through a provisioning-headroom
	// invariant: at most one uplink queue may be loaded (depth > 1) in
	// the same consistent cut. The synchronized scenario trips it on
	// nearly every burst; the staggered one never does — the exact
	// distinction long-term averages erase.
	store := snapstore.New(snapstore.Config{Retention: 256, CheckpointEvery: 16})
	inv := invariant.New(invariant.Config{})
	inv.Register(invariant.Bound("uplink-headroom", unitList, 1, 1))

	net, err := emunet.New(emunet.Config{
		Topo:  ls.Topology,
		Seed:  3,
		MaxID: 256, WrapAround: true,
		Metrics: func(n *emunet.Network, id dataplane.UnitID) core.Metric {
			if id.Dir == dataplane.Egress {
				return n.Gauge(id)
			}
			return nil
		},
		LinkRateBps: 2e9, // slow enough that bursts queue
		Snapstore:   store,
		Invariants:  inv,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every host bursts cross-fabric once per period; the scenario
	// decides whether the bursts coincide.
	hosts := ls.Hosts
	eng := net.Engine()
	// Hosts transmit at their line rate: one packet every serialization
	// time, so a burst occupies the wire for burstPackets x 6 µs.
	const pktGap = 6 * sim.Microsecond
	var pktBytes uint64
	for i, h := range hosts {
		h := h
		offset := sim.Duration(0)
		if scenario == "staggered" {
			offset = sim.Duration(i) * burstPeriod / sim.Duration(len(hosts))
		}
		dst := hosts[(i+3)%len(hosts)].ID // cross-leaf partner
		i := i
		eng.After(offset, func() {
			eng.NewTicker(burstPeriod, func() {
				for p := 0; p < burstPackets; p++ {
					p := p
					pktBytes += packetSize
					eng.After(sim.Duration(p)*pktGap, func() {
						net.InjectFromHost(h.ID, &packet.Packet{
							DstHost: uint32(dst),
							SrcPort: uint16(2000 + i*64 + p%8),
							DstPort: 80, Proto: 6, Size: packetSize,
						})
					})
				}
			})
		})
	}
	net.RunFor(3 * sim.Millisecond)

	// Snapshot queue depth at random phases of the burst cycle.
	var ids []packet.SeqID
	stride := burstPeriod + 137*sim.Microsecond // sweeps the phase
	for i := 0; i < rounds; i++ {
		eng.After(stride, func() {
			if id, err := net.ScheduleSnapshot(eng.Now().Add(100 * sim.Microsecond)); err == nil {
				ids = append(ids, id)
			}
		})
		net.RunFor(stride)
	}
	elapsed := eng.Now()
	net.RunFor(50 * sim.Millisecond)

	loaded := analysis.ConcurrentLoad(net.Snapshots(), unitList, 2)

	// Long-term average uplink utilization: offered cross-fabric bytes
	// over capacity — identical across scenarios by construction.
	capacityBits := 2e9 * elapsed.Micros() / 1e6 * 4 // 4 uplinks
	avgUtil := float64(pktBytes*8) / capacityBits

	var evals, viols uint64
	for _, s := range inv.Status() {
		evals += s.Evals
		viols += s.Violations
	}
	return loaded, avgUtil, evals, viols
}
