package speedlight

import (
	"speedlight/internal/packet"
	"testing"
	"time"
)

func TestDefaultsAndHosts(t *testing.T) {
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Hosts()); got != 6 {
		t.Errorf("hosts = %d, want 6 (paper testbed)", got)
	}
	if n.NumSwitches() != 4 {
		t.Errorf("switches = %d", n.NumSwitches())
	}
	if got := n.Uplinks(0); len(got) != 2 {
		t.Errorf("uplinks = %v", got)
	}
}

func TestQuickstartFlow(t *testing.T) {
	n, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-fabric traffic, then a snapshot.
	for i := 0; i < 50; i++ {
		n.Send(0, 3, 1000, uint16(i), 80)
	}
	n.Run(2 * time.Millisecond)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Consistent {
		t.Error("snapshot inconsistent")
	}
	if len(snap.Values) != 28 {
		t.Errorf("values = %d, want 28 units", len(snap.Values))
	}
	// Host 0's ingress unit (leaf 0, port 0) saw all 50 packets.
	v, ok := snap.Value(0, 0, "ingress")
	if !ok {
		t.Fatal("leaf0 port0 ingress missing")
	}
	if v != 50 {
		t.Errorf("ingress count = %d, want 50", v)
	}
	if snap.Sync <= 0 || snap.Sync > time.Millisecond {
		t.Errorf("sync = %v, want microseconds-scale", snap.Sync)
	}
}

func TestSnapshotSequence(t *testing.T) {
	n, err := New(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var prev packet.SeqID
	for i := 0; i < 5; i++ {
		n.Send(1, 4, 500, uint16(i), 80)
		n.Run(time.Millisecond)
		snap, err := n.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.ID <= prev {
			t.Errorf("snapshot IDs not increasing: %d after %d", snap.ID, prev)
		}
		prev = snap.ID
	}
}

func TestMetricOptions(t *testing.T) {
	for _, m := range []Metric{PacketCount, ByteCount, EWMAInterarrival, QueueDepth} {
		n, err := New(Config{Metric: m, Seed: 5})
		if err != nil {
			t.Fatalf("metric %d: %v", m, err)
		}
		n.Send(0, 3, 1500, 1, 80)
		n.Run(time.Millisecond)
		if _, err := n.Snapshot(); err != nil {
			t.Errorf("metric %d snapshot: %v", m, err)
		}
	}
}

func TestByteCountValues(t *testing.T) {
	n, err := New(Config{Metric: ByteCount, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		n.Send(0, 1, 1500, uint16(i), 80)
	}
	n.Run(2 * time.Millisecond)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value(0, 0, "ingress"); !ok || v != 15000 {
		t.Errorf("bytes = %d, want 15000", v)
	}
}

func TestFlowletBalancer(t *testing.T) {
	n, err := New(Config{Balancer: Flowlet, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n.Send(0, 3, 1000, 9, 80)
	}
	n.Run(2 * time.Millisecond)
	if _, err := n.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelStateOption(t *testing.T) {
	n, err := New(Config{ChannelState: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		n.Send(2, 5, 800, uint16(i), 80)
	}
	n.Run(2 * time.Millisecond)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Consistent {
		t.Error("channel-state snapshot inconsistent")
	}
}

func TestBadFabricRejected(t *testing.T) {
	if _, err := New(Config{Fabric: Fabric{Leaves: -1, Spines: 1, HostsPerLeaf: 1}}); err == nil {
		t.Error("bad fabric accepted")
	}
}

func TestValueMissLookup(t *testing.T) {
	s := &Snapshot{Values: []UnitValue{{Switch: 0, Port: 0, Direction: "ingress", Value: 5, Consistent: true}}}
	if _, ok := s.Value(9, 9, "egress"); ok {
		t.Error("missing unit lookup succeeded")
	}
	if v, ok := s.Value(0, 0, "ingress"); !ok || v != 5 {
		t.Error("present unit lookup failed")
	}
}

func TestCoSLevelsOption(t *testing.T) {
	n, err := New(Config{CoSLevels: 3, ChannelState: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n.SendCoS(0, 3, 500, uint16(i), 80, uint8(i%3))
	}
	n.Run(2 * time.Millisecond)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Consistent {
		t.Error("CoS snapshot inconsistent")
	}
	if v, ok := snap.Value(0, 0, "ingress"); !ok || v != 30 {
		t.Errorf("ingress count = %d, want 30", v)
	}
}
