package speedlight

// The benchmarks below regenerate, at reduced scale, every table and
// figure of the paper's evaluation (run `cmd/experiments` for the
// full-size versions), plus micro-benchmarks of the protocol's hot
// paths. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"
	"time"

	"speedlight/internal/control"
	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/epochtrace"
	"speedlight/internal/experiments"
	"speedlight/internal/journal"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
	"speedlight/internal/wire"
)

// BenchmarkTable1Resources regenerates Table 1: data-plane resource
// usage of the three Speedlight variants.
func BenchmarkTable1Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(64)
		if len(t.Rows) != 7 {
			b.Fatal("table shape")
		}
	}
}

// BenchmarkFig9Synchronization regenerates Figure 9: synchronization
// CDFs of snapshots (with and without channel state) versus polling.
func BenchmarkFig9Synchronization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(experiments.Fig9Config{Snapshots: 10, Seed: int64(i + 1)})
		if r.SwitchState.N() == 0 || r.Polling.N() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig10SnapshotRate regenerates one point of Figure 10: the
// maximum sustained snapshot rate of a 16-port router.
func BenchmarkFig10SnapshotRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(experiments.Fig10Config{
			PortCounts:    []int{16},
			TrialDuration: 20 * sim.Millisecond,
			Seed:          int64(i + 1),
		})
		if r.Points[0].MaxRateHz <= 0 {
			b.Fatal("no rate found")
		}
	}
}

// BenchmarkFig11Scale regenerates Figure 11: synchronization versus
// network size up to 10,000 routers.
func BenchmarkFig11Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(experiments.Fig11Config{
			RouterCounts:         []int{10, 1000, 10000},
			Trials:               20,
			CalibrationSnapshots: 30,
			Seed:                 int64(i + 1),
		})
		if len(r.Points) != 3 {
			b.Fatal("points")
		}
	}
}

// BenchmarkFig12LoadBalance regenerates Figure 12: uplink load-balance
// standard deviation under the three workloads, two balancers and two
// measurement methods.
func BenchmarkFig12LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(experiments.Fig12Config{Samples: 20, Seed: int64(i + 1)})
		if len(r.Workloads) != 3 {
			b.Fatal("workloads")
		}
	}
}

// BenchmarkFig13Correlation regenerates Figure 13: pairwise egress-port
// correlation analysis under GraphX, snapshots versus polling.
func BenchmarkFig13Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(experiments.Fig13Config{Snapshots: 30, Seed: int64(i + 1)})
		if r.Snapshot.Matrix == nil {
			b.Fatal("no matrix")
		}
	}
}

// BenchmarkAblationInitiators regenerates the multi- vs
// single-initiator design ablation.
func BenchmarkAblationInitiators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationInitiators(experiments.AblationConfig{
			Snapshots: 15, Seed: int64(i + 1),
		})
		if r.Multi.N() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblationClocks regenerates the clock-discipline ablation.
func BenchmarkAblationClocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationClocks(experiments.AblationConfig{
			Snapshots: 15, Seed: int64(i + 1),
		})
		if r.PTP.N() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblationNotifBuffers regenerates the socket-buffer ablation.
func BenchmarkAblationNotifBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationNotifBuffers(experiments.AblationConfig{Seed: int64(i + 1)})
		if len(r.Points) != 4 {
			b.Fatal("points")
		}
	}
}

// BenchmarkAblationPartialDeployment regenerates the Section 10
// partial-deployment ablation.
func BenchmarkAblationPartialDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPartialDeployment(experiments.AblationConfig{
			Snapshots: 10, Seed: int64(i + 1),
		})
		if len(r.Points) != 3 {
			b.Fatal("points")
		}
	}
}

// BenchmarkUnitOnPacket measures the per-packet cost of the snapshot
// state machine itself — the protocol's inner loop.
func BenchmarkUnitOnPacket(b *testing.B) {
	u, err := core.NewUnit(core.Config{
		MaxID: 256, WrapAround: true, ChannelState: true,
		NumChannels: 2, CPChannel: 1,
	}, &counters.PacketCount{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := &packet.Packet{
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeData},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Snap.ID = packet.WireIDFromRaw(uint32((uint64(i) / 1024) % 256)) // epoch advances every 1024 packets
		u.OnPacket(pkt, 0)
	}
}

// BenchmarkSwitchPipeline measures a full ingress+egress traversal of
// one emulated switch, including forwarding lookup and balancing.
func BenchmarkSwitchPipeline(b *testing.B) {
	sw, err := dataplane.New(dataplane.Config{
		Node: 0, NumPorts: 8, MaxID: 256, WrapAround: true,
		Metrics: func(dataplane.UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node: 0, Version: 1,
			NextHops: map[topology.HostID][]int{10: {4, 5, 6, 7}},
		},
		Balancer: routing.ECMP{},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &packet.Packet{DstHost: 10, SrcPort: uint16(i), Size: 1000}
		res := sw.Ingress(pkt, i%4, 0)
		sw.Egress(pkt, res.EgressPort, 0)
		if i%512 == 0 {
			for {
				if _, ok := sw.PopNotif(); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkHeaderCodec measures the snapshot header wire codec.
//
//speedlight:allocgate packet.SnapshotHeader.AppendBinary
func BenchmarkHeaderCodec(b *testing.B) {
	h := packet.SnapshotHeader{Type: packet.TypeData, ID: 123456, Channel: 17}
	buf := make([]byte, 0, packet.HeaderLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = h.AppendBinary(buf[:0])
		var out packet.SnapshotHeader
		if err := out.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeSnapshot measures one end-to-end snapshot round on the
// public API: schedule, initiate at every switch, complete, assemble.
func BenchmarkFacadeSnapshot(b *testing.B) {
	net, err := New(Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		net.Send(0, 3, 1000, uint16(i), 80)
	}
	net.Run(time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulationThroughput measures the discrete-event emulator's
// packet throughput: one full switch traversal (ingress, forwarding,
// queueing, egress, delivery) per packet across the testbed fabric.
// CI gates it at 0 allocs/op, so it doubles as the allocation gate
// for the emunet pipeline.
//
//speedlight:allocgate emunet.Network.arrive emunet.Network.enqueue emunet.Network.scheduleTx emunet.Network.txCall
//speedlight:allocgate emunet.Network.transmit emunet.Network.deliverLocalCall emunet.Network.wireHop emunet.Network.drainNotifs
//speedlight:allocgate emunet.pktFIFO.push emunet.pktFIFO.peek emunet.pktFIFO.pop emunet.portQueue.head
func BenchmarkEmulationThroughput(b *testing.B) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	n, err := emunet.New(emunet.Config{Topo: ls.Topology, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng := n.Engine()
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Fired()
	for i := 0; i < b.N; i++ {
		pkt := n.NewPacket()
		pkt.DstHost, pkt.SrcPort, pkt.Proto, pkt.Size = 3, uint16(i), 6, 1000
		n.InjectFromHost(0, pkt)
		if i%1024 == 1023 {
			n.RunFor(sim.Millisecond)
		}
	}
	n.RunFor(10 * sim.Millisecond)
	b.ReportMetric(float64(eng.Fired()-start)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEmulationThroughputTelemetry is BenchmarkEmulationThroughput
// with full instrumentation attached, for a before/after overhead
// comparison (the telemetry contract is <5% on this path).
func BenchmarkEmulationThroughputTelemetry(b *testing.B) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	n, err := emunet.New(emunet.Config{
		Topo:     ls.Topology,
		Seed:     1,
		Registry: telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := n.Engine()
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Fired()
	for i := 0; i < b.N; i++ {
		pkt := n.NewPacket()
		pkt.DstHost, pkt.SrcPort, pkt.Proto, pkt.Size = 3, uint16(i), 6, 1000
		n.InjectFromHost(0, pkt)
		if i%1024 == 1023 {
			n.RunFor(sim.Millisecond)
		}
	}
	n.RunFor(10 * sim.Millisecond)
	b.ReportMetric(float64(eng.Fired()-start)/b.Elapsed().Seconds(), "events/sec")
}

// benchThroughputSnapshotting is the shared body of the trace-overhead
// benchmark pair: the emulation-throughput loop with a snapshot firing
// every 8192 injections, with or without the flight-recorder journal
// (the epoch causal tracer's only input) attached. Identical seed and
// workload, so the pair isolates exactly the journal-stamp cost.
func benchThroughputSnapshotting(b *testing.B, set *journal.Set) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	n, err := emunet.New(emunet.Config{Topo: ls.Topology, Seed: 1, Journal: set})
	if err != nil {
		b.Fatal(err)
	}
	eng := n.Engine()
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Fired()
	for i := 0; i < b.N; i++ {
		pkt := n.NewPacket()
		pkt.DstHost, pkt.SrcPort, pkt.Proto, pkt.Size = 3, uint16(i), 6, 1000
		n.InjectFromHost(0, pkt)
		if i%1024 == 1023 {
			n.RunFor(sim.Millisecond)
		}
		if i%8192 == 8191 {
			if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err != nil {
				b.Fatal(err)
			}
		}
	}
	n.RunFor(10 * sim.Millisecond)
	b.ReportMetric(float64(eng.Fired()-start)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEmulationThroughputSnapshots is the trace-overhead baseline:
// snapshots firing, journal detached.
func BenchmarkEmulationThroughputSnapshots(b *testing.B) {
	benchThroughputSnapshotting(b, nil)
}

// BenchmarkEmulationThroughputTraced is the same workload with the
// journal attached — the configuration the epoch causal tracer
// consumes. Tracing is post-hoc reconstruction from the journal, so
// the steady-state cost is only the journal stamps on the protocol
// paths; the CI gate holds this within 3% of
// BenchmarkEmulationThroughputSnapshots and at 0 allocs/op. The
// reconstruction runs once after the timed region to prove the journal
// it produced is traceable.
func BenchmarkEmulationThroughputTraced(b *testing.B) {
	set := journal.NewSet(0)
	benchThroughputSnapshotting(b, set)
	b.StopTimer()
	if b.N >= 8192 {
		if traces := epochtrace.Build(set.Events()); len(traces) == 0 {
			b.Fatal("journaled campaign reconstructed no epoch traces")
		}
	}
}

// BenchmarkTelemetryHotPath measures the instrumentation primitives on
// the per-packet path: a counter increment, a gauge high-water update,
// and a histogram observation. The contract is a few nanoseconds and
// zero allocations per operation.
func BenchmarkTelemetryHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_pkts_total", "")
	g := reg.Gauge("bench_depth", "")
	h := reg.Histogram("bench_lat_us", "", telemetry.LatencyBucketsUS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.SetMax(int64(i & 1023))
		h.Observe(float64(i & 4095))
	}
}

// BenchmarkTelemetryHotPathDisabled measures the same call sites with
// telemetry disabled (nil metrics): the zero-overhead-when-disabled
// contract is one predicted branch per call.
func BenchmarkTelemetryHotPathDisabled(b *testing.B) {
	var reg *telemetry.Registry
	c := reg.Counter("bench_pkts_total", "")
	g := reg.Gauge("bench_depth", "")
	h := reg.Histogram("bench_lat_us", "", telemetry.LatencyBucketsUS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.SetMax(int64(i & 1023))
		h.Observe(float64(i & 4095))
	}
}

// benchFabrics are the scaling-benchmark topologies. Fabric latencies
// are widened to 2 µs so the conservative lookahead window (the minimum
// cross-shard link latency) holds enough events per barrier round to
// amortize synchronization; see DESIGN.md ("Parallel simulation").
func benchFabrics(b *testing.B) []struct {
	name string
	topo *topology.Topology
} {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 8, Spines: 4, HostsPerLeaf: 4,
		HostLinkLatency:   2 * sim.Microsecond,
		FabricLinkLatency: 2 * sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	ft, err := topology.NewFatTree(topology.FatTreeConfig{
		K:                 4,
		HostLinkLatency:   2 * sim.Microsecond,
		FabricLinkLatency: 2 * sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name string
		topo *topology.Topology
	}{
		{"leafspine8x4", ls.Topology},
		{"fattree4", ft.Topology},
	}
}

// BenchmarkShardScaling measures simulation throughput (simulator
// events per second of wall time) of the serial engine against the
// sharded parallel engine, on a leaf-spine and a fat-tree fabric under
// heavy shard-local traffic. The conformance suite proves the outputs
// byte-identical; this benchmark prices the difference. CI runs the
// fat-tree case serial vs 4-shard and fails on regression below 1.5x
// (multi-core runners only — on a single core the parallel engine only
// pays barrier overhead).
//
//	go test -run '^$' -bench BenchmarkShardScaling -benchtime 2x
func BenchmarkShardScaling(b *testing.B) {
	for _, fab := range benchFabrics(b) {
		for _, shards := range []int{0, 2, 4, 8} {
			fab, shards := fab, shards
			b.Run(fmt.Sprintf("%s/shards%d", fab.name, shards), func(b *testing.B) {
				n, err := emunet.New(emunet.Config{
					Topo:   fab.topo,
					Seed:   1,
					Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				eng := n.Engine()
				hosts := fab.topo.Hosts
				// One self-clocked traffic source per host, running in
				// the host's own shard domain so injection itself
				// parallelizes; only fabric hops cross shards.
				for _, h := range hosts {
					h := h
					p := n.HostProc(h.ID)
					r := eng.NewRand()
					var seq uint16
					p.NewTicker(sim.Microsecond, func() {
						dst := hosts[r.Intn(len(hosts))]
						if dst.ID == h.ID {
							return
						}
						seq++
						pkt := n.NewPacketFor(h.ID)
						pkt.DstHost = uint32(dst.ID)
						pkt.SrcPort = 1000 + seq
						pkt.DstPort = 80
						pkt.Proto = 6
						pkt.Size = 1000
						n.InjectFrom(p, h.ID, pkt)
					})
				}
				n.RunFor(sim.Millisecond) // warm up queues and flows
				b.ResetTimer()
				start := eng.Fired()
				for i := 0; i < b.N; i++ {
					n.RunFor(2 * sim.Millisecond)
				}
				b.StopTimer()
				fired := eng.Fired() - start
				if fired == 0 {
					b.Fatal("no events fired")
				}
				b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(fired)/float64(b.N), "events/op")
			})
		}
	}
}

// benchStoreUnits enumerates the snapshot units of an emulated fabric:
// `switches` devices with `ports` ingress units each. 64x16 is the
// 1024-port configuration the snapstore benchmarks are gated on.
func benchStoreUnits(switches, ports int) []dataplane.UnitID {
	units := make([]dataplane.UnitID, 0, switches*ports)
	for sw := 0; sw < switches; sw++ {
		for p := 0; p < ports; p++ {
			units = append(units, dataplane.UnitID{
				Node: topology.NodeID(sw), Port: p, Dir: dataplane.Ingress,
			})
		}
	}
	return units
}

// benchGlobalSnapshot assembles a completed global snapshot over the
// given units, with per-unit values offset by salt so consecutive
// epochs differ at every register (the delta encoder's worst case).
func benchGlobalSnapshot(units []dataplane.UnitID, salt uint64) *observer.GlobalSnapshot {
	results := make(map[dataplane.UnitID]control.Result, len(units))
	for i, u := range units {
		results[u] = control.Result{
			Unit: u, Value: uint64(i)*7 + salt, Consistent: true,
		}
	}
	return &observer.GlobalSnapshot{ID: 1, Results: results, Consistent: true}
}

// BenchmarkStoreIngest measures full-epoch ingestion into the snapshot
// history store on a 1024-port fabric: one completed global snapshot
// in, one sealed delta-encoded epoch out, per iteration. Alternating
// value sets force a delta for every register — the encoder's worst
// case; steady fabrics seal far fewer.
func BenchmarkStoreIngest(b *testing.B) {
	units := benchStoreUnits(64, 16)
	gs := [2]*observer.GlobalSnapshot{
		benchGlobalSnapshot(units, 0),
		benchGlobalSnapshot(units, 1),
	}
	store := snapstore.New(snapstore.Config{Retention: 256, CheckpointEvery: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gs[i&1]
		g.ID = packet.SeqID(i + 1)
		store.Ingest(g, 0)
	}
	b.ReportMetric(float64(b.N)*float64(len(units))/b.Elapsed().Seconds(), "registers/sec")
}

// BenchmarkSnapshotIngestHot isolates the per-register ingest hot path
// — Store.Observe, the //speedlight:hotpath the hotalloc analyzer and
// the CI allocation gate hold at 0 allocs/op. Every observation lands
// a fresh value (no elision), and epochs seal at fabric width, so the
// occasional seal/checkpoint allocations amortize into the figure.
func BenchmarkSnapshotIngestHot(b *testing.B) {
	units := benchStoreUnits(64, 16)
	store := snapstore.New(snapstore.Config{Retention: 256, CheckpointEvery: 16})
	// Register every unit and seal a first epoch: steady state starts
	// with the unit table warm, as it is after one campaign epoch.
	store.Begin(1, 0)
	for _, u := range units {
		store.Observe(u, 0, true)
	}
	store.Seal(0, true, nil, 0)
	id := packet.SeqID(2)
	store.Begin(id, 0)
	n := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Observe(units[n], uint64(i), true)
		if n++; n == len(units) {
			n = 0
			store.Seal(0, true, nil, 0)
			id++
			store.Begin(id, 0)
		}
	}
}

// BenchmarkSnapshotQuery prices the read side of the query plane under
// load: epoch-state reconstruction (nearest checkpoint plus forward
// delta replay) from a copy-on-write view of a 1024-port fabric, while
// a writer goroutine keeps sealing epochs into the same store. The
// queries/sec metric is the one recorded in BENCH_6.json.
func BenchmarkSnapshotQuery(b *testing.B) {
	units := benchStoreUnits(64, 16)
	store := snapstore.New(snapstore.Config{Retention: 256, CheckpointEvery: 16})
	gs := [2]*observer.GlobalSnapshot{
		benchGlobalSnapshot(units, 0),
		benchGlobalSnapshot(units, 1),
	}
	ingest := func(i int) {
		g := gs[i&1]
		g.ID = packet.SeqID(i + 1)
		store.Ingest(g, 0)
	}
	// Fill retention so every query pays a realistic replay distance.
	epoch := 0
	for ; epoch < 256; epoch++ {
		ingest(epoch)
	}
	// The load: a single writer (the store's concurrency contract)
	// sealing continuously while the benchmark queries.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				ingest(epoch)
				epoch++
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := store.View()
		epochs := v.Epochs()
		e := epochs[i%len(epochs)]
		st, err := v.State(e.ID)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Regs) != len(units) {
			b.Fatalf("reconstructed %d registers, want %d", len(st.Regs), len(units))
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkUDPSnapshot measures one complete snapshot round over the
// real UDP deployment: initiation datagrams out, result datagrams back,
// global assembly.
func BenchmarkUDPSnapshot(b *testing.B) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := wire.Deploy(wire.Config{Topo: ls.Topology})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, done, err := d.TakeSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			b.Fatal("snapshot timed out")
		}
	}
}
