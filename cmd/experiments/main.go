// Command experiments regenerates the tables and figures of the
// paper's evaluation (Section 8) on the emulated substrate.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1 -ports 64
//	experiments -run fig9,fig13 -seed 7
//	experiments -run all -quick      # reduced sample counts
//
// Output is printed as aligned data series and tables; every figure
// carries notes comparing the measured shape against the paper's
// reported numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"speedlight/internal/experiments"
	"speedlight/internal/export"
	"speedlight/internal/sim"
)

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated: all,table1,fig9,fig10,fig11,fig12,fig13,ablations")
		seed   = flag.Int64("seed", 1, "randomness seed (runs are reproducible)")
		shards = flag.Int("shards", 0,
			"simulation shards: 0 or 1 runs the serial engine, >=2 the parallel one (results are identical)")
		ports  = flag.Int("ports", 64, "port count for table1")
		quick  = flag.Bool("quick", false, "reduced sample counts for a fast pass")
		csvDir = flag.String("csvdir", "", "also write each figure/table as CSV into this directory")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	out := os.Stdout

	timed := func(name string, fn func()) {
		start := time.Now()
		fmt.Fprintf(out, "\n### %s ###\n", name)
		fn()
		fmt.Fprintf(out, "(%s took %v)\n", name, time.Since(start).Round(time.Millisecond))
		ran++
	}

	writeCSV := func(name string, write func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
			return
		}
		if err := write(f); err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
		}
		f.Close()
	}

	if all || want["table1"] {
		timed("table1", func() {
			tbl := experiments.Table1(*ports)
			tbl.Fprint(out)
			writeCSV("table1", func(w io.Writer) error { return export.TableCSV(w, tbl) })
		})
	}
	if all || want["fig9"] {
		timed("fig9", func() {
			cfg := experiments.Fig9Config{Seed: *seed, Shards: *shards}
			if *quick {
				cfg.Snapshots = 50
			}
			fig := experiments.Fig9(cfg).Figure()
			fig.Fprint(out)
			fig.FprintPlot(out, 72, 18)
			writeCSV("fig9", func(w io.Writer) error { return export.FigureCSV(w, fig) })
		})
	}
	if all || want["fig10"] {
		timed("fig10", func() {
			cfg := experiments.Fig10Config{Seed: *seed, Shards: *shards}
			if *quick {
				cfg.PortCounts = []int{4, 16, 64}
				cfg.TrialDuration = 100 * sim.Millisecond
			}
			fig := experiments.Fig10(cfg).Figure()
			fig.Fprint(out)
			writeCSV("fig10", func(w io.Writer) error { return export.FigureCSV(w, fig) })
		})
	}
	if all || want["fig11"] {
		timed("fig11", func() {
			cfg := experiments.Fig11Config{Seed: *seed, Shards: *shards}
			if *quick {
				cfg.Trials = 20
				cfg.CalibrationSnapshots = 60
			}
			fig := experiments.Fig11(cfg).Figure()
			fig.Fprint(out)
			fig.FprintPlot(out, 72, 14)
			writeCSV("fig11", func(w io.Writer) error { return export.FigureCSV(w, fig) })
		})
	}
	if all || want["fig12"] {
		timed("fig12", func() {
			cfg := experiments.Fig12Config{Seed: *seed, Shards: *shards}
			if *quick {
				cfg.Samples = 60
			}
			for i, f := range experiments.Fig12(cfg).Figures() {
				f.Fprint(out)
				f := f
				writeCSV(fmt.Sprintf("fig12-%c", 'a'+i), func(w io.Writer) error {
					return export.FigureCSV(w, f)
				})
			}
		})
	}
	if all || want["ablations"] {
		timed("ablations", func() {
			cfg := experiments.AblationConfig{Seed: *seed, Shards: *shards}
			if *quick {
				cfg.Snapshots = 30
			}
			experiments.AblationInitiators(cfg).Table().Fprint(out)
			experiments.AblationClocks(cfg).Table().Fprint(out)
			experiments.AblationNotifBuffers(cfg).Table().Fprint(out)
			experiments.AblationPartialDeployment(cfg).Table().Fprint(out)
		})
	}
	if all || want["fig13"] {
		timed("fig13", func() {
			cfg := experiments.Fig13Config{Seed: *seed, Shards: *shards}
			if *quick {
				cfg.Snapshots = 60
			}
			tbl := experiments.Fig13(cfg).Table()
			tbl.Fprint(out)
			writeCSV("fig13", func(w io.Writer) error { return export.TableCSV(w, tbl) })
		})
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment selection %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}
