// Command hotgate cross-checks the zero-allocation contract's two
// halves: every function marked //speedlight:hotpath must be named by
// a //speedlight:allocgate annotation on an allocation-gated test or
// benchmark, and every allocgate name must still refer to a hotpath
// function.
//
// The hotpath directive is a promise ("this path allocates nothing in
// steady state") that the hotalloc analyzer checks structurally; the
// allocgate annotation records which AllocsPerRun test or 0-alloc
// benchmark proves the promise empirically. hotgate fails CI when a
// hotpath function has no empirical gate, or when an annotation has
// gone stale after a rename.
//
// Usage:
//
//	hotgate [root]
//
// Names are canonical "pkg.Recv.Func" (methods) or "pkg.Func"
// (functions), matching the directive docs in DESIGN.md §9. The walk
// is purely syntactic — no type checking — so it runs in milliseconds
// and sees every build-tagged file.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type site struct {
	pos  token.Position
	name string // canonical function name (hotpath) or gate name (allocgate)
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	hot := map[string]token.Position{}  // hotpath fn -> decl position
	gated := map[string][]string{}      // hotpath fn -> gate test names
	var annotations []site              // every allocgate name, for staleness
	misplaced := []site{}               // allocgate outside a Test/Benchmark

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "bin", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		isTest := strings.HasSuffix(path, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				line := strings.TrimPrefix(c.Text, "//")
				fields := strings.Fields(line)
				if len(fields) == 0 {
					continue
				}
				switch fields[0] {
				case "speedlight:hotpath":
					if !isTest {
						hot[canonical(f.Name.Name, fd)] = fset.Position(fd.Pos())
					}
				case "speedlight:allocgate":
					gate := f.Name.Name + "." + fd.Name.Name
					if !isTest || !(strings.HasPrefix(fd.Name.Name, "Test") ||
						strings.HasPrefix(fd.Name.Name, "Benchmark")) {
						misplaced = append(misplaced, site{fset.Position(c.Pos()), gate})
						continue
					}
					for _, name := range fields[1:] {
						gated[name] = append(gated[name], gate)
						annotations = append(annotations, site{fset.Position(c.Pos()), name})
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	bad := 0
	var uncovered []site
	for name, pos := range hot {
		if len(gated[name]) == 0 {
			uncovered = append(uncovered, site{pos, name})
		}
	}
	sort.Slice(uncovered, func(i, j int) bool { return uncovered[i].name < uncovered[j].name })
	for _, u := range uncovered {
		fmt.Printf("%s: //speedlight:hotpath %s has no allocation gate: annotate the AllocsPerRun test or 0-alloc benchmark that exercises it with //speedlight:allocgate %s\n",
			u.pos, u.name, u.name)
		bad++
	}
	for _, a := range annotations {
		if _, ok := hot[a.name]; !ok {
			fmt.Printf("%s: stale //speedlight:allocgate name %s: no such //speedlight:hotpath function (renamed or unmarked?)\n",
				a.pos, a.name)
			bad++
		}
	}
	for _, m := range misplaced {
		fmt.Printf("%s: //speedlight:allocgate on %s: the annotation belongs on a Test or Benchmark function in a _test.go file\n",
			m.pos, m.name)
		bad++
	}
	if bad > 0 {
		os.Exit(1)
	}
	gates := map[string]bool{}
	for _, names := range gated {
		for _, g := range names {
			gates[g] = true
		}
	}
	fmt.Printf("hotgate: %d hotpath functions covered by %d gates\n", len(hot), len(gates))
}

// canonical builds "pkg.Recv.Func" for methods and "pkg.Func" for
// plain functions.
func canonical(pkg string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return pkg + "." + id.Name + "." + fd.Name.Name
	}
	return pkg + "." + fd.Name.Name
}
