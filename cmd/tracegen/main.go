// Command tracegen records one of the built-in application workloads
// as a replayable trace CSV, for use with `speedlight -workload trace`
// or any external analysis.
//
// Usage:
//
//	tracegen -workload hadoop -duration 10ms -out hadoop.csv
//	tracegen -workload memcache -seed 7 -out - | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "uniform", "workload to record: uniform, hadoop, graphx, memcache")
		duration = flag.Duration("duration", 10*time.Millisecond, "virtual time to record")
		seed     = flag.Int64("seed", 1, "randomness seed")
		leaves   = flag.Int("leaves", 2, "leaf switches")
		spines   = flag.Int("spines", 2, "spine switches")
		hostsPer = flag.Int("hosts", 3, "hosts per leaf")
		out      = flag.String("out", "-", "output file ('-' for stdout)")
	)
	flag.Parse()

	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hostsPer,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		fatalf("topology: %v", err)
	}

	var events []workload.TraceEvent
	net, err := emunet.New(emunet.Config{
		Topo: ls.Topology,
		Seed: *seed,
		OnInject: func(p *packet.Packet, host topology.HostID, at sim.Time) {
			events = append(events, workload.TraceEvent{
				At:      sim.Duration(at),
				Src:     host,
				Dst:     topology.HostID(p.DstHost),
				SrcPort: p.SrcPort,
				DstPort: p.DstPort,
				Size:    p.Size,
				CoS:     p.CoS,
			})
		},
	})
	if err != nil {
		fatalf("network: %v", err)
	}

	var hosts []topology.HostID
	for _, h := range ls.Hosts {
		hosts = append(hosts, h.ID)
	}
	var app workload.App
	switch *wl {
	case "uniform":
		app = &workload.Uniform{Net: net, Hosts: hosts}
	case "hadoop":
		app = &workload.Terasort{Net: net, Mappers: hosts, Reducers: hosts}
	case "graphx":
		app = &workload.PageRank{Net: net, Workers: hosts[1:]}
	case "memcache":
		app = &workload.Memcache{Net: net, Clients: hosts[:1], Servers: hosts[1:]}
	default:
		fatalf("unknown workload %q", *wl)
	}
	app.Start()
	net.RunFor(sim.Duration(duration.Nanoseconds()))
	app.Stop()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTraceCSV(w, events); err != nil {
		fatalf("writing trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "recorded %d events over %v of %s\n", len(events), *duration, *wl)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
