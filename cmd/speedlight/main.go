// Command speedlight runs a synchronized-network-snapshot campaign on
// an emulated leaf-spine fabric and prints each assembled global
// snapshot: its synchronization, consistency, and per-unit values.
//
// Usage:
//
//	speedlight -leaves 2 -spines 2 -hosts 3 -snapshots 10 -metric packets
//	speedlight -metric ewma -balancer flowlet -workload hadoop
//	speedlight -channel-state -workload memcache -verbose
//	speedlight -journal-out run.jsonl -audit -flight-dir dumps/
//	speedlight -snapstore-out history.jsonl -invariants-out invariants.csv
//	speedlight -trace-epochs epochs.jsonl
//	speedlight doctor run.jsonl
//	speedlight doctor http://127.0.0.1:9090
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"speedlight/internal/audit"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/epochtrace"
	"speedlight/internal/export"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/reconcile"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
	"speedlight/internal/workload"

	"speedlight"
	"speedlight/internal/packet"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "doctor" {
		doctor(os.Args[2:])
		return
	}
	campaign()
}

func campaign() {
	var (
		leaves    = flag.Int("leaves", 2, "leaf switches")
		spines    = flag.Int("spines", 2, "spine switches")
		hosts     = flag.Int("hosts", 3, "hosts per leaf")
		metric    = flag.String("metric", "packets", "snapshot target: packets, bytes, ewma, queue")
		balancer  = flag.String("balancer", "ecmp", "load balancer: ecmp, flowlet")
		chanState = flag.Bool("channel-state", false, "record in-flight packets (channel state)")
		snapshots = flag.Int("snapshots", 10, "snapshots to take")
		interval  = flag.Duration("interval", 2*time.Millisecond, "virtual time between snapshots")
		wl        = flag.String("workload", "uniform", "traffic: uniform, hadoop, graphx, memcache, trace, none")
		tracePath = flag.String("trace", "", "trace CSV for -workload trace (time_us,src,dst,src_port,dst_port,size,cos)")
		seed      = flag.Int64("seed", 1, "randomness seed")
		shards    = flag.Int("shards", 0,
			"simulation shards: 0 or 1 runs the serial engine, >=2 the parallel one (same seed, byte-identical results)")
		verbose = flag.Bool("verbose", false, "print every unit value")
		csvPath = flag.String("csv", "", "write all snapshot values to this CSV file")

		metricsAddr = flag.String("metrics-addr", "",
			"serve observability endpoints (/metrics, /debug/vars, /debug/pprof, /trace, /healthz, /journal, /audit) on this address while the campaign runs")
		traceOut = flag.String("trace-out", "", "write the campaign's Chrome trace_event JSON to this file (load in Perfetto)")
		summary  = flag.Bool("summary", false, "print an end-of-run telemetry summary table")

		snapstoreOut = flag.String("snapstore-out", "",
			"retain snapshot history and write it to this file as JSON Lines (one reconstructed epoch per line)")
		snapstoreRetain = flag.Int("snapstore-retain", 1024,
			"snapshot-history retention bound in epochs")
		invariantsOut = flag.String("invariants-out", "",
			"write invariant status and violation history to this CSV file")

		journalOut = flag.String("journal-out", "",
			"write the flight-recorder journal to this file (.csv writes CSV, anything else JSON Lines)")
		auditRun = flag.Bool("audit", false,
			"replay the journal after the campaign and print the consistency audit report (exit 1 on violations)")
		flightDir = flag.String("flight-dir", "",
			"write a flight-recorder tail dump (JSONL) into this directory whenever a snapshot finalizes inconsistent or with exclusions")
		traceEpochs = flag.String("trace-epochs", "",
			"write per-epoch causal traces to this file (.chrome.json writes Chrome trace_event format, anything else JSON Lines) and print critical-path attribution; implies journaling")
		churnMode = flag.String("churn", "",
			"run a seeded churn scenario against the reconciliation controller during the campaign: rolling-upgrade, link-flap-storm, partition-heal, provisioning-ramp (implies journaling; classification printed at the end)")
	)
	flag.Parse()

	cfg := speedlight.Config{
		Fabric:       speedlight.Fabric{Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts},
		ChannelState: *chanState,
		Seed:         *seed,
		Shards:       *shards,
	}
	// Any observability flag turns telemetry on; without them the run
	// pays nothing. -trace-epochs counts: its critical-path report
	// includes the sharded engine's per-pair stall attribution, which
	// needs the barrier profiler (registry + wall clock) enabled.
	if *metricsAddr != "" || *traceOut != "" || *summary || *traceEpochs != "" {
		cfg.Registry = telemetry.NewRegistry()
		cfg.Tracer = telemetry.NewTracer(0)
	}
	// Any flight-recorder flag turns journaling on. The metrics server
	// includes it too, so /journal and /audit have something to serve.
	if *journalOut != "" || *auditRun || *flightDir != "" || *metricsAddr != "" || *traceEpochs != "" || *churnMode != "" {
		cfg.Journal = journal.NewSet(0)
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fatalf("creating %s: %v", *flightDir, err)
		}
		dumps := 0
		cfg.OnAnomaly = func(reason string, snapshotID packet.SeqID, dump []journal.Event) {
			dumps++
			path := filepath.Join(*flightDir, fmt.Sprintf("snapshot-%d-dump-%d.jsonl", snapshotID, dumps))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flight recorder: %v\n", err)
				return
			}
			werr := export.JournalJSONL(f, dump)
			cerr := f.Close()
			if werr != nil || cerr != nil {
				fmt.Fprintf(os.Stderr, "flight recorder: writing %s: %v %v\n", path, werr, cerr)
				return
			}
			fmt.Printf("flight recorder: %s -> %s (%d events)\n", reason, path, len(dump))
		}
	}
	switch *metric {
	case "packets":
		cfg.Metric = speedlight.PacketCount
	case "bytes":
		cfg.Metric = speedlight.ByteCount
	case "ewma":
		cfg.Metric = speedlight.EWMAInterarrival
	case "queue":
		cfg.Metric = speedlight.QueueDepth
	default:
		fatalf("unknown metric %q", *metric)
	}
	switch *balancer {
	case "ecmp":
		cfg.Balancer = speedlight.ECMP
	case "flowlet":
		cfg.Balancer = speedlight.Flowlet
	default:
		fatalf("unknown balancer %q", *balancer)
	}

	// Any snapshot-history flag — or a metrics server, whose query
	// plane serves /snapshots and /invariants — turns the store and the
	// invariant engine on.
	if *snapstoreOut != "" || *invariantsOut != "" || *metricsAddr != "" {
		cfg.Snapstore = snapstore.New(snapstore.Config{
			Retention: *snapstoreRetain,
			Registry:  cfg.Registry,
		})
		cfg.Invariants = invariant.New(invariant.Config{Registry: cfg.Registry})
	}

	net, err := speedlight.New(cfg)
	if err != nil {
		fatalf("building network: %v", err)
	}

	// Counting metrics only grow; watch each leaf's uplink group for
	// regressions, continuously.
	if cfg.Invariants != nil && (*metric == "packets" || *metric == "bytes") {
		for leaf := 0; leaf < *leaves; leaf++ {
			var ups []dataplane.UnitID
			for _, lp := range net.Uplinks(leaf) {
				ups = append(ups, dataplane.UnitID{
					Node: topology.NodeID(lp[0]), Port: lp[1], Dir: dataplane.Egress,
				})
			}
			cfg.Invariants.Register(invariant.Monotone(fmt.Sprintf("leaf%d-uplinks-monotone", leaf), ups))
		}
	}

	if *metricsAddr != "" {
		health := telemetry.NewHealth()
		mc := telemetry.MuxConfig{
			Registry: cfg.Registry,
			Tracer:   cfg.Tracer,
			Health:   health,
			Journal:  journal.HTTPHandler(cfg.Journal.Events),
			Audit:    audit.HTTPHandler(net.Audit),
		}
		if cfg.Snapstore != nil {
			mc.Snapshots = snapstore.HTTPHandler(cfg.Snapstore.View)
			health.AddCheck("snapstore-lag",
				snapstore.HealthCheck(cfg.Snapstore, net.Inner().CompletedEpochs, 8))
		}
		if cfg.Invariants != nil {
			mc.Invariants = invariant.HTTPHandler(cfg.Invariants)
		}
		mc.EpochTrace = epochtrace.HTTPHandler(net.EpochTraces, net.BlockedProfile)
		health.SetReady(true)
		srv, err := telemetry.ServeConfig(*metricsAddr, mc)
		if err != nil {
			fatalf("metrics server: %v", err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics (Prometheus), /debug/vars (expvar), /debug/pprof, /trace (Chrome), /healthz, /journal, /audit, /snapshots, /invariants, /trace/epoch, /trace/critical\n",
			srv.Addr())
	}

	var ctrl *reconcile.Controller
	if *churnMode != "" {
		ctrl, err = net.Reconciler()
		if err != nil {
			fatalf("building reconciler: %v", err)
		}
		scheduleChurn(ctrl, *churnMode, *leaves, *spines, *seed,
			sim.Duration((*interval).Nanoseconds()), *snapshots)
		ctrl.Start()
	}

	if app := buildWorkload(*wl, *tracePath, net); app != nil {
		app.Start()
		defer app.Stop()
	}
	net.Run(2 * time.Millisecond) // warm up

	fmt.Printf("speedlight: %d leaves, %d spines, %d hosts/leaf, metric=%s, balancer=%s, channel-state=%v\n",
		*leaves, *spines, *hosts, *metric, *balancer, *chanState)

	for i := 0; i < *snapshots; i++ {
		net.Run(*interval)
		snap, err := net.Snapshot()
		if err != nil {
			fatalf("snapshot %d: %v", i+1, err)
		}
		var total uint64
		for _, v := range snap.Values {
			total += v.Value
		}
		fmt.Printf("snapshot %3d: sync=%8.1fus consistent=%-5v units=%d total=%d\n",
			snap.ID, float64(snap.Sync.Nanoseconds())/1000, snap.Consistent, len(snap.Values), total)
		if *verbose {
			for _, v := range snap.Values {
				fmt.Printf("    sw%d port%d %-7s = %d (consistent=%v)\n",
					v.Switch, v.Port, v.Direction, v.Value, v.Consistent)
			}
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("creating %s: %v", *csvPath, err)
		}
		if err := export.SnapshotsCSV(f, net.Inner().Snapshots()); err != nil {
			fatalf("writing csv: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing csv: %v", err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("creating %s: %v", *traceOut, err)
		}
		if err := cfg.Tracer.WriteChromeTrace(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}

	if cfg.Registry != nil {
		fmt.Println("\ntelemetry summary:")
		if err := cfg.Registry.WriteSummary(os.Stdout); err != nil {
			fatalf("writing summary: %v", err)
		}
	}

	if *snapstoreOut != "" {
		f, err := os.Create(*snapstoreOut)
		if err != nil {
			fatalf("creating %s: %v", *snapstoreOut, err)
		}
		v := cfg.Snapstore.View()
		if err := export.SnapshotsJSONL(f, v); err != nil {
			fatalf("writing snapshot history: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing snapshot history: %v", err)
		}
		fmt.Printf("wrote %s (%d epochs)\n", *snapstoreOut, v.Len())
	}

	if *invariantsOut != "" {
		f, err := os.Create(*invariantsOut)
		if err != nil {
			fatalf("creating %s: %v", *invariantsOut, err)
		}
		if err := export.InvariantsCSV(f, cfg.Invariants); err != nil {
			fatalf("writing invariants: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing invariants: %v", err)
		}
		fmt.Printf("wrote %s (%d invariants, %d violations)\n",
			*invariantsOut, len(cfg.Invariants.Status()), len(cfg.Invariants.Violations()))
	}

	if *journalOut != "" {
		f, err := os.Create(*journalOut)
		if err != nil {
			fatalf("creating %s: %v", *journalOut, err)
		}
		events := cfg.Journal.Events()
		if strings.HasSuffix(*journalOut, ".csv") {
			err = export.JournalCSV(f, events)
		} else {
			err = export.JournalJSONL(f, events)
		}
		if err != nil {
			fatalf("writing journal: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing journal: %v", err)
		}
		fmt.Printf("wrote %s (%d events)\n", *journalOut, len(events))
	}

	if *traceEpochs != "" {
		traces := net.EpochTraces()
		f, err := os.Create(*traceEpochs)
		if err != nil {
			fatalf("creating %s: %v", *traceEpochs, err)
		}
		if strings.HasSuffix(*traceEpochs, ".chrome.json") {
			err = export.EpochTraceChromeTrace(f, traces)
		} else {
			err = export.EpochTraceJSONL(f, traces)
		}
		if err != nil {
			fatalf("writing epoch traces: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing epoch traces: %v", err)
		}
		fmt.Printf("wrote %s (%d epochs)\n", *traceEpochs, len(traces))
		roll := epochtrace.NewRollup(traces)
		roll.Blocking = net.BlockedProfile()
		printCritical(os.Stdout, roll)
	}

	if *churnMode != "" {
		cs := net.ClassifyChurn()
		tal := reconcile.TallyOutcomes(cs)
		fmt.Printf("\nchurn scenario %s: %d reconcile op(s), %d churn event(s): %s\n",
			*churnMode, len(ctrl.Log()), len(cs), tal)
		if tal.SilentDisagreement > 0 {
			fatalf("churn produced %d silent disagreement(s) — detection defect", tal.SilentDisagreement)
		}
	}

	if *auditRun {
		rep := net.Audit()
		fmt.Println("\naudit report:")
		if err := export.AuditText(os.Stdout, rep); err != nil {
			fatalf("writing audit report: %v", err)
		}
		_, inconsistent, _ := rep.Counts()
		if inconsistent > 0 || rep.Disagreements > 0 {
			os.Exit(1)
		}
	}
}

// printCritical renders a critical-path rollup: where completion
// latency is spent stage by stage, and which switches carry the most
// of it. Shared by campaign -trace-epochs output and both doctor
// modes.
func printCritical(w io.Writer, r *epochtrace.Rollup) {
	if r.Epochs == 0 {
		fmt.Fprintln(w, "critical path: no epochs traced")
		return
	}
	fmt.Fprintf(w, "critical path: %d epochs (%d consistent), mean %.1fus, max %.1fus (epoch %d), mean spread %.1fus\n",
		r.Epochs, r.Consistent,
		float64(r.MeanNs)/1000, float64(r.MaxNs)/1000, r.MaxEpoch,
		float64(r.MeanSpreadNs)/1000)
	for _, st := range r.Stages {
		if st.TotalNs == 0 {
			continue
		}
		share := 100 * float64(st.TotalNs) / float64(r.TotalNs)
		fmt.Fprintf(w, "  stage %-14s %10.1fus  %5.1f%%  (max %.1fus in one epoch)\n",
			st.Stage, float64(st.TotalNs)/1000, share, float64(st.MaxNs)/1000)
	}
	for i, sw := range r.Top(3) {
		fmt.Fprintf(w, "  #%d switch %-3d %10.1fus on path across %d epochs (wavefront %.1fus, notif %.1fus, cp-queue %.1fus, cp-service %.1fus, wire %.1fus)\n",
			i+1, sw.Switch, float64(sw.TotalNs)/1000, sw.Epochs,
			float64(sw.WavefrontNs)/1000, float64(sw.NotifNs)/1000,
			float64(sw.CPQueueNs)/1000, float64(sw.CPServiceNs)/1000,
			float64(sw.WireNs)/1000)
	}
	if len(r.Blocking) > 0 {
		b := r.Blocking[0]
		fmt.Fprintf(w, "  top blocking pair: shard %d stalled %.1fms waiting on shard %d's clock (%d blocked pair(s) total)\n",
			b.Waiter, float64(b.WaitNs)/1e6, b.Holdup, len(r.Blocking))
	}
}

// doctor replays a journal dump offline (JSONL or CSV, auto-detected)
// and prints the consistency audit report. Exits 1 when the audit
// finds inconsistent snapshots or observer disagreements.
func doctor(args []string) {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	var (
		format    = fs.String("format", "auto", "journal format: auto, jsonl, csv")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
		maxID     = fs.Uint64("max-id", 0, "snapshot ID space override (journal's own config event wins)")
		wrap      = fs.Bool("wraparound", true, "assume wraparound IDs when the journal has no config event")
		chanState = fs.Bool("channel-state", false, "assume channel-state mode when the journal has no config event")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: speedlight doctor [flags] <journal-file | http://host:port>")
		fmt.Fprintln(os.Stderr, "reads a flight-recorder dump (JSONL or CSV; '-' for stdin) and audits it,")
		fmt.Fprintln(os.Stderr, "or queries a running campaign's /snapshots, /invariants, and /trace/critical endpoints")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		doctorURL(path, *jsonOut)
		return
	}

	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("opening journal: %v", err)
		}
		defer f.Close()
		in = f
	}
	events, err := readJournal(in, path, *format)
	if err != nil {
		fatalf("reading journal: %v", err)
	}

	rep := audit.Run(events, audit.Config{
		MaxID:        *maxID,
		Wraparound:   *wrap,
		ChannelState: *chanState,
	})
	if *jsonOut {
		err = export.AuditJSON(os.Stdout, rep)
	} else {
		err = export.AuditText(os.Stdout, rep)
	}
	if err != nil {
		fatalf("writing report: %v", err)
	}
	if !*jsonOut {
		if traces := epochtrace.Build(events); len(traces) > 0 {
			fmt.Println()
			printCritical(os.Stdout, epochtrace.NewRollup(traces))
		}
	}
	_, inconsistent, _ := rep.Counts()
	if inconsistent > 0 || rep.Disagreements > 0 {
		os.Exit(1)
	}
}

// doctorURL consumes a running deployment's query plane: it fetches
// /snapshots, /invariants, and /trace/critical from the observability
// address and prints a health summary with critical-path attribution.
// Endpoints answering 503 (not attached on this deployment) are
// skipped rather than fatal, so doctor works against any MuxConfig
// subset. Exits 1 when any retained epoch is inconsistent or any
// invariant has recorded violations.
func doctorURL(base string, jsonOut bool) {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	// fetch returns nil when the endpoint exists but is not attached
	// (503); any other non-200 is fatal.
	fetch := func(path string) []byte {
		resp, err := client.Get(base + path)
		if err != nil {
			fatalf("fetching %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fatalf("reading %s: %v", path, err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			return nil
		}
		if resp.StatusCode != http.StatusOK {
			fatalf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
		}
		return body
	}
	snapsRaw := fetch("/snapshots")
	invsRaw := fetch("/invariants")
	critRaw := fetch("/trace/critical")

	if jsonOut {
		jsonOrNull := func(b []byte) string {
			if b == nil {
				return "null"
			}
			return strings.TrimSpace(string(b))
		}
		fmt.Printf("{\"snapshots\":%s,\"invariants\":%s,\"critical\":%s}\n",
			jsonOrNull(snapsRaw), jsonOrNull(invsRaw), jsonOrNull(critRaw))
	}

	var snaps struct {
		Retained int `json:"retained"`
		Epochs   []struct {
			Epoch      uint64 `json:"epoch"`
			SyncNS     int64  `json:"sync_ns"`
			Consistent bool   `json:"consistent"`
			Deltas     int    `json:"deltas"`
			Base       bool   `json:"base"`
		} `json:"epochs"`
	}
	if snapsRaw != nil {
		if err := json.Unmarshal(snapsRaw, &snaps); err != nil {
			fatalf("parsing /snapshots: %v", err)
		}
	}
	var invs struct {
		Invariants []struct {
			Name       string `json:"name"`
			Evals      uint64 `json:"evals"`
			Violations uint64 `json:"violations"`
			OK         bool   `json:"ok"`
			Detail     string `json:"detail"`
		} `json:"invariants"`
		History []struct {
			Invariant string `json:"invariant"`
			Epoch     uint64 `json:"epoch"`
			Detail    string `json:"detail"`
		} `json:"history"`
	}
	if invsRaw != nil {
		if err := json.Unmarshal(invsRaw, &invs); err != nil {
			fatalf("parsing /invariants: %v", err)
		}
	}
	var crit *epochtrace.Rollup
	if critRaw != nil {
		crit = &epochtrace.Rollup{}
		if err := json.Unmarshal(critRaw, crit); err != nil {
			fatalf("parsing /trace/critical: %v", err)
		}
	}

	inconsistent, bases, deltas := 0, 0, 0
	for _, e := range snaps.Epochs {
		if !e.Consistent {
			inconsistent++
		}
		if e.Base {
			bases++
		}
		deltas += e.Deltas
	}
	unhealthy := inconsistent > 0
	if !jsonOut {
		if snapsRaw == nil {
			fmt.Println("snapshot history: not attached")
		} else {
			fmt.Printf("snapshot history: %d epochs retained (%d bases, %d deltas), %d inconsistent\n",
				snaps.Retained, bases, deltas, inconsistent)
			if n := len(snaps.Epochs); n > 0 {
				fmt.Printf("  epochs %d..%d, latest sync %.1fus\n",
					snaps.Epochs[0].Epoch, snaps.Epochs[n-1].Epoch,
					float64(snaps.Epochs[n-1].SyncNS)/1000)
			}
		}
		if invsRaw == nil {
			fmt.Println("invariants: not attached")
		} else {
			fmt.Printf("invariants: %d registered\n", len(invs.Invariants))
		}
	}
	for _, inv := range invs.Invariants {
		if inv.Violations > 0 {
			unhealthy = true
		}
		if !jsonOut {
			verdict := "OK"
			if !inv.OK {
				verdict = "VIOLATED: " + inv.Detail
			}
			fmt.Printf("  %-32s %6d evals %6d violations  %s\n",
				inv.Name, inv.Evals, inv.Violations, verdict)
		}
	}
	if !jsonOut {
		for _, h := range invs.History {
			fmt.Printf("  violation: %s at epoch %d: %s\n", h.Invariant, h.Epoch, h.Detail)
		}
		if crit == nil {
			fmt.Println("critical path: not attached (run the campaign with journaling on)")
		} else {
			printCritical(os.Stdout, crit)
		}
	}
	if unhealthy {
		os.Exit(1)
	}
}

// readJournal parses a dump in either on-disk format. Auto-detection
// prefers the file extension and falls back to sniffing the first
// byte: a JSONL dump always starts with '{'.
func readJournal(in *os.File, path, format string) ([]journal.Event, error) {
	switch format {
	case "jsonl":
		return export.ReadJournalJSONL(in)
	case "csv":
		return export.ReadJournalCSV(in)
	case "auto":
		if strings.HasSuffix(path, ".csv") {
			return export.ReadJournalCSV(in)
		}
		if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
			return export.ReadJournalJSONL(in)
		}
		br := bufio.NewReader(in)
		first, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("empty journal: %w", err)
		}
		if first[0] == '{' {
			return journal.ReadJSONL(br)
		}
		return journal.ReadCSV(br)
	default:
		return nil, fmt.Errorf("unknown format %q (want auto, jsonl, csv)", format)
	}
}

// buildWorkload wires a traffic generator to the facade's inner
// emulation via the shared host ID space.
func buildWorkload(name, tracePath string, net *speedlight.Network) workload.App {
	inner, hosts := innerOf(net)
	if inner == nil {
		return nil
	}
	switch name {
	case "none":
		return nil
	case "uniform":
		return &workload.Uniform{Net: inner, Hosts: hosts}
	case "hadoop":
		return &workload.Terasort{Net: inner, Mappers: hosts, Reducers: hosts}
	case "graphx":
		return &workload.PageRank{Net: inner, Workers: hosts[1:]}
	case "memcache":
		return &workload.Memcache{Net: inner, Clients: hosts[:1], Servers: hosts[1:]}
	case "trace":
		if tracePath == "" {
			fatalf("-workload trace requires -trace <file>")
		}
		f, err := os.Open(tracePath)
		if err != nil {
			fatalf("opening trace: %v", err)
		}
		events, err := workload.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			fatalf("parsing trace: %v", err)
		}
		return &workload.Replay{Net: inner, Events: events, Loop: 2 * sim.Millisecond}
	default:
		fatalf("unknown workload %q", name)
		return nil
	}
}

// innerOf exposes the facade's emulation for workload attachment.
func innerOf(net *speedlight.Network) (*emunet.Network, []topology.HostID) {
	inner := net.Inner()
	var hosts []topology.HostID
	for _, h := range inner.Topo().Hosts {
		hosts = append(hosts, h.ID)
	}
	return inner, hosts
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// scheduleChurn installs the seeded churn scenario named by mode on the
// reconciliation controller. Leaf switches occupy node IDs 0..leaves-1
// and spines leaves..leaves+spines-1, the order the topology builder
// assigns them.
func scheduleChurn(ctrl *reconcile.Controller, mode string, leaves, spines int, seed int64, interval sim.Duration, snapshots int) {
	leafIDs := make([]topology.NodeID, leaves)
	for i := range leafIDs {
		leafIDs[i] = topology.NodeID(i)
	}
	spineIDs := make([]topology.NodeID, spines)
	for i := range spineIDs {
		spineIDs[i] = topology.NodeID(leaves + i)
	}
	// Start past the warm-up so the first snapshot sees a full fabric,
	// and pace the scenario in snapshot intervals so it spans several
	// epochs regardless of the campaign length.
	start := 2 * interval
	var sc *reconcile.Scenario
	switch mode {
	case "rolling-upgrade":
		sc = reconcile.RollingUpgrade(spineIDs, start, interval, 2*interval)
	case "link-flap-storm":
		r := rand.New(rand.NewSource(seed))
		flaps := 2*spines + 2
		sc = reconcile.LinkFlapStorm(ctrl.Links(), r, start, flaps, interval/2, interval/2)
	case "partition-heal":
		var cut []reconcile.Link
		for _, l := range ctrl.Links() {
			if l.A.Node == leafIDs[0] || l.B.Node == leafIDs[0] {
				cut = append(cut, l)
			}
		}
		sc = reconcile.PartitionAndHeal(cut, start, sim.Duration(snapshots/2)*interval)
	case "provisioning-ramp":
		ramp := []topology.NodeID{leafIDs[len(leafIDs)-1], spineIDs[len(spineIDs)-1]}
		sc = reconcile.ProvisioningRamp(ramp, start, 2*interval)
	default:
		fatalf("unknown churn scenario %q (want rolling-upgrade, link-flap-storm, partition-heal, provisioning-ramp)", mode)
	}
	sc.Schedule(ctrl)
}
