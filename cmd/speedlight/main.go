// Command speedlight runs a synchronized-network-snapshot campaign on
// an emulated leaf-spine fabric and prints each assembled global
// snapshot: its synchronization, consistency, and per-unit values.
//
// Usage:
//
//	speedlight -leaves 2 -spines 2 -hosts 3 -snapshots 10 -metric packets
//	speedlight -metric ewma -balancer flowlet -workload hadoop
//	speedlight -channel-state -workload memcache -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"speedlight/internal/emunet"
	"speedlight/internal/export"
	"speedlight/internal/sim"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
	"speedlight/internal/workload"

	"speedlight"
)

func main() {
	var (
		leaves    = flag.Int("leaves", 2, "leaf switches")
		spines    = flag.Int("spines", 2, "spine switches")
		hosts     = flag.Int("hosts", 3, "hosts per leaf")
		metric    = flag.String("metric", "packets", "snapshot target: packets, bytes, ewma, queue")
		balancer  = flag.String("balancer", "ecmp", "load balancer: ecmp, flowlet")
		chanState = flag.Bool("channel-state", false, "record in-flight packets (channel state)")
		snapshots = flag.Int("snapshots", 10, "snapshots to take")
		interval  = flag.Duration("interval", 2*time.Millisecond, "virtual time between snapshots")
		wl        = flag.String("workload", "uniform", "traffic: uniform, hadoop, graphx, memcache, trace, none")
		tracePath = flag.String("trace", "", "trace CSV for -workload trace (time_us,src,dst,src_port,dst_port,size,cos)")
		seed      = flag.Int64("seed", 1, "randomness seed")
		verbose   = flag.Bool("verbose", false, "print every unit value")
		csvPath   = flag.String("csv", "", "write all snapshot values to this CSV file")

		metricsAddr = flag.String("metrics-addr", "",
			"serve observability endpoints (/metrics, /debug/vars, /debug/pprof, /trace) on this address while the campaign runs")
		traceOut = flag.String("trace-out", "", "write the campaign's Chrome trace_event JSON to this file (load in Perfetto)")
		summary  = flag.Bool("summary", false, "print an end-of-run telemetry summary table")
	)
	flag.Parse()

	cfg := speedlight.Config{
		Fabric:       speedlight.Fabric{Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts},
		ChannelState: *chanState,
		Seed:         *seed,
	}
	// Any observability flag turns telemetry on; without them the run
	// pays nothing.
	if *metricsAddr != "" || *traceOut != "" || *summary {
		cfg.Registry = telemetry.NewRegistry()
		cfg.Tracer = telemetry.NewTracer(0)
	}
	switch *metric {
	case "packets":
		cfg.Metric = speedlight.PacketCount
	case "bytes":
		cfg.Metric = speedlight.ByteCount
	case "ewma":
		cfg.Metric = speedlight.EWMAInterarrival
	case "queue":
		cfg.Metric = speedlight.QueueDepth
	default:
		fatalf("unknown metric %q", *metric)
	}
	switch *balancer {
	case "ecmp":
		cfg.Balancer = speedlight.ECMP
	case "flowlet":
		cfg.Balancer = speedlight.Flowlet
	default:
		fatalf("unknown balancer %q", *balancer)
	}

	net, err := speedlight.New(cfg)
	if err != nil {
		fatalf("building network: %v", err)
	}

	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, cfg.Registry, cfg.Tracer)
		if err != nil {
			fatalf("metrics server: %v", err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics (Prometheus), /debug/vars (expvar), /debug/pprof, /trace (Chrome)\n",
			srv.Addr())
	}

	if app := buildWorkload(*wl, *tracePath, net); app != nil {
		app.Start()
		defer app.Stop()
	}
	net.Run(2 * time.Millisecond) // warm up

	fmt.Printf("speedlight: %d leaves, %d spines, %d hosts/leaf, metric=%s, balancer=%s, channel-state=%v\n",
		*leaves, *spines, *hosts, *metric, *balancer, *chanState)

	for i := 0; i < *snapshots; i++ {
		net.Run(*interval)
		snap, err := net.Snapshot()
		if err != nil {
			fatalf("snapshot %d: %v", i+1, err)
		}
		var total uint64
		for _, v := range snap.Values {
			total += v.Value
		}
		fmt.Printf("snapshot %3d: sync=%8.1fus consistent=%-5v units=%d total=%d\n",
			snap.ID, float64(snap.Sync.Nanoseconds())/1000, snap.Consistent, len(snap.Values), total)
		if *verbose {
			for _, v := range snap.Values {
				fmt.Printf("    sw%d port%d %-7s = %d (consistent=%v)\n",
					v.Switch, v.Port, v.Direction, v.Value, v.Consistent)
			}
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("creating %s: %v", *csvPath, err)
		}
		if err := export.SnapshotsCSV(f, net.Inner().Snapshots()); err != nil {
			fatalf("writing csv: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing csv: %v", err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("creating %s: %v", *traceOut, err)
		}
		if err := cfg.Tracer.WriteChromeTrace(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}

	if cfg.Registry != nil {
		fmt.Println("\ntelemetry summary:")
		if err := cfg.Registry.WriteSummary(os.Stdout); err != nil {
			fatalf("writing summary: %v", err)
		}
	}
}

// buildWorkload wires a traffic generator to the facade's inner
// emulation via the shared host ID space.
func buildWorkload(name, tracePath string, net *speedlight.Network) workload.App {
	inner, hosts := innerOf(net)
	if inner == nil {
		return nil
	}
	switch name {
	case "none":
		return nil
	case "uniform":
		return &workload.Uniform{Net: inner, Hosts: hosts}
	case "hadoop":
		return &workload.Terasort{Net: inner, Mappers: hosts, Reducers: hosts}
	case "graphx":
		return &workload.PageRank{Net: inner, Workers: hosts[1:]}
	case "memcache":
		return &workload.Memcache{Net: inner, Clients: hosts[:1], Servers: hosts[1:]}
	case "trace":
		if tracePath == "" {
			fatalf("-workload trace requires -trace <file>")
		}
		f, err := os.Open(tracePath)
		if err != nil {
			fatalf("opening trace: %v", err)
		}
		events, err := workload.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			fatalf("parsing trace: %v", err)
		}
		return &workload.Replay{Net: inner, Events: events, Loop: 2 * sim.Millisecond}
	default:
		fatalf("unknown workload %q", name)
		return nil
	}
}

// innerOf exposes the facade's emulation for workload attachment.
func innerOf(net *speedlight.Network) (*emunet.Network, []topology.HostID) {
	inner := net.Inner()
	var hosts []topology.HostID
	for _, h := range inner.Topo().Hosts {
		hosts = append(hosts, h.ID)
	}
	return inner, hosts
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
