// Command speedlightvet runs Speedlight's protocol-invariant analyzers.
//
// It speaks the go vet tool protocol, so the usual way to run it is:
//
//	go build -o /tmp/speedlightvet ./cmd/speedlightvet
//	go vet -vettool=/tmp/speedlightvet ./...
//
// It also accepts package patterns directly for standalone use:
//
//	speedlightvet ./...
package main

import (
	"speedlight/internal/lint"
	"speedlight/internal/lint/driver"
)

func main() {
	driver.Main(lint.Analyzers()...)
}
