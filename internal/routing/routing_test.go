package routing

import (
	"math/rand"
	"testing"

	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func leafSpine(t *testing.T) *topology.LeafSpine {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestComputeFIBsLeafSpine(t *testing.T) {
	ls := leafSpine(t)
	fibs, err := ComputeFIBs(ls.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if len(fibs) != 4 {
		t.Fatalf("fibs = %d", len(fibs))
	}
	leaf0 := fibs[ls.Leaves[0]]
	// Local host: single directly attached port.
	localHost := ls.HostsOn(ls.Leaves[0])[0]
	if got := leaf0.Ports(localHost.ID); len(got) != 1 || got[0] != localHost.Port {
		t.Errorf("local next hop = %v", got)
	}
	// Remote host: both uplinks form the ECMP group.
	remoteHost := ls.HostsOn(ls.Leaves[1])[0]
	if got := leaf0.Ports(remoteHost.ID); len(got) != 2 {
		t.Errorf("remote ECMP group = %v, want 2 uplinks", got)
	}
	// Spine: exactly one downlink to each host's leaf.
	spine0 := fibs[ls.Spines[0]]
	if got := spine0.Ports(remoteHost.ID); len(got) != 1 || got[0] != 1 {
		t.Errorf("spine next hop = %v, want [1]", got)
	}
	if leaf0.Ports(99) != nil {
		t.Error("unknown host should have no next hops")
	}
	if leaf0.Version == 0 {
		t.Error("FIB version must start nonzero")
	}
}

func TestComputeFIBsUnreachable(t *testing.T) {
	b := topology.NewBuilder()
	s0 := b.AddSwitch(2)
	s1 := b.AddSwitch(2)
	b.AttachHost(s0, 0, 0)
	b.AttachHost(s1, 0, 0)
	// No link between the switches.
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeFIBs(topo); err == nil {
		t.Error("unreachable host not reported")
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	ports := []int{3, 4}
	var e ECMP
	p := &packet.Packet{SrcHost: 1, DstHost: 2, SrcPort: 1234, DstPort: 80, Proto: 6}
	first := e.Pick(p, ports, 0)
	for i := 0; i < 100; i++ {
		if e.Pick(p, ports, sim.Time(i)) != first {
			t.Fatal("ECMP changed port for same flow")
		}
	}
	if e.Name() != "ecmp" {
		t.Error("name")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	ports := []int{0, 1, 2, 3}
	var e ECMP
	counts := make(map[int]int)
	for i := 0; i < 4000; i++ {
		p := &packet.Packet{SrcHost: uint32(i), DstHost: 2, SrcPort: uint16(i), DstPort: 80, Proto: 6}
		counts[e.Pick(p, ports, 0)]++
	}
	for port, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("port %d got %d of 4000 flows", port, c)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d ports used", len(counts))
	}
}

func TestFlowletStickyWithinGap(t *testing.T) {
	f := NewFlowlet(100*sim.Microsecond, rand.New(rand.NewSource(1)))
	ports := []int{0, 1, 2, 3}
	p := &packet.Packet{SrcHost: 1, DstHost: 2, SrcPort: 7, DstPort: 80, Proto: 6}
	first := f.Pick(p, ports, 0)
	// Closely spaced packets stay on the same port.
	for i := 1; i <= 50; i++ {
		now := sim.Time(i) * sim.Time(sim.Microsecond)
		if got := f.Pick(p, ports, now); got != first {
			t.Fatalf("flowlet moved mid-burst at packet %d", i)
		}
	}
	if f.Name() != "flowlet" {
		t.Error("name")
	}
}

func TestFlowletRepicksAfterGap(t *testing.T) {
	f := NewFlowlet(10*sim.Microsecond, rand.New(rand.NewSource(2)))
	ports := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p := &packet.Packet{SrcHost: 1, DstHost: 2, SrcPort: 7, DstPort: 80, Proto: 6}
	seen := map[int]bool{}
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		seen[f.Pick(p, ports, now)] = true
		now = now.Add(sim.Duration(20 * sim.Microsecond)) // always exceeds the gap
	}
	if len(seen) < 3 {
		t.Errorf("flowlet re-picking visited only %d ports in 200 gaps", len(seen))
	}
}

func TestFlowletHandlesGroupShrink(t *testing.T) {
	f := NewFlowlet(100*sim.Microsecond, rand.New(rand.NewSource(3)))
	p := &packet.Packet{SrcHost: 1, DstHost: 2, SrcPort: 7, DstPort: 80, Proto: 6}
	got := f.Pick(p, []int{5, 6}, 0)
	if got != 5 && got != 6 {
		t.Fatalf("pick outside group: %d", got)
	}
	// The group changes mid-burst; the stored port may be invalid.
	got = f.Pick(p, []int{9}, 1)
	if got != 9 {
		t.Errorf("invalid stored port not re-picked: %d", got)
	}
}

func TestFlowletDistinctFlowsIndependent(t *testing.T) {
	f := NewFlowlet(100*sim.Microsecond, rand.New(rand.NewSource(4)))
	ports := []int{0, 1, 2, 3, 4, 5, 6, 7}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		p := &packet.Packet{SrcHost: uint32(i), DstHost: 2, SrcPort: uint16(i), DstPort: 80, Proto: 6}
		seen[f.Pick(p, ports, 0)] = true
	}
	if len(seen) < 4 {
		t.Errorf("flows concentrated on %d ports", len(seen))
	}
}

func TestComputeFIBsFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{
		K:                 4,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fibs, err := ComputeFIBs(ft.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if len(fibs) != 20 {
		t.Fatalf("fibs = %d", len(fibs))
	}
	// Hosts 0,1 hang off edge[0][0]; host 15 is in the last pod.
	edge0 := fibs[ft.Edge[0][0]]
	// Same-edge host: direct port.
	if got := edge0.Ports(1); len(got) != 1 {
		t.Errorf("same-edge next hops = %v", got)
	}
	// Cross-pod host: both agg uplinks are equal cost.
	if got := edge0.Ports(15); len(got) != 2 {
		t.Errorf("cross-pod ECMP group = %v, want 2 uplinks", got)
	}
	// Same-pod, different-edge host (host 2 on edge[0][1]): still both
	// uplinks (paths via either agg).
	if got := edge0.Ports(2); len(got) != 2 {
		t.Errorf("same-pod ECMP group = %v", got)
	}
	// An agg switch reaching a remote pod uses both its core uplinks.
	agg := fibs[ft.Agg[0][0]]
	if got := agg.Ports(15); len(got) != 2 {
		t.Errorf("agg cross-pod group = %v", got)
	}
	// A core switch has exactly one port per destination pod.
	core := fibs[ft.Core[0]]
	if got := core.Ports(15); len(got) != 1 {
		t.Errorf("core next hops = %v", got)
	}
}

func TestUtilizedPairsFatTreeValleyFree(t *testing.T) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	fibs, err := ComputeFIBs(ft.Topology)
	if err != nil {
		t.Fatal(err)
	}
	used := UtilizedPairs(ft.Topology, fibs)
	// Valley-free: at an edge switch, traffic never goes uplink to
	// uplink (ports 2,3 are uplinks for k=4).
	for pod := range ft.Edge {
		for _, e := range ft.Edge[pod] {
			for _, in := range []int{2, 3} {
				for _, out := range []int{2, 3} {
					if used[e][[2]int{in, out}] {
						t.Errorf("edge %d: uplink-to-uplink pair (%d,%d) marked utilized", e, in, out)
					}
				}
			}
		}
	}
	// But host-to-uplink pairs are used.
	e := ft.Edge[0][0]
	if !used[e][[2]int{0, 2}] && !used[e][[2]int{0, 3}] {
		t.Error("no host-to-uplink pair utilized at edge 0")
	}
}

func TestComputeFIBsFilteredSpineDown(t *testing.T) {
	ls := leafSpine(t)
	full, err := ComputeFIBs(ls.Topology)
	if err != nil {
		t.Fatal(err)
	}
	downSpine := ls.Spines[0]
	fibs := ComputeFIBsFiltered(ls.Topology, Filter{
		SwitchDown: func(n topology.NodeID) bool { return n == downSpine },
	})

	// The down spine gets an empty table.
	if got := len(fibs[downSpine].NextHops); got != 0 {
		t.Fatalf("down spine has %d next-hop entries, want 0", got)
	}
	// Leaves lose the ECMP member through the down spine but stay
	// connected via the surviving one.
	leaf0 := fibs[ls.Leaves[0]]
	remote := ls.HostsOn(ls.Leaves[1])[0]
	fullGroup := full[ls.Leaves[0]].Ports(remote.ID)
	group := leaf0.Ports(remote.ID)
	if len(group) != len(fullGroup)-1 {
		t.Fatalf("filtered ECMP group %v, want one fewer than %v", group, fullGroup)
	}
	// Local delivery is untouched.
	local := ls.HostsOn(ls.Leaves[0])[0]
	if got := leaf0.Ports(local.ID); len(got) != 1 || got[0] != local.Port {
		t.Errorf("local next hop = %v", got)
	}
}

func TestComputeFIBsFilteredPartition(t *testing.T) {
	// A chain s0 - s1 with one host each; draining the only link
	// partitions the fabric. The filtered computation must not error:
	// the cross-partition entries simply vanish.
	b := topology.NewBuilder()
	s0 := b.AddSwitch(2)
	s1 := b.AddSwitch(2)
	b.Connect(s0, 0, s1, 0, sim.Microsecond)
	h0 := b.AttachHost(s0, 1, sim.Microsecond)
	h1 := b.AttachHost(s1, 1, sim.Microsecond)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	fibs := ComputeFIBsFiltered(topo, Filter{
		LinkDown: func(n topology.NodeID, p int) bool {
			return (n == s0 && p == 0) || (n == s1 && p == 0)
		},
	})
	if got := fibs[s0].Ports(h1); got != nil {
		t.Errorf("s0 still routes to h1 across a drained link: %v", got)
	}
	if got := fibs[s1].Ports(h0); got != nil {
		t.Errorf("s1 still routes to h0 across a drained link: %v", got)
	}
	// Each side keeps its local host.
	if got := fibs[s0].Ports(h0); len(got) != 1 {
		t.Errorf("s0 lost its local host: %v", got)
	}
	if got := fibs[s1].Ports(h1); len(got) != 1 {
		t.Errorf("s1 lost its local host: %v", got)
	}
}
