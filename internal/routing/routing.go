// Package routing computes forwarding state for emulated topologies and
// implements the two load-balancing algorithms the paper deploys
// alongside the snapshot logic (Section 8): flow-based ECMP and flowlet
// switching.
//
// It also supports the Section 10 discussion of forwarding-state
// snapshots: every FIB carries a version number that the data plane can
// record into snapshotted state.
package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// FIB is one switch's forwarding table: for every destination host, the
// set of ports on a shortest path, in ascending order. Version
// identifies the table's revision for forwarding-state snapshots.
type FIB struct {
	Node    topology.NodeID
	Version uint64
	// NextHops[host] lists candidate egress ports (an ECMP group).
	NextHops map[topology.HostID][]int
}

// Ports returns the ECMP group for a destination, or nil if unknown.
func (f *FIB) Ports(dst topology.HostID) []int { return f.NextHops[dst] }

// Filter restricts FIB computation to the live part of a churning
// fabric. Nil predicates mean "everything is up". LinkDown is asked
// about one endpoint of each switch-to-switch link; implementations
// must answer identically for both endpoints.
type Filter struct {
	SwitchDown func(topology.NodeID) bool
	LinkDown   func(node topology.NodeID, port int) bool
}

func (f Filter) switchDown(n topology.NodeID) bool {
	return f.SwitchDown != nil && f.SwitchDown(n)
}

func (f Filter) linkDown(n topology.NodeID, p int) bool {
	return f.LinkDown != nil && f.LinkDown(n, p)
}

// ComputeFIBs builds shortest-path ECMP forwarding tables for every
// switch via breadth-first search over the switch graph. Every host
// must be reachable from every switch; an unreachable pair is an
// error (static topologies are built connected).
func ComputeFIBs(t *topology.Topology) (map[topology.NodeID]*FIB, error) {
	fibs := computeFIBs(t, Filter{})
	for _, sw := range t.Switches {
		for _, h := range t.Hosts {
			if len(fibs[sw.ID].NextHops[h.ID]) == 0 {
				return nil, fmt.Errorf("routing: host %d unreachable from switch %d", h.ID, sw.ID)
			}
		}
	}
	return fibs, nil
}

// ComputeFIBsFiltered builds forwarding tables around a churn filter:
// down switches and drained links are excluded from path search.
// Unreachable (host, switch) pairs are not an error — the entry is
// simply absent and the data plane drops toward it, exactly what a
// partitioned fabric does. Down switches get an empty table.
func ComputeFIBsFiltered(t *topology.Topology, f Filter) map[topology.NodeID]*FIB {
	return computeFIBs(t, f)
}

func computeFIBs(t *topology.Topology, f Filter) map[topology.NodeID]*FIB {
	n := len(t.Switches)
	// dist[a][b]: hop distance between switches over live elements.
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			dist[i][j] = -1
		}
		if f.switchDown(t.Switches[i].ID) {
			continue
		}
		// BFS from switch i.
		q := []int{i}
		dist[i][i] = 0
		for len(q) > 0 {
			cur := q[0]
			q = q[1:]
			for p, peer := range t.Switches[cur].Ports {
				if peer.Kind != topology.PeerSwitch {
					continue
				}
				if f.switchDown(peer.Node) || f.linkDown(t.Switches[cur].ID, p) {
					continue
				}
				nb := int(peer.Node)
				if dist[i][nb] < 0 {
					dist[i][nb] = dist[i][cur] + 1
					q = append(q, nb)
				}
			}
		}
	}

	fibs := make(map[topology.NodeID]*FIB, n)
	for _, sw := range t.Switches {
		fib := &FIB{Node: sw.ID, Version: 1, NextHops: make(map[topology.HostID][]int)}
		fibs[sw.ID] = fib
		if f.switchDown(sw.ID) {
			continue
		}
		for _, h := range t.Hosts {
			if f.switchDown(h.Node) {
				continue // host's leaf is down: unreachable everywhere
			}
			if h.Node == sw.ID {
				// Directly attached.
				fib.NextHops[h.ID] = []int{h.Port}
				continue
			}
			// Candidate ports: live neighbors minimizing distance to
			// the host's switch.
			best := -1
			var ports []int
			for p, peer := range sw.Ports {
				if peer.Kind != topology.PeerSwitch {
					continue
				}
				if f.switchDown(peer.Node) || f.linkDown(sw.ID, p) {
					continue
				}
				d := dist[int(peer.Node)][int(h.Node)]
				if d < 0 {
					continue
				}
				switch {
				case best < 0 || d < best:
					best = d
					ports = []int{p}
				case d == best:
					ports = append(ports, p)
				}
			}
			if best < 0 {
				continue // unreachable under the filter: no entry
			}
			sort.Ints(ports)
			fib.NextHops[h.ID] = ports
		}
	}
	return fibs
}

// Balancer picks one egress port from an ECMP group for a packet.
// Implementations may keep per-flow state; they are driven from a single
// logical thread per switch.
type Balancer interface {
	// Pick selects the egress port for pkt among the candidate ports at
	// virtual time now.
	Pick(pkt *packet.Packet, ports []int, now sim.Time) int
	// Name identifies the algorithm in experiment output.
	Name() string
}

// ECMP is classic flow-based equal-cost multipath (RFC 2992): the
// packet's 5-tuple hash statically selects a member of the group, so a
// flow never changes paths but large flows can collide.
type ECMP struct{}

// Pick implements Balancer.
func (ECMP) Pick(pkt *packet.Packet, ports []int, _ sim.Time) int {
	return ports[pkt.FlowHash()%uint64(len(ports))]
}

// Name implements Balancer.
func (ECMP) Name() string { return "ecmp" }

// Flowlet implements flowlet switching (Kandula et al.): bursts of a
// flow separated by an idle gap longer than the flowlet timeout may be
// re-routed independently without reordering packets. It balances load
// at a finer granularity than ECMP, which Section 8.3 quantifies with
// snapshots.
type Flowlet struct {
	// Gap is the inter-burst idle time that opens a new flowlet.
	Gap sim.Duration
	// R drives the new-flowlet path choice.
	R *rand.Rand

	entries map[uint64]*flowletEntry
}

type flowletEntry struct {
	port     int
	lastSeen sim.Time
}

// NewFlowlet creates a flowlet balancer with the given gap and
// randomness source.
func NewFlowlet(gap sim.Duration, r *rand.Rand) *Flowlet {
	return &Flowlet{Gap: gap, R: r, entries: make(map[uint64]*flowletEntry)}
}

// Pick implements Balancer.
func (f *Flowlet) Pick(pkt *packet.Packet, ports []int, now sim.Time) int {
	key := pkt.FlowHash()
	e, ok := f.entries[key]
	if !ok {
		e = &flowletEntry{port: -1}
		f.entries[key] = e
	}
	stale := e.port < 0 || now.Sub(e.lastSeen) > f.Gap
	if stale {
		e.port = ports[f.R.Intn(len(ports))]
	} else {
		// The table stores the port number; validate it is still in
		// the group (FIB updates can shrink groups).
		valid := false
		for _, p := range ports {
			if p == e.port {
				valid = true
				break
			}
		}
		if !valid {
			e.port = ports[f.R.Intn(len(ports))]
		}
	}
	e.lastSeen = now
	return e.port
}

// Name implements Balancer.
func (f *Flowlet) Name() string { return "flowlet" }

// UtilizedPairs returns, for every switch, the set of (ingress port,
// egress port) pairs that some host-to-host path actually traverses
// under the given FIBs. Control planes use this to remove structurally
// idle internal channels from snapshot-completion consideration — the
// paper's Section 6 "removal of non-utilized upstream neighbors" (e.g.,
// uplink-to-uplink channels in valley-free leaf-spine routing never
// carry traffic).
func UtilizedPairs(t *topology.Topology, fibs map[topology.NodeID]*FIB) map[topology.NodeID]map[[2]int]bool {
	used := make(map[topology.NodeID]map[[2]int]bool, len(t.Switches))
	for _, sw := range t.Switches {
		used[sw.ID] = make(map[[2]int]bool)
	}
	type key struct {
		node topology.NodeID
		in   int
		dst  topology.HostID
	}
	seen := make(map[key]bool)
	var walk func(node topology.NodeID, in int, dst topology.HostID)
	walk = func(node topology.NodeID, in int, dst topology.HostID) {
		k := key{node, in, dst}
		if seen[k] {
			return
		}
		seen[k] = true
		fib := fibs[node]
		if fib == nil {
			return
		}
		for _, e := range fib.Ports(dst) {
			used[node][[2]int{in, e}] = true
			peer := t.Peer(node, e)
			if peer.Kind == topology.PeerSwitch {
				walk(peer.Node, peer.Port, dst)
			}
		}
	}
	for _, src := range t.Hosts {
		for _, dst := range t.Hosts {
			if src.ID == dst.ID {
				continue
			}
			walk(src.Node, src.Port, dst.ID)
		}
	}
	return used
}
