// Package control implements Speedlight's per-switch control plane
// (Section 6): it initiates snapshots at every local processing unit,
// consumes data-plane notifications to detect snapshot completion and
// inconsistency (Figure 7), reads snapshot values back from the data
// plane registers, and recovers from notification drops by polling.
//
// The control plane is the second tier of the bipartite design: the
// data plane guarantees consistency of what it records, while the
// control plane fills in everything the match-action hardware cannot do
// — tracking progress across epochs, recognizing the snapshots that
// skipped IDs left unusable, and shipping finished values to the
// snapshot observer.
//
// Like internal/core, this package is a pure state machine: the
// emulation harness decides when notifications arrive and when timers
// fire, passing virtual time in explicitly.
package control

import (
	"fmt"
	"sort"

	"speedlight/internal/core"
	"speedlight/internal/dataplane"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
)

// Result is one finished per-unit snapshot, as shipped to the snapshot
// observer.
type Result struct {
	Unit       dataplane.UnitID
	SnapshotID packet.SeqID
	// Value is the recorded state (meaningful only when Consistent).
	Value uint64
	// Consistent is false for snapshots invalidated by skipped IDs in
	// the channel-state variant (Figure 7) or lost to register reuse.
	Consistent bool
	// ReadAt is the virtual time the control plane finalized the value.
	ReadAt sim.Time
}

// Config describes one control plane.
type Config struct {
	// Switch is the local data plane. Required.
	Switch *dataplane.Switch
	// CompletionChannels returns, for a unit, the upstream channels that
	// gate snapshot completion in the channel-state variant. Nil (or a
	// nil function) selects every non-CPU channel. Operators use this to
	// remove upstream neighbors that structurally carry no traffic
	// (Section 6, liveness).
	CompletionChannels func(id dataplane.UnitID) []int
	// OnResult receives finished snapshots. Required.
	OnResult func(Result)
	// Telemetry receives the plane's metric updates. Nil disables
	// instrumentation; one Telemetry may be shared across planes.
	Telemetry *Telemetry
	// Journal receives the plane's protocol events (initiations, polls,
	// finalized results) for the flight recorder. Normally the same ring
	// the switch's dataplane writes to. Nil disables journaling.
	Journal *journal.Journal
}

// unitState is the controller's view of one processing unit (the
// ctrlSnapID / ctrlLastSeen / lastRead state of Figure 7).
type unitState struct {
	id         dataplane.UnitID
	snapID     packet.SeqID // ctrlSnapID, unwrapped
	lastSeen   []packet.SeqID
	lastRead   packet.SeqID
	gateChans  []int
	inconsists map[packet.SeqID]bool
}

// Plane is one switch's snapshot control plane.
type Plane struct {
	cfg          Config
	tel          *Telemetry
	jr           *journal.Journal
	channelState bool
	maxID        uint32
	wrap         bool

	units map[dataplane.UnitID]*unitState
	// initiated tracks the highest snapshot ID this plane has initiated,
	// so re-initiations know what to resend.
	initiated packet.SeqID
}

// New builds a control plane for a switch.
func New(cfg Config) (*Plane, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("control: nil switch")
	}
	if cfg.OnResult == nil {
		return nil, fmt.Errorf("control: nil OnResult")
	}
	swCfg := cfg.Switch.Config()
	p := &Plane{
		cfg:          cfg,
		tel:          cfg.Telemetry,
		jr:           cfg.Journal,
		channelState: swCfg.ChannelState,
		maxID:        swCfg.MaxID,
		wrap:         swCfg.WrapAround,
		units:        make(map[dataplane.UnitID]*unitState),
	}
	if p.tel == nil {
		p.tel = nopTelemetry
	}
	for _, id := range cfg.Switch.UnitIDs() {
		u := cfg.Switch.Unit(id)
		st := &unitState{
			id:         id,
			lastSeen:   make([]packet.SeqID, u.Config().NumChannels),
			inconsists: make(map[packet.SeqID]bool),
		}
		if cfg.CompletionChannels != nil {
			st.gateChans = cfg.CompletionChannels(id)
		}
		if st.gateChans == nil {
			for ch := 0; ch < u.Config().NumChannels; ch++ {
				if ch != u.Config().CPChannel {
					st.gateChans = append(st.gateChans, ch)
				}
			}
		}
		p.units[id] = st
	}
	return p, nil
}

// Node returns the switch this plane controls.
func (p *Plane) Node() int { return int(p.cfg.Switch.Node()) }

// wrapID converts an unwrapped ID to the wire form via the shared
// core.Wrap helper — the control plane and data plane must agree on the
// rollover rule bit-for-bit.
func (p *Plane) wrapID(id packet.SeqID) packet.WireID {
	return core.Wrap(id, p.maxID, p.wrap)
}

// unwrapID resolves a wire ID against an unwrapped reference via
// core.Unwrap (serial-number arithmetic: forward distances below half
// the ID space are ahead; the rest are at or behind). lastRead or the
// tracked ctrl state serves as the reference, exactly as the paper
// prescribes for rollback-aware comparison; the observer keeps live IDs
// within half the space.
func (p *Plane) unwrapID(wire packet.WireID, ref packet.SeqID) packet.SeqID {
	return core.Unwrap(wire, ref, p.maxID, p.wrap)
}

// Initiated returns the highest snapshot ID this plane has initiated.
func (p *Plane) Initiated() packet.SeqID { return p.initiated }

// Initiation pairs an initiation packet with the egress port whose
// per-class FIFO queue it must traverse.
type Initiation struct {
	Port int
	Pkt  *packet.Packet
}

// Initiate starts snapshot id at every local port: the CPU sends an
// initiation message to each ingress unit (Figure 6, path 3). It
// returns the initiation packets — one per (port, class of service)
// FIFO channel — which the caller must deliver to the corresponding
// egress unit through the same queues as data traffic. Duplicate or
// stale initiations are harmless: the data plane ignores them
// (Section 6).
func (p *Plane) Initiate(id packet.SeqID, now sim.Time) []Initiation {
	re := id <= p.initiated
	if !re {
		p.initiated = id
		p.tel.Initiations.Inc()
	} else {
		p.tel.ReInitiations.Inc()
	}
	if p.jr != nil {
		p.jr.Append(journal.Initiate(int64(now), p.Node(), id, re))
	}
	sw := p.cfg.Switch
	var out []Initiation
	for port := 0; port < sw.NumPorts(); port++ {
		for _, pkt := range sw.InitiateIngress(p.wrapID(id), port, now) {
			out = append(out, Initiation{Port: port, Pkt: pkt})
		}
	}
	return out
}

// HandleNotification processes one data-plane notification, following
// Figure 7. Duplicate notifications (no new information) are dropped
// here, as the paper requires.
func (p *Plane) HandleNotification(n dataplane.CPUNotification, now sim.Time) {
	st, ok := p.units[n.Unit]
	if !ok {
		return
	}
	p.tel.NotifsServiced.Inc()
	if p.jr != nil {
		p.jr.Append(journal.NotifService(int64(now), p.Node(), n.Unit.Port,
			journalDir(n.Unit.Dir), n.NewSIDU))
	}
	if p.channelState {
		p.onNotifyCS(st, n, now)
	} else {
		p.onNotifyNoCS(st, n, now)
	}
}

// onNotifyNoCS is Figure 7, lines 16-22. Without channel state a unit is
// done with a snapshot the moment it records it; skipped epochs carry
// the value of the next recorded one (the unit's state cannot have
// changed in between, or a packet would have carried the intermediate
// ID).
func (p *Plane) onNotifyNoCS(st *unitState, n dataplane.CPUNotification, now sim.Time) {
	current := p.unwrapID(n.NewSID, st.lastRead)
	if current <= st.lastRead {
		// Duplicate, or a stale value after heavy notification loss
		// pushed the unit more than half the ID space ahead of the
		// controller's view; Poll recovers the lost ground.
		return
	}
	u := p.cfg.Switch.Unit(st.id)

	// Walk downward from current to lastRead+1, inheriting values for
	// slots that were skipped (uninitialized) or lost to notification
	// drops.
	type finished struct {
		id    packet.SeqID
		value uint64
		ok    bool
	}
	var batch []finished
	validValue, validOK := u.RegSnapshot(current)
	batch = append(batch, finished{current, validValue, validOK})
	for i := current - 1; i > st.lastRead; i-- {
		if v, ok := u.RegSnapshot(i); ok {
			validValue, validOK = v, ok
			batch = append(batch, finished{i, v, true})
		} else {
			batch = append(batch, finished{i, validValue, validOK})
		}
	}
	st.lastRead = current
	st.snapID = current
	// Ship in ascending snapshot order.
	sort.Slice(batch, func(a, b int) bool { return batch[a].id < batch[b].id })
	for _, f := range batch {
		p.emit(Result{
			Unit:       st.id,
			SnapshotID: f.id,
			Value:      f.value,
			Consistent: f.ok,
			ReadAt:     now,
		})
	}
}

// onNotifyCS is Figure 7, lines 1-15, with the skipped-ID marking made
// precise: when a unit's snapshot ID advances, every incomplete older
// snapshot (above the minimum last-seen) can still receive in-flight
// packets that the hardware will fold into the *current* slot only, so
// those older snapshots are inconsistent. The newly recorded snapshot
// itself remains consistent — in-flight packets for it are absorbed
// correctly.
func (p *Plane) onNotifyCS(st *unitState, n dataplane.CPUNotification, now sim.Time) {
	current := p.unwrapID(n.NewSID, st.snapID)
	if current > st.snapID {
		done := p.minGate(st)
		for i := done + 1; i < current; i++ {
			if i > st.lastRead {
				st.inconsists[i] = true
			}
		}
		st.snapID = current
	}

	newLS := p.unwrapID(n.NewLastSeen, st.lastSeen[n.Channel])
	if newLS > st.lastSeen[n.Channel] {
		st.lastSeen[n.Channel] = newLS
		p.readThrough(st, p.minGate(st), now)
	}
}

// minGate returns the smallest last-seen ID across the unit's
// completion-gating channels.
func (p *Plane) minGate(st *unitState) packet.SeqID {
	if len(st.gateChans) == 0 {
		return st.snapID
	}
	min := packet.SeqID(1<<63 - 1)
	for _, ch := range st.gateChans {
		if st.lastSeen[ch] < min {
			min = st.lastSeen[ch]
		}
	}
	return min
}

// readThrough finalizes every snapshot from lastRead+1 through toRead:
// consistent ones are read from the data plane, inconsistent ones are
// reported as such.
func (p *Plane) readThrough(st *unitState, toRead packet.SeqID, now sim.Time) {
	if toRead <= st.lastRead {
		return
	}
	u := p.cfg.Switch.Unit(st.id)
	for i := st.lastRead + 1; i <= toRead; i++ {
		res := Result{Unit: st.id, SnapshotID: i, ReadAt: now}
		if !st.inconsists[i] {
			if v, ok := u.RegSnapshot(i); ok {
				res.Value = v
				res.Consistent = true
			}
		}
		delete(st.inconsists, i)
		p.emit(res)
	}
	st.lastRead = toRead
}

// emit counts and ships one finalized per-unit result.
func (p *Plane) emit(res Result) {
	p.tel.Results.Inc()
	if !res.Consistent {
		p.tel.ResultsInconsistent.Inc()
	}
	if p.jr != nil {
		p.jr.Append(journal.Result(int64(res.ReadAt), int(res.Unit.Node), res.Unit.Port,
			journalDir(res.Unit.Dir), res.SnapshotID, res.Value, res.Consistent))
	}
	p.cfg.OnResult(res)
}

// journalDir converts a dataplane direction to its journal form.
func journalDir(d dataplane.Direction) journal.Dir {
	if d == dataplane.Ingress {
		return journal.DirIngress
	}
	return journal.DirEgress
}

// Poll proactively reads every unit's registers and processes the state
// as if freshly notified, recovering from dropped notifications
// (Section 6). It is safe to call at any time.
func (p *Plane) Poll(now sim.Time) {
	p.tel.Polls.Inc()
	if p.jr != nil {
		p.jr.Append(journal.Poll(int64(now), p.Node()))
	}
	for _, id := range p.cfg.Switch.UnitIDs() {
		st := p.units[id]
		u := p.cfg.Switch.Unit(id)
		if p.channelState {
			// Synthesize one notification per channel so the last-seen
			// view catches up alongside the snapshot ID.
			for ch := 0; ch < u.Config().NumChannels; ch++ {
				p.onNotifyCS(st, dataplane.CPUNotification{
					Unit: id,
					Notification: core.Notification{
						Channel:     ch,
						NewSID:      u.RegCurrentSID(),
						NewLastSeen: u.RegLastSeen(ch),
					},
					Exported: now,
				}, now)
			}
		} else {
			p.onNotifyNoCS(st, dataplane.CPUNotification{
				Unit: id,
				Notification: core.Notification{
					Channel: 0,
					NewSID:  u.RegCurrentSID(),
				},
				Exported: now,
			}, now)
		}
	}
}

// LastRead returns the unit's latest finalized snapshot ID.
func (p *Plane) LastRead(id dataplane.UnitID) packet.SeqID {
	if st, ok := p.units[id]; ok {
		return st.lastRead
	}
	return 0
}

// Complete reports whether snapshot id has been finalized (read or
// marked inconsistent) at every unit of this switch.
func (p *Plane) Complete(id packet.SeqID) bool {
	for _, st := range p.units {
		if st.lastRead < id {
			return false
		}
	}
	return true
}
