package control

import "speedlight/internal/telemetry"

// Telemetry is the control plane's metric set. Nil fields (or a nil
// Config.Telemetry) are no-ops; one Telemetry may be shared by every
// control plane of a network.
type Telemetry struct {
	// NotifsServiced counts data-plane notifications processed by
	// HandleNotification — the per-notification work whose service time
	// bounds snapshot rate (Figure 10).
	NotifsServiced *telemetry.Counter
	// Initiations counts first-time snapshot initiations;
	// ReInitiations counts retransmissions of an already-initiated ID
	// (the observer's Section 6 recovery path).
	Initiations   *telemetry.Counter
	ReInitiations *telemetry.Counter
	// Polls counts register polls (dropped-notification recovery).
	Polls *telemetry.Counter
	// Results counts finished per-unit snapshots shipped to the
	// observer; ResultsInconsistent counts the subset invalidated by
	// skipped IDs or register reuse.
	Results             *telemetry.Counter
	ResultsInconsistent *telemetry.Counter
}

// NewTelemetry registers the control-plane metric families on reg and
// returns the resolved handles. A nil registry yields no-op metrics.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	return &Telemetry{
		NotifsServiced:      reg.Counter("speedlight_cp_notifs_serviced_total", "data-plane notifications serviced"),
		Initiations:         reg.Counter("speedlight_cp_initiations_total", "first-time snapshot initiations"),
		ReInitiations:       reg.Counter("speedlight_cp_reinitiations_total", "snapshot re-initiations (recovery)"),
		Polls:               reg.Counter("speedlight_cp_polls_total", "register polls (drop recovery)"),
		Results:             reg.Counter("speedlight_cp_results_total", "per-unit snapshot results finalized"),
		ResultsInconsistent: reg.Counter("speedlight_cp_results_inconsistent_total", "per-unit results finalized inconsistent"),
	}
}

var nopTelemetry = &Telemetry{}
