package control

import (
	"testing"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// rig is a one-switch harness: a 2-port switch whose notifications are
// pumped into a control plane, collecting results.
type rig struct {
	sw      *dataplane.Switch
	plane   *Plane
	results []Result
}

func newRig(t *testing.T, channelState bool, mod func(*dataplane.Config)) *rig {
	t.Helper()
	dcfg := dataplane.Config{
		Node:         1,
		NumPorts:     2,
		MaxID:        16,
		WrapAround:   true,
		ChannelState: channelState,
		Metrics:      func(dataplane.UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node:     1,
			Version:  1,
			NextHops: map[topology.HostID][]int{10: {1}},
		},
		Balancer: routing.ECMP{},
	}
	if mod != nil {
		mod(&dcfg)
	}
	sw, err := dataplane.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{sw: sw}
	plane, err := New(Config{
		Switch: sw,
		// Only channels that actually carry traffic in these tests gate
		// completion: ingress units their external channel; the egress
		// unit of port 1 only ingress port 0 (all data flows 0 -> 1).
		CompletionChannels: func(id dataplane.UnitID) []int {
			if id.Dir == dataplane.Ingress {
				return []int{0}
			}
			return []int{0}
		},
		OnResult: func(res Result) { r.results = append(r.results, res) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.plane = plane
	return r
}

// pump drains all pending notifications into the control plane.
func (r *rig) pump(now sim.Time) {
	for {
		n, ok := r.sw.PopNotif()
		if !ok {
			return
		}
		r.plane.HandleNotification(n, now)
	}
}

// sendThrough pushes a data packet host->port0->port1 immediately (no
// queueing).
func (r *rig) sendThrough(t *testing.T) {
	t.Helper()
	p := &packet.Packet{DstHost: 10, Size: 100}
	res := r.sw.Ingress(p, 0, 0)
	if res.Drop {
		t.Fatal("unexpected drop")
	}
	r.sw.Egress(p, res.EgressPort, 0)
}

// initiate runs a full local initiation: CPU -> every ingress -> same
// port egress (immediately; these tests have no queues).
func (r *rig) initiate(id packet.SeqID, now sim.Time) {
	for _, init := range r.plane.Initiate(id, now) {
		r.sw.Egress(init.Pkt, init.Port, now)
	}
}

func (r *rig) resultsFor(id packet.SeqID) []Result {
	var out []Result
	for _, res := range r.results {
		if res.SnapshotID == id {
			out = append(out, res)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil switch accepted")
	}
	r := newRig(t, false, nil)
	if _, err := New(Config{Switch: r.sw}); err == nil {
		t.Error("nil OnResult accepted")
	}
}

func TestNoCSBasicSnapshot(t *testing.T) {
	r := newRig(t, false, nil)
	// Three packets, then snapshot 1.
	for i := 0; i < 3; i++ {
		r.sendThrough(t)
	}
	r.initiate(1, 100)
	r.pump(101)

	// Every unit should report snapshot 1 exactly once.
	got := r.resultsFor(1)
	if len(got) != 4 {
		t.Fatalf("results = %d, want 4 units", len(got))
	}
	values := map[dataplane.UnitID]uint64{}
	for _, res := range got {
		if !res.Consistent {
			t.Errorf("unit %v inconsistent", res.Unit)
		}
		values[res.Unit] = res.Value
	}
	if v := values[dataplane.UnitID{Node: 1, Port: 0, Dir: dataplane.Ingress}]; v != 3 {
		t.Errorf("port0 ingress = %d, want 3", v)
	}
	if v := values[dataplane.UnitID{Node: 1, Port: 1, Dir: dataplane.Egress}]; v != 3 {
		t.Errorf("port1 egress = %d, want 3", v)
	}
	if !r.plane.Complete(1) {
		t.Error("snapshot 1 should be complete")
	}
	if r.plane.Complete(2) {
		t.Error("snapshot 2 should not be complete")
	}
}

func TestNoCSSkippedEpochsInferValues(t *testing.T) {
	r := newRig(t, false, nil)
	r.sendThrough(t)
	r.sendThrough(t)
	// Jump straight to snapshot 3 (initiations 1 and 2 were lost).
	r.initiate(3, 0)
	r.pump(0)
	for _, id := range []packet.SeqID{1, 2, 3} {
		got := r.resultsFor(id)
		if len(got) != 4 {
			t.Fatalf("snapshot %d: %d results", id, len(got))
		}
		for _, res := range got {
			if !res.Consistent {
				t.Errorf("snapshot %d unit %v inconsistent", id, res.Unit)
			}
			var want uint64
			if res.Unit.Port == 0 && res.Unit.Dir == dataplane.Ingress ||
				res.Unit.Port == 1 && res.Unit.Dir == dataplane.Egress {
				want = 2
			}
			// The skipped epochs inherit the value of epoch 3: the unit
			// state cannot have changed in between.
			if res.Value != want {
				t.Errorf("snapshot %d unit %v = %d, want %d", id, res.Unit, res.Value, want)
			}
		}
	}
}

func TestNoCSResultsAscending(t *testing.T) {
	r := newRig(t, false, nil)
	r.initiate(3, 0)
	r.pump(0)
	perUnit := map[dataplane.UnitID]packet.SeqID{}
	for _, res := range r.results {
		if prev, ok := perUnit[res.Unit]; ok && res.SnapshotID <= prev {
			t.Fatalf("unit %v results not ascending: %d after %d", res.Unit, res.SnapshotID, prev)
		}
		perUnit[res.Unit] = res.SnapshotID
	}
}

func TestCSCompletionGatedOnLastSeen(t *testing.T) {
	r := newRig(t, true, nil)
	r.sendThrough(t)
	r.initiate(1, 0)
	r.pump(0)
	// The ingress unit of port 0 has not seen epoch 1 from its external
	// channel yet (only from the CPU, which does not gate completion),
	// so its snapshot must not be finalized.
	ing0 := dataplane.UnitID{Node: 1, Port: 0, Dir: dataplane.Ingress}
	for _, res := range r.resultsFor(1) {
		if res.Unit == ing0 {
			t.Fatal("port0 ingress finalized before its channel advanced")
		}
	}
	// Now external traffic carries epoch 1 (the header added at the
	// edge carries the unit's current, already-advanced epoch).
	r.sendThrough(t)
	r.pump(0)
	found := false
	for _, res := range r.resultsFor(1) {
		if res.Unit == ing0 {
			found = true
			if !res.Consistent {
				t.Error("snapshot should be consistent")
			}
			if res.Value != 1 {
				t.Errorf("value = %d, want 1 (one packet pre-snapshot)", res.Value)
			}
		}
	}
	if !found {
		t.Fatal("port0 ingress never finalized")
	}
}

func TestCSSkippedEpochsMarkedInconsistent(t *testing.T) {
	r := newRig(t, true, nil)
	r.sendThrough(t)
	r.initiate(1, 0)
	r.sendThrough(t)
	// Jump: epochs 2,3 skipped everywhere.
	r.initiate(4, 0)
	r.sendThrough(t)
	r.pump(0)

	for _, id := range []packet.SeqID{2, 3} {
		rs := r.resultsFor(id)
		if len(rs) == 0 {
			t.Fatalf("no results for skipped epoch %d", id)
		}
		for _, res := range rs {
			if res.Consistent {
				t.Errorf("skipped epoch %d at %v reported consistent", id, res.Unit)
			}
		}
	}
	// Epochs 1 and 4 must be consistent at the traffic-bearing units.
	for _, id := range []packet.SeqID{1, 4} {
		for _, res := range r.resultsFor(id) {
			if !res.Consistent {
				t.Errorf("epoch %d at %v inconsistent", id, res.Unit)
			}
		}
	}
}

func TestDuplicateNotificationsDropped(t *testing.T) {
	r := newRig(t, false, nil)
	r.initiate(1, 0)
	var saved []dataplane.CPUNotification
	for {
		n, ok := r.sw.PopNotif()
		if !ok {
			break
		}
		saved = append(saved, n)
	}
	for _, n := range saved {
		r.plane.HandleNotification(n, 0)
	}
	count := len(r.results)
	// Replay every notification: no new results may appear.
	for _, n := range saved {
		r.plane.HandleNotification(n, 0)
	}
	if len(r.results) != count {
		t.Errorf("duplicate notifications produced %d extra results", len(r.results)-count)
	}
}

func TestUnknownUnitNotificationIgnored(t *testing.T) {
	r := newRig(t, false, nil)
	r.plane.HandleNotification(dataplane.CPUNotification{
		Unit: dataplane.UnitID{Node: 9, Port: 0, Dir: dataplane.Ingress},
	}, 0)
	if len(r.results) != 0 {
		t.Error("foreign notification produced results")
	}
}

func TestPollRecoversFromNotificationDrops(t *testing.T) {
	r := newRig(t, false, func(c *dataplane.Config) { c.NotifCapacity = 1 })
	// Initiating at 2 ports produces 4 notifications; capacity 1 drops 3.
	r.initiate(1, 0)
	r.pump(0)
	if len(r.resultsFor(1)) == 4 {
		t.Skip("no drops occurred; cannot exercise recovery")
	}
	r.plane.Poll(5)
	if got := len(r.resultsFor(1)); got != 4 {
		t.Errorf("after poll: %d results, want 4", got)
	}
	if !r.plane.Complete(1) {
		t.Error("snapshot 1 incomplete after poll")
	}
}

func TestPollIdempotent(t *testing.T) {
	r := newRig(t, true, nil)
	r.sendThrough(t)
	r.initiate(1, 0)
	r.sendThrough(t)
	r.pump(0)
	count := len(r.results)
	r.plane.Poll(1)
	r.plane.Poll(2)
	if len(r.results) != count {
		t.Errorf("polls added %d spurious results", len(r.results)-count)
	}
}

func TestReInitiationHarmless(t *testing.T) {
	r := newRig(t, false, nil)
	r.initiate(1, 0)
	r.pump(0)
	count := len(r.results)
	// Re-send the same initiation (timeout path, Section 6).
	r.initiate(1, 10)
	r.pump(10)
	if len(r.results) != count {
		t.Errorf("re-initiation produced %d extra results", len(r.results)-count)
	}
	if r.plane.Initiated() != 1 {
		t.Errorf("Initiated = %d", r.plane.Initiated())
	}
}

func TestWraparoundAcrossManyLaps(t *testing.T) {
	r := newRig(t, false, nil)
	// MaxID is 16; run 40 snapshots, reading each promptly.
	for id := packet.SeqID(1); id <= 40; id++ {
		r.sendThrough(t)
		r.initiate(id, sim.Time(id))
		r.pump(sim.Time(id))
		if !r.plane.Complete(id) {
			t.Fatalf("snapshot %d incomplete", id)
		}
	}
	// The port0-ingress series must be exactly 1,2,3,...: one packet per
	// epoch.
	ing0 := dataplane.UnitID{Node: 1, Port: 0, Dir: dataplane.Ingress}
	var prev uint64
	for _, res := range r.results {
		if res.Unit != ing0 {
			continue
		}
		if !res.Consistent {
			t.Fatalf("snapshot %d inconsistent", res.SnapshotID)
		}
		if res.Value != prev+1 {
			t.Fatalf("snapshot %d value = %d, want %d", res.SnapshotID, res.Value, prev+1)
		}
		prev = res.Value
	}
	if prev != 40 {
		t.Fatalf("final value %d, want 40", prev)
	}
}

func TestLastRead(t *testing.T) {
	r := newRig(t, false, nil)
	ing0 := dataplane.UnitID{Node: 1, Port: 0, Dir: dataplane.Ingress}
	if r.plane.LastRead(ing0) != 0 {
		t.Error("initial LastRead nonzero")
	}
	r.initiate(2, 0)
	r.pump(0)
	if got := r.plane.LastRead(ing0); got != 2 {
		t.Errorf("LastRead = %d, want 2", got)
	}
	if r.plane.LastRead(dataplane.UnitID{Node: 9}) != 0 {
		t.Error("unknown unit LastRead should be 0")
	}
}
