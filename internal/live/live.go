// Package live runs a Speedlight deployment as real concurrent Go:
// every switch is a goroutine owning its data plane and control plane,
// links are channels between switch goroutines, and the snapshot
// observer runs in its own goroutine with wall-clock initiation timers.
//
// The protocol logic is exactly the same state-machine code the
// discrete-event simulation drives (internal/core, internal/control,
// internal/observer); this runtime demonstrates it under genuine
// asynchrony — goroutine scheduling, real queueing in channels, and
// wall-clock time — the way a deployment across real switch CPUs would
// run it. Experiments use the simulator for reproducibility; this
// package is the "production shaped" engine.
package live

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"speedlight/internal/audit"
	"speedlight/internal/control"
	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/epochtrace"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// Config parameterizes a live network.
type Config struct {
	// Topo is the network topology. Required.
	Topo *topology.Topology

	// Snapshot protocol parameters (defaults: 256, wraparound on,
	// channel state off).
	MaxID        uint32
	WrapAround   bool
	ChannelState bool

	// Metrics builds each unit's snapshot target; nil defaults to
	// packet counters.
	Metrics func(id dataplane.UnitID) core.Metric

	// InboxDepth bounds each switch's event inbox. Default 4096.
	InboxDepth int

	// OnDeliver observes packets reaching hosts. Called from switch
	// goroutines; must be safe for concurrent use.
	OnDeliver func(pkt *packet.Packet, host topology.HostID)

	// RetryEvery re-initiates incomplete snapshots (liveness). Default
	// 20ms; negative disables.
	RetryEvery time.Duration

	// Registry, when set, enables telemetry across every layer of the
	// deployment. Nil disables instrumentation at zero hot-path cost.
	Registry *telemetry.Registry
	// Tracer, when set, records snapshot-lifecycle spans on the
	// observer goroutine.
	Tracer *telemetry.Tracer
	// MetricsAddr, when non-empty, serves the observability endpoints
	// (Prometheus /metrics, expvar /debug/vars, /debug/pprof, /trace,
	// /healthz, /readyz, and — when journaling is on — /journal and
	// /audit) on this address from Start until Stop. A Registry (and
	// Tracer) is created automatically if none was provided.
	MetricsAddr string

	// Journal, when set, records every protocol event into per-switch
	// flight-recorder rings (internal/journal). The rings are lock-free
	// and safe for the concurrent switch goroutines. Nil disables
	// journaling at zero hot-path cost.
	Journal *journal.Set
	// FlightRecorderSize bounds the tail dumped on anomaly. Default
	// 512.
	FlightRecorderSize int
	// OnAnomaly receives a flight-recorder dump whenever a snapshot
	// finalizes inconsistent or with excluded devices. Called from the
	// observer goroutine; must not block.
	OnAnomaly func(reason string, snapshotID packet.SeqID, dump []journal.Event)

	// Snapstore, when set, ingests every completed global snapshot as a
	// sealed delta-encoded epoch (internal/snapstore). Ingestion runs on
	// the observer goroutine; with MetricsAddr set the query plane is
	// served at /snapshots, and a readiness check flips /readyz when
	// ingestion lags the observer by more than SnapstoreLagMax epochs.
	Snapstore *snapstore.Store
	// SnapstoreLagMax is the ingestion-lag readiness threshold in
	// epochs. Zero means 8.
	SnapstoreLagMax uint64
	// Invariants, when set, streams every epoch sealed into Snapstore
	// through the registered invariants (internal/invariant); each
	// violation fires OnAnomaly with a flight-recorder dump, and with
	// MetricsAddr set the status endpoint is served at /invariants.
	// Requires Snapstore.
	Invariants *invariant.Engine
}

// event is one unit of work for a switch goroutine.
type event struct {
	kind eventKind
	pkt  *packet.Packet
	port int
	// initiation
	snapshotID packet.SeqID
	// markers asks the initiation to also inject marker broadcasts, the
	// Section 6 liveness mechanism for traffic-free channels (used on
	// recovery retries in channel-state mode).
	markers bool
	// poll request
	done chan struct{}
}

type eventKind int

const (
	evPacket eventKind = iota
	evInitiate
	evPoll
)

// liveSwitch is one switch goroutine's state.
type liveSwitch struct {
	node  topology.NodeID
	dp    *dataplane.Switch
	cp    *control.Plane
	inbox chan event
	// events counts this switch goroutine's processed events
	// (per-switch throughput).
	events *telemetry.Counter
}

// Network is a running live deployment.
type Network struct {
	cfg  Config
	topo *topology.Topology
	sws  map[topology.NodeID]*liveSwitch

	obs       *observer.Observer
	obsEvents chan obsEvent

	started time.Time
	wg      sync.WaitGroup
	stop    chan struct{}
	stopped sync.Once

	mu   sync.Mutex
	done []*observer.GlobalSnapshot
	subs map[packet.SeqID]chan *observer.GlobalSnapshot

	// completed counts assembled global snapshots (atomic: the
	// snapstore lag readiness check reads it from probe handlers).
	completed atomic.Uint64

	tel    liveTelemetry
	metSrv *telemetry.Server
	health *telemetry.Health
}

// liveTelemetry is the runtime's own metric set: the queueing and
// scheduling effects only the goroutine harness can see.
type liveTelemetry struct {
	inboxHighWater *telemetry.Gauge
	inboxDrops     *telemetry.Counter
	obsHighWater   *telemetry.Gauge
	events         *telemetry.Counter
	delivered      *telemetry.Counter
}

func newLiveTelemetry(reg *telemetry.Registry) liveTelemetry {
	return liveTelemetry{
		inboxHighWater: reg.Gauge("speedlight_live_inbox_high_water", "deepest switch inbox occupancy"),
		inboxDrops:     reg.Counter("speedlight_live_inbox_drops_total", "packets dropped at full switch inboxes"),
		obsHighWater:   reg.Gauge("speedlight_live_obs_queue_high_water", "deepest observer event-queue occupancy"),
		events:         reg.Counter("speedlight_live_events_total", "events processed by switch goroutines"),
		delivered:      reg.Counter("speedlight_live_packets_delivered_total", "packets delivered to hosts"),
	}
}

// obsEvent is work for the observer goroutine.
type obsEvent struct {
	kind   obsKind
	result control.Result
	begin  chan beginReply
}

type obsKind int

const (
	obsResult obsKind = iota
	obsBegin
	obsTick
)

type beginReply struct {
	id  packet.SeqID
	err error
}

// New builds a live network. Call Start to launch its goroutines.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("live: nil topology")
	}
	if cfg.MaxID == 0 {
		cfg.MaxID = 256
	}
	if cfg.InboxDepth == 0 {
		cfg.InboxDepth = 4096
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 20 * time.Millisecond
	}
	if cfg.MetricsAddr != "" && cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.MetricsAddr != "" && cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(0)
	}
	fibs, err := routing.ComputeFIBs(cfg.Topo)
	if err != nil {
		return nil, err
	}

	n := &Network{
		cfg:       cfg,
		topo:      cfg.Topo,
		sws:       make(map[topology.NodeID]*liveSwitch),
		obsEvents: make(chan obsEvent, 1024),
		stop:      make(chan struct{}),
		subs:      make(map[packet.SeqID]chan *observer.GlobalSnapshot),
		tel:       newLiveTelemetry(cfg.Registry),
		health:    telemetry.NewHealth(),
	}
	if cfg.Snapstore != nil {
		lagMax := cfg.SnapstoreLagMax
		if lagMax == 0 {
			lagMax = 8
		}
		n.health.AddCheck("snapstore-lag",
			snapstore.HealthCheck(cfg.Snapstore, n.CompletedEpochs, lagMax))
	}
	if cfg.Journal != nil {
		cfg.Journal.Observer().Append(journal.Config(uint64(cfg.MaxID), cfg.WrapAround, cfg.ChannelState))
	}

	obs, err := observer.New(observer.Config{
		MaxID:      cfg.MaxID,
		WrapAround: cfg.WrapAround,
		RetryAfter: durToSim(cfg.RetryEvery),
		Telemetry:  observer.NewTelemetry(cfg.Registry),
		Tracer:     cfg.Tracer,
		Journal:    cfg.Journal.Observer(),
		OnComplete: n.onComplete,
	})
	if err != nil {
		return nil, err
	}
	n.obs = obs

	metrics := cfg.Metrics
	if metrics == nil {
		metrics = func(dataplane.UnitID) core.Metric { return &counters.PacketCount{} }
	}
	dpTel := dataplane.NewTelemetry(cfg.Registry)
	cpTel := control.NewTelemetry(cfg.Registry)
	swEvents := cfg.Registry.CounterVec("speedlight_live_switch_events_total",
		"events processed per switch goroutine", "switch")
	for _, spec := range cfg.Topo.Switches {
		edge := map[int]bool{}
		for p, peer := range spec.Ports {
			if peer.Kind == topology.PeerHost {
				edge[p] = true
			}
		}
		dp, err := dataplane.New(dataplane.Config{
			Node:         spec.ID,
			NumPorts:     len(spec.Ports),
			MaxID:        cfg.MaxID,
			WrapAround:   cfg.WrapAround,
			ChannelState: cfg.ChannelState,
			Metrics:      metrics,
			FIB:          fibs[spec.ID],
			Balancer:     routing.ECMP{},
			EdgePorts:    edge,
			Telemetry:    dpTel,
			Journal:      cfg.Journal.For(int(spec.ID)),
		})
		if err != nil {
			return nil, err
		}
		ls := &liveSwitch{
			node:   spec.ID,
			dp:     dp,
			inbox:  make(chan event, cfg.InboxDepth),
			events: swEvents.With(fmt.Sprint(spec.ID)),
		}
		cp, err := control.New(control.Config{
			Switch:    dp,
			Telemetry: cpTel,
			Journal:   cfg.Journal.For(int(spec.ID)),
			OnResult: func(res control.Result) {
				// Ship to the observer over its channel — the network
				// path from switch CPU to observer host.
				select {
				case n.obsEvents <- obsEvent{kind: obsResult, result: res}:
				case <-n.stop:
				}
			},
		})
		if err != nil {
			return nil, err
		}
		ls.cp = cp
		n.sws[spec.ID] = ls
		obs.Register(spec.ID, dp.UnitIDs())
	}
	return n, nil
}

func durToSim(d time.Duration) sim.Duration {
	if d < 0 {
		return 0
	}
	return sim.Duration(d.Nanoseconds())
}

// now returns wall time since Start as protocol time.
func (n *Network) now() sim.Time {
	return sim.Time(time.Since(n.started).Nanoseconds())
}

// Start launches the switch and observer goroutines, and the
// observability HTTP server when MetricsAddr is configured. A metrics
// server that fails to bind is reported on stderr but does not stop
// the network.
func (n *Network) Start() {
	if n.cfg.MetricsAddr != "" {
		mc := telemetry.MuxConfig{
			Registry: n.cfg.Registry,
			Tracer:   n.cfg.Tracer,
			Health:   n.health,
		}
		if n.cfg.Journal != nil {
			mc.Journal = journal.HTTPHandler(n.cfg.Journal.Events)
			mc.Audit = audit.HTTPHandler(n.Audit)
			jr := n.cfg.Journal
			// No blocking source: live switches are real goroutines,
			// there is no sharded simulation engine to attribute.
			mc.EpochTrace = epochtrace.HTTPHandler(func() []*epochtrace.EpochTrace {
				return epochtrace.Build(jr.Events())
			}, nil)
		}
		if n.cfg.Snapstore != nil {
			mc.Snapshots = snapstore.HTTPHandler(n.cfg.Snapstore.View)
		}
		if n.cfg.Invariants != nil {
			mc.Invariants = invariant.HTTPHandler(n.cfg.Invariants)
		}
		srv, err := telemetry.ServeConfig(n.cfg.MetricsAddr, mc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "live: metrics server: %v\n", err)
		} else {
			n.metSrv = srv
		}
	}
	n.started = time.Now()
	for _, ls := range n.sws {
		ls := ls
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runSwitch(ls)
		}()
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.runObserver()
	}()
	if n.cfg.RetryEvery > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := time.NewTicker(n.cfg.RetryEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					select {
					case n.obsEvents <- obsEvent{kind: obsTick}:
					case <-n.stop:
						return
					}
				case <-n.stop:
					return
				}
			}
		}()
	}
	n.health.SetReady(true)
}

// Stop terminates all goroutines and the metrics server. It is
// idempotent.
func (n *Network) Stop() {
	n.health.SetReady(false)
	n.stopped.Do(func() { close(n.stop) })
	n.wg.Wait()
	if n.metSrv != nil {
		_ = n.metSrv.Close()
		n.metSrv = nil
	}
}

// Registry returns the telemetry registry, or nil when disabled.
func (n *Network) Registry() *telemetry.Registry { return n.cfg.Registry }

// Health returns the runtime's health state: ready between Start and
// Stop. It backs the /healthz and /readyz probes.
func (n *Network) Health() *telemetry.Health { return n.health }

// Journal returns the flight-recorder set, or nil when journaling is
// disabled.
func (n *Network) Journal() *journal.Set { return n.cfg.Journal }

// Audit replays the journal and verifies every snapshot's consistency
// invariants. Safe to call while the network is running (the rings
// are dumped atomically). Nil when journaling is disabled.
func (n *Network) Audit() *audit.Report {
	if n.cfg.Journal == nil {
		return nil
	}
	return audit.Run(n.cfg.Journal.Events(), audit.Config{
		MaxID:        uint64(n.cfg.MaxID),
		Wraparound:   n.cfg.WrapAround,
		ChannelState: n.cfg.ChannelState,
	})
}

// anomaly dumps the flight recorder to the OnAnomaly hook.
func (n *Network) anomaly(reason string, id packet.SeqID) {
	if n.cfg.OnAnomaly == nil {
		return
	}
	size := n.cfg.FlightRecorderSize
	if size <= 0 {
		size = 512
	}
	n.cfg.OnAnomaly(reason, id, n.cfg.Journal.Tail(size))
}

// Tracer returns the snapshot-lifecycle tracer, or nil when disabled.
func (n *Network) Tracer() *telemetry.Tracer { return n.cfg.Tracer }

// MetricsAddr returns the bound observability address, or "" when no
// metrics server is running (useful with a ":0" MetricsAddr).
func (n *Network) MetricsAddr() string {
	if n.metSrv == nil {
		return ""
	}
	return n.metSrv.Addr()
}

// runSwitch is one switch's event loop: the single goroutine that owns
// both the data plane and the control plane state of the device, so
// every unit stays linearizable.
func (n *Network) runSwitch(ls *liveSwitch) {
	for {
		select {
		case <-n.stop:
			return
		case ev := <-ls.inbox:
			ls.events.Inc()
			n.tel.events.Inc()
			switch ev.kind {
			case evPacket:
				n.handlePacket(ls, ev.pkt, ev.port)
			case evInitiate:
				inits := ls.cp.Initiate(ev.snapshotID, n.now())
				for _, init := range inits {
					// The initiation continues through the egress unit
					// of the same port, in order with data traffic
					// (this goroutine is the FIFO).
					n.handleEgress(ls, init.Pkt, init.Port)
				}
				n.drainNotifs(ls)
				if ev.markers {
					n.injectMarkers(ls)
				}
			case evPoll:
				ls.cp.Poll(n.now())
				if ev.done != nil {
					close(ev.done)
				}
			}
		}
	}
}

// handlePacket runs a packet through ingress, forwarding and egress.
func (n *Network) handlePacket(ls *liveSwitch, pkt *packet.Packet, port int) {
	res := ls.dp.Ingress(pkt, port, n.now())
	n.drainNotifs(ls)
	if res.Drop {
		return
	}
	n.handleEgress(ls, pkt, res.EgressPort)
}

// handleEgress runs egress processing and delivers to the peer.
func (n *Network) handleEgress(ls *liveSwitch, pkt *packet.Packet, port int) {
	res := ls.dp.Egress(pkt, port, n.now())
	n.drainNotifs(ls)
	if res.Drop {
		return
	}
	peer := n.topo.Peer(ls.node, port)
	switch peer.Kind {
	case topology.PeerSwitch:
		// Non-blocking: a full inbox is a full link buffer, and the
		// packet is dropped — blocking here could deadlock a cycle of
		// mutually full switches.
		next := n.sws[peer.Node]
		select {
		case next.inbox <- event{kind: evPacket, pkt: pkt, port: peer.Port}:
			n.tel.inboxHighWater.SetMax(int64(len(next.inbox)))
		default:
			n.tel.inboxDrops.Inc()
		}
	case topology.PeerHost:
		if res.StripHeader {
			pkt.HasSnap = false
			pkt.Snap = packet.SnapshotHeader{}
		}
		n.tel.delivered.Inc()
		if n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(pkt, peer.Host)
		}
	}
}

// injectMarkers floods one marker broadcast per (ingress port, class)
// through the switch and one wire hop outward, refreshing every FIFO
// channel's snapshot ID (Section 6 liveness). The switch goroutine is
// the FIFO, so ordering is inherently preserved.
func (n *Network) injectMarkers(ls *liveSwitch) {
	for port := 0; port < ls.dp.NumPorts(); port++ {
		for cos := 0; cos < ls.dp.NumCoS(); cos++ {
			m := &packet.Packet{DstHost: uint32(broadcastHost), Size: 64, CoS: uint8(cos)}
			ls.dp.IngressFromCP(m, port, n.now())
			n.drainNotifs(ls)
			for e := 0; e < ls.dp.NumPorts(); e++ {
				n.handleEgress(ls, m.Clone(), e)
			}
		}
	}
}

// broadcastHost marks marker broadcasts; they die after one wire hop's
// ingress processing (the FIB has no route for them).
const broadcastHost = topology.HostID(0xFFFFFFFF)

// drainNotifs feeds pending data-plane notifications to the local
// control plane. Data and control plane share the switch goroutine, as
// they share the switch in hardware.
func (n *Network) drainNotifs(ls *liveSwitch) {
	for {
		notif, ok := ls.dp.PopNotif()
		if !ok {
			return
		}
		ls.cp.HandleNotification(notif, n.now())
	}
}

// runObserver is the observer host's goroutine.
func (n *Network) runObserver() {
	for {
		select {
		case <-n.stop:
			return
		case ev := <-n.obsEvents:
			// +1: the event just dequeued was part of the backlog.
			n.tel.obsHighWater.SetMax(int64(len(n.obsEvents)) + 1)
			switch ev.kind {
			case obsResult:
				n.obs.OnResult(ev.result, n.now())
			case obsBegin:
				id, err := n.obs.Begin(n.now())
				ev.begin <- beginReply{id: id, err: err}
			case obsTick:
				for _, act := range n.obs.CheckTimeouts(n.now()) {
					for _, node := range act.Retry {
						// Non-blocking: if the switch is saturated, the
						// next tick retries again. Blocking here could
						// deadlock against a switch blocked on the
						// observer channel.
						ls := n.sws[node]
						select {
						case ls.inbox <- event{kind: evInitiate, snapshotID: act.SnapshotID,
							markers: n.cfg.ChannelState}:
						default:
							n.tel.inboxDrops.Inc()
						}
						select {
						case ls.inbox <- event{kind: evPoll}:
						default:
							n.tel.inboxDrops.Inc()
						}
					}
				}
			}
		}
	}
}

// onComplete runs on the observer goroutine when a snapshot finishes.
func (n *Network) onComplete(g *observer.GlobalSnapshot) {
	n.completed.Add(1)
	if !g.Consistent {
		n.anomaly(fmt.Sprintf("snapshot %d finalized inconsistent", g.ID), g.ID)
	} else if len(g.Excluded) > 0 {
		n.anomaly(fmt.Sprintf("snapshot %d finalized with %d device(s) excluded", g.ID, len(g.Excluded)), g.ID)
	}
	if st := n.cfg.Snapstore; st != nil {
		ep := st.Ingest(g, 0)
		st.RecordLag(n.completed.Load())
		if eng := n.cfg.Invariants; eng != nil {
			for _, viol := range eng.Eval(st.View(), ep) {
				n.anomaly(viol.String(), g.ID)
			}
		}
	}
	n.mu.Lock()
	n.done = append(n.done, g)
	sub := n.subs[g.ID]
	delete(n.subs, g.ID)
	n.mu.Unlock()
	if sub != nil {
		sub <- g
		close(sub)
	}
}

// Inject sends a packet from a host into the network.
func (n *Network) Inject(host topology.HostID, pkt *packet.Packet) error {
	h := n.topo.Host(host)
	if h == nil {
		return fmt.Errorf("live: unknown host %d", host)
	}
	pkt.SrcHost = uint32(host)
	ls := n.sws[h.Node]
	select {
	case ls.inbox <- event{kind: evPacket, pkt: pkt, port: h.Port}:
		n.tel.inboxHighWater.SetMax(int64(len(ls.inbox)))
		return nil
	case <-n.stop:
		return fmt.Errorf("live: network stopped")
	}
}

// TakeSnapshot begins a network-wide snapshot after the given delay and
// returns its ID and a channel that yields the assembled global
// snapshot once complete.
func (n *Network) TakeSnapshot(delay time.Duration) (packet.SeqID, <-chan *observer.GlobalSnapshot, error) {
	reply := make(chan beginReply, 1)
	select {
	case n.obsEvents <- obsEvent{kind: obsBegin, begin: reply}:
	case <-n.stop:
		return 0, nil, fmt.Errorf("live: network stopped")
	}
	// The events channel is buffered, so the send can succeed even when
	// the observer goroutine has already exited; the reply wait must
	// also watch for shutdown.
	var r beginReply
	select {
	case r = <-reply:
	case <-n.stop:
		return 0, nil, fmt.Errorf("live: network stopped")
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	sub := make(chan *observer.GlobalSnapshot, 1)
	n.mu.Lock()
	n.subs[r.id] = sub
	n.mu.Unlock()

	time.AfterFunc(delay, func() {
		for _, spec := range n.topo.Switches {
			ls := n.sws[spec.ID]
			select {
			case ls.inbox <- event{kind: evInitiate, snapshotID: r.id}:
			case <-n.stop:
			}
		}
	})
	return r.id, sub, nil
}

// CompletedEpochs returns how many global snapshots the observer has
// assembled. Safe from any goroutine; with Snapstore.Sealed it yields
// the store's ingestion lag for readiness probes.
func (n *Network) CompletedEpochs() uint64 { return n.completed.Load() }

// Snapshots returns the snapshots completed so far.
func (n *Network) Snapshots() []*observer.GlobalSnapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*observer.GlobalSnapshot, len(n.done))
	copy(out, n.done)
	return out
}

// PollAll synchronously asks every switch control plane to poll its
// registers (recovery path), returning when all have finished.
func (n *Network) PollAll() {
	var dones []chan struct{}
	for _, spec := range n.topo.Switches {
		done := make(chan struct{})
		select {
		case n.sws[spec.ID].inbox <- event{kind: evPoll, done: done}:
			dones = append(dones, done)
		case <-n.stop:
			return
		}
	}
	for _, d := range dones {
		select {
		case <-d:
		case <-n.stop:
			return
		}
	}
}
