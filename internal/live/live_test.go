package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func leafSpine(t *testing.T) *topology.LeafSpine {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestDeliveryAcrossFabric(t *testing.T) {
	ls := leafSpine(t)
	var delivered atomic.Int64
	n, err := New(Config{
		Topo:      ls.Topology,
		OnDeliver: func(_ *packet.Packet, _ topology.HostID) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	for i := 0; i < 100; i++ {
		if err := n.Inject(0, &packet.Packet{DstHost: 3, Size: 100, SrcPort: uint16(i), Proto: 6}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := delivered.Load(); got != 100 {
		t.Errorf("delivered %d of 100", got)
	}
}

func TestSnapshotUnderConcurrentTraffic(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{Topo: ls.Topology})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	// Concurrent traffic from every host while the snapshot runs.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for h := topology.HostID(0); h < 6; h++ {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				dst := topology.HostID((int(h) + 1 + i%5) % 6)
				n.Inject(h, &packet.Packet{
					DstHost: uint32(dst),
					SrcPort: uint16(i),
					DstPort: 9000,
					Proto:   6,
					Size:    500,
				})
				if i%64 == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}

	id, done, err := n.TakeSnapshot(5 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		if g.ID != id {
			t.Errorf("completed id %d, want %d", g.ID, id)
		}
		if !g.Consistent {
			t.Error("snapshot inconsistent")
		}
		if len(g.Results) != 28 {
			t.Errorf("results = %d, want 28 units", len(g.Results))
		}
		var total uint64
		for _, r := range g.Results {
			total += r.Value
		}
		if total == 0 {
			t.Error("all-zero snapshot despite traffic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot never completed")
	}
	stop.Store(true)
	wg.Wait()
}

func TestSnapshotSequenceMonotoneCounters(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{Topo: ls.Topology})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			n.Inject(1, &packet.Packet{DstHost: 4, SrcPort: uint16(i), Proto: 6, Size: 200})
			time.Sleep(10 * time.Microsecond)
		}
	}()

	last := map[dataplane.UnitID]uint64{}
	for round := 0; round < 5; round++ {
		_, done, err := n.TakeSnapshot(time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case g := <-done:
			for u, res := range g.Results {
				if !res.Consistent {
					continue
				}
				if res.Value < last[u] {
					t.Errorf("unit %v count regressed: %d -> %d", u, last[u], res.Value)
				}
				last[u] = res.Value
			}
		case <-time.After(10 * time.Second):
			t.Fatal("snapshot timed out")
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestQuiescentSnapshotExactCounts(t *testing.T) {
	// With the network quiet, every unit on a flow's path must report
	// exactly the packets that crossed it.
	ls := leafSpine(t)
	var delivered atomic.Int64
	n, err := New(Config{
		Topo:      ls.Topology,
		OnDeliver: func(*packet.Packet, topology.HostID) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	const N = 57
	for i := 0; i < N; i++ {
		// Same-leaf traffic: host 0 -> host 1, single deterministic path.
		n.Inject(0, &packet.Packet{DstHost: 1, SrcPort: 7, DstPort: 80, Proto: 6, Size: 100})
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < N && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != N {
		t.Fatalf("delivered %d of %d", delivered.Load(), N)
	}

	_, done, err := n.TakeSnapshot(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		leaf0 := ls.Leaves[0]
		for _, id := range []dataplane.UnitID{
			{Node: leaf0, Port: 0, Dir: dataplane.Ingress},
			{Node: leaf0, Port: 1, Dir: dataplane.Egress},
		} {
			v, ok := g.Value(id)
			if !ok {
				t.Errorf("unit %v missing", id)
				continue
			}
			if v != N {
				t.Errorf("unit %v = %d, want %d", id, v, N)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot timed out")
	}
}

func TestManySequentialSnapshots(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{Topo: ls.Topology, MaxID: 16, WrapAround: true})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	// More snapshots than the wrapped ID space: exercises rollover in a
	// concurrent run.
	for i := 0; i < 40; i++ {
		_, done, err := n.TakeSnapshot(100 * time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("snapshot %d timed out", i)
		}
	}
	if got := len(n.Snapshots()); got != 40 {
		t.Errorf("completed %d of 40", got)
	}
}

func TestStopIdempotentAndInjectAfterStop(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{Topo: ls.Topology})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Stop()
	n.Stop() // must not panic or hang
	if err := n.Inject(0, &packet.Packet{DstHost: 1}); err == nil {
		// The inbox may still have room; either outcome is fine as long
		// as nothing blocks. Just exercise the code path.
		_ = err
	}
	if _, _, err := n.TakeSnapshot(time.Millisecond); err == nil {
		t.Error("TakeSnapshot after Stop should fail")
	}
}

func TestPollAll(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{Topo: ls.Topology})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	donech := make(chan struct{})
	go func() {
		n.PollAll()
		close(donech)
	}()
	select {
	case <-donech:
	case <-time.After(5 * time.Second):
		t.Fatal("PollAll hung")
	}
}

func TestChannelStateSnapshotLive(t *testing.T) {
	// Channel-state snapshots under the concurrent runtime: completion
	// needs every FIFO channel to advance, driven by traffic plus the
	// retry-time marker broadcasts.
	ls := leafSpine(t)
	n, err := New(Config{
		Topo:         ls.Topology,
		ChannelState: true,
		RetryEvery:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			src := topology.HostID(i % 6)
			dst := topology.HostID((i + 3) % 6)
			n.Inject(src, &packet.Packet{
				DstHost: uint32(dst), SrcPort: uint16(i), DstPort: 80, Proto: 6, Size: 400,
			})
			if i%32 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	defer func() { stop.Store(true); wg.Wait() }()

	for round := 0; round < 3; round++ {
		_, done, err := n.TakeSnapshot(time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case g := <-done:
			if len(g.Results) != 28 {
				t.Errorf("round %d: results = %d", round, len(g.Results))
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("channel-state snapshot %d never completed", round)
		}
	}
}
