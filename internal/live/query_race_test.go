package live

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speedlight/internal/dataplane"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// servedState is the /snapshots?epoch=N response shape the test cares
// about.
type servedState struct {
	Epoch      uint64 `json:"epoch"`
	Seq        uint64 `json:"seq"`
	Consistent bool   `json:"consistent"`
	Units      []struct {
		Unit       string `json:"unit"`
		Value      uint64 `json:"value"`
		Consistent bool   `json:"consistent"`
	} `json:"units"`
}

// TestConcurrentQueryVsIngest is the query-plane torture test: N
// goroutines hammer /snapshots and /snapshots?epoch= over real HTTP
// while the live campaign seals epoch after epoch into the store.
// Every served cut must be internally consistent — same epoch, fully
// consistent units under a consistent verdict — and immutable: two
// reads of the same epoch, however far apart and however much the
// store compacted in between, must return byte-identical cuts.
// Run with -race, this also proves ingestion and the query plane
// share no unsynchronized state.
func TestConcurrentQueryVsIngest(t *testing.T) {
	ls := leafSpine(t)
	store := snapstore.New(snapstore.Config{Retention: 32, CheckpointEvery: 4})
	eng := invariant.New(invariant.Config{})
	// A continuously-evaluated invariant that holds throughout: packet
	// counters never regress.
	var units []dataplane.UnitID
	for port := 0; port < 3; port++ {
		units = append(units, dataplane.UnitID{Node: 0, Port: port, Dir: dataplane.Ingress})
	}
	eng.Register(invariant.Monotone("counters-monotone", units))

	var anomalies atomic.Int32
	n, err := New(Config{
		Topo:        ls.Topology,
		Journal:     journal.NewSet(1 << 12),
		Registry:    telemetry.NewRegistry(),
		MetricsAddr: "127.0.0.1:0",
		Snapstore:   store,
		Invariants:  eng,
		OnAnomaly: func(reason string, _ packet.SeqID, _ []journal.Event) {
			anomalies.Add(1)
			t.Logf("anomaly: %s", reason)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	addr := n.MetricsAddr()
	if addr == "" {
		t.Fatal("metrics server did not bind")
	}
	base := "http://" + addr

	// Traffic so sealed cuts carry real, changing counters.
	var stopTraffic atomic.Bool
	var wg sync.WaitGroup
	for h := topology.HostID(0); h < 4; h++ {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stopTraffic.Load(); i++ {
				n.Inject(h, &packet.Packet{
					DstHost: uint32((int(h) + 1 + i%5) % 6),
					SrcPort: uint16(i), DstPort: 9000, Proto: 6, Size: 200,
				})
				if i%32 == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}

	// Query hammer: each goroutine lists retained epochs, re-reads
	// random ones, and checks internal consistency plus immutability
	// against the first served copy of each epoch.
	const queriers = 8
	var (
		stopQuery atomic.Bool
		queries   atomic.Int64
		served    sync.Map // epoch -> first served units JSON
		failMu    sync.Mutex
		failure   string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
		stopQuery.Store(true)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for q := 0; q < queriers; q++ {
		q := q
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(q)))
			for !stopQuery.Load() {
				resp, err := client.Get(base + "/snapshots")
				if err != nil {
					fail("list: %v", err)
					return
				}
				var list struct {
					Epochs []struct {
						Epoch uint64 `json:"epoch"`
					} `json:"epochs"`
				}
				err = json.NewDecoder(resp.Body).Decode(&list)
				resp.Body.Close()
				if err != nil {
					fail("list decode: %v", err)
					return
				}
				if len(list.Epochs) == 0 {
					continue
				}
				target := list.Epochs[rng.Intn(len(list.Epochs))].Epoch
				resp, err = client.Get(fmt.Sprintf("%s/snapshots?epoch=%d", base, target))
				if err != nil {
					fail("state: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound {
					continue // compacted away between list and read; fine
				}
				if resp.StatusCode != http.StatusOK {
					fail("state %d: HTTP %d: %s", target, resp.StatusCode, body)
					return
				}
				var st servedState
				if err := json.Unmarshal(body, &st); err != nil {
					fail("state decode: %v", err)
					return
				}
				if st.Epoch != target {
					fail("asked for epoch %d, served %d", target, st.Epoch)
					return
				}
				if st.Consistent {
					for _, u := range st.Units {
						if !u.Consistent {
							fail("epoch %d consistent, but unit %s is not", target, u.Unit)
							return
						}
					}
				}
				unitsJSON, _ := json.Marshal(st.Units)
				if prev, loaded := served.LoadOrStore(target, string(unitsJSON)); loaded && prev.(string) != string(unitsJSON) {
					fail("epoch %d served two different cuts:\n%s\nvs\n%s", target, prev, unitsJSON)
					return
				}
				queries.Add(1)
			}
		}()
	}

	// The campaign: seal epochs while the hammer runs. Ingestion must
	// never block on readers — each snapshot completes promptly.
	const epochs = 24
	for i := 0; i < epochs; i++ {
		_, done, err := n.TakeSnapshot(time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("snapshot %d never completed: ingestion blocked?", i)
		}
	}
	stopQuery.Store(true)
	stopTraffic.Store(true)
	wg.Wait()

	if failure != "" {
		t.Fatal(failure)
	}
	if store.Sealed() != epochs {
		t.Errorf("store sealed %d epochs, want %d", store.Sealed(), epochs)
	}
	if queries.Load() == 0 {
		t.Error("no successful queries during the campaign")
	}
	st := eng.Status()
	if len(st) != 1 || st[0].Evals == 0 {
		t.Errorf("invariant never evaluated: %+v", st)
	}
	if v := st[0].Violations; v != 0 {
		t.Errorf("monotone invariant violated %d times on a clean campaign", v)
	}
	t.Logf("%d queries against %d sealed epochs, %d anomalies", queries.Load(), epochs, anomalies.Load())
}

// TestSnapstoreLagFlipsReadyz seeds artificial ingestion lag and
// checks the readiness probe reports it.
func TestSnapstoreLagFlipsReadyz(t *testing.T) {
	ls := leafSpine(t)
	store := snapstore.New(snapstore.Config{})
	n, err := New(Config{
		Topo:            ls.Topology,
		MetricsAddr:     "127.0.0.1:0",
		Snapstore:       store,
		SnapstoreLagMax: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	base := "http://" + n.MetricsAddr()

	get := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before lag, want 200", code)
	}
	// Simulate the observer racing ahead of the store: completed
	// epochs with nothing sealed.
	n.completed.Store(5)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with lag 5 > max 2, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d with failing check, want 503", code)
	}
	n.completed.Store(0)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after lag cleared, want 200", code)
	}
}
