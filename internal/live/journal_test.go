package live

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"speedlight/internal/audit"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

// TestJournalAndHealthEndpoints runs a journaled live network, takes a
// snapshot under real concurrency, and exercises the full diagnostic
// surface: /healthz, /readyz, /journal (both formats), and /audit.
func TestJournalAndHealthEndpoints(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{
		Topo:        ls.Topology,
		MetricsAddr: "127.0.0.1:0",
		Journal:     journal.NewSet(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Health().Ready() {
		t.Error("ready before Start")
	}
	n.Start()
	defer n.Stop()
	addr := n.MetricsAddr()
	if addr == "" {
		t.Fatal("metrics server did not bind")
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after Start = %d", code)
	}

	// Traffic plus one snapshot, so the journal has a full story.
	for i := 0; i < 50; i++ {
		if err := n.Inject(0, &packet.Packet{DstHost: 3, Size: 100, SrcPort: uint16(i), Proto: 6}); err != nil {
			t.Fatal(err)
		}
	}
	_, sub, err := n.TakeSnapshot(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot did not complete")
	}

	code, body := get("/journal")
	if code != http.StatusOK {
		t.Fatalf("/journal = %d", code)
	}
	first := body
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		first = body[:i]
	}
	var ev journal.Event
	if err := json.Unmarshal(first, &ev); err != nil {
		t.Fatalf("/journal first line is not an event: %v", err)
	}
	if code, body := get("/journal?format=csv"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/journal?format=csv = %d (%d bytes)", code, len(body))
	}

	code, body = get("/audit")
	if code != http.StatusOK {
		t.Fatalf("/audit = %d: %s", code, body)
	}
	var rep audit.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/audit is not a report: %v", err)
	}
	if len(rep.Verdicts) == 0 {
		t.Fatal("audit saw no snapshots")
	}
	for _, v := range rep.Verdicts {
		if v.Kind == audit.Inconsistent {
			t.Errorf("snapshot %d audited inconsistent: %s", v.SnapshotID, v.Cause)
		}
	}
	if rep.Disagreements != 0 {
		t.Errorf("%d auditor/observer disagreements", rep.Disagreements)
	}

	n.Stop()
	if n.Health().Ready() {
		t.Error("still ready after Stop")
	}
}

// TestLiveCleanRunNoAnomaly: the OnAnomaly hook is wired through the
// live runtime but must stay silent on a clean start/stop. The
// deterministic fault-injection coverage lives in the emunet tests.
func TestLiveCleanRunNoAnomaly(t *testing.T) {
	var dumps int
	ls := leafSpine(t)
	n, err := New(Config{
		Topo:    ls.Topology,
		Journal: journal.NewSet(0),
		OnAnomaly: func(reason string, id packet.SeqID, dump []journal.Event) {
			t.Errorf("clean run fired anomaly %q for snapshot %d (%d events)", reason, id, len(dump))
			dumps++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Stop()
	if dumps != 0 {
		t.Errorf("clean start/stop fired %d dumps", dumps)
	}
}
