package live

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speedlight/internal/packet"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// TestTelemetryUnderLoad runs a full instrumented deployment — metrics
// server included — with concurrent traffic and snapshots, then checks
// the counters, spans, and HTTP endpoints agree with what happened.
// Under -race this also proves the instrumentation is data-race free.
func TestTelemetryUnderLoad(t *testing.T) {
	ls := leafSpine(t)
	var delivered atomic.Int64
	n, err := New(Config{
		Topo:        ls.Topology,
		MetricsAddr: "127.0.0.1:0",
		OnDeliver:   func(*packet.Packet, topology.HostID) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	if n.Registry() == nil || n.Tracer() == nil {
		t.Fatal("MetricsAddr did not auto-create registry and tracer")
	}
	addr := n.MetricsAddr()
	if addr == "" {
		t.Fatal("metrics server not bound")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			src := topology.HostID(i % 6)
			dst := topology.HostID((i + 2) % 6)
			n.Inject(src, &packet.Packet{
				DstHost: uint32(dst), SrcPort: uint16(i), DstPort: 80, Proto: 6, Size: 200,
			})
			if i%32 == 0 {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	defer func() { stop.Store(true); wg.Wait() }()

	const rounds = 3
	for i := 0; i < rounds; i++ {
		_, done, err := n.TakeSnapshot(time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("snapshot %d timed out", i)
		}
	}

	// Scrape the endpoints while traffic is still flowing.
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"speedlight_obs_snapshots_begun_total 3",
		"speedlight_obs_snapshots_completed_total 3",
		"speedlight_dp_packets_ingress_total",
		"speedlight_cp_notifs_serviced_total",
		"speedlight_live_events_total",
		"speedlight_obs_completion_latency_us_bucket",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "speedlight") {
		t.Error("/debug/vars missing speedlight map")
	}
	if trace := get("/trace"); !strings.Contains(trace, "traceEvents") {
		t.Error("/trace is not Chrome trace_event JSON")
	}
	if pprof := get("/debug/pprof/cmdline"); pprof == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	// Counters must agree with observed facts.
	reg := n.Registry()
	begun := reg.Counter("speedlight_obs_snapshots_begun_total", "")
	if got := begun.Value(); got != rounds {
		t.Errorf("begun = %d, want %d", got, rounds)
	}
	lat := reg.Histogram("speedlight_obs_completion_latency_us", "", telemetry.LatencyBucketsUS)
	if got := lat.Count(); got != rounds {
		t.Errorf("completion latency observations = %d, want %d", got, rounds)
	}
	deliveredMetric := reg.Counter("speedlight_live_packets_delivered_total", "")
	if got, saw := deliveredMetric.Value(), delivered.Load(); got == 0 || int64(got) > saw {
		t.Errorf("delivered counter %d disagrees with callback count %d", got, saw)
	}

	spans := n.Tracer().Spans()
	if len(spans) != rounds {
		t.Fatalf("spans = %d, want %d", len(spans), rounds)
	}
	for _, sp := range spans {
		if !sp.Complete {
			t.Errorf("span %d incomplete", sp.ID)
		}
		if len(sp.Devices) != 4 {
			t.Errorf("span %d device spans = %d, want 4", sp.ID, len(sp.Devices))
		}
	}
}

// TestTelemetryDisabledIsNil checks the disabled state: no registry, no
// tracer, no metrics server — and the network still works.
func TestTelemetryDisabledIsNil(t *testing.T) {
	ls := leafSpine(t)
	n, err := New(Config{Topo: ls.Topology})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	if n.Registry() != nil || n.Tracer() != nil || n.MetricsAddr() != "" {
		t.Error("telemetry objects exist without opt-in")
	}
	_, done, err := n.TakeSnapshot(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot timed out with telemetry disabled")
	}
}
