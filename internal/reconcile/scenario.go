package reconcile

import (
	"fmt"
	"math/rand"

	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// Step is one desired-state change in a churn scenario.
type Step struct {
	// At is the step's offset from the scenario's schedule time.
	At sim.Duration
	// Label names the step in logs and failures.
	Label string
	// Mutate edits the desired state; the controller converges
	// immediately afterwards in the same global-domain event.
	Mutate func(s *Spec)
}

// Scenario is a scripted churn schedule. Builders below produce the
// seeded suite the tests run; schedules are fully determined at build
// time (any randomness comes from the caller's seeded source), so the
// same scenario replays identically on every engine and shard count.
type Scenario struct {
	Name  string
	Steps []Step
}

// Schedule arms every step on the controller's global-domain proc,
// offsets measured from the current time. Each step mutates desired
// state and immediately runs one convergence pass; the periodic
// watcher (if started) covers any drift in between.
func (sc *Scenario) Schedule(c *Controller) {
	for i := range sc.Steps {
		step := sc.Steps[i]
		c.cfg.Proc.After(step.At, func() {
			step.Mutate(&c.desired)
			c.Reconcile()
		})
	}
}

// RollingUpgrade takes the given switches down and back up one at a
// time, stagger apart, each staying down for downFor — a rolling
// reboot across the fabric. With stagger > downFor at most one switch
// is out at any moment.
func RollingUpgrade(nodes []topology.NodeID, start, downFor, stagger sim.Duration) *Scenario {
	sc := &Scenario{Name: "rolling-upgrade"}
	for i, node := range nodes {
		node := node
		at := start + sim.Duration(i)*stagger
		sc.Steps = append(sc.Steps,
			Step{At: at, Label: fmt.Sprintf("down switch %d", node),
				Mutate: func(s *Spec) { s.SetSwitchDown(node, true) }},
			Step{At: at + downFor, Label: fmt.Sprintf("up switch %d", node),
				Mutate: func(s *Spec) { s.SetSwitchDown(node, false) }},
		)
	}
	return sc
}

// LinkFlapStorm drains and restores random fabric links: flaps
// flap events drawn from r (which the caller seeds), starting at
// start, with successive flaps up to maxGap apart and each drained
// interval up to maxDown long. The schedule is drawn entirely at
// build time, so one storm replays identically everywhere.
func LinkFlapStorm(links []Link, r *rand.Rand, start sim.Duration, flaps int, maxGap, maxDown sim.Duration) *Scenario {
	sc := &Scenario{Name: "link-flap-storm"}
	at := start
	for i := 0; i < flaps; i++ {
		l := links[r.Intn(len(links))]
		downFor := sim.Duration(1 + r.Int63n(int64(maxDown)))
		sc.Steps = append(sc.Steps,
			Step{At: at, Label: fmt.Sprintf("flap down %d/%d", l.A.Node, l.A.Port),
				Mutate: func(s *Spec) { s.SetLinkDown(l, true) }},
			Step{At: at + downFor, Label: fmt.Sprintf("flap up %d/%d", l.A.Node, l.A.Port),
				Mutate: func(s *Spec) { s.SetLinkDown(l, false) }},
		)
		at += sim.Duration(1 + r.Int63n(int64(maxGap)))
	}
	return sc
}

// PartitionAndHeal drains the given link cut-set at once — chosen by
// the caller to sever the fabric — and restores it healAfter later.
func PartitionAndHeal(cut []Link, at, healAfter sim.Duration) *Scenario {
	cut = append([]Link(nil), cut...)
	return &Scenario{
		Name: "partition-and-heal",
		Steps: []Step{
			{At: at, Label: "partition", Mutate: func(s *Spec) {
				for _, l := range cut {
					s.SetLinkDown(l, true)
				}
			}},
			{At: at + healAfter, Label: "heal", Mutate: func(s *Spec) {
				for _, l := range cut {
					s.SetLinkDown(l, false)
				}
			}},
		},
	}
}

// ProvisioningRamp models staged capacity bring-up: the given switches
// all leave at start (not yet provisioned), then return one at a time,
// stagger apart, each followed by a config re-push once it is back.
func ProvisioningRamp(nodes []topology.NodeID, start, stagger sim.Duration) *Scenario {
	nodes = append([]topology.NodeID(nil), nodes...)
	sc := &Scenario{Name: "provisioning-ramp"}
	sc.Steps = append(sc.Steps, Step{
		At: start, Label: "deprovision all",
		Mutate: func(s *Spec) {
			for _, node := range nodes {
				s.SetSwitchDown(node, true)
			}
		},
	})
	for i, node := range nodes {
		node := node
		sc.Steps = append(sc.Steps, Step{
			At:    start + sim.Duration(i+1)*stagger,
			Label: fmt.Sprintf("provision switch %d", node),
			Mutate: func(s *Spec) {
				s.SetSwitchDown(node, false)
				s.BumpConfig(node)
			},
		})
	}
	return sc
}
