package reconcile

import (
	"math/rand"
	"testing"

	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// fakeFabric is an in-memory Fabric for controller unit tests.
type fakeFabric struct {
	topo     *topology.Topology
	swDown   map[topology.NodeID]bool
	lnDown   map[Endpoint]bool
	pushes   []topology.NodeID
	reroutes int
}

func newFakeFabric(t *testing.T) *fakeFabric {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeFabric{
		topo:   ls.Topology,
		swDown: make(map[topology.NodeID]bool),
		lnDown: make(map[Endpoint]bool),
	}
}

func (f *fakeFabric) Topo() *topology.Topology                 { return f.topo }
func (f *fakeFabric) SwitchIsDown(n topology.NodeID) bool      { return f.swDown[n] }
func (f *fakeFabric) LinkIsDown(n topology.NodeID, p int) bool { return f.lnDown[f.canon(n, p)] }
func (f *fakeFabric) SetSwitchDown(n topology.NodeID) error    { f.swDown[n] = true; return nil }
func (f *fakeFabric) SetSwitchUp(n topology.NodeID) error      { f.swDown[n] = false; return nil }
func (f *fakeFabric) SetLinkDown(n topology.NodeID, p int) error {
	f.lnDown[f.canon(n, p)] = true
	return nil
}
func (f *fakeFabric) SetLinkUp(n topology.NodeID, p int) error {
	f.lnDown[f.canon(n, p)] = false
	return nil
}
func (f *fakeFabric) PushConfig(n topology.NodeID) error { f.pushes = append(f.pushes, n); return nil }
func (f *fakeFabric) Reroute()                           { f.reroutes++ }

func (f *fakeFabric) canon(n topology.NodeID, p int) Endpoint {
	if peer := f.topo.Peer(n, p); peer.Kind == topology.PeerSwitch && peer.Node < n {
		return Endpoint{Node: peer.Node, Port: peer.Port}
	}
	return Endpoint{Node: n, Port: p}
}

func TestReconcileConvergesAndIsIdempotent(t *testing.T) {
	f := newFakeFabric(t)
	c, err := New(Config{Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh controller over a fresh fabric: nothing to do.
	if ops := c.Reconcile(); ops != 0 {
		t.Fatalf("converged controller applied %d ops, want 0", ops)
	}

	links := c.Links()
	if len(links) != 4 {
		t.Fatalf("2x2 leaf-spine has %d links, want 4", len(links))
	}
	c.Desired().SetSwitchDown(f.topo.Switches[0].ID, true)
	c.Desired().SetLinkDown(links[1], true)

	ops := c.Reconcile()
	if ops != 3 { // switch down + link down + reroute
		t.Fatalf("first pass applied %d ops, want 3 (got log %v)", ops, c.Log())
	}
	if !f.SwitchIsDown(f.topo.Switches[0].ID) {
		t.Error("switch not taken down")
	}
	if !f.LinkIsDown(links[1].A.Node, links[1].A.Port) {
		t.Error("link not drained")
	}
	if f.reroutes != 1 {
		t.Errorf("reroutes = %d, want 1", f.reroutes)
	}
	// Idempotency: actual now matches desired.
	if ops := c.Reconcile(); ops != 0 {
		t.Fatalf("second pass applied %d ops, want 0", ops)
	}

	// Restore everything; downs and ups both converge.
	c.Desired().SetSwitchDown(f.topo.Switches[0].ID, false)
	c.Desired().SetLinkDown(links[1], false)
	if ops := c.Reconcile(); ops != 3 {
		t.Fatalf("restore pass applied %d ops, want 3", ops)
	}
	if f.SwitchIsDown(f.topo.Switches[0].ID) || f.LinkIsDown(links[1].A.Node, links[1].A.Port) {
		t.Error("restore did not converge")
	}
}

func TestReconcileOrdersTeardownBeforeRestore(t *testing.T) {
	f := newFakeFabric(t)
	c, err := New(Config{Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	// One switch is already down and should come up; another should go
	// down. The pass must apply the teardown first (capacity leaves
	// before it returns, never double-counted).
	down := f.topo.Switches[1].ID
	f.swDown[down] = true
	c2, err := New(Config{Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	_ = c // first controller unused beyond topology sanity
	c2.Desired().SetSwitchDown(down, false)
	c2.Desired().SetSwitchDown(f.topo.Switches[0].ID, true)
	c2.Reconcile()
	log := c2.Log()
	if len(log) < 2 {
		t.Fatalf("log too short: %v", log)
	}
	if log[0].Kind != OpSwitchDown || log[1].Kind != OpSwitchUp {
		t.Fatalf("pass order = %v %v, want switch_down then switch_up", log[0].Kind, log[1].Kind)
	}
}

func TestReconcileConfigPushWaitsForSwitchUp(t *testing.T) {
	f := newFakeFabric(t)
	c, err := New(Config{Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	node := f.topo.Switches[0].ID
	c.Desired().SetSwitchDown(node, true)
	c.Reconcile()
	c.Desired().BumpConfig(node)
	c.Reconcile()
	if len(f.pushes) != 0 {
		t.Fatalf("config pushed to a down switch: %v", f.pushes)
	}
	c.Desired().SetSwitchDown(node, false)
	c.Reconcile()
	if len(f.pushes) != 1 || f.pushes[0] != node {
		t.Fatalf("pushes = %v, want [%d] once the switch returned", f.pushes, node)
	}
	// The generation was consumed; no repeat push.
	c.Reconcile()
	if len(f.pushes) != 1 {
		t.Fatalf("config push repeated: %v", f.pushes)
	}
}

func TestNewAdoptsActualState(t *testing.T) {
	f := newFakeFabric(t)
	down := f.topo.Switches[2].ID
	f.swDown[down] = true
	c, err := New(Config{Fabric: f})
	if err != nil {
		t.Fatal(err)
	}
	if ops := c.Reconcile(); ops != 0 {
		t.Fatalf("adopting controller applied %d ops, want 0", ops)
	}
	if !c.Desired().SwitchDown(down) {
		t.Error("actual down state not adopted into desired")
	}
}

func TestScenarioBuildersDeterministic(t *testing.T) {
	f := newFakeFabric(t)
	links := Links(f.topo)
	nodes := []topology.NodeID{f.topo.Switches[0].ID, f.topo.Switches[1].ID}

	ru := RollingUpgrade(nodes, sim.Millisecond, 2*sim.Millisecond, 5*sim.Millisecond)
	if len(ru.Steps) != 4 {
		t.Errorf("rolling upgrade of 2 switches has %d steps, want 4", len(ru.Steps))
	}
	ph := PartitionAndHeal(links[:2], sim.Millisecond, 3*sim.Millisecond)
	if len(ph.Steps) != 2 {
		t.Errorf("partition-and-heal has %d steps, want 2", len(ph.Steps))
	}
	pr := ProvisioningRamp(nodes, sim.Millisecond, 2*sim.Millisecond)
	if len(pr.Steps) != 3 {
		t.Errorf("provisioning ramp has %d steps, want 3", len(pr.Steps))
	}
	// Two storms from identically seeded sources are identical.
	mk := func() *Scenario {
		r := rand.New(rand.NewSource(7))
		return LinkFlapStorm(links, r, sim.Millisecond, 6, sim.Millisecond, sim.Millisecond)
	}
	a, b := mk(), mk()
	if len(a.Steps) != len(b.Steps) || len(a.Steps) != 12 {
		t.Fatalf("storm steps %d vs %d, want 12", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i].At != b.Steps[i].At || a.Steps[i].Label != b.Steps[i].Label {
			t.Fatalf("storm step %d differs: %v vs %v", i, a.Steps[i], b.Steps[i])
		}
	}
}
