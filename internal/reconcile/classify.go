package reconcile

import (
	"fmt"
	"math"
	"sort"

	"speedlight/internal/audit"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

// Outcome grades what one churn event did to the snapshots it
// overlapped, in ascending severity.
type Outcome int

const (
	// OutcomeClean: no overlapping snapshot was hurt — every epoch the
	// change touched still finalized consistent with no exclusions
	// (or the change landed between epochs).
	OutcomeClean Outcome = iota
	// OutcomeExcluded: an overlapping snapshot finalized with devices
	// excluded, or never finalized — the paper's §6 escape hatch for
	// unreachable devices paid for this churn event.
	OutcomeExcluded
	// OutcomeInconsistentCaught: an overlapping snapshot lost
	// consistency and the protocol (observer or auditor, agreeing)
	// caught it — detected damage, not silent damage.
	OutcomeInconsistentCaught
	// OutcomeSilentDisagreement: the auditor proved a violation in an
	// overlapping snapshot that the observer published as consistent.
	// A defect; churn suites assert zero of these.
	OutcomeSilentDisagreement
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeExcluded:
		return "excluded"
	case OutcomeInconsistentCaught:
		return "inconsistent-caught"
	case OutcomeSilentDisagreement:
		return "silent-disagreement"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Classified is one churn event with its snapshot verdict.
type Classified struct {
	// Event is the journaled churn record (Kind == KindChurn).
	Event journal.Event
	// Op names the churn operation.
	Op string
	// Snapshots lists the overlapping snapshot IDs, ascending.
	Snapshots []packet.SeqID
	// Outcome is the worst grade over the overlapping snapshots.
	Outcome Outcome
}

// window is one global snapshot's observed lifetime.
type window struct {
	id       packet.SeqID
	begin    int64
	end      int64 // math.MaxInt64 while un-finalized
	excluded uint64
	obsSeen  bool
	obsCons  bool
}

// Classify grades every churn event in the journal against the
// snapshot lifetimes around it and the audit's verdicts: a churn
// event "touches" the snapshots whose observer lifetime (ObsBegin to
// ObsComplete, open-ended if never finalized) contains its timestamp.
// The grade is the worst outcome over the touched snapshots —
// silent disagreement > inconsistent-caught > excluded > clean.
// Events touching no snapshot are clean by definition: the fabric
// changed between epochs.
func Classify(events []journal.Event, rep *audit.Report) []Classified {
	var wins []*window
	byID := make(map[packet.SeqID]*window)
	churn := make([]journal.Event, 0, 16)
	for _, ev := range events {
		switch ev.Kind {
		case journal.KindObsBegin:
			w := &window{id: ev.SnapshotID, begin: ev.AtNs, end: math.MaxInt64}
			wins = append(wins, w)
			byID[ev.SnapshotID] = w
		case journal.KindObsComplete:
			if w := byID[ev.SnapshotID]; w != nil {
				w.end = ev.AtNs
				w.excluded = ev.Value
				w.obsSeen = true
				w.obsCons = ev.Flag
			}
		case journal.KindChurn:
			churn = append(churn, ev)
		}
	}

	verdicts := make(map[packet.SeqID]*audit.Verdict)
	if rep != nil {
		for i := range rep.Verdicts {
			verdicts[rep.Verdicts[i].SnapshotID] = &rep.Verdicts[i]
		}
	}

	out := make([]Classified, 0, len(churn))
	for _, ev := range churn {
		c := Classified{Event: ev, Op: journal.ChurnOpName(ev.Value), Outcome: OutcomeClean}
		for _, w := range wins {
			if ev.AtNs < w.begin || ev.AtNs > w.end {
				continue
			}
			c.Snapshots = append(c.Snapshots, w.id)
			if g := grade(w, verdicts[w.id]); g > c.Outcome {
				c.Outcome = g
			}
		}
		sort.Slice(c.Snapshots, func(i, j int) bool { return c.Snapshots[i] < c.Snapshots[j] })
		out = append(out, c)
	}
	return out
}

// grade is one snapshot's contribution to a churn event's outcome.
func grade(w *window, v *audit.Verdict) Outcome {
	if v != nil && v.Disagreement {
		return OutcomeSilentDisagreement
	}
	// Detected inconsistency: the auditor proved it, or the observer
	// (conservative by design) flagged it first.
	if v != nil && v.Kind == audit.Inconsistent {
		return OutcomeInconsistentCaught
	}
	if w.obsSeen && !w.obsCons {
		return OutcomeInconsistentCaught
	}
	// Exclusions, or a snapshot the run never finalized.
	if w.excluded > 0 || !w.obsSeen {
		return OutcomeExcluded
	}
	if v != nil && v.Kind == audit.Incomplete {
		return OutcomeExcluded
	}
	return OutcomeClean
}

// Tally aggregates classification outcomes.
type Tally struct {
	Clean              int
	Excluded           int
	InconsistentCaught int
	SilentDisagreement int
}

// TallyOutcomes counts outcomes over a classification.
func TallyOutcomes(cs []Classified) Tally {
	var t Tally
	for _, c := range cs {
		switch c.Outcome {
		case OutcomeClean:
			t.Clean++
		case OutcomeExcluded:
			t.Excluded++
		case OutcomeInconsistentCaught:
			t.InconsistentCaught++
		case OutcomeSilentDisagreement:
			t.SilentDisagreement++
		}
	}
	return t
}

// String renders the tally as a compact summary line.
func (t Tally) String() string {
	return fmt.Sprintf("clean=%d excluded=%d inconsistent-caught=%d silent-disagreement=%d",
		t.Clean, t.Excluded, t.InconsistentCaught, t.SilentDisagreement)
}
