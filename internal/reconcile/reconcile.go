// Package reconcile is the fabric reconciliation controller: a
// desired-vs-actual control loop over the emulated network's runtime
// membership, modeled on the watcher → diff → reconcile architecture
// of ONOS-style device provisioners. A Spec declares which switches
// and links should be out of service; the controller watches the
// fabric on a fixed period, diffs the declaration against actual
// state, and applies the missing operations — switch teardown and
// re-provisioning, link drain and re-add, forwarding reconvergence —
// through the Fabric interface.
//
// Everything the controller does runs as deterministic events in the
// simulation's serialized global domain, so runtime topology mutation
// preserves the serial-vs-sharded byte-identical artifact contract.
// Scenarios (see scenario.go) script seeded churn schedules against a
// controller, and Classify (classify.go) grades every churn event's
// snapshot outcome from the journal and the audit report.
package reconcile

import (
	"fmt"
	"sort"

	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// Fabric is the actual-state surface the controller reconciles
// against. *emunet.Network implements it.
type Fabric interface {
	// Topo returns the static wiring; churn toggles elements of it in
	// and out of service but never rewires it.
	Topo() *topology.Topology

	SwitchIsDown(node topology.NodeID) bool
	LinkIsDown(node topology.NodeID, port int) bool

	SetSwitchDown(node topology.NodeID) error
	SetSwitchUp(node topology.NodeID) error
	SetLinkDown(node topology.NodeID, port int) error
	SetLinkUp(node topology.NodeID, port int) error

	// PushConfig re-pushes one switch's forwarding config (the
	// reconciler's answer to config-generation drift).
	PushConfig(node topology.NodeID) error
	// Reroute reconverges forwarding around the current down set.
	Reroute()
}

// Endpoint names one side of a fabric link.
type Endpoint struct {
	Node topology.NodeID
	Port int
}

// Link is a switch-to-switch link, keyed by its canonical endpoint:
// the (node, port) pair with the smaller node ID (ports of one link
// never share a node in these topologies).
type Link struct {
	A, B Endpoint // A is canonical: A.Node < B.Node
}

// Links enumerates a topology's switch-to-switch links in canonical
// deterministic order.
func Links(t *topology.Topology) []Link {
	var out []Link
	for _, sw := range t.Switches {
		for p, peer := range sw.Ports {
			if peer.Kind != topology.PeerSwitch || peer.Node < sw.ID {
				continue // the lower-ID endpoint owns the link
			}
			out = append(out, Link{
				A: Endpoint{Node: sw.ID, Port: p},
				B: Endpoint{Node: peer.Node, Port: peer.Port},
			})
		}
	}
	return out
}

// Spec is the desired fabric state: which elements should be out of
// service, and each switch's desired config generation. The zero Spec
// wants everything up.
type Spec struct {
	switchDown map[topology.NodeID]bool
	linkDown   map[Endpoint]bool
	configGen  map[topology.NodeID]uint64
}

// SetSwitchDown declares a switch's desired service state.
func (s *Spec) SetSwitchDown(node topology.NodeID, down bool) {
	if s.switchDown == nil {
		s.switchDown = make(map[topology.NodeID]bool)
	}
	s.switchDown[node] = down
}

// SetLinkDown declares a link's desired service state, addressed by
// either endpoint.
func (s *Spec) SetLinkDown(l Link, down bool) {
	if s.linkDown == nil {
		s.linkDown = make(map[Endpoint]bool)
	}
	s.linkDown[l.A] = down
}

// BumpConfig asks for one switch's forwarding config to be re-pushed
// on the next convergence pass.
func (s *Spec) BumpConfig(node topology.NodeID) {
	if s.configGen == nil {
		s.configGen = make(map[topology.NodeID]uint64)
	}
	s.configGen[node]++
}

// SwitchDown reports the desired state of a switch.
func (s *Spec) SwitchDown(node topology.NodeID) bool { return s.switchDown[node] }

// LinkDown reports the desired state of a link.
func (s *Spec) LinkDown(l Link) bool { return s.linkDown[l.A] }

// Op is one reconciliation operation the controller applied.
type Op struct {
	At   sim.Time
	Kind OpKind
	Node topology.NodeID // switch ops and link ops (canonical endpoint)
	Port int             // link ops; -1 otherwise
}

// OpKind enumerates reconciliation operations.
type OpKind int

// Reconciliation operation kinds, in the order one convergence pass
// applies them.
const (
	OpSwitchDown OpKind = iota
	OpLinkDown
	OpLinkUp
	OpSwitchUp
	OpPushConfig
	OpReroute
)

// String returns the op kind's name.
func (k OpKind) String() string {
	switch k {
	case OpSwitchDown:
		return "switch_down"
	case OpLinkDown:
		return "link_down"
	case OpLinkUp:
		return "link_up"
	case OpSwitchUp:
		return "switch_up"
	case OpPushConfig:
		return "push_config"
	case OpReroute:
		return "reroute"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Config parameterizes a controller.
type Config struct {
	// Fabric is the actual state being reconciled. Required.
	Fabric Fabric
	// Proc schedules the watcher; it must be the engine's global-domain
	// handle so reconciliation serializes against every shard. Required
	// for Start; Reconcile alone works without it.
	Proc sim.Proc
	// Interval is the watch period. Zero defaults to 500 µs.
	Interval sim.Duration
	// AutoReroute reconverges forwarding at the end of every pass that
	// applied at least one membership change. On by default via New.
	AutoReroute bool
}

// Controller drives desired state into the fabric.
type Controller struct {
	cfg     Config
	desired Spec
	links   []Link
	// pushedGen tracks the config generation last pushed per switch.
	pushedGen map[topology.NodeID]uint64
	log       []Op
	ticker    *sim.Ticker
}

// New builds a controller with AutoReroute on. The fabric is adopted
// as-is: actual state becomes desired state, so a freshly built
// controller converges with zero operations.
func New(cfg Config) (*Controller, error) {
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("reconcile: nil fabric")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * sim.Microsecond
	}
	cfg.AutoReroute = true
	c := &Controller{
		cfg:       cfg,
		links:     Links(cfg.Fabric.Topo()),
		pushedGen: make(map[topology.NodeID]uint64),
	}
	for _, sw := range cfg.Fabric.Topo().Switches {
		if cfg.Fabric.SwitchIsDown(sw.ID) {
			c.desired.SetSwitchDown(sw.ID, true)
		}
	}
	for _, l := range c.links {
		if cfg.Fabric.LinkIsDown(l.A.Node, l.A.Port) {
			c.desired.SetLinkDown(l, true)
		}
	}
	return c, nil
}

// Desired exposes the desired-state spec for mutation. Mutate it only
// from global-domain events (a scenario step, a driver between runs),
// then either call Reconcile directly or let the watcher converge.
func (c *Controller) Desired() *Spec { return &c.desired }

// Links returns the fabric's links in canonical order.
func (c *Controller) Links() []Link { return c.links }

// Start arms the periodic watcher. Stop disarms it.
func (c *Controller) Start() {
	if c.ticker != nil {
		return
	}
	c.ticker = c.cfg.Proc.NewTicker(c.cfg.Interval, func() { c.Reconcile() })
}

// Stop disarms the watcher.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

// Log returns every operation applied so far, in application order.
func (c *Controller) Log() []Op { return c.log }

// Reconcile runs one convergence pass: diff desired against actual in
// deterministic order and apply what differs — teardowns first
// (switches, then link drains), then restorations (link re-adds, then
// switch re-provisioning), then config pushes, then one forwarding
// reconvergence if anything moved. Returns the number of operations
// applied. Global-domain or driver context only.
//
//speedlight:global-only
func (c *Controller) Reconcile() int {
	f := c.cfg.Fabric
	now := sim.Time(0)
	if c.cfg.Proc != nil {
		now = c.cfg.Proc.Now()
	}
	nodes := c.sortedNodes()
	moved := 0

	apply := func(kind OpKind, node topology.NodeID, port int, err error) {
		if err != nil {
			// Diff-driven ops target elements proven to exist; an error
			// here is a programming bug, not a runtime condition.
			panic(fmt.Sprintf("reconcile: %s %d/%d: %v", kind, node, port, err))
		}
		c.log = append(c.log, Op{At: now, Kind: kind, Node: node, Port: port})
		moved++
	}

	for _, node := range nodes {
		if c.desired.SwitchDown(node) && !f.SwitchIsDown(node) {
			apply(OpSwitchDown, node, -1, f.SetSwitchDown(node))
		}
	}
	for _, l := range c.links {
		if c.desired.LinkDown(l) && !f.LinkIsDown(l.A.Node, l.A.Port) {
			apply(OpLinkDown, l.A.Node, l.A.Port, f.SetLinkDown(l.A.Node, l.A.Port))
		}
	}
	for _, l := range c.links {
		if !c.desired.LinkDown(l) && f.LinkIsDown(l.A.Node, l.A.Port) {
			apply(OpLinkUp, l.A.Node, l.A.Port, f.SetLinkUp(l.A.Node, l.A.Port))
		}
	}
	for _, node := range nodes {
		if !c.desired.SwitchDown(node) && f.SwitchIsDown(node) {
			apply(OpSwitchUp, node, -1, f.SetSwitchUp(node))
		}
	}
	membership := moved

	// Config drift: re-push where the desired generation moved past
	// the last pushed one. Down switches wait until they return.
	for _, node := range nodes {
		want := c.desired.configGen[node]
		if want > c.pushedGen[node] && !f.SwitchIsDown(node) {
			apply(OpPushConfig, node, -1, f.PushConfig(node))
			c.pushedGen[node] = want
		}
	}

	if membership > 0 && c.cfg.AutoReroute {
		f.Reroute()
		c.log = append(c.log, Op{At: now, Kind: OpReroute, Node: -1, Port: -1})
		moved++
	}
	return moved
}

// sortedNodes returns every switch ID in ascending order.
func (c *Controller) sortedNodes() []topology.NodeID {
	t := c.cfg.Fabric.Topo()
	nodes := make([]topology.NodeID, 0, len(t.Switches))
	for _, sw := range t.Switches {
		nodes = append(nodes, sw.ID)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}
