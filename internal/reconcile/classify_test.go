package reconcile

import (
	"testing"

	"speedlight/internal/audit"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

func TestClassifyGrading(t *testing.T) {
	// Four snapshot windows with distinct fates, one churn event inside
	// each, plus one churn event between windows.
	events := []journal.Event{
		// Snapshot 1: clean window [100, 200].
		journal.ObsBegin(100, 1),
		journal.Churn(150, 2, -1, journal.ChurnSwitchDown),
		journal.ObsComplete(200, 1, true, 0),
		// Gap churn at 250: touches nothing.
		journal.Churn(250, 3, 0, journal.ChurnLinkDown),
		// Snapshot 2: finalized with exclusions, window [300, 400].
		journal.ObsBegin(300, 2),
		journal.Churn(350, 4, -1, journal.ChurnSwitchUp),
		journal.ObsComplete(400, 2, true, 2),
		// Snapshot 3: observer-flagged inconsistent, window [500, 600].
		journal.ObsBegin(500, 3),
		journal.Churn(550, 5, -1, journal.ChurnReconfig),
		journal.ObsComplete(600, 3, false, 0),
		// Snapshot 4: never finalized — open-ended from 700.
		journal.ObsBegin(700, 4),
		journal.Churn(750, 6, -1, journal.ChurnReroute),
	}
	rep := &audit.Report{Verdicts: []audit.Verdict{
		{SnapshotID: 1, Kind: audit.Consistent},
		{SnapshotID: 2, Kind: audit.Consistent},
		{SnapshotID: 3, Kind: audit.Inconsistent},
		{SnapshotID: 4, Kind: audit.Incomplete},
	}}

	cs := Classify(events, rep)
	if len(cs) != 5 {
		t.Fatalf("classified %d churn events, want 5", len(cs))
	}
	wantOutcome := []Outcome{
		OutcomeClean,              // inside snapshot 1
		OutcomeClean,              // between windows
		OutcomeExcluded,           // inside snapshot 2
		OutcomeInconsistentCaught, // inside snapshot 3
		OutcomeExcluded,           // inside never-finalized snapshot 4
	}
	wantTouch := [][]packet.SeqID{{1}, nil, {2}, {3}, {4}}
	for i, c := range cs {
		if c.Outcome != wantOutcome[i] {
			t.Errorf("event %d (%s at %d): outcome %v, want %v", i, c.Op, c.Event.AtNs, c.Outcome, wantOutcome[i])
		}
		if len(c.Snapshots) != len(wantTouch[i]) {
			t.Errorf("event %d touches %v, want %v", i, c.Snapshots, wantTouch[i])
			continue
		}
		for j := range c.Snapshots {
			if c.Snapshots[j] != wantTouch[i][j] {
				t.Errorf("event %d touches %v, want %v", i, c.Snapshots, wantTouch[i])
			}
		}
	}

	tal := TallyOutcomes(cs)
	want := Tally{Clean: 2, Excluded: 2, InconsistentCaught: 1}
	if tal != want {
		t.Errorf("tally %+v, want %+v", tal, want)
	}
	if tal.SilentDisagreement != 0 {
		t.Errorf("spurious silent disagreement: %s", tal)
	}
}

func TestClassifySilentDisagreementDominates(t *testing.T) {
	// One churn event spanning two overlapping windows: one clean, one
	// with an auditor-proven disagreement. The worst grade wins.
	events := []journal.Event{
		journal.ObsBegin(100, 1),
		journal.ObsBegin(120, 2),
		journal.Churn(150, 1, -1, journal.ChurnSwitchDown),
		journal.ObsComplete(200, 1, true, 0),
		journal.ObsComplete(220, 2, true, 0),
	}
	rep := &audit.Report{Verdicts: []audit.Verdict{
		{SnapshotID: 1, Kind: audit.Consistent},
		{SnapshotID: 2, Kind: audit.Inconsistent, Disagreement: true},
	}}
	cs := Classify(events, rep)
	if len(cs) != 1 {
		t.Fatalf("classified %d events, want 1", len(cs))
	}
	if cs[0].Outcome != OutcomeSilentDisagreement {
		t.Errorf("outcome %v, want silent-disagreement", cs[0].Outcome)
	}
	if len(cs[0].Snapshots) != 2 {
		t.Errorf("touched %v, want both snapshots", cs[0].Snapshots)
	}
	if got := TallyOutcomes(cs).SilentDisagreement; got != 1 {
		t.Errorf("silent disagreements = %d, want 1", got)
	}
}

func TestClassifyNilReport(t *testing.T) {
	// Without an audit report, classification falls back to observer
	// verdicts alone.
	events := []journal.Event{
		journal.ObsBegin(100, 1),
		journal.Churn(150, 1, -1, journal.ChurnLinkDown),
		journal.ObsComplete(200, 1, false, 0),
	}
	cs := Classify(events, nil)
	if len(cs) != 1 || cs[0].Outcome != OutcomeInconsistentCaught {
		t.Fatalf("classify without report = %+v, want one inconsistent-caught", cs)
	}
}
