package invariant

import (
	"fmt"

	"speedlight/internal/dataplane"
	"speedlight/internal/snapstore"
	"speedlight/internal/stats"
)

// Order asserts a rollout ordering between two units: Before must
// never lag After. A cut where After's register exceeds Before's is
// the classic migration hazard — e.g. a leaf forwarding on FIB v2
// while its counterpart still announces v1 opens a forwarding-loop
// window (the loopdetect example's impossible state). Units absent
// from the cut are not compared.
func Order(name string, before, after dataplane.UnitID) Invariant {
	return &orderInv{name: name, before: before, after: after}
}

type orderInv struct {
	name          string
	before, after dataplane.UnitID
}

func (o *orderInv) Name() string { return o.name }

func (o *orderInv) Eval(_ *snapstore.View, st *snapstore.State) (string, bool) {
	b, okB := st.Value(o.before)
	a, okA := st.Value(o.after)
	if !okB || !okA {
		return "", true
	}
	if a.Value > b.Value {
		return fmt.Sprintf("%s=%d ahead of %s=%d (loop window)", o.after, a.Value, o.before, b.Value), false
	}
	return "", true
}

// Skew asserts load balance across a unit group: the population
// stddev of the group's registers must not exceed maxFrac of the group
// mean (coefficient of variation). The loadbalance example's uplink
// skew check, evaluated continuously. Groups with fewer than two
// present units, or a zero mean, trivially hold.
func Skew(name string, group []dataplane.UnitID, maxFrac float64) Invariant {
	return &skewInv{name: name, group: group, maxFrac: maxFrac}
}

type skewInv struct {
	name    string
	group   []dataplane.UnitID
	maxFrac float64
}

func (s *skewInv) Name() string { return s.name }

func (s *skewInv) Eval(_ *snapstore.View, st *snapstore.State) (string, bool) {
	xs := make([]float64, 0, len(s.group))
	for _, u := range s.group {
		if r, ok := st.Value(u); ok {
			xs = append(xs, float64(r.Value))
		}
	}
	if len(xs) < 2 {
		return "", true
	}
	mean := stats.Mean(xs)
	if mean == 0 {
		return "", true
	}
	cv := stats.PopStddev(xs) / mean
	if cv > s.maxFrac {
		return fmt.Sprintf("group stddev/mean %.3f exceeds %.3f (mean %.1f over %d units)", cv, s.maxFrac, mean, len(xs)), false
	}
	return "", true
}

// Bound asserts provisioning headroom: at most maxOver of the given
// units may carry a register above threshold in the same cut. The
// provisioning example's concurrent-load check — one hot uplink is
// routine, several at once in a single consistent cut is the
// under-provisioning signal a sequential poll would miss.
func Bound(name string, units []dataplane.UnitID, threshold uint64, maxOver int) Invariant {
	return &boundInv{name: name, units: units, threshold: threshold, maxOver: maxOver}
}

type boundInv struct {
	name      string
	units     []dataplane.UnitID
	threshold uint64
	maxOver   int
}

func (b *boundInv) Name() string { return b.name }

func (b *boundInv) Eval(_ *snapstore.View, st *snapstore.State) (string, bool) {
	over := 0
	for _, u := range b.units {
		if r, ok := st.Value(u); ok && r.Value > b.threshold {
			over++
		}
	}
	if over > b.maxOver {
		return fmt.Sprintf("%d units above %d concurrently (max %d)", over, b.threshold, b.maxOver), false
	}
	return "", true
}

// Monotone asserts that the given units' registers never decrease
// between consecutive retained epochs — the expected shape of packet
// and byte counters outside wraparound. Units absent from either cut
// are not compared.
func Monotone(name string, units []dataplane.UnitID) Invariant {
	return &monotoneInv{name: name, units: units}
}

type monotoneInv struct {
	name  string
	units []dataplane.UnitID
}

func (m *monotoneInv) Name() string { return m.name }

func (m *monotoneInv) Eval(v *snapstore.View, st *snapstore.State) (string, bool) {
	prev := previousState(v, st)
	if prev == nil {
		return "", true
	}
	for _, u := range m.units {
		cur, okCur := st.Value(u)
		old, okOld := prev.Value(u)
		if okCur && okOld && cur.Value < old.Value {
			return fmt.Sprintf("%s regressed %d -> %d between epochs %d and %d",
				u, old.Value, cur.Value, prev.Epoch.ID, st.Epoch.ID), false
		}
	}
	return "", true
}

// previousState reconstructs the cut sealed immediately before st's
// epoch, or nil when st is the oldest retained epoch.
func previousState(v *snapstore.View, st *snapstore.State) *snapstore.State {
	epochs := v.Epochs()
	for i := len(epochs) - 1; i > 0; i-- {
		if epochs[i].ID == st.Epoch.ID {
			prev, err := v.State(epochs[i-1].ID)
			if err != nil {
				return nil
			}
			return prev
		}
	}
	return nil
}
