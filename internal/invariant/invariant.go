// Package invariant is the streaming invariant engine: global
// predicates over consistent cuts, evaluated continuously as the
// snapshot store seals epochs.
//
// The examples' one-shot analyses — forwarding-loop windows, uplink
// load-balance skew, provisioning headroom — become registered
// invariants: every sealed epoch streams through all of them, each
// verdict is counted in labeled telemetry, and violations flow into a
// bounded history, the OnViolation hook (normally the network's
// OnAnomaly flight-recorder path), and the /invariants query endpoint.
//
// Concurrency contract: Eval must be called from a single goroutine —
// the same completion path that seals store epochs. Register is
// setup-time. Status, Violations, and the HTTP handler are safe from
// any goroutine at any time.
package invariant

import (
	"fmt"
	"sync"

	"speedlight/internal/packet"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
)

// Invariant is one continuously-evaluated predicate over consistent
// cuts. Eval receives the view the epoch was sealed into and the
// epoch's fully reconstructed state; it returns ok=false with a
// human-readable detail when the cut violates the property.
type Invariant interface {
	Name() string
	Eval(v *snapstore.View, st *snapstore.State) (detail string, ok bool)
}

// Violation records one failed evaluation.
type Violation struct {
	// Invariant is the violated invariant's name.
	Invariant string
	// Epoch and Seq identify the violating cut.
	Epoch packet.SeqID
	Seq   uint64
	// Detail is the invariant's explanation of the failure.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("invariant %s violated at epoch %d: %s", v.Invariant, v.Epoch, v.Detail)
}

// Status is one invariant's current standing, for exposition.
type Status struct {
	Name string
	// Evals and Violations count evaluations since registration.
	Evals      uint64
	Violations uint64
	// LastEpoch is the most recently evaluated epoch; OK and Detail are
	// its verdict. OK is true before any evaluation.
	LastEpoch packet.SeqID
	OK        bool
	Detail    string
}

// Config parameterizes an engine.
type Config struct {
	// History bounds the retained violation log. Default 256.
	History int
	// Registry, when set, enables the engine's labeled counters.
	Registry *telemetry.Registry
	// OnViolation, when set, receives every violation as it is found —
	// the hook the network wires to its OnAnomaly flight-recorder dump.
	OnViolation func(Violation)
}

// Engine evaluates registered invariants against sealed epochs.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	entries []*entry
	history []Violation // ring, oldest first once full
	start   int         // ring head when len(history) == cap

	evals      *telemetry.CounterVec
	violations *telemetry.CounterVec
}

type entry struct {
	inv        Invariant
	evals      *telemetry.Counter
	violations *telemetry.Counter
	st         Status
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.History <= 0 {
		cfg.History = 256
	}
	return &Engine{
		cfg:        cfg,
		evals:      cfg.Registry.CounterVec("speedlight_invariant_evals_total", "invariant evaluations", "invariant"),
		violations: cfg.Registry.CounterVec("speedlight_invariant_violations_total", "invariant violations", "invariant"),
	}
}

// Register adds an invariant. Registration is setup-time; duplicate
// names panic (they would make /invariants ambiguous).
func (e *Engine) Register(inv Invariant) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range e.entries {
		if ent.inv.Name() == inv.Name() {
			panic("invariant: duplicate registration of " + inv.Name())
		}
	}
	e.entries = append(e.entries, &entry{
		inv:        inv,
		evals:      e.evals.With(inv.Name()),
		violations: e.violations.With(inv.Name()),
		st:         Status{Name: inv.Name(), OK: true},
	})
}

// Len returns the number of registered invariants.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}

// Eval streams one sealed epoch through every registered invariant and
// returns the violations found (nil when all hold). The epoch's state
// is reconstructed once from v and shared across invariants.
// Inconsistent epochs are skipped: their cuts carry no causal
// guarantee, so predicating on them would report phantom violations.
func (e *Engine) Eval(v *snapstore.View, ep *snapstore.Epoch) []Violation {
	if ep == nil || !ep.Consistent {
		return nil
	}
	st, err := v.State(ep.ID)
	if err != nil {
		return nil // epoch already compacted away; nothing to evaluate
	}

	e.mu.Lock()
	var found []Violation
	for _, ent := range e.entries {
		detail, ok := ent.inv.Eval(v, st)
		ent.evals.Inc()
		ent.st.Evals++
		ent.st.LastEpoch = ep.ID
		ent.st.OK = ok
		ent.st.Detail = detail
		if ok {
			continue
		}
		ent.violations.Inc()
		ent.st.Violations++
		viol := Violation{Invariant: ent.inv.Name(), Epoch: ep.ID, Seq: ep.Seq, Detail: detail}
		e.record(viol)
		found = append(found, viol)
	}
	e.mu.Unlock()

	if e.cfg.OnViolation != nil {
		for _, viol := range found {
			e.cfg.OnViolation(viol)
		}
	}
	return found
}

// record appends to the bounded history ring. Caller holds e.mu.
func (e *Engine) record(v Violation) {
	if len(e.history) < e.cfg.History {
		e.history = append(e.history, v)
		return
	}
	e.history[e.start] = v
	e.start = (e.start + 1) % len(e.history)
}

// Status returns every invariant's standing, in registration order.
func (e *Engine) Status() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, len(e.entries))
	for i, ent := range e.entries {
		out[i] = ent.st
	}
	return out
}

// Violations returns the retained violation history, oldest first.
func (e *Engine) Violations() []Violation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Violation, 0, len(e.history))
	out = append(out, e.history[e.start:]...)
	out = append(out, e.history[:e.start]...)
	return out
}
