package invariant

import (
	"encoding/json"
	"net/http"
)

// statusJSON is one invariant's standing on the wire.
type statusJSON struct {
	Name       string `json:"name"`
	Evals      uint64 `json:"evals"`
	Violations uint64 `json:"violations"`
	LastEpoch  uint64 `json:"last_epoch"`
	OK         bool   `json:"ok"`
	Detail     string `json:"detail,omitempty"`
}

// violationJSON is one logged violation on the wire.
type violationJSON struct {
	Invariant string `json:"invariant"`
	Epoch     uint64 `json:"epoch"`
	Seq       uint64 `json:"seq"`
	Detail    string `json:"detail"`
}

// HTTPHandler serves GET /invariants: every registered invariant's
// status plus the retained violation history, as JSON. A nil engine
// yields 503s (no engine attached).
func HTTPHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "no invariant engine attached", http.StatusServiceUnavailable)
			return
		}
		out := struct {
			Invariants []statusJSON    `json:"invariants"`
			History    []violationJSON `json:"history"`
		}{Invariants: []statusJSON{}, History: []violationJSON{}}
		for _, st := range e.Status() {
			out.Invariants = append(out.Invariants, statusJSON{
				Name:       st.Name,
				Evals:      st.Evals,
				Violations: st.Violations,
				LastEpoch:  uint64(st.LastEpoch),
				OK:         st.OK,
				Detail:     st.Detail,
			})
		}
		for _, v := range e.Violations() {
			out.History = append(out.History, violationJSON{
				Invariant: v.Invariant,
				Epoch:     uint64(v.Epoch),
				Seq:       v.Seq,
				Detail:    v.Detail,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck // best effort; client gone
	})
}
