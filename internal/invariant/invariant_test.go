package invariant_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/invariant"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

func unit(node, port int, dir dataplane.Direction) dataplane.UnitID {
	return dataplane.UnitID{Node: topology.NodeID(node), Port: port, Dir: dir}
}

// seal drives one consistent epoch into the store and returns it.
func seal(s *snapstore.Store, id packet.SeqID, values map[dataplane.UnitID]uint64) *snapstore.Epoch {
	g := &observer.GlobalSnapshot{
		ID:         id,
		Results:    make(map[dataplane.UnitID]control.Result, len(values)),
		Consistent: true,
	}
	for u, v := range values {
		g.Results[u] = control.Result{Unit: u, SnapshotID: id, Value: v, Consistent: true}
	}
	return s.Ingest(g, 0)
}

func TestOrderInvariant(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	before, after := unit(0, 0, dataplane.Ingress), unit(1, 0, dataplane.Ingress)
	var got []invariant.Violation
	e := invariant.New(invariant.Config{OnViolation: func(v invariant.Violation) { got = append(got, v) }})
	e.Register(invariant.Order("fib-order", before, after))

	ep := seal(s, 1, map[dataplane.UnitID]uint64{before: 2, after: 1}) // before leads: fine
	if v := e.Eval(s.View(), ep); v != nil {
		t.Fatalf("ordered cut flagged: %v", v)
	}
	ep = seal(s, 2, map[dataplane.UnitID]uint64{before: 1, after: 2}) // after leads: loop window
	v := e.Eval(s.View(), ep)
	if len(v) != 1 || v[0].Invariant != "fib-order" || v[0].Epoch != 2 {
		t.Fatalf("loop window not flagged: %v", v)
	}
	if len(got) != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", len(got))
	}
}

func TestSkewInvariant(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	g := []dataplane.UnitID{unit(0, 4, dataplane.Egress), unit(0, 5, dataplane.Egress)}
	e := invariant.New(invariant.Config{})
	e.Register(invariant.Skew("uplink-skew", g, 0.25))

	ep := seal(s, 1, map[dataplane.UnitID]uint64{g[0]: 100, g[1]: 104})
	if v := e.Eval(s.View(), ep); v != nil {
		t.Fatalf("balanced cut flagged: %v", v)
	}
	ep = seal(s, 2, map[dataplane.UnitID]uint64{g[0]: 100, g[1]: 300})
	if v := e.Eval(s.View(), ep); len(v) != 1 {
		t.Fatalf("skewed cut not flagged: %v", v)
	}
}

func TestBoundInvariant(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	us := []dataplane.UnitID{unit(0, 4, dataplane.Egress), unit(0, 5, dataplane.Egress), unit(1, 4, dataplane.Egress)}
	e := invariant.New(invariant.Config{})
	e.Register(invariant.Bound("uplink-load", us, 10, 1))

	ep := seal(s, 1, map[dataplane.UnitID]uint64{us[0]: 15, us[1]: 3, us[2]: 3})
	if v := e.Eval(s.View(), ep); v != nil {
		t.Fatalf("one hot uplink flagged (max 1 allowed): %v", v)
	}
	ep = seal(s, 2, map[dataplane.UnitID]uint64{us[0]: 15, us[1]: 12, us[2]: 3})
	if v := e.Eval(s.View(), ep); len(v) != 1 {
		t.Fatalf("two concurrent hot uplinks not flagged: %v", v)
	}
}

func TestMonotoneInvariant(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	u := unit(0, 0, dataplane.Ingress)
	e := invariant.New(invariant.Config{})
	e.Register(invariant.Monotone("counters", []dataplane.UnitID{u}))

	ep := seal(s, 1, map[dataplane.UnitID]uint64{u: 10})
	if v := e.Eval(s.View(), ep); v != nil {
		t.Fatalf("first epoch flagged: %v", v)
	}
	ep = seal(s, 2, map[dataplane.UnitID]uint64{u: 20})
	if v := e.Eval(s.View(), ep); v != nil {
		t.Fatalf("increasing counter flagged: %v", v)
	}
	ep = seal(s, 3, map[dataplane.UnitID]uint64{u: 5})
	if v := e.Eval(s.View(), ep); len(v) != 1 {
		t.Fatalf("counter regression not flagged: %v", v)
	}
}

func TestInconsistentEpochSkipped(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	u := unit(0, 0, dataplane.Ingress)
	e := invariant.New(invariant.Config{})
	e.Register(invariant.Bound("b", []dataplane.UnitID{u}, 0, 0))

	g := &observer.GlobalSnapshot{
		ID:      1,
		Results: map[dataplane.UnitID]control.Result{u: {Unit: u, SnapshotID: 1, Value: 5, Consistent: true}},
		// Consistent: false — no causal guarantee, nothing to predicate on.
	}
	ep := s.Ingest(g, 0)
	if v := e.Eval(s.View(), ep); v != nil {
		t.Fatalf("inconsistent epoch evaluated: %v", v)
	}
	if st := e.Status(); st[0].Evals != 0 {
		t.Fatalf("evals = %d, want 0", st[0].Evals)
	}
}

func TestEngineStatusHistoryAndTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := snapstore.New(snapstore.Config{})
	u := unit(0, 0, dataplane.Ingress)
	e := invariant.New(invariant.Config{History: 4, Registry: reg})
	e.Register(invariant.Bound("always-hot", []dataplane.UnitID{u}, 0, 0))

	for i := 1; i <= 6; i++ {
		ep := seal(s, packet.SeqID(i), map[dataplane.UnitID]uint64{u: uint64(i)})
		e.Eval(s.View(), ep)
	}
	st := e.Status()
	if st[0].Evals != 6 || st[0].Violations != 6 || st[0].OK {
		t.Fatalf("status = %+v", st[0])
	}
	hist := e.Violations()
	if len(hist) != 4 {
		t.Fatalf("history holds %d, want 4 (bounded)", len(hist))
	}
	if hist[0].Epoch != 3 || hist[3].Epoch != 6 {
		t.Fatalf("history window = [%d..%d], want [3..6]", hist[0].Epoch, hist[3].Epoch)
	}
	var evals, viols uint64
	for _, series := range reg.Gather() {
		switch series.Name {
		case "speedlight_invariant_evals_total":
			evals = series.Value
		case "speedlight_invariant_violations_total":
			viols = series.Value
		}
	}
	if evals != 6 || viols != 6 {
		t.Fatalf("telemetry evals=%d violations=%d, want 6/6", evals, viols)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	e := invariant.New(invariant.Config{})
	e.Register(invariant.Bound("dup", nil, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	e.Register(invariant.Bound("dup", nil, 0, 0))
}

func TestHTTPHandler(t *testing.T) {
	s := snapstore.New(snapstore.Config{})
	u := unit(0, 0, dataplane.Ingress)
	e := invariant.New(invariant.Config{})
	e.Register(invariant.Bound("hot", []dataplane.UnitID{u}, 10, 0))
	ep := seal(s, 1, map[dataplane.UnitID]uint64{u: 50})
	e.Eval(s.View(), ep)

	rec := httptest.NewRecorder()
	invariant.HTTPHandler(e).ServeHTTP(rec, httptest.NewRequest("GET", "/invariants", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Invariants []map[string]any `json:"invariants"`
		History    []map[string]any `json:"history"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Invariants) != 1 || body.Invariants[0]["name"] != "hot" || body.Invariants[0]["ok"] != false {
		t.Fatalf("invariants = %v", body.Invariants)
	}
	if len(body.History) != 1 || body.History[0]["epoch"].(float64) != 1 {
		t.Fatalf("history = %v", body.History)
	}

	rec = httptest.NewRecorder()
	invariant.HTTPHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/invariants", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("nil engine: %d, want 503", rec.Code)
	}
}

func TestViolationString(t *testing.T) {
	v := invariant.Violation{Invariant: "x", Epoch: 7, Detail: "boom"}
	want := fmt.Sprintf("invariant x violated at epoch %d: boom", 7)
	if v.String() != want {
		t.Fatalf("String() = %q, want %q", v.String(), want)
	}
}
