package stats

// CorrResult is one entry of a pairwise correlation analysis.
type CorrResult struct {
	I, J int     // indices of the two series
	Rho  float64 // Spearman's rho
	P    float64 // two-sided p-value
}

// Significant reports whether the correlation passes the cutoff alpha.
func (c CorrResult) Significant(alpha float64) bool { return c.P < alpha }

// CorrMatrix holds the pairwise Spearman correlation of a set of series.
// It reproduces the analysis behind the paper's Figure 13: pairwise
// correlation of per-port time series with a significance cutoff.
type CorrMatrix struct {
	N       int          // number of series
	Rho     [][]float64  // Rho[i][j], symmetric, diagonal 1
	P       [][]float64  // P[i][j], symmetric, diagonal 0
	Results []CorrResult // upper-triangle results, i < j
}

// NewCorrMatrix computes all pairwise Spearman correlations between the
// given equal-length series. Series shorter than 3 yield an error.
func NewCorrMatrix(series [][]float64) (*CorrMatrix, error) {
	n := len(series)
	m := &CorrMatrix{
		N:   n,
		Rho: make([][]float64, n),
		P:   make([][]float64, n),
	}
	for i := range m.Rho {
		m.Rho[i] = make([]float64, n)
		m.P[i] = make([]float64, n)
		m.Rho[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rho, p, err := Spearman(series[i], series[j])
			if err != nil {
				return nil, err
			}
			m.Rho[i][j], m.Rho[j][i] = rho, rho
			m.P[i][j], m.P[j][i] = p, p
			m.Results = append(m.Results, CorrResult{I: i, J: j, Rho: rho, P: p})
		}
	}
	return m, nil
}

// SignificantPairs returns the upper-triangle pairs with p < alpha.
func (m *CorrMatrix) SignificantPairs(alpha float64) []CorrResult {
	var out []CorrResult
	for _, r := range m.Results {
		if r.Significant(alpha) {
			out = append(out, r)
		}
	}
	return out
}

// SignificantCount returns the number of significant upper-triangle pairs.
func (m *CorrMatrix) SignificantCount(alpha float64) int {
	return len(m.SignificantPairs(alpha))
}
