package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := Stddev(xs), math.Sqrt(32.0/7.0); !almostEq(got, want, 1e-12) {
		t.Errorf("Stddev = %v, want %v", got, want)
	}
	// Population stddev of the classic example is exactly 2.
	if got := PopStddev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("PopStddev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single element should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(3); !almostEq(got, 0.6, 1e-12) {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Median(); !almostEq(got, 3, 1e-12) {
		t.Errorf("Median = %v, want 3", got)
	}
	if c.MinValue() != 1 || c.MaxValue() != 5 {
		t.Errorf("Min/Max = %v/%v", c.MinValue(), c.MaxValue())
	}
}

func TestCDFQuantileInterpolation(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	if got := c.Quantile(0.25); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
	if got := c.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Median()) {
		t.Error("Median of empty CDF should be NaN")
	}
	if c.At(1) != 0 {
		t.Error("At on empty CDF should be 0")
	}
	if c.Points(5) != nil {
		t.Error("Points on empty CDF should be nil")
	}
}

func TestCDFPoints(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 99 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Errorf("points not monotone at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
}

// Property: CDF At() is monotone non-decreasing and bounded in [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe1, probe2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if math.IsNaN(probe1) || math.IsNaN(probe2) {
			return true
		}
		c := NewCDF(raw)
		lo, hi := probe1, probe2
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := c.At(lo), c.At(hi)
		return a <= b && a >= 0 && b <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.NormFloat64() * 100
		}
		c := NewCDF(samples)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile not monotone: q=%v v=%v prev=%v", q, v, prev)
			}
			prev = v
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrShortSeries {
		t.Errorf("want ErrShortSeries, got %v", err)
	}
}

func TestRanksWithTies(t *testing.T) {
	rk := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if rk[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, rk[i], want[i])
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A monotone nonlinear relation has rho exactly 1.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	rho, p, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Errorf("rho = %v, want 1", rho)
	}
	if p > 1e-6 {
		t.Errorf("p = %v, want ~0", p)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic textbook example.
	x := []float64{106, 86, 100, 101, 99, 103, 97, 113, 112, 110}
	y := []float64{7, 0, 27, 50, 28, 29, 20, 12, 6, 17}
	rho, _, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, -0.17575757575, 1e-9) {
		t.Errorf("rho = %v, want -0.1757...", rho)
	}
}

func TestSpearmanIndependentIsInsignificant(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	insig := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		_, p, err := Spearman(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if p >= 0.1 {
			insig++
		}
	}
	// With alpha=0.1 we expect ~90% of independent pairs to be
	// insignificant; allow generous slack.
	if insig < trials*3/4 {
		t.Errorf("only %d/%d independent pairs insignificant", insig, trials)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err != ErrShortSeries {
		t.Errorf("want ErrShortSeries, got %v", err)
	}
	if _, _, err := Spearman([]float64{1, 2, 3}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

// Property: Spearman rho is symmetric and within [-1, 1].
func TestSpearmanProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 3 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = math.Floor(r.Float64() * 10) // induce ties
			y[i] = math.Floor(r.Float64() * 10)
		}
		r1, p1, err1 := Spearman(x, y)
		r2, p2, err2 := Spearman(y, x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !almostEq(r1, r2, 1e-12) || !almostEq(p1, p2, 1e-12) {
			t.Fatalf("asymmetric: (%v,%v) vs (%v,%v)", r1, p1, r2, p2)
		}
		if r1 < -1-1e-12 || r1 > 1+1e-12 {
			t.Fatalf("rho out of range: %v", r1)
		}
		if p1 < 0 || p1 > 1+1e-9 {
			t.Fatalf("p out of range: %v", p1)
		}
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		want := 3*x*x - 2*x*x*x
		if got := regIncBeta(2, 2, x); !almostEq(got, want, 1e-10) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
}

func TestStudentTSF(t *testing.T) {
	// For df -> large, t=1.96 should give a one-sided tail near 0.025.
	got := studentTSF(1.96, 1000)
	if !almostEq(got, 0.025, 0.002) {
		t.Errorf("SF(1.96, 1000) = %v, want ~0.025", got)
	}
	// Symmetry point.
	if got := studentTSF(0, 10); got != 0.5 {
		t.Errorf("SF(0) = %v, want 0.5", got)
	}
	// Known: t with 1 df is Cauchy; P(T > 1) = 0.25.
	if got := studentTSF(1, 1); !almostEq(got, 0.25, 1e-6) {
		t.Errorf("SF(1,1) = %v, want 0.25", got)
	}
}

func TestCorrMatrix(t *testing.T) {
	// Three series: s0 and s1 strongly correlated, s2 independent noise.
	n := 60
	r := rand.New(rand.NewSource(5))
	s0 := make([]float64, n)
	s1 := make([]float64, n)
	s2 := make([]float64, n)
	for i := 0; i < n; i++ {
		base := r.Float64()
		s0[i] = base + 0.01*r.Float64()
		s1[i] = base + 0.01*r.Float64()
		s2[i] = r.Float64()
	}
	m, err := NewCorrMatrix([][]float64{s0, s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
	if m.Rho[0][1] < 0.9 {
		t.Errorf("Rho[0][1] = %v, want > 0.9", m.Rho[0][1])
	}
	if m.Rho[0][1] != m.Rho[1][0] {
		t.Error("matrix not symmetric")
	}
	if m.Rho[2][2] != 1 {
		t.Error("diagonal should be 1")
	}
	sig := m.SignificantPairs(0.01)
	found01 := false
	for _, s := range sig {
		if s.I == 0 && s.J == 1 {
			found01 = true
		}
	}
	if !found01 {
		t.Error("pair (0,1) should be significant")
	}
	if len(m.Results) != 3 {
		t.Errorf("expected 3 upper-triangle results, got %d", len(m.Results))
	}
	if m.SignificantCount(0.01) != len(sig) {
		t.Error("SignificantCount mismatch")
	}
}

func TestCorrMatrixShortSeries(t *testing.T) {
	if _, err := NewCorrMatrix([][]float64{{1, 2}, {1, 2}}); err == nil {
		t.Error("expected error for short series")
	}
}

func TestSpearmanDetectsCorrelationWithNoise(t *testing.T) {
	sorted := make([]float64, 30)
	noisy := make([]float64, 30)
	r := rand.New(rand.NewSource(3))
	for i := range sorted {
		sorted[i] = float64(i)
		noisy[i] = float64(i) + 3*r.NormFloat64()
	}
	rho, p, err := Spearman(sorted, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.7 {
		t.Errorf("rho = %v, want strong positive", rho)
	}
	if p > 0.01 {
		t.Errorf("p = %v, want significant", p)
	}
	_ = sort.Float64sAreSorted
}

func TestQNorm(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.1586552539, -1}, // Phi(-1)
	}
	for _, c := range cases {
		if got := QNorm(c.p); !almostEq(got, c.want, 1e-5) {
			t.Errorf("QNorm(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(QNorm(0), -1) || !math.IsInf(QNorm(1), 1) {
		t.Error("QNorm endpoints")
	}
	if !math.IsNaN(QNorm(-0.5)) {
		t.Error("QNorm out of range should be NaN")
	}
}

func TestQNormRoundTrip(t *testing.T) {
	// QNorm is the inverse of the normal CDF: check against erf.
	for p := 0.001; p < 1; p += 0.013 {
		z := QNorm(p)
		cdf := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		if !almostEq(cdf, p, 1e-7) {
			t.Fatalf("CDF(QNorm(%v)) = %v", p, cdf)
		}
	}
}
