// Package stats provides the statistical primitives used by Speedlight's
// measurement analyses: empirical CDFs, summary statistics, and rank
// correlation with significance testing.
//
// The paper's evaluation reports CDFs of synchronization and of load
// imbalance (Figures 9 and 12) and pairwise Spearman correlation
// coefficients with a significance cutoff (Figure 13). Everything needed
// to regenerate those analyses lives here, implemented on the standard
// library only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the unbiased sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// PopStddev returns the population standard deviation (n denominator).
// The load-balance experiment reports the spread of uplink EWMAs at a
// single instant, which is a complete population, not a sample.
func PopStddev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution function built from a set
// of samples. The zero value is not usable; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input slice is copied
// and may be reused by the caller.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples underlying the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. Quantile(0.5) is the median.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// MaxValue returns the largest sample, or NaN when empty.
func (c *CDF) MaxValue() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// MinValue returns the smallest sample, or NaN when empty.
func (c *CDF) MinValue() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Point is one (x, cumulative fraction) coordinate of an empirical CDF.
type Point struct {
	X float64
	F float64
}

// Points returns up to n evenly spaced points of the CDF suitable for
// plotting or printing as a table series. The returned slice always
// includes the first and last samples.
func (c *CDF) Points(n int) []Point {
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / max(n-1, 1)
		pts = append(pts, Point{X: c.sorted[idx], F: float64(idx+1) / float64(m)})
	}
	return pts
}

// ErrShortSeries is returned by correlation functions when the two series
// are shorter than the minimum length for the statistic.
var ErrShortSeries = errors.New("stats: series too short")

// ErrLengthMismatch is returned when paired series differ in length.
var ErrLengthMismatch = errors.New("stats: series length mismatch")

// ranks assigns average ranks (1-based) to xs, resolving ties by the
// midrank convention as required for Spearman's rho.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	rk := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			rk[idx[k]] = avg
		}
		i = j + 1
	}
	return rk
}

// Pearson returns the Pearson product-moment correlation of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	n := len(x)
	if n < 2 {
		return 0, ErrShortSeries
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil // A constant series is uncorrelated with anything.
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient rho and the
// two-sided p-value of the null hypothesis rho == 0, computed with the
// standard t-distribution approximation
//
//	t = rho * sqrt((n-2) / (1 - rho^2)),  df = n-2.
//
// Ties are handled with midranks. This is the test used in the paper's
// Section 8.4 (citing Croux & Dehon) with a significance cutoff on p.
func Spearman(x, y []float64) (rho, p float64, err error) {
	if len(x) != len(y) {
		return 0, 0, ErrLengthMismatch
	}
	n := len(x)
	if n < 3 {
		return 0, 0, ErrShortSeries
	}
	rho, err = Pearson(ranks(x), ranks(y))
	if err != nil {
		return 0, 0, err
	}
	p = spearmanP(rho, n)
	return rho, p, nil
}

// spearmanP computes the two-sided p-value for rho with n samples.
func spearmanP(rho float64, n int) float64 {
	if rho >= 1 || rho <= -1 {
		return 0
	}
	df := float64(n - 2)
	t := rho * math.Sqrt(df/(1-rho*rho))
	return 2 * studentTSF(math.Abs(t), df)
}

// studentTSF returns P(T > t) for Student's t with df degrees of freedom,
// for t >= 0, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style,
// modified Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	if x < (a+1)/(a+b+2) {
		return incBetaFront(a, b, x) * betaCF(a, b, x)
	}
	// Symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a), evaluated directly
	// (no recursion: a floating-point boundary case could bounce between
	// the two forms forever).
	return 1 - incBetaFront(b, a, 1-x)*betaCF(b, a, 1-x)
}

// incBetaFront is the prefactor x^a (1-x)^b / (a B(a,b)) of the
// continued-fraction form of the incomplete beta function.
func incBetaFront(a, b, x float64) float64 {
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	return math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by modified Lentz's method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// QNorm returns the quantile function (inverse CDF) of the standard
// normal distribution, using Acklam's rational approximation (relative
// error below 1.15e-9 across the full open interval).
func QNorm(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
