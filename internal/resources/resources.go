// Package resources models the data-plane resource usage of the
// Speedlight pipeline on a Tofino-class match-action ASIC, reproducing
// the paper's Table 1.
//
// The model is structural: the pipelines of Figures 4 and 5 are
// decomposed into components (header parsing, counter update, snapshot
// ID comparison, initiation, in-flight absorption, notification
// cloning, ...), each consuming stateless/stateful ALUs, logical table
// IDs, conditional gateways and pipeline stages. Memory follows a
// fixed-plus-per-port law: register arrays (snapshot values, last-seen
// entries, counters) grow with the snapshotted port count while match
// tables are sized once. The constants are calibrated against the
// paper's measured build (64 ports; 14 ports with wraparound and
// channel state), so the model reproduces both the absolute Table 1
// numbers and the scaling the paper reports in Section 7.1.
package resources

import "fmt"

// Variant selects a Speedlight data plane build. Variants are
// cumulative, matching Table 1's columns.
type Variant int

const (
	// PacketCount is the base build: per-port packet counters, no
	// wraparound, no channel state.
	PacketCount Variant = iota
	// WrapAround adds snapshot ID rollover support.
	WrapAround
	// ChannelState additionally records in-flight packets and the
	// last-seen machinery.
	ChannelState
)

func (v Variant) String() string {
	switch v {
	case PacketCount:
		return "Packet Count"
	case WrapAround:
		return "+ Wrap Around"
	case ChannelState:
		return "+ Chnl. State"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Component is one logical piece of the pipeline and its compute
// footprint. StageDepth is the number of sequential physical stages the
// component occupies on its pipeline's critical path (zero for
// components that run in parallel with others).
type Component struct {
	Name       string
	Pipeline   string // "ingress" or "egress"
	MinVariant Variant

	StatelessALUs int
	StatefulALUs  int
	Tables        int
	Gateways      int
	StageDepth    int
}

// components is the decomposition of Figures 4 and 5. Compute budgets
// are calibrated to the paper's build.
var components = []Component{
	// Base variant: the packet-count pipeline.
	{Name: "snapshot header parse/validate", Pipeline: "ingress", MinVariant: PacketCount,
		StatelessALUs: 2, Tables: 2, Gateways: 1, StageDepth: 1},
	{Name: "target counter update (ingress)", Pipeline: "ingress", MinVariant: PacketCount,
		StatefulALUs: 1, Tables: 1, StageDepth: 1},
	{Name: "snapshot ID read/update (ingress)", Pipeline: "ingress", MinVariant: PacketCount,
		StatefulALUs: 1, Tables: 1, StageDepth: 1},
	{Name: "ID comparison (ingress)", Pipeline: "ingress", MinVariant: PacketCount,
		StatelessALUs: 2, Tables: 3, Gateways: 3, StageDepth: 1},
	{Name: "snapshot initiation/save (ingress)", Pipeline: "ingress", MinVariant: PacketCount,
		StatefulALUs: 1, StatelessALUs: 1, Tables: 2, Gateways: 1, StageDepth: 1},
	{Name: "header stamp + egress select", Pipeline: "ingress", MinVariant: PacketCount,
		StatelessALUs: 3, Tables: 3, Gateways: 1, StageDepth: 1},
	{Name: "notification clone (ingress)", Pipeline: "ingress", MinVariant: PacketCount,
		StatefulALUs: 1, StatelessALUs: 2, Tables: 2, Gateways: 1, StageDepth: 1},
	{Name: "mirror session setup", Pipeline: "ingress", MinVariant: PacketCount,
		StatefulALUs: 1, Tables: 1, StageDepth: 0},

	{Name: "target counter update (egress)", Pipeline: "egress", MinVariant: PacketCount,
		StatefulALUs: 1, Tables: 1, StageDepth: 1},
	{Name: "snapshot ID read + comparison (egress)", Pipeline: "egress", MinVariant: PacketCount,
		StatefulALUs: 1, StatelessALUs: 2, Tables: 3, Gateways: 3, StageDepth: 1},
	{Name: "snapshot initiation/save (egress)", Pipeline: "egress", MinVariant: PacketCount,
		StatefulALUs: 1, StatelessALUs: 1, Tables: 2, Gateways: 1, StageDepth: 1},
	{Name: "header removal at edge", Pipeline: "egress", MinVariant: PacketCount,
		StatelessALUs: 2, Tables: 2, Gateways: 2, StageDepth: 1},
	{Name: "CPU-initiation drop check", Pipeline: "egress", MinVariant: PacketCount,
		Tables: 2, Gateways: 1, StageDepth: 1},
	{Name: "notification clone (egress)", Pipeline: "egress", MinVariant: PacketCount,
		StatefulALUs: 1, StatelessALUs: 2, Tables: 2, Gateways: 1, StageDepth: 1},
	{Name: "hidden stage padding (sequential dependencies)", Pipeline: "ingress",
		MinVariant: PacketCount, StageDepth: 3},
	{Name: "hidden stage padding egress", Pipeline: "egress",
		MinVariant: PacketCount, StageDepth: 3},

	// Wraparound additions: rollover detection and modular compares.
	{Name: "rollover detection (ingress)", Pipeline: "ingress", MinVariant: WrapAround,
		StatelessALUs: 1, Tables: 4, Gateways: 2, StageDepth: 0},
	{Name: "rollover detection (egress)", Pipeline: "egress", MinVariant: WrapAround,
		StatelessALUs: 1, Tables: 4, Gateways: 2, StageDepth: 0},

	// Channel-state additions: last-seen tracking and in-flight
	// absorption, each a new sequential stage.
	{Name: "last-seen update (ingress)", Pipeline: "ingress", MinVariant: ChannelState,
		StatefulALUs: 1, StatelessALUs: 2, Tables: 1, StageDepth: 1},
	{Name: "in-flight absorb (egress)", Pipeline: "egress", MinVariant: ChannelState,
		StatefulALUs: 1, StatelessALUs: 3, Tables: 1, StageDepth: 1},
	{Name: "channel-state stage padding", Pipeline: "ingress", MinVariant: ChannelState,
		StageDepth: 1},
	{Name: "channel-state stage padding egress", Pipeline: "egress", MinVariant: ChannelState,
		StageDepth: 1},
}

// memoryLaw is the fixed + per-port memory footprint of one variant, in
// kilobytes. Fixed covers match tables and static allocations; PerPort
// covers register arrays that scale with the snapshotted port count
// (snapshot values, counters, and — for channel state — per-neighbor
// last-seen arrays, whose match keys dominate the TCAM growth).
type memoryLaw struct {
	SRAMFixedKB, SRAMPerPortKB float64
	TCAMFixedKB, TCAMPerPortKB float64
}

var memory = map[Variant]memoryLaw{
	PacketCount:  {SRAMFixedKB: 510, SRAMPerPortKB: 1.5, TCAMFixedKB: 38.8, TCAMPerPortKB: 0.05},
	WrapAround:   {SRAMFixedKB: 559, SRAMPerPortKB: 1.75, TCAMFixedKB: 52.6, TCAMPerPortKB: 0.10},
	ChannelState: {SRAMFixedKB: 601.04, SRAMPerPortKB: 2.64, TCAMFixedKB: 46.88, TCAMPerPortKB: 3.08},
}

// Usage is one variant's total resource consumption — one column of
// Table 1.
type Usage struct {
	Variant       Variant
	Ports         int
	StatelessALUs int
	StatefulALUs  int
	LogicalTables int
	Gateways      int
	Stages        int
	SRAMKB        float64
	TCAMKB        float64
}

// Estimate computes the resource usage of a variant configured to
// snapshot the given number of ports.
func Estimate(v Variant, ports int) Usage {
	u := Usage{Variant: v, Ports: ports}
	ingressDepth, egressDepth := 0, 0
	for _, c := range components {
		if c.MinVariant > v {
			continue
		}
		u.StatelessALUs += c.StatelessALUs
		u.StatefulALUs += c.StatefulALUs
		u.LogicalTables += c.Tables
		u.Gateways += c.Gateways
		if c.Pipeline == "ingress" {
			ingressDepth += c.StageDepth
		} else {
			egressDepth += c.StageDepth
		}
	}
	// Ingress and egress pipelines share the Tofino's physical stages;
	// the build occupies as many as its deeper pipeline requires.
	u.Stages = ingressDepth
	if egressDepth > u.Stages {
		u.Stages = egressDepth
	}
	law := memory[v]
	u.SRAMKB = law.SRAMFixedKB + law.SRAMPerPortKB*float64(ports)
	u.TCAMKB = law.TCAMFixedKB + law.TCAMPerPortKB*float64(ports)
	return u
}

// Table1 returns the three variants at the given port count, in the
// paper's column order.
func Table1(ports int) []Usage {
	return []Usage{
		Estimate(PacketCount, ports),
		Estimate(WrapAround, ports),
		Estimate(ChannelState, ports),
	}
}

// Components returns the pipeline decomposition included in a variant,
// for documentation and inspection.
func Components(v Variant) []Component {
	var out []Component
	for _, c := range components {
		if c.MinVariant <= v {
			out = append(out, c)
		}
	}
	return out
}

// FractionOfTofino reports the heaviest relative use of any dedicated
// resource, against public Tofino 1 budgets (12 physical stages per
// pipeline would be 100% of a 12-stage device; the paper reports its
// prototype stays under 25% of any dedicated resource type on the
// production part).
func FractionOfTofino(u Usage) float64 {
	// Approximate public Tofino capacities: 12 stages x 16 logical
	// tables, ~48 sALUs, 120 MB SRAM, 6.2 MB TCAM.
	fracs := []float64{
		float64(u.StatefulALUs) / 48,
		float64(u.LogicalTables) / 192,
		u.SRAMKB / (120 * 1024),
		u.TCAMKB / (6.2 * 1024),
	}
	max := 0.0
	for _, f := range fracs {
		if f > max {
			max = f
		}
	}
	return max
}
