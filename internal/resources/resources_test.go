package resources

import (
	"math"
	"testing"
)

// TestTable1Exact pins the model to the paper's Table 1 (64 ports).
func TestTable1Exact(t *testing.T) {
	want := []struct {
		v                             Variant
		alu, salu, tables, gw, stages int
		sramKB, tcamKB                float64
	}{
		{PacketCount, 17, 9, 27, 15, 10, 606, 42},
		{WrapAround, 19, 9, 35, 19, 10, 671, 59},
		{ChannelState, 24, 11, 37, 19, 12, 770, 244},
	}
	rows := Table1(64)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		u := rows[i]
		if u.Variant != w.v {
			t.Errorf("row %d variant = %v", i, u.Variant)
		}
		if u.StatelessALUs != w.alu {
			t.Errorf("%v stateless ALUs = %d, want %d", w.v, u.StatelessALUs, w.alu)
		}
		if u.StatefulALUs != w.salu {
			t.Errorf("%v stateful ALUs = %d, want %d", w.v, u.StatefulALUs, w.salu)
		}
		if u.LogicalTables != w.tables {
			t.Errorf("%v tables = %d, want %d", w.v, u.LogicalTables, w.tables)
		}
		if u.Gateways != w.gw {
			t.Errorf("%v gateways = %d, want %d", w.v, u.Gateways, w.gw)
		}
		if u.Stages != w.stages {
			t.Errorf("%v stages = %d, want %d", w.v, u.Stages, w.stages)
		}
		if math.Abs(u.SRAMKB-w.sramKB) > 0.51 {
			t.Errorf("%v SRAM = %.2f KB, want %.0f", w.v, u.SRAMKB, w.sramKB)
		}
		if math.Abs(u.TCAMKB-w.tcamKB) > 0.51 {
			t.Errorf("%v TCAM = %.2f KB, want %.0f", w.v, u.TCAMKB, w.tcamKB)
		}
	}
}

// TestFourteenPortDataPoint pins the Section 7.1 configuration used in
// the evaluation: 14 ports with wraparound and channel state needs
// 638 KB SRAM and 90 KB TCAM.
func TestFourteenPortDataPoint(t *testing.T) {
	u := Estimate(ChannelState, 14)
	if math.Abs(u.SRAMKB-638) > 0.51 {
		t.Errorf("SRAM = %.2f KB, want 638", u.SRAMKB)
	}
	if math.Abs(u.TCAMKB-90) > 0.51 {
		t.Errorf("TCAM = %.2f KB, want 90", u.TCAMKB)
	}
}

func TestMonotoneInVariant(t *testing.T) {
	for ports := 4; ports <= 64; ports *= 2 {
		prev := Usage{}
		for v := PacketCount; v <= ChannelState; v++ {
			u := Estimate(v, ports)
			if v > PacketCount {
				if u.StatelessALUs < prev.StatelessALUs ||
					u.StatefulALUs < prev.StatefulALUs ||
					u.LogicalTables < prev.LogicalTables ||
					u.Gateways < prev.Gateways ||
					u.Stages < prev.Stages {
					t.Errorf("ports=%d: %v compute regressed vs %v", ports, v, prev.Variant)
				}
				if u.SRAMKB < prev.SRAMKB {
					t.Errorf("ports=%d: %v SRAM shrank", ports, v)
				}
			}
			prev = u
		}
	}
}

func TestMonotoneInPorts(t *testing.T) {
	for v := PacketCount; v <= ChannelState; v++ {
		prev := Estimate(v, 4)
		for _, ports := range []int{8, 16, 32, 64, 128} {
			u := Estimate(v, ports)
			if u.SRAMKB <= prev.SRAMKB || u.TCAMKB <= prev.TCAMKB {
				t.Errorf("%v: memory did not grow from %d to %d ports", v, prev.Ports, ports)
			}
			if u.Stages != prev.Stages {
				t.Errorf("%v: stages changed with port count", v)
			}
			prev = u
		}
	}
}

func TestUnderQuarterOfTofino(t *testing.T) {
	// Section 7.1: the prototype occupies less than 25% of any given
	// dedicated resource type.
	for v := PacketCount; v <= ChannelState; v++ {
		u := Estimate(v, 64)
		if f := FractionOfTofino(u); f >= 0.25 {
			t.Errorf("%v uses %.0f%% of a dedicated resource", v, f*100)
		}
	}
}

func TestComponentsFilter(t *testing.T) {
	base := Components(PacketCount)
	all := Components(ChannelState)
	if len(base) >= len(all) {
		t.Error("channel state should include more components")
	}
	for _, c := range base {
		if c.MinVariant > PacketCount {
			t.Errorf("component %q leaked into base variant", c.Name)
		}
	}
}

func TestVariantString(t *testing.T) {
	if PacketCount.String() != "Packet Count" ||
		WrapAround.String() != "+ Wrap Around" ||
		ChannelState.String() != "+ Chnl. State" {
		t.Error("variant names wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant name empty")
	}
}
