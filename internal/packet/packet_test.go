package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	if TypeData.String() != "data" {
		t.Error("TypeData string")
	}
	if TypeInitiation.String() != "initiation" {
		t.Error("TypeInitiation string")
	}
	if Type(9).String() != "type(9)" {
		t.Error("unknown type string")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := SnapshotHeader{Type: TypeInitiation, ID: 0xdeadbeef, Channel: 513}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != HeaderLen {
		t.Fatalf("encoded length %d", len(data))
	}
	var got SnapshotHeader
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(typ uint8, id uint32, ch uint16) bool {
		h := SnapshotHeader{Type: Type(typ & 0x0f), ID: WireIDFromRaw(id), Channel: ch}
		data, err := h.MarshalBinary()
		if err != nil {
			return false
		}
		var got SnapshotHeader
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var h SnapshotHeader
	if err := h.UnmarshalBinary(make([]byte, 3)); err != ErrShortBuffer {
		t.Errorf("short buffer: %v", err)
	}
	bad := make([]byte, HeaderLen)
	bad[0] = 0x00
	if err := h.UnmarshalBinary(bad); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	good, _ := SnapshotHeader{}.MarshalBinary()
	good[1] = 0x2<<4 | 0 // future version
	if err := h.UnmarshalBinary(good); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
}

func TestFlowHashStable(t *testing.T) {
	p := Packet{SrcHost: 1, DstHost: 2, SrcPort: 1000, DstPort: 80, Proto: 6}
	q := p
	if p.FlowHash() != q.FlowHash() {
		t.Error("identical tuples must hash equal")
	}
}

func TestFlowHashDiscriminates(t *testing.T) {
	base := Packet{SrcHost: 1, DstHost: 2, SrcPort: 1000, DstPort: 80, Proto: 6}
	perturbations := []Packet{
		{SrcHost: 2, DstHost: 2, SrcPort: 1000, DstPort: 80, Proto: 6},
		{SrcHost: 1, DstHost: 3, SrcPort: 1000, DstPort: 80, Proto: 6},
		{SrcHost: 1, DstHost: 2, SrcPort: 1001, DstPort: 80, Proto: 6},
		{SrcHost: 1, DstHost: 2, SrcPort: 1000, DstPort: 81, Proto: 6},
		{SrcHost: 1, DstHost: 2, SrcPort: 1000, DstPort: 80, Proto: 17},
	}
	h := base.FlowHash()
	for i := range perturbations {
		if perturbations[i].FlowHash() == h {
			t.Errorf("perturbation %d collided with base", i)
		}
	}
}

func TestFlowHashIgnoresNonTupleFields(t *testing.T) {
	a := Packet{SrcHost: 1, DstHost: 2, SrcPort: 3, DstPort: 4, Proto: 5, Size: 100, Seq: 7}
	b := a
	b.Size = 9000
	b.Seq = 99
	b.HasSnap = true
	b.Snap = SnapshotHeader{ID: 42}
	if a.FlowHash() != b.FlowHash() {
		t.Error("hash must depend only on the 5-tuple")
	}
}

func TestClone(t *testing.T) {
	p := &Packet{SrcHost: 1, HasSnap: true, Snap: SnapshotHeader{ID: 7}}
	q := p.Clone()
	if q == p {
		t.Fatal("Clone returned same pointer")
	}
	q.Snap.ID = 8
	if p.Snap.ID != 7 {
		t.Error("mutating clone affected original")
	}
}

func TestWireBytesLayout(t *testing.T) {
	h := SnapshotHeader{Type: TypeData, ID: 0x01020304, Channel: 0x0506}
	data, _ := h.MarshalBinary()
	want := []byte{0xA5, 0x10, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}
	if !bytes.Equal(data, want) {
		t.Errorf("wire bytes = %x, want %x", data, want)
	}
}
