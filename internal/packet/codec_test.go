package packet

import (
	"testing"
	"testing/quick"
)

func TestPacketRoundTripWithSnapshot(t *testing.T) {
	p := Packet{
		SrcHost: 1, DstHost: 2, SrcPort: 3, DstPort: 4, Proto: 6,
		Size: 1500, Seq: 42, CoS: 5,
		HasSnap: true,
		Snap:    SnapshotHeader{Type: TypeInitiation, ID: 0xabcdef, Channel: 9},
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != PacketMaxLen {
		t.Fatalf("encoded length %d", len(data))
	}
	var got Packet
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

func TestPacketRoundTripWithoutSnapshot(t *testing.T) {
	p := Packet{SrcHost: 9, DstHost: 8, Proto: 17, Size: 64, Seq: 1}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != PacketBaseLen {
		t.Fatalf("encoded length %d", len(data))
	}
	var got Packet
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

// Property: any packet round-trips exactly.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(src, dst, size uint32, sport, dport uint16, proto, cos uint8,
		seq uint64, hasSnap bool, snapType uint8, snapID uint32, snapCh uint16) bool {
		p := Packet{
			SrcHost: src, DstHost: dst, SrcPort: sport, DstPort: dport,
			Proto: proto, Size: size, Seq: seq, CoS: cos & 0x0f, HasSnap: hasSnap,
		}
		if hasSnap {
			p.Snap = SnapshotHeader{Type: Type(snapType & 0x0f), ID: WireIDFromRaw(snapID), Channel: snapCh}
		}
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var got Packet
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketUnmarshalErrors(t *testing.T) {
	var p Packet
	if err := p.UnmarshalBinary(make([]byte, 10)); err != ErrPacketShort {
		t.Errorf("short: %v", err)
	}
	good, _ := (&Packet{HasSnap: true}).MarshalBinary()

	bad := append([]byte(nil), good...)
	bad[0] = 0
	if err := p.UnmarshalBinary(bad); err != ErrPacketBadMagic {
		t.Errorf("magic: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[1] = 99
	if err := p.UnmarshalBinary(bad); err == nil {
		t.Error("version accepted")
	}

	// Truncated snapshot header.
	if err := p.UnmarshalBinary(good[:PacketBaseLen+2]); err != ErrPacketShort {
		t.Errorf("truncated snap: %v", err)
	}
}

// Fuzz-style: random byte soup never panics and either errors or
// produces a re-encodable packet.
func TestPacketDecodeGarbage(t *testing.T) {
	f := func(data []byte) bool {
		var p Packet
		if err := p.UnmarshalBinary(data); err != nil {
			return true
		}
		out, err := p.MarshalBinary()
		return err == nil && len(out) >= PacketBaseLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
