package packet

import (
	"bytes"
	"testing"
)

// FuzzSnapshotHeaderDecode checks that arbitrary bytes never panic the
// header decoder, and that anything accepted re-encodes to the same
// bytes (the codec is canonical).
func FuzzSnapshotHeaderDecode(f *testing.F) {
	seed, _ := SnapshotHeader{Type: TypeInitiation, ID: 77, Channel: 3}.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xA5})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h SnapshotHeader
		if err := h.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded header failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data[:HeaderLen]) {
			t.Fatalf("codec not canonical: %x -> %+v -> %x", data[:HeaderLen], h, out)
		}
	})
}

// FuzzPacketDecode checks the full-packet decoder: no panics, and
// accepted inputs survive a decode/encode/decode round trip.
func FuzzPacketDecode(f *testing.F) {
	p := Packet{SrcHost: 1, DstHost: 2, SrcPort: 3, DstPort: 4, Proto: 6,
		Size: 1500, Seq: 9, CoS: 2, HasSnap: true,
		Snap: SnapshotHeader{Type: TypeData, ID: 5, Channel: 1}}
	seed, _ := p.MarshalBinary()
	f.Add(seed)
	f.Add(seed[:PacketBaseLen])
	f.Add([]byte{0xA6, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got Packet
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		var again Packet
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if again != got {
			t.Fatalf("round trip diverged: %+v vs %+v", got, again)
		}
	})
}
