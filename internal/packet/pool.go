package packet

import "sync"

// Pooled packet lifecycle.
//
// The emulated data plane moves one *Packet pointer per frame from
// injection to its terminal point (host delivery or any drop), so a
// packet's lifetime is explicit and single-owner: whichever execution
// context holds the pointer owns it, and the context that kills the
// packet returns it to a pool. Pools are plain free lists — deliberately
// not sync.Pool — owned by a single execution context (one emulated
// switch's simulation domain, or the driver), so Get and Put are
// unsynchronized slice operations. Balance between contexts (traffic
// sources allocate, sinks free) comes from a shared Central exchange:
// pools refill from and spill to it in batches, amortizing one mutex
// operation over poolBatch packets.
//
// Packets built directly by callers (&Packet{...}) are "external": Put
// ignores them, so pooling is strictly opt-in per packet. A second Put
// of the same pooled packet panics — the aliasing bug is caught, not
// silently recycled into two owners.

// packet lifecycle states (pstate field).
const (
	pkExternal uint8 = iota // not pool-managed (zero value: &Packet{...})
	pkLive                  // obtained from a Pool, not yet Put
	pkFree                  // sitting in a free list
)

// poolBatch is the refill/spill transfer size between a Pool and its
// Central, and the allocation batch when everything is empty.
const poolBatch = 64

// Central is the shared exchange behind a set of Pools. It is safe for
// concurrent use; per-context Pools touch it only on batch refill or
// spill.
type Central struct {
	mu   sync.Mutex
	free []*Packet
	// allocated counts every packet ever created by a pool backed by
	// this exchange (pools allocate locally, so the count is pushed
	// here from refill's cold path). Together with the free-list
	// lengths it yields the number of live packets in flight — the
	// quantity a leak check wants to see hit zero after a quiesced
	// teardown.
	allocated uint64
}

// NewCentral returns an empty exchange.
func NewCentral() *Central { return &Central{} }

// NewPool returns a free list backed by c. The returned Pool must be
// used from a single execution context.
func (c *Central) NewPool() Pool { return Pool{c: c} }

// Pool is one execution context's packet free list. The zero Pool is
// usable (it allocates on Get and never spills).
type Pool struct {
	c    *Central
	free []*Packet
}

// Get returns a zeroed, pool-owned packet. The caller owns it until the
// packet is handed off or Put.
//
//speedlight:hotpath
func (p *Pool) Get() *Packet {
	n := len(p.free)
	if n == 0 {
		return p.refill()
	}
	pkt := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*pkt = Packet{pstate: pkLive}
	return pkt
}

// Put returns a pool-owned packet to the free list. External packets
// (built with &Packet{...}) are ignored, so terminal points may Put
// unconditionally. Putting the same pooled packet twice panics.
//
//speedlight:hotpath
func (p *Pool) Put(pkt *Packet) {
	if pkt.pstate != pkLive {
		if pkt.pstate == pkFree {
			panic("packet: double Put of a pooled packet (use after free)")
		}
		return // external: the caller manages its lifetime
	}
	pkt.pstate = pkFree
	p.free = append(p.free, pkt)
	if len(p.free) >= 2*poolBatch && p.c != nil {
		p.spill()
	}
}

// refill is Get's cold path: take a batch from the Central, or allocate
// one when the exchange is dry. Kept out of the hot path so hotalloc
// can bless Get.
func (p *Pool) refill() *Packet {
	if c := p.c; c != nil {
		c.mu.Lock()
		n := len(c.free)
		take := poolBatch
		if take > n {
			take = n
		}
		if take > 0 {
			p.free = append(p.free, c.free[n-take:]...)
			for i := n - take; i < n; i++ {
				c.free[i] = nil
			}
			c.free = c.free[:n-take]
		}
		c.mu.Unlock()
	}
	if len(p.free) == 0 {
		// Allocate a batch in one block; the block is pinned while any
		// of its packets is live, which is fine: steady state recycles.
		block := make([]Packet, poolBatch)
		for i := range block {
			block[i].pstate = pkFree
			p.free = append(p.free, &block[i])
		}
		if c := p.c; c != nil {
			c.mu.Lock()
			c.allocated += poolBatch
			c.mu.Unlock()
		}
	}
	n := len(p.free)
	pkt := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*pkt = Packet{pstate: pkLive}
	return pkt
}

// Allocated returns the number of packets ever created by pools backed
// by this exchange. Safe for concurrent use.
func (c *Central) Allocated() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocated
}

// FreeLen returns the exchange's current free-list length. Safe for
// concurrent use.
func (c *Central) FreeLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.free)
}

// FreeLen returns the pool's local free-list length. Like Get and Put
// it must be called from the pool's owning context.
func (p *Pool) FreeLen() int { return len(p.free) }

// spill moves a batch to the Central so sink-heavy contexts feed
// source-heavy ones.
func (p *Pool) spill() {
	n := len(p.free)
	c := p.c
	c.mu.Lock()
	c.free = append(c.free, p.free[n-poolBatch:]...)
	c.mu.Unlock()
	for i := n - poolBatch; i < n; i++ {
		p.free[i] = nil
	}
	p.free = p.free[:n-poolBatch]
}
