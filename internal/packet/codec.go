package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Full-packet wire format, used by transports that carry emulated
// packets as bytes (internal/wire's UDP data plane):
//
//	byte  0:     magic (0xA6)
//	byte  1:     version (1)
//	byte  2:     flags (bit 0: snapshot header present;
//	             bits 4-7: class of service)
//	byte  3:     protocol
//	bytes 4-7:   source host
//	bytes 8-11:  destination host
//	bytes 12-13: source port
//	bytes 14-15: destination port
//	bytes 16-19: frame size
//	bytes 20-27: sequence number
//	bytes 28-35: snapshot header (iff flag bit 0), own codec
//
// The frame size field carries the emulated frame length; the encoded
// message itself is fixed-size (no payload bytes are shipped).
const (
	pktMagic   = 0xA6
	pktVersion = 1

	flagHasSnap = 1 << 0

	// PacketBaseLen is the encoded size without the snapshot header.
	PacketBaseLen = 28
	// PacketMaxLen is the encoded size with the snapshot header.
	PacketMaxLen = PacketBaseLen + HeaderLen
)

// Codec errors for full packets.
var (
	ErrPacketShort      = errors.New("packet: buffer too short for packet")
	ErrPacketBadMagic   = errors.New("packet: bad packet magic")
	ErrPacketBadVersion = errors.New("packet: unsupported packet version")
)

// MarshalBinary encodes the packet.
func (p *Packet) MarshalBinary() ([]byte, error) {
	return p.AppendBinary(nil), nil
}

// AppendBinary appends the packet's encoding to dst and returns the
// extended slice. With at least PacketMaxLen of spare capacity in dst
// it allocates nothing; this is the hot-path form of MarshalBinary.
//
//speedlight:hotpath
func (p *Packet) AppendBinary(dst []byte) []byte {
	flags := (p.CoS & 0x0f) << 4
	if p.HasSnap {
		flags |= flagHasSnap
	}
	dst = append(dst,
		pktMagic,
		pktVersion,
		flags,
		p.Proto,
		byte(p.SrcHost>>24), byte(p.SrcHost>>16), byte(p.SrcHost>>8), byte(p.SrcHost),
		byte(p.DstHost>>24), byte(p.DstHost>>16), byte(p.DstHost>>8), byte(p.DstHost),
		byte(p.SrcPort>>8), byte(p.SrcPort),
		byte(p.DstPort>>8), byte(p.DstPort),
		byte(p.Size>>24), byte(p.Size>>16), byte(p.Size>>8), byte(p.Size),
		byte(p.Seq>>56), byte(p.Seq>>48), byte(p.Seq>>40), byte(p.Seq>>32),
		byte(p.Seq>>24), byte(p.Seq>>16), byte(p.Seq>>8), byte(p.Seq),
	)
	if p.HasSnap {
		dst = p.Snap.AppendBinary(dst)
	}
	return dst
}

// UnmarshalBinary decodes a packet.
func (p *Packet) UnmarshalBinary(data []byte) error {
	if len(data) < PacketBaseLen {
		return ErrPacketShort
	}
	if data[0] != pktMagic {
		return ErrPacketBadMagic
	}
	if data[1] != pktVersion {
		return fmt.Errorf("%w: %d", ErrPacketBadVersion, data[1])
	}
	p.Proto = data[3]
	p.SrcHost = binary.BigEndian.Uint32(data[4:8])
	p.DstHost = binary.BigEndian.Uint32(data[8:12])
	p.SrcPort = binary.BigEndian.Uint16(data[12:14])
	p.DstPort = binary.BigEndian.Uint16(data[14:16])
	p.Size = binary.BigEndian.Uint32(data[16:20])
	p.Seq = binary.BigEndian.Uint64(data[20:28])
	p.CoS = data[2] >> 4
	p.HasSnap = data[2]&flagHasSnap != 0
	if p.HasSnap {
		if len(data) < PacketMaxLen {
			return ErrPacketShort
		}
		return p.Snap.UnmarshalBinary(data[PacketBaseLen:PacketMaxLen])
	}
	p.Snap = SnapshotHeader{}
	return nil
}
