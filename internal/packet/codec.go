package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Full-packet wire format, used by transports that carry emulated
// packets as bytes (internal/wire's UDP data plane):
//
//	byte  0:     magic (0xA6)
//	byte  1:     version (1)
//	byte  2:     flags (bit 0: snapshot header present;
//	             bits 4-7: class of service)
//	byte  3:     protocol
//	bytes 4-7:   source host
//	bytes 8-11:  destination host
//	bytes 12-13: source port
//	bytes 14-15: destination port
//	bytes 16-19: frame size
//	bytes 20-27: sequence number
//	bytes 28-35: snapshot header (iff flag bit 0), own codec
//
// The frame size field carries the emulated frame length; the encoded
// message itself is fixed-size (no payload bytes are shipped).
const (
	pktMagic   = 0xA6
	pktVersion = 1

	flagHasSnap = 1 << 0

	// PacketBaseLen is the encoded size without the snapshot header.
	PacketBaseLen = 28
	// PacketMaxLen is the encoded size with the snapshot header.
	PacketMaxLen = PacketBaseLen + HeaderLen
)

// Codec errors for full packets.
var (
	ErrPacketShort      = errors.New("packet: buffer too short for packet")
	ErrPacketBadMagic   = errors.New("packet: bad packet magic")
	ErrPacketBadVersion = errors.New("packet: unsupported packet version")
)

// MarshalBinary encodes the packet.
func (p *Packet) MarshalBinary() ([]byte, error) {
	n := PacketBaseLen
	if p.HasSnap {
		n = PacketMaxLen
	}
	buf := make([]byte, n)
	buf[0] = pktMagic
	buf[1] = pktVersion
	if p.HasSnap {
		buf[2] |= flagHasSnap
	}
	buf[2] |= (p.CoS & 0x0f) << 4
	buf[3] = p.Proto
	binary.BigEndian.PutUint32(buf[4:8], p.SrcHost)
	binary.BigEndian.PutUint32(buf[8:12], p.DstHost)
	binary.BigEndian.PutUint16(buf[12:14], p.SrcPort)
	binary.BigEndian.PutUint16(buf[14:16], p.DstPort)
	binary.BigEndian.PutUint32(buf[16:20], p.Size)
	binary.BigEndian.PutUint64(buf[20:28], p.Seq)
	if p.HasSnap {
		h, err := p.Snap.MarshalBinary()
		if err != nil {
			return nil, err
		}
		copy(buf[PacketBaseLen:], h)
	}
	return buf, nil
}

// UnmarshalBinary decodes a packet.
func (p *Packet) UnmarshalBinary(data []byte) error {
	if len(data) < PacketBaseLen {
		return ErrPacketShort
	}
	if data[0] != pktMagic {
		return ErrPacketBadMagic
	}
	if data[1] != pktVersion {
		return fmt.Errorf("%w: %d", ErrPacketBadVersion, data[1])
	}
	p.Proto = data[3]
	p.SrcHost = binary.BigEndian.Uint32(data[4:8])
	p.DstHost = binary.BigEndian.Uint32(data[8:12])
	p.SrcPort = binary.BigEndian.Uint16(data[12:14])
	p.DstPort = binary.BigEndian.Uint16(data[14:16])
	p.Size = binary.BigEndian.Uint32(data[16:20])
	p.Seq = binary.BigEndian.Uint64(data[20:28])
	p.CoS = data[2] >> 4
	p.HasSnap = data[2]&flagHasSnap != 0
	if p.HasSnap {
		if len(data) < PacketMaxLen {
			return ErrPacketShort
		}
		return p.Snap.UnmarshalBinary(data[PacketBaseLen:PacketMaxLen])
	}
	p.Snap = SnapshotHeader{}
	return nil
}
