package packet

import (
	"strings"
	"testing"
)

func TestPoolGetReturnsZeroedLivePacket(t *testing.T) {
	c := NewCentral()
	p := c.NewPool()

	pkt := p.Get()
	if pkt.pstate != pkLive {
		t.Fatalf("Get returned pstate %d, want live", pkt.pstate)
	}
	// Dirty every visible field, recycle, and check the next Get is clean.
	pkt.SrcHost, pkt.DstHost = 7, 9
	pkt.Seq = 42
	pkt.HasSnap = true
	pkt.Snap = SnapshotHeader{Type: TypeData, ID: 5, Channel: 1}
	p.Put(pkt)

	got := p.Get()
	want := Packet{pstate: pkLive}
	if *got != want {
		t.Fatalf("recycled packet not zeroed: %+v", *got)
	}
	p.Put(got)
}

// TestPoolDoublePutPanics violates the ownership discipline on purpose
// to prove the runtime check fires.
//
//speedlight:pool-unchecked
func TestPoolDoublePutPanics(t *testing.T) {
	c := NewCentral()
	p := c.NewPool()
	pkt := p.Get()
	p.Put(pkt)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Put did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double Put") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	p.Put(pkt)
}

func TestPoolExternalPutIgnored(t *testing.T) {
	c := NewCentral()
	p := c.NewPool()
	ext := &Packet{SrcHost: 1, DstHost: 2}
	p.Put(ext) // must not panic, must not enroll the packet
	p.Put(ext) // and must stay a no-op on repeat
	if len(p.free) != 0 {
		t.Fatalf("external packet enrolled in free list (len %d)", len(p.free))
	}
}

func TestPoolCloneIsExternal(t *testing.T) {
	c := NewCentral()
	p := c.NewPool()
	pkt := p.Get()
	pkt.SrcHost = 3
	clone := pkt.Clone()
	if clone.pstate != pkExternal {
		t.Fatalf("Clone pstate %d, want external", clone.pstate)
	}
	p.Put(pkt)
	p.Put(clone) // external: no-op, no panic
	p.Put(clone)
}

func TestPoolSpillAndRefillBalance(t *testing.T) {
	c := NewCentral()
	src := c.NewPool()
	sink := c.NewPool()

	// The source allocates a wave of packets; the sink frees them all.
	pkts := make([]*Packet, 5*poolBatch)
	for i := range pkts {
		pkts[i] = src.Get()
	}
	for _, pkt := range pkts {
		sink.Put(pkt)
	}
	c.mu.Lock()
	central := len(c.free)
	c.mu.Unlock()
	if central == 0 {
		t.Fatal("sink pool never spilled to the central exchange")
	}
	if len(sink.free) >= 2*poolBatch {
		t.Fatalf("sink free list kept %d packets, spill threshold is %d",
			len(sink.free), 2*poolBatch)
	}

	// A fresh wave from the source must drain the central exchange
	// rather than allocating from scratch.
	got := src.Get()
	c.mu.Lock()
	after := len(c.free)
	c.mu.Unlock()
	if after >= central {
		t.Fatalf("refill did not take from central: %d -> %d", central, after)
	}
	if got.pstate != pkLive {
		t.Fatalf("refilled packet pstate %d, want live", got.pstate)
	}
	src.Put(got)
}

//speedlight:allocgate packet.Pool.Get packet.Pool.Put
func TestPoolSteadyStateAllocs(t *testing.T) {
	c := NewCentral()
	p := c.NewPool()
	// Warm the free list past one batch so Get never refills.
	warm := make([]*Packet, poolBatch)
	for i := range warm {
		warm[i] = p.Get()
	}
	for _, pkt := range warm {
		p.Put(pkt)
	}
	if n := testing.AllocsPerRun(1000, func() {
		pkt := p.Get()
		pkt.Seq++
		p.Put(pkt)
	}); n != 0 {
		t.Fatalf("steady-state Get/Put allocates %v per run, want 0", n)
	}
}

func TestPoolAllocationAccounting(t *testing.T) {
	c := NewCentral()
	src := c.NewPool()
	sink := c.NewPool()

	if got := c.Allocated(); got != 0 {
		t.Fatalf("fresh central reports %d allocated", got)
	}

	// Every live packet must be visible as allocated-minus-free.
	pkts := make([]*Packet, 3*poolBatch)
	for i := range pkts {
		pkts[i] = src.Get()
	}
	live := int(c.Allocated()) - c.FreeLen() - src.FreeLen() - sink.FreeLen()
	if live != len(pkts) {
		t.Fatalf("accounting sees %d live packets, want %d", live, len(pkts))
	}

	// Returning them all — even via a different pool — must bring the
	// outstanding count back to zero: this is the leak-check identity
	// emunet teardown relies on.
	for _, pkt := range pkts {
		sink.Put(pkt)
	}
	live = int(c.Allocated()) - c.FreeLen() - src.FreeLen() - sink.FreeLen()
	if live != 0 {
		t.Fatalf("accounting sees %d live packets after full return, want 0", live)
	}

	// External packets are invisible to the accounting.
	before := c.Allocated()
	ext := &Packet{}
	sink.Put(ext)
	if c.Allocated() != before {
		t.Fatalf("external packet changed the allocation count")
	}
}
