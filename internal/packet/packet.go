// Package packet defines the packet model shared by Speedlight's data
// plane, routing, and workload generators, together with the snapshot
// header that the protocol piggybacks on every packet (Section 5.1 of
// the paper).
//
// Speedlight does not require host cooperation: the header is added by
// the first snapshot-enabled device on a packet's path and stripped
// before delivery to a host. Within the emulated network the header is a
// struct field; a binary wire codec is also provided for transports that
// carry packets as bytes and for tests of partial-deployment stripping.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type distinguishes regular traffic from snapshot control messages.
type Type uint8

const (
	// TypeData marks ordinary forwarded traffic.
	TypeData Type = iota
	// TypeInitiation marks a control-plane snapshot initiation message.
	// Initiations traverse CPU -> ingress -> egress of each port and are
	// then dropped; they are never counted as in-flight channel state
	// (Section 6).
	TypeInitiation
)

func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeInitiation:
		return "initiation"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// WireID is a wrapped snapshot ID as it appears on the wire and in
// data-plane registers: an epoch number reduced modulo the deployment's
// maximum snapshot ID (Section 5.3). WireIDs are ambiguous across
// rollover, so ordered comparisons and arithmetic on them are
// meaningless — two WireIDs may only be tested for equality. To order
// or difference snapshot epochs, first recover the unwrapped SeqID with
// core.Unwrap against a rollover reference. The wrappedcmp analyzer in
// internal/lint enforces this at compile time.
type WireID uint32

// Raw exposes the register-width representation for wire codecs and
// journal encoders. It does not bless arithmetic on the result.
func (w WireID) Raw() uint32 { return uint32(w) }

// WireIDFromRaw builds a WireID from its register-width representation,
// for wire codecs and journal decoders.
func WireIDFromRaw(v uint32) WireID { return WireID(v) }

// SeqID is an unwrapped (unbounded) snapshot sequence number: the
// monotonically increasing epoch counter kept by the control plane and
// observer. Unlike WireID it is totally ordered, so comparisons and
// arithmetic are safe. Converting a SeqID to a register-width integer
// truncates it into ambiguity; that is core.Wrap's job alone.
type SeqID uint64

// SnapshotHeader is the per-packet state of the snapshot protocol.
//
// ID is the wrapped snapshot ID: the epoch in which the packet was most
// recently sent, modulo the deployment's maximum snapshot ID. Channel
// identifies the upstream neighbor to the receiving processing unit; for
// an ingress unit there is a single external upstream (channel 0), while
// for an egress unit the ingress units of the same device are the
// upstreams and Channel carries the ingress port number.
type SnapshotHeader struct {
	Type    Type
	ID      WireID
	Channel uint16
}

// Packet is a unit of traffic in the emulated network.
//
// The addressing model is deliberately simple: hosts are identified by
// integer IDs and flows by the classic 5-tuple. Size is the full frame
// size in bytes and drives byte counters and serialization delays.
type Packet struct {
	// 5-tuple.
	SrcHost uint32
	DstHost uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8

	// Size is the frame size in bytes.
	Size uint32
	// Seq is a per-flow sequence number assigned by the generator.
	Seq uint64
	// CoS is the packet's class of service (0 = best effort; higher
	// classes get strict priority). Each class is its own FIFO logical
	// channel in the snapshot model (Section 4.1): classes may
	// interleave with each other, but within a class order holds.
	CoS uint8

	// HasSnap reports whether the snapshot header is present. Packets
	// from hosts arrive without one; the first snapshot-enabled device
	// adds it (partial deployment, Section 10).
	HasSnap bool
	Snap    SnapshotHeader

	// pstate is the pool lifecycle state (see pool.go). Zero for
	// packets built directly by callers, which pools never manage.
	pstate uint8
}

// FlowHash returns a stable hash of the packet's 5-tuple, used by ECMP
// and flowlet load balancing. It is FNV-1a over the tuple fields with a
// final xor-fold: FNV's low-order bits disperse poorly, and consumers
// reduce the hash modulo small ECMP group sizes.
func (p *Packet) FlowHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	var buf [13]byte
	binary.BigEndian.PutUint32(buf[0:4], p.SrcHost)
	binary.BigEndian.PutUint32(buf[4:8], p.DstHost)
	binary.BigEndian.PutUint16(buf[8:10], p.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], p.DstPort)
	buf[12] = p.Proto
	for _, b := range buf {
		mix(b)
	}
	return h ^ (h >> 32)
}

// Clone returns a copy of the packet. Data plane hops mutate the
// snapshot header, so emulations that fan a packet out to multiple
// queues must clone it per copy. A clone is always external (never
// pool-managed), whatever the original's lifecycle.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pstate = pkExternal
	return &q
}

// Wire format of the snapshot header:
//
//	byte 0:   magic (0xA5)
//	byte 1:   version (1) << 4 | type
//	bytes 2-5: snapshot ID, big endian
//	bytes 6-7: channel ID, big endian
const (
	wireMagic   = 0xA5
	wireVersion = 1
	// HeaderLen is the encoded size of a SnapshotHeader in bytes.
	HeaderLen = 8
)

// Errors returned by the codec.
var (
	ErrShortBuffer = errors.New("packet: buffer too short for snapshot header")
	ErrBadMagic    = errors.New("packet: bad snapshot header magic")
	ErrBadVersion  = errors.New("packet: unsupported snapshot header version")
)

// MarshalBinary encodes the header into an 8-byte slice.
func (h SnapshotHeader) MarshalBinary() ([]byte, error) {
	return h.AppendBinary(nil), nil
}

// AppendBinary appends the 8-byte encoding of the header to dst and
// returns the extended slice. With capacity in dst it allocates
// nothing; this is the hot-path form of MarshalBinary.
//
//speedlight:hotpath
func (h SnapshotHeader) AppendBinary(dst []byte) []byte {
	return append(dst,
		wireMagic,
		wireVersion<<4|uint8(h.Type)&0x0f,
		byte(h.ID.Raw()>>24), byte(h.ID.Raw()>>16), byte(h.ID.Raw()>>8), byte(h.ID.Raw()),
		byte(h.Channel>>8), byte(h.Channel),
	)
}

// UnmarshalBinary decodes the header from data.
func (h *SnapshotHeader) UnmarshalBinary(data []byte) error {
	if len(data) < HeaderLen {
		return ErrShortBuffer
	}
	if data[0] != wireMagic {
		return ErrBadMagic
	}
	if data[1]>>4 != wireVersion {
		return ErrBadVersion
	}
	h.Type = Type(data[1] & 0x0f)
	h.ID = WireIDFromRaw(binary.BigEndian.Uint32(data[2:6]))
	h.Channel = binary.BigEndian.Uint16(data[6:8])
	return nil
}
