package journal

import "testing"

// TestAppendAllocs pins the hot-path contract: Append costs zero
// amortized allocations per event. Cell blocks are allocated one ring
// of events at a time, so per-append cost is 1/size allocations —
// which AllocsPerRun's integer average reports as 0.
//
//speedlight:allocgate journal.Journal.Append journal.Journal.cell
func TestAppendAllocs(t *testing.T) {
	j := New(1024)
	ev := Event{Kind: KindInitiate, Switch: 1, AtNs: 5}
	if n := testing.AllocsPerRun(10000, func() {
		j.Append(ev)
	}); n != 0 {
		t.Fatalf("Append allocates %v per event, want 0 amortized", n)
	}
}
