package journal

import (
	"encoding/json"
	"fmt"

	"speedlight/internal/packet"
)

// Dir is a processing-unit direction, mirroring dataplane.Direction
// without importing it (journal sits below every protocol package).
type Dir int8

const (
	// DirNone marks events that are not tied to one unit direction.
	DirNone Dir = -1
	// DirIngress is the ingress unit of a port.
	DirIngress Dir = 0
	// DirEgress is the egress unit of a port.
	DirEgress Dir = 1
)

// String returns the direction name.
func (d Dir) String() string {
	switch d {
	case DirIngress:
		return "ingress"
	case DirEgress:
		return "egress"
	default:
		return "none"
	}
}

// ParseDir inverts String.
func ParseDir(s string) (Dir, error) {
	switch s {
	case "ingress":
		return DirIngress, nil
	case "egress":
		return DirEgress, nil
	case "none", "":
		return DirNone, nil
	}
	return DirNone, fmt.Errorf("journal: unknown direction %q", s)
}

// MarshalJSON encodes the direction as its name.
func (d Dir) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON decodes a direction name.
func (d *Dir) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseDir(s)
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// Kind identifies what protocol transition an event records.
type Kind uint8

const (
	// KindConfig records the deployment parameters the auditor needs
	// (MaxID, wraparound, channel-state mode).
	KindConfig Kind = iota
	// KindRegister announces a processing unit the observer expects
	// results from.
	KindRegister
	// KindInitiate records a snapshot initiation reaching a switch's
	// control plane.
	KindInitiate
	// KindRecord records a unit advancing its snapshot ID and writing
	// its slot.
	KindRecord
	// KindLastSeen records a unit updating a channel's last-seen ID.
	KindLastSeen
	// KindAbsorb records an in-flight (pre-snapshot) packet being
	// absorbed into the current channel-state slot.
	KindAbsorb
	// KindAbsorbMiss records an in-flight packet arriving when the
	// current slot was not open for it — channel state lost.
	KindAbsorbMiss
	// KindRollover records a unit's snapshot ID wrapping around.
	KindRollover
	// KindNotifGen records the dataplane generating a CPU notification.
	KindNotifGen
	// KindNotifDrop records a notification lost to a full CPU queue.
	KindNotifDrop
	// KindNotifService records the control plane dequeuing a CPU
	// notification and beginning to service it.
	KindNotifService
	// KindMarkerSend records the control plane injecting a marker.
	KindMarkerSend
	// KindMarkerRecv records a marker arriving at an ingress unit.
	KindMarkerRecv
	// KindResult records the control plane emitting a unit's snapshot
	// value upstream.
	KindResult
	// KindPoll records a control-plane poll sweep over its units.
	KindPoll
	// KindObsBegin records the observer opening a global snapshot.
	KindObsBegin
	// KindObsResult records the observer accepting a unit result.
	KindObsResult
	// KindObsRetry records the observer re-initiating toward a straggler.
	KindObsRetry
	// KindObsExclude records the observer giving up on a device.
	KindObsExclude
	// KindObsComplete records the observer finalizing a global snapshot.
	KindObsComplete
	// KindChurn records a fabric membership change applied at runtime:
	// a switch or link leaving or rejoining the topology, or a config
	// re-push. Churn events live in the observer's ring (they are
	// fabric-level, not unit-level state transitions); the reconcile
	// classifier overlaps them with snapshot lifetimes to decide which
	// epochs each change touched.
	KindChurn
)

// Churn operation codes, carried in a KindChurn event's Value field.
const (
	// ChurnSwitchDown marks a switch leaving the fabric (reboot,
	// failure, or administrative removal).
	ChurnSwitchDown uint64 = 1
	// ChurnSwitchUp marks a switch rejoining with freshly provisioned
	// data- and control-plane state.
	ChurnSwitchUp uint64 = 2
	// ChurnLinkDown marks a link drained out of service.
	ChurnLinkDown uint64 = 3
	// ChurnLinkUp marks a drained link re-added.
	ChurnLinkUp uint64 = 4
	// ChurnReconfig marks a dataplane forwarding-config re-push.
	ChurnReconfig uint64 = 5
	// ChurnReroute marks a fabric-wide FIB recomputation around the
	// current down set.
	ChurnReroute uint64 = 6
)

// ChurnOpName returns the human-readable name of a churn op code.
func ChurnOpName(op uint64) string {
	switch op {
	case ChurnSwitchDown:
		return "switch_down"
	case ChurnSwitchUp:
		return "switch_up"
	case ChurnLinkDown:
		return "link_down"
	case ChurnLinkUp:
		return "link_up"
	case ChurnReconfig:
		return "reconfig"
	case ChurnReroute:
		return "reroute"
	default:
		return fmt.Sprintf("churn(%d)", op)
	}
}

var kindNames = map[Kind]string{
	KindConfig:       "config",
	KindRegister:     "register",
	KindInitiate:     "initiate",
	KindRecord:       "record",
	KindLastSeen:     "last_seen",
	KindAbsorb:       "absorb",
	KindAbsorbMiss:   "absorb_miss",
	KindRollover:     "rollover",
	KindNotifGen:     "notif_gen",
	KindNotifDrop:    "notif_drop",
	KindNotifService: "notif_service",
	KindMarkerSend:   "marker_send",
	KindMarkerRecv:   "marker_recv",
	KindResult:       "result",
	KindPoll:         "poll",
	KindObsBegin:     "obs_begin",
	KindObsResult:    "obs_result",
	KindObsRetry:     "obs_retry",
	KindObsExclude:   "obs_exclude",
	KindObsComplete:  "obs_complete",
	KindChurn:        "churn",
}

var kindValues = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String returns the kind's wire name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	if k, ok := kindValues[s]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("journal: unknown event kind %q", s)
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Event is one journaled protocol transition. Field meaning varies by
// Kind (see the constructors); unused fields are zero. Seq is the
// set-wide total order, AtNs the wall (or virtual) time in nanoseconds.
type Event struct {
	Seq  uint64 `json:"seq"`
	AtNs int64  `json:"at_ns"`
	Kind Kind   `json:"kind"`

	// Switch/Port/Dir identify the processing unit; Switch is
	// ObserverNode for observer-side events and Port is -1 when no
	// single unit applies.
	Switch int `json:"switch"`
	Port   int `json:"port"`
	Dir    Dir `json:"dir"`

	// Channel is the neighbor/channel index for per-channel events
	// (-1 otherwise).
	Channel int `json:"channel"`

	// SnapshotID is the unwrapped snapshot ID the event concerns.
	SnapshotID packet.SeqID `json:"snapshot_id"`
	// OldID/NewID bracket a transition (record, last-seen, absorb).
	OldID packet.SeqID `json:"old_id"`
	NewID packet.SeqID `json:"new_id"`
	// WireID is the wrapped on-the-wire ID where one applies.
	WireID packet.WireID `json:"wire_id"`
	// Value carries the event's payload quantity (snapshot value,
	// CoS level, excluded count, MaxID...).
	Value uint64 `json:"value"`
	// Flag carries the event's boolean (consistent, channel-state,
	// re-initiation...).
	Flag bool `json:"flag"`
}

// unitless fills the identity fields for events with no single unit.
func unitless(kind Kind, at int64, sw int) Event {
	return Event{AtNs: at, Kind: kind, Switch: sw, Port: -1, Dir: DirNone, Channel: -1}
}

// Config describes the deployment so an offline auditor can recover
// MaxID (Value), wraparound mode (Flag reports channel-state; NewID is
// 1 when wraparound is enabled, 0 otherwise).
func Config(maxID uint64, wrap, channelState bool) Event {
	ev := unitless(KindConfig, 0, ObserverNode)
	ev.Value = maxID
	ev.Flag = channelState
	if wrap {
		ev.NewID = 1
	}
	return ev
}

// Register announces a processing unit the observer will expect a
// result from for every snapshot.
func Register(sw, port int, dir Dir) Event {
	ev := unitless(KindRegister, 0, sw)
	ev.Port = port
	ev.Dir = dir
	return ev
}

// Initiate records snapshot id reaching a switch's control plane.
// re marks a re-initiation (observer retry).
func Initiate(at int64, sw int, id packet.SeqID, re bool) Event {
	ev := unitless(KindInitiate, at, sw)
	ev.SnapshotID = id
	ev.Flag = re
	return ev
}

// Record journals a unit advancing from oldID to newID (unwrapped) and
// writing its snapshot slot; wireID is the wrapped ID carried by the
// packet that caused the advance.
func Record(at int64, sw, port int, dir Dir, channel int, oldID, newID packet.SeqID, wireID packet.WireID) Event {
	return Event{
		AtNs: at, Kind: KindRecord, Switch: sw, Port: port, Dir: dir,
		Channel: channel, SnapshotID: newID, OldID: oldID, NewID: newID,
		WireID: wireID,
	}
}

// LastSeen journals a unit updating a channel's last-seen snapshot ID
// from oldSeen to newSeen (unwrapped).
func LastSeen(at int64, sw, port int, dir Dir, channel int, oldSeen, newSeen packet.SeqID) Event {
	return Event{
		AtNs: at, Kind: KindLastSeen, Switch: sw, Port: port, Dir: dir,
		Channel: channel, SnapshotID: newSeen, OldID: oldSeen, NewID: newSeen,
	}
}

// Absorb journals an in-flight packet stamped packetID (unwrapped)
// being folded into the channel state of the unit's current snapshot
// curID.
func Absorb(at int64, sw, port int, dir Dir, channel int, packetID, curID packet.SeqID) Event {
	return Event{
		AtNs: at, Kind: KindAbsorb, Switch: sw, Port: port, Dir: dir,
		Channel: channel, SnapshotID: curID, OldID: packetID, NewID: curID,
	}
}

// AbsorbMiss journals an in-flight packet stamped packetID arriving
// while the unit's slot for curID was not open — its channel-state
// contribution is lost.
func AbsorbMiss(at int64, sw, port int, dir Dir, channel int, packetID, curID packet.SeqID) Event {
	return Event{
		AtNs: at, Kind: KindAbsorbMiss, Switch: sw, Port: port, Dir: dir,
		Channel: channel, SnapshotID: curID, OldID: packetID, NewID: curID,
	}
}

// Rollover journals a unit's wrapped snapshot ID lapping zero while
// advancing from oldID to newID (unwrapped).
func Rollover(at int64, sw, port int, dir Dir, oldID, newID packet.SeqID) Event {
	return Event{
		AtNs: at, Kind: KindRollover, Switch: sw, Port: port, Dir: dir,
		Channel: -1, SnapshotID: newID, OldID: oldID, NewID: newID,
	}
}

// NotifGenerated journals the dataplane queueing a CPU notification for
// a unit's advance to id.
func NotifGenerated(at int64, sw, port int, dir Dir, id packet.SeqID) Event {
	ev := unitless(KindNotifGen, at, sw)
	ev.Port = port
	ev.Dir = dir
	ev.SnapshotID = id
	return ev
}

// NotifDropped journals a notification for a unit's advance to id lost
// to a full CPU queue — the seed of an Incomplete snapshot.
func NotifDropped(at int64, sw, port int, dir Dir, id packet.SeqID) Event {
	ev := unitless(KindNotifDrop, at, sw)
	ev.Port = port
	ev.Dir = dir
	ev.SnapshotID = id
	return ev
}

// NotifService journals the control plane dequeuing a unit's CPU
// notification for its advance to id and beginning to service it. The
// gap from the matching NotifGenerated is the notification's queue
// (plus DMA) wait — the quantity the epoch tracer charges to the
// control-plane queue bucket.
func NotifService(at int64, sw, port int, dir Dir, id packet.SeqID) Event {
	ev := unitless(KindNotifService, at, sw)
	ev.Port = port
	ev.Dir = dir
	ev.SnapshotID = id
	return ev
}

// MarkerSent journals the control plane injecting a snapshot marker for
// id into a port; cos is the class-of-service lane it rides.
func MarkerSent(at int64, sw, port int, id packet.SeqID, cos int) Event {
	ev := unitless(KindMarkerSend, at, sw)
	ev.Port = port
	ev.SnapshotID = id
	ev.Value = uint64(cos)
	return ev
}

// MarkerReceived journals a marker for id arriving at an ingress unit
// over a channel.
func MarkerReceived(at int64, sw, port int, channel int, id packet.SeqID) Event {
	ev := unitless(KindMarkerRecv, at, sw)
	ev.Port = port
	ev.Dir = DirIngress
	ev.Channel = channel
	ev.SnapshotID = id
	return ev
}

// Result journals the control plane emitting a unit's value for
// snapshot id upstream, with the control plane's own consistency
// verdict.
func Result(at int64, sw, port int, dir Dir, id packet.SeqID, value uint64, consistent bool) Event {
	ev := unitless(KindResult, at, sw)
	ev.Port = port
	ev.Dir = dir
	ev.SnapshotID = id
	ev.Value = value
	ev.Flag = consistent
	return ev
}

// Poll journals a control-plane poll sweep on a switch.
func Poll(at int64, sw int) Event {
	return unitless(KindPoll, at, sw)
}

// ObsBegin journals the observer opening global snapshot id.
func ObsBegin(at int64, id packet.SeqID) Event {
	ev := unitless(KindObsBegin, at, ObserverNode)
	ev.SnapshotID = id
	return ev
}

// ObsResult journals the observer accepting a unit's result for
// snapshot id, with the consistency bit it arrived with. Switch/Port/
// Dir name the producing unit even though the event lives in the
// observer's ring — the auditor matches on unit identity.
func ObsResult(at int64, sw, port int, dir Dir, id packet.SeqID, consistent bool) Event {
	ev := unitless(KindObsResult, at, sw)
	ev.Port = port
	ev.Dir = dir
	ev.SnapshotID = id
	ev.Flag = consistent
	return ev
}

// ObsRetry journals the observer re-initiating snapshot id toward a
// straggler device.
func ObsRetry(at int64, id packet.SeqID, device int) Event {
	ev := unitless(KindObsRetry, at, device)
	ev.SnapshotID = id
	return ev
}

// ObsExclude journals the observer excluding a device from snapshot id
// after retries ran out.
func ObsExclude(at int64, id packet.SeqID, device int) Event {
	ev := unitless(KindObsExclude, at, device)
	ev.SnapshotID = id
	return ev
}

// ObsComplete journals the observer finalizing snapshot id with its
// overall consistency verdict and the number of excluded devices.
func ObsComplete(at int64, id packet.SeqID, consistent bool, excluded int) Event {
	ev := unitless(KindObsComplete, at, ObserverNode)
	ev.SnapshotID = id
	ev.Flag = consistent
	ev.Value = uint64(excluded)
	return ev
}

// Churn journals a runtime fabric change: op is one of the Churn* op
// codes, sw names the switch the change applies to, and port is the
// affected port for link ops (-1 otherwise). Link changes are recorded
// once, against the canonical (lower node ID) endpoint.
func Churn(at int64, sw, port int, op uint64) Event {
	ev := unitless(KindChurn, at, sw)
	ev.Port = port
	ev.Value = op
	return ev
}
