package journal

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"net/http/httptest"
	"os"
	"reflect"
	"speedlight/internal/packet"
	"strings"
	"sync"
	"testing"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var j *Journal
	j.Append(Poll(1, 0)) // must not panic
	if j.Events() != nil || j.Appended() != 0 || j.Overwritten() != 0 || j.Cap() != 0 {
		t.Fatal("nil Journal should read empty")
	}
	var s *Set
	if s.For(3) != nil {
		t.Fatal("nil Set.For should return nil ring")
	}
	s.Observer().Append(Poll(1, 0))
	if s.Events() != nil || s.Tail(5) != nil || s.Appended() != 0 || s.Overwritten() != 0 {
		t.Fatal("nil Set should read empty")
	}
}

func TestRingWraparound(t *testing.T) {
	j := New(4)
	if j.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", j.Cap())
	}
	for i := 0; i < 10; i++ {
		j.Append(Initiate(int64(i), 0, packet.SeqID(i), false))
	}
	if got := j.Appended(); got != 10 {
		t.Fatalf("Appended = %d, want 10", got)
	}
	if got := j.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := uint64(7 + i) // seqs 7..10 survive
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	if got := New(5).Cap(); got != 8 {
		t.Fatalf("New(5).Cap() = %d, want 8", got)
	}
	if got := New(0).Cap(); got != DefaultCapacity {
		t.Fatalf("New(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
}

func TestSetMergeTotalOrder(t *testing.T) {
	s := NewSet(16)
	s.For(0).Append(Poll(1, 0))
	s.For(1).Append(Poll(2, 1))
	s.Observer().Append(ObsBegin(3, 7))
	s.For(0).Append(Poll(4, 0))
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("merged event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if evs[2].Kind != KindObsBegin || evs[2].Switch != ObserverNode {
		t.Fatalf("merged order wrong: %+v", evs[2])
	}
	if got := s.Tail(2); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("Tail(2) = %+v", got)
	}
}

// TestSetMergeInterleavingIndependent: the merged stream is a pure
// function of each ring's contents — the wall-clock order in which
// different rings were appended must not show through. This is the
// property the parallel engine's byte-identical-journal guarantee
// rests on.
func TestSetMergeInterleavingIndependent(t *testing.T) {
	build := func(order []int) []Event {
		s := NewSet(16)
		appends := map[int][]Event{
			0:            {Poll(10, 0), Poll(30, 0)},
			1:            {Poll(10, 1), Poll(20, 1)},
			ObserverNode: {ObsBegin(10, 7), ObsBegin(25, 8)},
		}
		idx := map[int]int{}
		for _, node := range order {
			s.For(node).Append(appends[node][idx[node]])
			idx[node]++
		}
		return s.Events()
	}
	a := build([]int{0, 0, 1, 1, ObserverNode, ObserverNode})
	b := build([]int{ObserverNode, 1, 0, 1, ObserverNode, 0})
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("merged lengths %d, %d, want 6", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("merge depends on append interleaving at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// Ties at AtNs=10 resolve observer ring first, then nodes ascending.
	if a[0].Kind != KindObsBegin {
		t.Errorf("tie at t=10: observer ring should rank first, got %+v", a[0])
	}
	if a[1].Switch != 0 || a[2].Switch != 1 {
		t.Errorf("tie at t=10: switch rings out of node order: %+v, %+v", a[1], a[2])
	}
	for i, ev := range a {
		if ev.Seq != uint64(i+1) {
			t.Errorf("re-stamped seq %d at %d", ev.Seq, i)
		}
	}
}

// TestConcurrentAppendAndDump exercises dump-during-append under the
// race detector: readers must only ever see whole events.
func TestConcurrentAppendAndDump(t *testing.T) {
	s := NewSet(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			j := s.For(node)
			for i := 0; i < 500; i++ {
				j.Append(Record(int64(i), node, i%8, DirIngress, 0, packet.SeqID(i), packet.SeqID(i+1), packet.WireIDFromRaw(uint32(i))))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, ev := range s.Events() {
				if ev.Kind != KindRecord {
					t.Errorf("torn event: %+v", ev)
					return
				}
				if ev.NewID != ev.OldID+1 {
					t.Errorf("torn event fields: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	if got := s.Appended(); got != 2000 {
		t.Fatalf("Appended = %d, want 2000", got)
	}
}

// allEvents returns one instance of every constructor, for round-trip
// and coverage testing.
func allEvents() []Event {
	return []Event{
		Config(256, true, true),
		Register(0, 1, DirEgress),
		Initiate(10, 0, 5, true),
		Record(20, 1, 2, DirIngress, 3, 4, 5, 5),
		LastSeen(30, 1, 2, DirIngress, 3, 4, 5),
		Absorb(40, 1, 2, DirIngress, 3, 4, 5),
		AbsorbMiss(50, 1, 2, DirIngress, 3, 4, 5),
		Rollover(60, 1, 2, DirEgress, 255, 256),
		NotifGenerated(70, 1, 2, DirIngress, 5),
		NotifDropped(80, 1, 2, DirEgress, 5),
		NotifService(85, 1, 2, DirIngress, 5),
		MarkerSent(90, 1, 2, 5, 7),
		MarkerReceived(100, 1, 2, 3, 5),
		Result(110, 1, 2, DirIngress, 5, 42, true),
		Poll(120, 1),
		ObsBegin(130, 5),
		ObsResult(140, 1, 2, DirEgress, 5, false),
		ObsRetry(150, 5, 1),
		ObsExclude(160, 5, 1),
		ObsComplete(170, 5, false, 2),
		Churn(180, 1, 2, ChurnLinkDown),
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := allEvents()
	for i := range in {
		in[i].Seq = uint64(i + 1)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("JSONL round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := allEvents()
	for i := range in {
		in[i].Seq = uint64(i + 1)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("CSV round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Fatal("want error for short header")
	}
}

func TestKindAndDirParse(t *testing.T) {
	for k, name := range kindNames {
		got, err := ParseKind(name)
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("want error for unknown kind")
	}
	for _, d := range []Dir{DirNone, DirIngress, DirEgress} {
		got, err := ParseDir(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDir(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDir("sideways"); err == nil {
		t.Fatal("want error for unknown dir")
	}
}

func TestEventString(t *testing.T) {
	s := Record(20, 1, 2, DirIngress, 3, 4, 5, 5).String()
	for _, want := range []string{"record", "sw1", "port2", "ingress", "id 4->5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Record.String() = %q, missing %q", s, want)
		}
	}
	if s := ObsBegin(0, 7).String(); !strings.Contains(s, "observer") {
		t.Fatalf("ObsBegin.String() = %q, missing observer", s)
	}
}

func TestHTTPHandler(t *testing.T) {
	evs := []Event{Poll(1, 0), ObsBegin(2, 3)}
	h := HTTPHandler(func() []Event { return evs })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/journal", nil))
	got, err := ReadJSONL(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, got) {
		t.Fatalf("JSONL endpoint mismatch: %+v", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/journal?format=csv", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "csv") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got, err = ReadCSV(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, got) {
		t.Fatalf("CSV endpoint mismatch: %+v", got)
	}
}

// TestEventConstructorsCovered parses events.go and asserts every
// exported constructor returning Event appears in allEvents above, so
// adding an event kind without extending the round-trip tests fails CI.
func TestEventConstructorsCovered(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "events.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var constructors []string
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv != nil || !fn.Name.IsExported() {
			continue
		}
		res := fn.Type.Results
		if res == nil || len(res.List) != 1 {
			continue
		}
		if id, ok := res.List[0].Type.(*ast.Ident); ok && id.Name == "Event" {
			constructors = append(constructors, fn.Name.Name)
		}
	}
	if len(constructors) < 15 {
		t.Fatalf("found only %d constructors; parsing broke?", len(constructors))
	}

	src, err := os.ReadFile("journal_test.go")
	if err != nil {
		t.Fatal(err)
	}
	body := string(src)
	// Confine the check to allEvents so incidental mentions elsewhere
	// don't mask a gap.
	start := strings.Index(body, "func allEvents()")
	end := strings.Index(body[start:], "\n}")
	block := body[start : start+end]
	covered := allEvents()
	if len(covered) != len(constructors) {
		t.Errorf("allEvents returns %d events but events.go has %d constructors", len(covered), len(constructors))
	}
	for _, name := range constructors {
		if !strings.Contains(block, name+"(") {
			t.Errorf("constructor %s is not exercised by allEvents", name)
		}
	}
}
