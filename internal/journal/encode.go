package journal

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"speedlight/internal/packet"
)

// WriteJSONL writes events as JSON Lines, one event object per line —
// the journal's canonical interchange format.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL inverts WriteJSONL, skipping blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// csvHeader is the column order shared by WriteCSV and ReadCSV.
var csvHeader = []string{
	"seq", "at_ns", "kind", "switch", "port", "dir", "channel",
	"snapshot_id", "old_id", "new_id", "wire_id", "value", "flag",
}

// WriteCSV writes events as CSV with a header row.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, ev := range events {
		if err := cw.Write([]string{
			strconv.FormatUint(ev.Seq, 10),
			strconv.FormatInt(ev.AtNs, 10),
			ev.Kind.String(),
			strconv.Itoa(ev.Switch),
			strconv.Itoa(ev.Port),
			ev.Dir.String(),
			strconv.Itoa(ev.Channel),
			strconv.FormatUint(uint64(ev.SnapshotID), 10),
			strconv.FormatUint(uint64(ev.OldID), 10),
			strconv.FormatUint(uint64(ev.NewID), 10),
			strconv.FormatUint(uint64(ev.WireID.Raw()), 10),
			strconv.FormatUint(ev.Value, 10),
			strconv.FormatBool(ev.Flag),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV inverts WriteCSV. The header row is required.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("journal: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("journal: CSV header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("journal: CSV column %d is %q, want %q", i, header[i], col)
		}
	}
	var out []Event
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		ev, err := parseCSVRecord(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

func parseCSVRecord(rec []string) (Event, error) {
	var ev Event
	var err error
	fail := func(col string, e error) (Event, error) {
		return Event{}, fmt.Errorf("journal: CSV column %s: %w", col, e)
	}
	if ev.Seq, err = strconv.ParseUint(rec[0], 10, 64); err != nil {
		return fail("seq", err)
	}
	if ev.AtNs, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return fail("at_ns", err)
	}
	if ev.Kind, err = ParseKind(rec[2]); err != nil {
		return fail("kind", err)
	}
	if ev.Switch, err = strconv.Atoi(rec[3]); err != nil {
		return fail("switch", err)
	}
	if ev.Port, err = strconv.Atoi(rec[4]); err != nil {
		return fail("port", err)
	}
	if ev.Dir, err = ParseDir(rec[5]); err != nil {
		return fail("dir", err)
	}
	if ev.Channel, err = strconv.Atoi(rec[6]); err != nil {
		return fail("channel", err)
	}
	snapID, err := strconv.ParseUint(rec[7], 10, 64)
	if err != nil {
		return fail("snapshot_id", err)
	}
	ev.SnapshotID = packet.SeqID(snapID)
	oldID, err := strconv.ParseUint(rec[8], 10, 64)
	if err != nil {
		return fail("old_id", err)
	}
	ev.OldID = packet.SeqID(oldID)
	newID, err := strconv.ParseUint(rec[9], 10, 64)
	if err != nil {
		return fail("new_id", err)
	}
	ev.NewID = packet.SeqID(newID)
	wire, err := strconv.ParseUint(rec[10], 10, 32)
	if err != nil {
		return fail("wire_id", err)
	}
	ev.WireID = packet.WireIDFromRaw(uint32(wire))
	if ev.Value, err = strconv.ParseUint(rec[11], 10, 64); err != nil {
		return fail("value", err)
	}
	if ev.Flag, err = strconv.ParseBool(rec[12]); err != nil {
		return fail("flag", err)
	}
	return ev, nil
}

// String renders an event for humans — the witness-chain format the
// auditor and doctor subcommand print.
func (ev Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t=%dns %s", ev.Seq, ev.AtNs, ev.Kind)
	if ev.Switch == ObserverNode {
		b.WriteString(" observer")
	} else {
		fmt.Fprintf(&b, " sw%d", ev.Switch)
	}
	if ev.Port >= 0 {
		fmt.Fprintf(&b, "/port%d", ev.Port)
	}
	if ev.Dir != DirNone {
		fmt.Fprintf(&b, "/%s", ev.Dir)
	}
	if ev.Channel >= 0 {
		fmt.Fprintf(&b, " ch=%d", ev.Channel)
	}
	switch ev.Kind {
	case KindRecord, KindLastSeen, KindAbsorb, KindAbsorbMiss, KindRollover:
		fmt.Fprintf(&b, " id %d->%d", ev.OldID, ev.NewID)
	default:
		if ev.SnapshotID != 0 || ev.Kind == KindObsBegin {
			fmt.Fprintf(&b, " id=%d", ev.SnapshotID)
		}
	}
	switch ev.Kind {
	case KindResult:
		fmt.Fprintf(&b, " value=%d consistent=%v", ev.Value, ev.Flag)
	case KindObsResult:
		fmt.Fprintf(&b, " consistent=%v", ev.Flag)
	case KindObsComplete:
		fmt.Fprintf(&b, " consistent=%v excluded=%d", ev.Flag, ev.Value)
	case KindInitiate:
		if ev.Flag {
			b.WriteString(" reinit")
		}
	case KindConfig:
		fmt.Fprintf(&b, " max_id=%d wrap=%v channel_state=%v", ev.Value, ev.NewID == 1, ev.Flag)
	case KindMarkerSend:
		fmt.Fprintf(&b, " cos=%d", ev.Value)
	}
	return b.String()
}

// HTTPHandler serves the events returned by src as JSONL, or CSV with
// ?format=csv — the /journal endpoint on the telemetry mux.
func HTTPHandler(src func() []Event) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := src()
		if r.URL.Query().Get("format") == "csv" {
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			if err := WriteCSV(w, events); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := WriteJSONL(w, events); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
