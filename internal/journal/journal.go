// Package journal is Speedlight's flight recorder: an always-on,
// bounded, lock-free ring buffer of structured protocol events — the
// per-unit record of what the snapshot machinery actually did, as
// opposed to the aggregate counters of internal/telemetry.
//
// Each switch gets its own ring (a Set groups them, plus one for the
// observer); appends reserve a slot with a single atomic cursor
// increment and publish the event through an atomic pointer, so the
// emulation hot path and the live runtime's switch goroutines never
// contend on a lock. When a ring fills, the oldest events are
// overwritten — the "flight recorder" semantics: the recent past is
// always available for dumping when an anomaly fires.
//
// Like internal/telemetry, every method is safe on a nil receiver,
// which is the disabled state: an un-journaled deployment pays one
// predicted branch per potential event and nothing else.
//
// The event stream is what internal/audit replays to verify the
// paper's causal-consistency invariants mechanically (Sections 3-6);
// internal/export serializes it for offline analysis and the
// `speedlight doctor` subcommand.
package journal

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ObserverNode is the pseudo switch ID under which observer-side
// events are journaled in a Set.
const ObserverNode = -1

// DefaultCapacity is the per-ring event capacity used when a Set is
// created with a non-positive capacity.
const DefaultCapacity = 4096

// Journal is one bounded ring of events. The zero value is not usable;
// create rings with New or through a Set. A nil *Journal is the
// disabled state: Append is a no-op and Events returns nil.
type Journal struct {
	// seq is the sequencer events are stamped from. Rings created
	// through a Set share the Set's sequencer, so the merged event
	// stream has a single total order — the causal replay order the
	// auditor depends on.
	seq  *atomic.Uint64
	mask uint64
	next atomic.Uint64
	// slots hold published events. Pointer slots keep appends lock-free
	// and dump reads race-free: a reader either sees the old event or
	// the new one, never a torn mix.
	slots []atomic.Pointer[Event]
}

// New creates a standalone ring with its own sequencer. capacity is
// rounded up to a power of two; non-positive means DefaultCapacity.
func New(capacity int) *Journal {
	return newJournal(capacity, &atomic.Uint64{})
}

func newJournal(capacity int, seq *atomic.Uint64) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Journal{
		seq:   seq,
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[Event], size),
	}
}

// Cap returns the ring capacity in events.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Append stamps the event with the next sequence number and publishes
// it, overwriting the oldest event once the ring is full. Safe for
// concurrent use and a no-op on a nil Journal.
//
//speedlight:hotpath
func (j *Journal) Append(ev Event) {
	if j == nil {
		return
	}
	ev.Seq = j.seq.Add(1)
	e := &ev
	pos := j.next.Add(1) - 1
	j.slots[pos&j.mask].Store(e)
}

// Appended returns how many events this ring has accepted in total
// (including ones already overwritten).
func (j *Journal) Appended() uint64 {
	if j == nil {
		return 0
	}
	return j.next.Load()
}

// Overwritten returns how many events have been lost to ring reuse.
func (j *Journal) Overwritten() uint64 {
	if j == nil {
		return 0
	}
	n := j.next.Load()
	if c := uint64(len(j.slots)); n > c {
		return n - c
	}
	return 0
}

// Events returns a snapshot of the ring's current contents in sequence
// order. Nil on a nil Journal.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, 0, len(j.slots))
	for i := range j.slots {
		if e := j.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Set groups the per-switch rings of one deployment behind a shared
// sequencer, so the merged stream totally orders events across
// switches and the observer. A nil *Set is the disabled state: For and
// Observer return nil rings whose appends are no-ops.
type Set struct {
	cap int
	seq atomic.Uint64

	mu    sync.Mutex
	rings map[int]*Journal
}

// NewSet creates a journal set whose rings each hold perRingCapacity
// events (rounded up to a power of two; non-positive means
// DefaultCapacity).
func NewSet(perRingCapacity int) *Set {
	return &Set{cap: perRingCapacity, rings: make(map[int]*Journal)}
}

// For returns the ring for a switch, creating it on first use. A nil
// Set returns a nil (no-op) ring.
func (s *Set) For(node int) *Journal {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.rings[node]
	if !ok {
		j = newJournal(s.cap, &s.seq)
		s.rings[node] = j
	}
	return j
}

// Observer returns the observer-side ring.
func (s *Set) Observer() *Journal { return s.For(ObserverNode) }

// Appended returns the total number of events stamped across the set.
func (s *Set) Appended() uint64 {
	if s == nil {
		return 0
	}
	return s.seq.Load()
}

// Overwritten sums events lost to ring reuse across the set.
func (s *Set) Overwritten() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, j := range s.journals() {
		total += j.Overwritten()
	}
	return total
}

func (s *Set) journals() []*Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Journal, 0, len(s.rings))
	for _, j := range s.rings {
		out = append(out, j)
	}
	return out
}

// Events merges every ring's current contents into one stream sorted
// by sequence number. Nil on a nil Set.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, j := range s.journals() {
		out = append(out, j.Events()...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Tail returns the last n events of the merged stream — the flight
// recorder dump taken when an anomaly fires.
func (s *Set) Tail(n int) []Event {
	evs := s.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
