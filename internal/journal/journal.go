// Package journal is Speedlight's flight recorder: an always-on,
// bounded, lock-free ring buffer of structured protocol events — the
// per-unit record of what the snapshot machinery actually did, as
// opposed to the aggregate counters of internal/telemetry.
//
// Each switch gets its own ring (a Set groups them, plus one for the
// observer); appends reserve a slot with a single atomic cursor
// increment and publish the event through an atomic pointer, so the
// emulation hot path and the live runtime's switch goroutines never
// contend on a lock. When a ring fills, the oldest events are
// overwritten — the "flight recorder" semantics: the recent past is
// always available for dumping when an anomaly fires.
//
// Sequencing is per ring: an event's stamp is its ring's append
// ordinal, not a position in some global order. Set.Events
// reconstructs the merged stream deterministically — sorted by
// (timestamp, ring, per-ring ordinal) and re-stamped — so the merged
// journal of a run is a pure function of what each ring logged,
// independent of wall-clock interleaving between rings. That is what
// lets the sharded parallel engine produce byte-identical journals to
// the serial reference: each ring is only appended from one
// deterministic execution context — a switch's ring from its domain's
// events, the observer ring from the observer's domain (its own
// sharded domain under the per-pair engine; the serialized global
// domain on the serial one) — and the merge key carries virtual
// timestamps and per-ring ordinals, nothing an OS scheduler or a
// shard placement can influence.
//
// Like internal/telemetry, every method is safe on a nil receiver,
// which is the disabled state: an un-journaled deployment pays one
// predicted branch per potential event and nothing else.
//
// The event stream is what internal/audit replays to verify the
// paper's causal-consistency invariants mechanically (Sections 3-6);
// internal/export serializes it for offline analysis and the
// `speedlight doctor` subcommand.
package journal

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ObserverNode is the pseudo switch ID under which observer-side
// events are journaled in a Set. It is negative, so the observer ring
// sorts ahead of every switch ring when merged timestamps tie — an
// observer action (e.g. a retry order) precedes the switch events it
// triggers at the same instant.
const ObserverNode = -1

// DefaultCapacity is the per-ring event capacity used when a Set is
// created with a non-positive capacity.
const DefaultCapacity = 4096

// Journal is one bounded ring of events. The zero value is not usable;
// create rings with New or through a Set. A nil *Journal is the
// disabled state: Append is a no-op and Events returns nil.
type Journal struct {
	mask uint64
	// next is both the append cursor and the sequencer: an event's
	// stamp is its append ordinal in this ring. One atomic add per
	// append, no cross-ring contention.
	next atomic.Uint64
	// slots hold published events. Pointer slots keep appends lock-free
	// and dump reads race-free: a reader either sees the old event or
	// the new one, never a torn mix.
	slots []atomic.Pointer[Event]
	// cells is the current block of write-once event storage. Appends
	// claim cells from it instead of heap-allocating per event; when a
	// block is exhausted a fresh one is CASed in, so the allocation is
	// amortized over a whole block. Cells are never rewritten after
	// publication (claimed exactly once, blocks never recycled), which
	// keeps concurrent dump reads race-free.
	cells atomic.Pointer[cellBlock]
}

// cellBlock is one batch of event cells; pos is the claim cursor.
type cellBlock struct {
	pos atomic.Uint64
	evs []Event
}

// New creates a standalone ring. capacity is rounded up to a power of
// two; non-positive means DefaultCapacity.
func New(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	j := &Journal{
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[Event], size),
	}
	j.cells.Store(&cellBlock{evs: make([]Event, size)})
	return j
}

// Cap returns the ring capacity in events.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Append stamps the event with its append ordinal in this ring and
// publishes it, overwriting the oldest event once the ring is full.
// Safe for concurrent use and a no-op on a nil Journal.
//
//speedlight:hotpath
func (j *Journal) Append(ev Event) {
	if j == nil {
		return
	}
	pos := j.next.Add(1) - 1
	ev.Seq = pos + 1
	e := j.cell()
	*e = ev
	j.slots[pos&j.mask].Store(e)
}

// cell claims the next write-once event cell, advancing to a fresh
// block when the current one is spent.
//
//speedlight:hotpath
func (j *Journal) cell() *Event {
	for {
		blk := j.cells.Load()
		i := blk.pos.Add(1) - 1
		if i < uint64(len(blk.evs)) {
			return &blk.evs[i]
		}
		j.growCells(blk)
	}
}

// growCells is the amortized cold path: install a fresh block in place
// of the spent one. A lost CAS means another appender already did.
func (j *Journal) growCells(spent *cellBlock) {
	blk := &cellBlock{evs: make([]Event, len(j.slots))}
	j.cells.CompareAndSwap(spent, blk)
}

// Appended returns how many events this ring has accepted in total
// (including ones already overwritten).
func (j *Journal) Appended() uint64 {
	if j == nil {
		return 0
	}
	return j.next.Load()
}

// Overwritten returns how many events have been lost to ring reuse.
func (j *Journal) Overwritten() uint64 {
	if j == nil {
		return 0
	}
	n := j.next.Load()
	if c := uint64(len(j.slots)); n > c {
		return n - c
	}
	return 0
}

// Events returns a snapshot of the ring's current contents in append
// order. Nil on a nil Journal.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, 0, len(j.slots))
	for i := range j.slots {
		if e := j.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Set groups the per-switch rings of one deployment. A nil *Set is the
// disabled state: For and Observer return nil rings whose appends are
// no-ops.
type Set struct {
	cap int

	mu    sync.Mutex
	rings map[int]*Journal
}

// NewSet creates a journal set whose rings each hold perRingCapacity
// events (rounded up to a power of two; non-positive means
// DefaultCapacity).
func NewSet(perRingCapacity int) *Set {
	return &Set{cap: perRingCapacity, rings: make(map[int]*Journal)}
}

// For returns the ring for a switch, creating it on first use. A nil
// Set returns a nil (no-op) ring.
func (s *Set) For(node int) *Journal {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.rings[node]
	if !ok {
		j = New(s.cap)
		s.rings[node] = j
	}
	return j
}

// Observer returns the observer-side ring.
func (s *Set) Observer() *Journal { return s.For(ObserverNode) }

// Appended returns the total number of events accepted across the set.
func (s *Set) Appended() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, r := range s.sorted() {
		total += r.ring.Appended()
	}
	return total
}

// Overwritten sums events lost to ring reuse across the set.
func (s *Set) Overwritten() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, r := range s.sorted() {
		total += r.ring.Overwritten()
	}
	return total
}

type nodeRing struct {
	node int
	ring *Journal
}

// sorted returns the rings keyed and ordered by node ID (observer
// first), the deterministic merge rank.
func (s *Set) sorted() []nodeRing {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]nodeRing, 0, len(s.rings))
	for node, j := range s.rings {
		out = append(out, nodeRing{node: node, ring: j})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].node < out[b].node })
	return out
}

// Events merges every ring's current contents into one deterministic
// stream: sorted by (timestamp, ring node, per-ring ordinal) and
// re-stamped 1..n. Because each ring is appended from a single
// deterministic execution context, the merged stream is identical for
// any interleaving of rings — in particular, the parallel engine's
// journal matches the serial engine's byte for byte, even with the
// observer ring appended from its own sharded domain: which shard (or
// goroutine) hosts a domain never enters the key. Nil on a nil Set.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	type keyed struct {
		ev   Event
		node int
	}
	var all []keyed
	for _, r := range s.sorted() {
		for _, ev := range r.ring.Events() {
			all = append(all, keyed{ev: ev, node: r.node})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.ev.AtNs != y.ev.AtNs {
			return x.ev.AtNs < y.ev.AtNs
		}
		if x.node != y.node {
			return x.node < y.node
		}
		return x.ev.Seq < y.ev.Seq
	})
	out := make([]Event, len(all))
	for i, k := range all {
		out[i] = k.ev
		out[i].Seq = uint64(i + 1)
	}
	return out
}

// Tail returns the last n events of the merged stream — the flight
// recorder dump taken when an anomaly fires.
func (s *Set) Tail(n int) []Event {
	evs := s.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
