package journal

import (
	"bytes"
	"reflect"
	"testing"
)

// corpusBytes renders the full constructor corpus in both interchange
// formats for seeding.
func corpusBytes(t interface{ Fatal(...any) }) (jsonl, csvb []byte) {
	evs := allEvents()
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	var jb, cb bytes.Buffer
	if err := WriteJSONL(&jb, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cb, evs); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// FuzzJournalDecode feeds corrupted journal dumps to both decoders.
// Contract: arbitrary input must produce events or an error — never a
// panic — and anything that decodes must survive a write/read round
// trip unchanged, in both formats.
func FuzzJournalDecode(f *testing.F) {
	jsonl, csvb := corpusBytes(f)
	f.Add(jsonl)
	f.Add(csvb)
	f.Add([]byte(""))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"seq":1,"kind":"record"}` + "\n"))
	f.Add([]byte("seq,at_ns,kind\n1,2,record\n"))
	f.Add(append(append([]byte{}, csvb[:40]...), 0xff, 0x00))
	f.Add([]byte("{\"seq\":18446744073709551615}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if evs, err := ReadJSONL(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteJSONL(&buf, evs); err != nil {
				t.Fatalf("decoded JSONL does not re-encode: %v", err)
			}
			back, err := ReadJSONL(&buf)
			if err != nil {
				t.Fatalf("re-encoded JSONL does not decode: %v", err)
			}
			if !eventsEqual(evs, back) {
				t.Fatalf("JSONL round trip mismatch:\nin:  %+v\nout: %+v", evs, back)
			}
		}
		if evs, err := ReadCSV(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteCSV(&buf, evs); err != nil {
				t.Fatalf("decoded CSV does not re-encode: %v", err)
			}
			back, err := ReadCSV(&buf)
			if err != nil {
				t.Fatalf("re-encoded CSV does not decode: %v", err)
			}
			if !eventsEqual(evs, back) {
				t.Fatalf("CSV round trip mismatch:\nin:  %+v\nout: %+v", evs, back)
			}
		}
	})
}

func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
