// Package dist provides the random-variate distributions used by the
// Speedlight simulations: latencies, clock jitter, scheduling delays and
// traffic inter-arrival processes.
//
// All distributions draw from an explicit *rand.Rand so that every
// simulation run is reproducible from a seed. Empirical distributions can
// be built from measured samples, mirroring how the paper's Figure 11
// simulation was driven by distributions collected on the hardware
// testbed.
package dist

import (
	"math"
	"math/rand"
	"sort"
)

// Dist is a distribution over float64 values.
type Dist interface {
	// Sample draws one variate using r as the randomness source.
	Sample(r *rand.Rand) float64
	// Mean returns the distribution's expected value.
	Mean() float64
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is the Gaussian distribution with the given mean and standard
// deviation. Samples may be negative; wrap with Truncate when modelling a
// non-negative quantity such as a latency.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) float64 {
	return n.Mu + n.Sigma*r.NormFloat64()
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma)). It is the
// canonical heavy-ish-tailed model for OS scheduling and control-plane
// processing delays.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LogNormalFromMeanP99 constructs a LogNormal whose median is roughly
// median and whose 99th percentile is roughly p99. This matches how the
// paper characterizes delays by typical and tail values.
func LogNormalFromMedianP99(median, p99 float64) LogNormal {
	if median <= 0 || p99 <= median {
		return LogNormal{Mu: math.Log(math.Max(median, 1e-12)), Sigma: 0}
	}
	// For lognormal, quantile q = exp(mu + sigma*z_q); z_0.99 ~= 2.3263.
	const z99 = 2.3263478740408408
	mu := math.Log(median)
	sigma := (math.Log(p99) - mu) / z99
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Exponential is the exponential distribution with the given rate
// (events per unit). Mean is 1/Rate.
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() / e.Rate
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Pareto is the (type I) Pareto distribution with scale Xm and shape
// Alpha. Heavy-tailed flow sizes in datacenter traffic models are
// commonly Pareto.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(r *rand.Rand) float64 {
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Mean implements Dist. For Alpha <= 1 the mean diverges and +Inf is
// returned.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Truncated wraps another distribution and clamps samples to [Lo, Hi].
type Truncated struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (t Truncated) Sample(r *rand.Rand) float64 {
	v := t.D.Sample(r)
	if v < t.Lo {
		return t.Lo
	}
	if v > t.Hi {
		return t.Hi
	}
	return v
}

// Mean implements Dist. It returns the mean of the underlying
// distribution clamped to the bounds, which is exact only when little
// mass lies outside [Lo, Hi]; it is intended for sanity checks, not
// precise analysis.
func (t Truncated) Mean() float64 {
	m := t.D.Mean()
	if m < t.Lo {
		return t.Lo
	}
	if m > t.Hi {
		return t.Hi
	}
	return m
}

// Shifted adds Offset to every sample of D.
type Shifted struct {
	D      Dist
	Offset float64
}

// Sample implements Dist.
func (s Shifted) Sample(r *rand.Rand) float64 { return s.D.Sample(r) + s.Offset }

// Mean implements Dist.
func (s Shifted) Mean() float64 { return s.D.Mean() + s.Offset }

// Empirical samples uniformly (with interpolation) from the quantile
// function of a set of observed samples. It reproduces an arbitrary
// observed distribution, the way the paper's scale simulation replayed
// distributions measured on the testbed.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from observed samples.
// It panics if samples is empty. The input is copied.
func NewEmpirical(samples []float64) *Empirical {
	if len(samples) == 0 {
		panic("dist: NewEmpirical with no samples")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &Empirical{sorted: s}
}

// Sample implements Dist by inverse-transform sampling with linear
// interpolation between order statistics.
func (e *Empirical) Sample(r *rand.Rand) float64 {
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	pos := r.Float64() * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return e.sorted[n-1]
	}
	frac := pos - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// Mean implements Dist.
func (e *Empirical) Mean() float64 {
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Quantile returns the q-th quantile of the underlying samples.
func (e *Empirical) Quantile(q float64) float64 {
	n := len(e.sorted)
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo >= n-1 {
		return e.sorted[n-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}
