package dist

import (
	"math"
	"math/rand"
	"testing"
)

const sampleN = 20000

func sampleMean(d Dist, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < sampleN; i++ {
		sum += d.Sample(r)
	}
	return sum / sampleN
}

func TestConstant(t *testing.T) {
	d := Constant{V: 3.5}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.5 {
			t.Fatal("Constant must always return V")
		}
	}
	if d.Mean() != 3.5 {
		t.Error("Mean mismatch")
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 4}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 2 || v >= 4 {
			t.Fatalf("sample %v out of [2,4)", v)
		}
	}
	if got := sampleMean(d, 3); math.Abs(got-3) > 0.05 {
		t.Errorf("empirical mean %v, want ~3", got)
	}
	if d.Mean() != 3 {
		t.Error("Mean mismatch")
	}
}

func TestNormal(t *testing.T) {
	d := Normal{Mu: 10, Sigma: 2}
	if got := sampleMean(d, 4); math.Abs(got-10) > 0.1 {
		t.Errorf("empirical mean %v, want ~10", got)
	}
	if d.Mean() != 10 {
		t.Error("Mean mismatch")
	}
}

func TestLogNormal(t *testing.T) {
	d := LogNormal{Mu: 1, Sigma: 0.5}
	want := math.Exp(1 + 0.125)
	if got := sampleMean(d, 5); math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical mean %v, want ~%v", got, want)
	}
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		if d.Sample(r) <= 0 {
			t.Fatal("lognormal sample must be positive")
		}
	}
}

func TestLogNormalFromMedianP99(t *testing.T) {
	d := LogNormalFromMedianP99(6.4, 22)
	// Median of lognormal is exp(mu).
	if got := math.Exp(d.Mu); math.Abs(got-6.4) > 1e-9 {
		t.Errorf("median %v, want 6.4", got)
	}
	// Empirical p99 should be near 22.
	r := rand.New(rand.NewSource(7))
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	e := NewEmpirical(samples)
	if got := e.Quantile(0.99); math.Abs(got-22)/22 > 0.1 {
		t.Errorf("p99 %v, want ~22", got)
	}
}

func TestLogNormalFromMedianP99Degenerate(t *testing.T) {
	d := LogNormalFromMedianP99(5, 3) // p99 < median: degenerate
	if d.Sigma != 0 {
		t.Errorf("expected sigma 0, got %v", d.Sigma)
	}
	r := rand.New(rand.NewSource(8))
	if got := d.Sample(r); math.Abs(got-5) > 1e-9 {
		t.Errorf("degenerate sample %v, want 5", got)
	}
}

func TestExponential(t *testing.T) {
	d := Exponential{Rate: 4}
	if got := sampleMean(d, 9); math.Abs(got-0.25) > 0.01 {
		t.Errorf("empirical mean %v, want ~0.25", got)
	}
	if d.Mean() != 0.25 {
		t.Error("Mean mismatch")
	}
}

func TestPareto(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 3}
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 1000; i++ {
		if d.Sample(r) < 1 {
			t.Fatal("Pareto sample below Xm")
		}
	}
	if got, want := d.Mean(), 1.5; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Error("Mean should diverge for Alpha <= 1")
	}
}

func TestTruncated(t *testing.T) {
	d := Truncated{D: Normal{Mu: 0, Sigma: 100}, Lo: -1, Hi: 1}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < -1 || v > 1 {
			t.Fatalf("sample %v escaped bounds", v)
		}
	}
	if got := (Truncated{D: Constant{V: -5}, Lo: 0, Hi: 10}).Mean(); got != 0 {
		t.Errorf("clamped mean %v, want 0", got)
	}
	if got := (Truncated{D: Constant{V: 50}, Lo: 0, Hi: 10}).Mean(); got != 10 {
		t.Errorf("clamped mean %v, want 10", got)
	}
}

func TestShifted(t *testing.T) {
	d := Shifted{D: Constant{V: 2}, Offset: 3}
	r := rand.New(rand.NewSource(12))
	if d.Sample(r) != 5 {
		t.Error("Shifted sample mismatch")
	}
	if d.Mean() != 5 {
		t.Error("Shifted mean mismatch")
	}
}

func TestEmpirical(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	e := NewEmpirical(samples)
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		v := e.Sample(r)
		if v < 1 || v > 5 {
			t.Fatalf("sample %v outside data range", v)
		}
	}
	if e.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", e.Mean())
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 {
		t.Error("Quantile endpoints wrong")
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("median %v, want 3", got)
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e := NewEmpirical([]float64{7})
	r := rand.New(rand.NewSource(14))
	if e.Sample(r) != 7 {
		t.Error("single-sample empirical must return that sample")
	}
	if e.Quantile(0.3) != 7 {
		t.Error("quantile of single sample must be the sample")
	}
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEmpirical(nil) did not panic")
		}
	}()
	NewEmpirical(nil)
}

func TestEmpiricalMatchesSource(t *testing.T) {
	// Sampling from an empirical distribution of normal draws should
	// approximately reproduce the normal's mean.
	r := rand.New(rand.NewSource(15))
	src := make([]float64, 10000)
	for i := range src {
		src[i] = 42 + 5*r.NormFloat64()
	}
	e := NewEmpirical(src)
	if got := sampleMean(e, 16); math.Abs(got-42) > 0.5 {
		t.Errorf("empirical-of-normal mean %v, want ~42", got)
	}
}

func TestDeterminism(t *testing.T) {
	// Identical seeds must give identical streams for every distribution.
	dists := []Dist{
		Constant{V: 1},
		Uniform{Lo: 0, Hi: 1},
		Normal{Mu: 0, Sigma: 1},
		LogNormal{Mu: 0, Sigma: 1},
		Exponential{Rate: 1},
		Pareto{Xm: 1, Alpha: 2},
		Truncated{D: Normal{Mu: 0, Sigma: 1}, Lo: -1, Hi: 1},
		Shifted{D: Exponential{Rate: 2}, Offset: 1},
		NewEmpirical([]float64{1, 2, 3}),
	}
	for _, d := range dists {
		r1 := rand.New(rand.NewSource(77))
		r2 := rand.New(rand.NewSource(77))
		for i := 0; i < 100; i++ {
			if d.Sample(r1) != d.Sample(r2) {
				t.Fatalf("%T not deterministic", d)
			}
		}
	}
}
