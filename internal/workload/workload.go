// Package workload generates the application traffic of the paper's
// evaluation (Section 8): a Hadoop Terasort-style shuffle, a Spark
// GraphX PageRank-style iterative exchange, and a memcached multi-get
// workload.
//
// The generators are flow-level models that reproduce each
// application's defining traffic shape — what Figures 12 and 13
// actually depend on — rather than the applications' computation:
//
//   - Terasort: few, large, long-lived mapper-to-reducer flows sent in
//     on/off waves on fixed 5-tuples. ECMP hash collisions persist for
//     the whole job; the idle gaps between waves are exactly what
//     flowlet switching exploits.
//   - PageRank: globally synchronized supersteps — every worker pair
//     exchanges a bulk burst at the same instant, then the network goes
//     quiet until the next iteration. Egress ports become strongly
//     correlated in time.
//   - Memcache: a client sprays small multi-get requests over all
//     servers with a fresh source port per request, and servers answer
//     with small values: many tiny flows, inherently well balanced.
package workload

import (
	"math/rand"

	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// App is a runnable traffic generator.
type App interface {
	Name() string
	// Start begins injecting traffic into the network's engine.
	Start()
	// Stop halts further injection (already scheduled packets drain).
	Stop()
}

// SendFlow injects count packets of the given size from src to dst with
// a fixed inter-packet gap, starting one gap from now. The 5-tuple is
// (src, dst, srcPort, dstPort, TCP).
func SendFlow(net *emunet.Network, src, dst topology.HostID, srcPort, dstPort uint16,
	count int, size uint32, gap sim.Duration, stopped *bool) {
	eng := net.Engine()
	var seq uint64
	var step func()
	step = func() {
		if *stopped || count <= 0 {
			return
		}
		count--
		seq++
		net.InjectFromHost(src, &packet.Packet{
			DstHost: uint32(dst),
			SrcPort: srcPort,
			DstPort: dstPort,
			Proto:   6,
			Size:    size,
			Seq:     seq,
		})
		eng.After(gap, step)
	}
	eng.After(gap, step)
}

// Terasort models the Hadoop shuffle phase: every mapper repeatedly
// picks a reducer and sends it a large burst on that pair's fixed
// 5-tuple, then idles.
type Terasort struct {
	Net      *emunet.Network
	Mappers  []topology.HostID
	Reducers []topology.HostID

	// BurstPackets is the packets per shuffle segment (default 300).
	BurstPackets int
	// PacketSize defaults to 1500 bytes.
	PacketSize uint32
	// PacketGap is the mean in-burst inter-packet gap (default 1 µs);
	// each wave draws its own gap from [0.7, 1.6] of it, modelling the
	// differing disk and TCP pacing of distinct shuffle fetches.
	PacketGap sim.Duration
	// IdleMean is the mean exponential idle time between a mapper's
	// bursts (default 500 µs).
	IdleMean sim.Duration

	r       *rand.Rand
	stopped bool
	// assigned maps each mapper to its fixed partition assignment: the
	// small set of reducers it repeatedly feeds. Few, recurring,
	// long-lived transfer pairs are what make flow-based ECMP collide
	// persistently.
	assigned map[topology.HostID][]topology.HostID
}

// Name implements App.
func (t *Terasort) Name() string { return "hadoop-terasort" }

func (t *Terasort) defaults() {
	if t.BurstPackets == 0 {
		t.BurstPackets = 300
	}
	if t.PacketSize == 0 {
		t.PacketSize = 1500
	}
	if t.PacketGap == 0 {
		t.PacketGap = sim.Microsecond
	}
	if t.IdleMean == 0 {
		t.IdleMean = 500 * sim.Microsecond
	}
	if t.r == nil {
		t.r = t.Net.Engine().NewRand()
	}
}

// Start implements App.
func (t *Terasort) Start() {
	t.defaults()
	t.stopped = false
	t.assigned = make(map[topology.HostID][]topology.HostID)
	for _, m := range t.Mappers {
		// One long-lived fetch partner per mapper: the elephant-flow
		// regime where flow-based ECMP's hash collisions persist for
		// the whole job.
		t.assigned[m] = []topology.HostID{t.Reducers[t.r.Intn(len(t.Reducers))]}
	}
	for _, m := range t.Mappers {
		m := m
		t.Net.Engine().After(sim.Duration(t.r.Int63n(int64(t.IdleMean)+1)), func() {
			t.mapperLoop(m)
		})
	}
}

// Stop implements App.
func (t *Terasort) Stop() { t.stopped = true }

func (t *Terasort) mapperLoop(m topology.HostID) {
	if t.stopped {
		return
	}
	assigned := t.assigned[m]
	rd := assigned[t.r.Intn(len(assigned))]
	// Fixed 5-tuple per (mapper, reducer) pair: the shuffle fetch
	// connection. ECMP pins the whole pair to one path.
	srcPort := uint16(20000 + uint16(m)*64 + uint16(rd))
	gap := sim.Duration(float64(t.PacketGap) * (0.7 + 0.9*t.r.Float64()))
	SendFlow(t.Net, m, rd, srcPort, 13562, t.BurstPackets, t.PacketSize, gap, &t.stopped)
	burstTime := sim.Duration(t.BurstPackets) * gap
	idle := sim.Duration(t.r.ExpFloat64() * float64(t.IdleMean))
	t.Net.Engine().After(burstTime+idle, func() { t.mapperLoop(m) })
}

// PageRank models a GraphX synthetic-benchmark job: workers exchange
// bulk updates in synchronized supersteps.
type PageRank struct {
	Net     *emunet.Network
	Workers []topology.HostID

	// Interval is the superstep period (default 1 ms).
	Interval sim.Duration
	// BurstPackets per worker pair per superstep (default 60).
	BurstPackets int
	// PacketSize defaults to 1000 bytes.
	PacketSize uint32
	// PacketGap is the in-burst gap (default 1 µs).
	PacketGap sim.Duration
	// Jitter is the per-worker start offset within a superstep
	// (default 20 µs) — workers are synchronized, not atomically so.
	Jitter sim.Duration

	r       *rand.Rand
	ticker  *sim.Ticker
	stopped bool
}

// Name implements App.
func (p *PageRank) Name() string { return "graphx-pagerank" }

func (p *PageRank) defaults() {
	if p.Interval == 0 {
		p.Interval = sim.Millisecond
	}
	if p.BurstPackets == 0 {
		p.BurstPackets = 60
	}
	if p.PacketSize == 0 {
		p.PacketSize = 1000
	}
	if p.PacketGap == 0 {
		p.PacketGap = sim.Microsecond
	}
	if p.Jitter == 0 {
		p.Jitter = 20 * sim.Microsecond
	}
	if p.r == nil {
		p.r = p.Net.Engine().NewRand()
	}
}

// Start implements App.
func (p *PageRank) Start() {
	p.defaults()
	p.stopped = false
	p.ticker = p.Net.Engine().NewTicker(p.Interval, p.superstep)
}

// Stop implements App.
func (p *PageRank) Stop() {
	p.stopped = true
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

func (p *PageRank) superstep() {
	if p.stopped {
		return
	}
	for _, src := range p.Workers {
		src := src
		start := sim.Duration(p.r.Int63n(int64(p.Jitter) + 1))
		p.Net.Engine().After(start, func() {
			if p.stopped {
				return
			}
			for _, dst := range p.Workers {
				if dst == src {
					continue
				}
				srcPort := uint16(30000 + uint16(src)*64 + uint16(dst))
				// Each pair's update volume differs per iteration
				// (vertices converge at different rates), so each burst
				// draws its own pacing.
				gap := sim.Duration(float64(p.PacketGap) * (0.7 + 0.9*p.r.Float64()))
				SendFlow(p.Net, src, dst, srcPort, 7077,
					p.BurstPackets, p.PacketSize, gap, &p.stopped)
			}
		})
	}
}

// Memcache models an mc-crusher style multi-get workload: a client
// fans small requests out to every server, each on a fresh connection,
// and servers answer with small values.
type Memcache struct {
	Net     *emunet.Network
	Clients []topology.HostID
	Servers []topology.HostID

	// RequestInterval is the gap between multi-gets per client
	// (default 20 µs).
	RequestInterval sim.Duration
	// KeysPerGet is the number of servers touched per multi-get
	// (default: all of them, like a 50-key multi-get spread over the
	// cluster).
	KeysPerGet int
	// RequestSize / ResponseSize default to 100 / 500 bytes.
	RequestSize  uint32
	ResponseSize uint32
	// WaveSpread bounds the stagger of a multi-get's per-key requests.
	// The default (the full RequestInterval) models a pipelined client
	// whose load is smooth; a small value models strict request waves
	// whose responses collide — incast.
	WaveSpread sim.Duration

	r       *rand.Rand
	tickers []*sim.Ticker
	stopped bool
	nextSrc uint16
}

// Name implements App.
func (m *Memcache) Name() string { return "memcache" }

func (m *Memcache) defaults() {
	if m.RequestInterval == 0 {
		m.RequestInterval = 20 * sim.Microsecond
	}
	if m.KeysPerGet == 0 || m.KeysPerGet > len(m.Servers) {
		m.KeysPerGet = len(m.Servers)
	}
	if m.RequestSize == 0 {
		m.RequestSize = 100
	}
	if m.ResponseSize == 0 {
		m.ResponseSize = 500
	}
	if m.WaveSpread == 0 {
		m.WaveSpread = m.RequestInterval
	}
	if m.r == nil {
		m.r = m.Net.Engine().NewRand()
	}
}

// Start implements App.
func (m *Memcache) Start() {
	m.defaults()
	m.stopped = false
	for _, c := range m.Clients {
		c := c
		tk := m.Net.Engine().NewTicker(m.RequestInterval, func() { m.multiGet(c) })
		m.tickers = append(m.tickers, tk)
	}
}

// Stop implements App.
func (m *Memcache) Stop() {
	m.stopped = true
	for _, tk := range m.tickers {
		tk.Stop()
	}
	m.tickers = nil
}

func (m *Memcache) multiGet(client topology.HostID) {
	if m.stopped {
		return
	}
	// Pick KeysPerGet servers (all, when the cluster is small). The
	// per-key requests are staggered across the interval rather than
	// fired as one wave: a loaded client pipelines continuously, which
	// is what makes the resulting load genuinely smooth and balanced.
	perm := m.r.Perm(len(m.Servers))[:m.KeysPerGet]
	for _, si := range perm {
		srv := m.Servers[si]
		m.nextSrc++
		srcPort := 40000 + m.nextSrc%20000
		stagger := sim.Duration(m.r.Int63n(int64(m.WaveSpread)))
		sp := srcPort
		m.Net.Engine().After(stagger, func() {
			if m.stopped {
				return
			}
			m.Net.InjectFromHost(client, &packet.Packet{
				DstHost: uint32(srv),
				SrcPort: sp,
				DstPort: 11211,
				Proto:   6,
				Size:    m.RequestSize,
			})
		})
		// Response, after the request and a small service delay.
		m.Net.Engine().After(stagger+5*sim.Microsecond, func() {
			if m.stopped {
				return
			}
			m.Net.InjectFromHost(srv, &packet.Packet{
				DstHost: uint32(client),
				SrcPort: 11211,
				DstPort: sp,
				Proto:   6,
				Size:    m.ResponseSize,
			})
		})
	}
}

// Uniform is a simple constant-rate all-to-all generator, useful as
// background traffic in tests and synchronization experiments.
type Uniform struct {
	Net   *emunet.Network
	Hosts []topology.HostID
	// Interval is the per-host send period (default 10 µs).
	Interval sim.Duration
	// PacketSize defaults to 1000 bytes.
	PacketSize uint32

	r       *rand.Rand
	tickers []*sim.Ticker
	stopped bool
	nextSrc uint16
}

// Name implements App.
func (u *Uniform) Name() string { return "uniform" }

// Start implements App.
func (u *Uniform) Start() {
	if u.Interval == 0 {
		u.Interval = 10 * sim.Microsecond
	}
	if u.PacketSize == 0 {
		u.PacketSize = 1000
	}
	if u.r == nil {
		u.r = u.Net.Engine().NewRand()
	}
	u.stopped = false
	for _, h := range u.Hosts {
		h := h
		tk := u.Net.Engine().NewTicker(u.Interval, func() {
			if u.stopped {
				return
			}
			dst := u.Hosts[u.r.Intn(len(u.Hosts))]
			if dst == h {
				return
			}
			// A fresh source port per packet: many short flows, so
			// ECMP spreads the background load over every path.
			u.nextSrc++
			u.Net.InjectFromHost(h, &packet.Packet{
				DstHost: uint32(dst),
				SrcPort: 1000 + u.nextSrc%40000,
				DstPort: 9000,
				Proto:   6,
				Size:    u.PacketSize,
			})
		})
		u.tickers = append(u.tickers, tk)
	}
}

// Stop implements App.
func (u *Uniform) Stop() {
	u.stopped = true
	for _, tk := range u.tickers {
		tk.Stop()
	}
	u.tickers = nil
}
