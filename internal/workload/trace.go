package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// TraceEvent is one packet emission in a replayable traffic trace.
type TraceEvent struct {
	// At is the emission time as an offset from replay start.
	At      sim.Duration
	Src     topology.HostID
	Dst     topology.HostID
	SrcPort uint16
	DstPort uint16
	Size    uint32
	CoS     uint8
}

// Replay injects a recorded trace into the network — the stand-in for
// replaying a production packet trace against the emulated fabric.
// Events are scheduled at their offsets relative to Start; with Loop
// set, the trace repeats with that period.
type Replay struct {
	Net    *emunet.Network
	Events []TraceEvent
	// Loop, when positive, restarts the trace this long after each
	// replay begins. It must be at least the last event's offset.
	Loop sim.Duration

	stopped bool
}

// Name implements App.
func (r *Replay) Name() string { return "trace-replay" }

// Start implements App.
func (r *Replay) Start() {
	r.stopped = false
	// Schedule in time order; equal-time events keep trace order.
	events := make([]TraceEvent, len(r.Events))
	copy(events, r.Events)
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	r.playOnce(events)
}

func (r *Replay) playOnce(events []TraceEvent) {
	if r.stopped {
		return
	}
	eng := r.Net.Engine()
	for _, ev := range events {
		ev := ev
		eng.After(ev.At, func() {
			if r.stopped {
				return
			}
			r.Net.InjectFromHost(ev.Src, &packet.Packet{
				DstHost: uint32(ev.Dst),
				SrcPort: ev.SrcPort,
				DstPort: ev.DstPort,
				Proto:   6,
				Size:    ev.Size,
				CoS:     ev.CoS,
			})
		})
	}
	if r.Loop > 0 {
		eng.After(r.Loop, func() { r.playOnce(events) })
	}
}

// Stop implements App.
func (r *Replay) Stop() { r.stopped = true }

// Trace CSV format: one event per row,
//
//	time_us,src,dst,src_port,dst_port,size,cos
//
// with a header row. time_us is a float64 offset in microseconds.

// traceHeader is the canonical CSV header.
var traceHeader = []string{"time_us", "src", "dst", "src_port", "dst_port", "size", "cos"}

// WriteTraceCSV serializes a trace.
func WriteTraceCSV(w io.Writer, events []TraceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	for _, ev := range events {
		if err := cw.Write([]string{
			strconv.FormatFloat(ev.At.Micros(), 'f', -1, 64),
			strconv.FormatUint(uint64(ev.Src), 10),
			strconv.FormatUint(uint64(ev.Dst), 10),
			strconv.FormatUint(uint64(ev.SrcPort), 10),
			strconv.FormatUint(uint64(ev.DstPort), 10),
			strconv.FormatUint(uint64(ev.Size), 10),
			strconv.FormatUint(uint64(ev.CoS), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadTraceCSV parses a trace written by WriteTraceCSV (or by any tool
// following the format).
func LoadTraceCSV(r io.Reader) ([]TraceEvent, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if len(records[0]) != len(traceHeader) || records[0][0] != traceHeader[0] {
		return nil, fmt.Errorf("workload: bad trace header %v", records[0])
	}
	var events []TraceEvent
	for i, rec := range records[1:] {
		if len(rec) != len(traceHeader) {
			return nil, fmt.Errorf("workload: trace row %d has %d fields", i+2, len(rec))
		}
		us, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d time: %w", i+2, err)
		}
		ints := make([]uint64, 6)
		for j := 1; j < 7; j++ {
			v, err := strconv.ParseUint(rec[j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace row %d field %s: %w", i+2, traceHeader[j], err)
			}
			ints[j-1] = v
		}
		events = append(events, TraceEvent{
			At:      sim.DurationOfMicros(us),
			Src:     topology.HostID(ints[0]),
			Dst:     topology.HostID(ints[1]),
			SrcPort: uint16(ints[2]),
			DstPort: uint16(ints[3]),
			Size:    uint32(ints[4]),
			CoS:     uint8(ints[5]),
		})
	}
	return events, nil
}
