package workload

import (
	"bytes"
	"strings"
	"testing"

	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func sampleTrace() []TraceEvent {
	return []TraceEvent{
		{At: 10 * sim.Microsecond, Src: 0, Dst: 3, SrcPort: 100, DstPort: 80, Size: 1500, CoS: 0},
		{At: 5 * sim.Microsecond, Src: 1, Dst: 4, SrcPort: 101, DstPort: 80, Size: 200, CoS: 1},
		{At: 20 * sim.Microsecond, Src: 2, Dst: 5, SrcPort: 102, DstPort: 443, Size: 900, CoS: 2},
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleTrace()
	if len(got) != len(want) {
		t.Fatalf("events = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLoadTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n1,2\n",
		"time_us,src,dst,src_port,dst_port,size,cos\nnotanumber,0,1,2,3,4,5\n",
		"time_us,src,dst,src_port,dst_port,size,cos\n1.0,0,1,2,3,4,notanumber\n",
	}
	for i, c := range cases {
		if _, err := LoadTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReplayInjectsInOrder(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	re := &Replay{Net: n, Events: sampleTrace()}
	re.Start()
	n.RunFor(sim.Millisecond)
	if len(cap.pkts) != 3 {
		t.Fatalf("delivered %d of 3", len(cap.pkts))
	}
	// Delivery order follows emission order (5, 10, 20 µs), not the
	// slice order.
	if cap.pkts[0].SrcPort != 101 || cap.pkts[1].SrcPort != 100 || cap.pkts[2].SrcPort != 102 {
		t.Errorf("order: %d, %d, %d", cap.pkts[0].SrcPort, cap.pkts[1].SrcPort, cap.pkts[2].SrcPort)
	}
	// Fields survive the replay.
	if cap.pkts[2].Size != 900 || cap.pkts[2].CoS != 2 || cap.hosts[2] != topology.HostID(5) {
		t.Errorf("event mangled: %+v to %d", cap.pkts[2], cap.hosts[2])
	}
}

func TestReplayLoop(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	re := &Replay{Net: n, Events: sampleTrace(), Loop: 100 * sim.Microsecond}
	re.Start()
	n.RunFor(450 * sim.Microsecond) // ~4 full loops
	re.Stop()
	n.RunFor(sim.Millisecond)
	if len(cap.pkts) < 9 || len(cap.pkts) > 15 {
		t.Errorf("looped replay delivered %d packets, want ~12", len(cap.pkts))
	}
	after := len(cap.pkts)
	n.RunFor(sim.Millisecond)
	if len(cap.pkts) != after {
		t.Error("replay continued after Stop")
	}
}

func TestReplayName(t *testing.T) {
	if (&Replay{}).Name() != "trace-replay" {
		t.Error("name")
	}
}
