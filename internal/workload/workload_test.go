package workload

import (
	"testing"

	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

type capture struct {
	pkts  []*packet.Packet
	times []sim.Time
	hosts []topology.HostID
}

func testNet(t *testing.T, cap *capture) *emunet.Network {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := emunet.New(emunet.Config{
		Topo: ls.Topology,
		Seed: 11,
		OnDeliver: func(p *packet.Packet, h topology.HostID, at sim.Time) {
			cap.pkts = append(cap.pkts, p)
			cap.times = append(cap.times, at)
			cap.hosts = append(cap.hosts, h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func hosts(ids ...topology.HostID) []topology.HostID { return ids }

func TestSendFlow(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	stopped := false
	SendFlow(n, 0, 3, 1234, 80, 10, 500, sim.Microsecond, &stopped)
	n.RunFor(sim.Millisecond)
	if len(cap.pkts) != 10 {
		t.Fatalf("delivered %d of 10", len(cap.pkts))
	}
	for _, p := range cap.pkts {
		if p.SrcPort != 1234 || p.DstPort != 80 || p.Size != 500 {
			t.Fatalf("flow packet mangled: %+v", p)
		}
	}
}

func TestSendFlowStop(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	stopped := false
	SendFlow(n, 0, 3, 1234, 80, 1000, 500, sim.Microsecond, &stopped)
	n.RunFor(100 * sim.Microsecond)
	stopped = true
	n.RunFor(10 * sim.Millisecond)
	if len(cap.pkts) >= 1000 {
		t.Error("stop flag ignored")
	}
	if len(cap.pkts) == 0 {
		t.Error("nothing delivered before stop")
	}
}

func TestTerasortShape(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	ts := &Terasort{
		Net:          n,
		Mappers:      hosts(0, 1, 2),
		Reducers:     hosts(3, 4, 5),
		BurstPackets: 50,
	}
	ts.Start()
	n.RunFor(5 * sim.Millisecond)
	ts.Stop()
	if len(cap.pkts) < 100 {
		t.Fatalf("only %d packets", len(cap.pkts))
	}
	// All traffic flows mapper -> reducer.
	for _, p := range cap.pkts {
		if p.SrcHost > 2 || p.DstHost < 3 {
			t.Fatalf("unexpected flow %d -> %d", p.SrcHost, p.DstHost)
		}
		if p.Size != 1500 {
			t.Fatalf("packet size %d", p.Size)
		}
	}
	// Fixed 5-tuples: distinct flow hashes bounded by mapper x reducer
	// pairs.
	flows := map[uint64]bool{}
	for _, p := range cap.pkts {
		flows[p.FlowHash()] = true
	}
	if len(flows) > 9 {
		t.Errorf("terasort used %d flows, want <= 9 fixed pairs", len(flows))
	}
	n.RunFor(sim.Millisecond) // drain in-flight packets
	n2 := len(cap.pkts)
	n.RunFor(5 * sim.Millisecond)
	if len(cap.pkts) != n2 {
		t.Error("traffic continued after Stop")
	}
}

func TestPageRankSupersteps(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	pr := &PageRank{
		Net:          n,
		Workers:      hosts(1, 2, 4, 5), // host 0 is the idle master
		Interval:     sim.Millisecond,
		BurstPackets: 20,
	}
	pr.Start()
	n.RunFor(4500 * sim.Microsecond) // 4 supersteps
	pr.Stop()
	if len(cap.pkts) == 0 {
		t.Fatal("no traffic")
	}
	// The master (host 0) neither sends nor receives.
	for i, p := range cap.pkts {
		if p.SrcHost == 0 || cap.hosts[i] == 0 {
			t.Fatal("master participated in pagerank traffic")
		}
	}
	// Supersteps: deliveries cluster right after each 1 ms boundary.
	// Check that no deliveries land in the back half of any period
	// (bursts are ~100 µs long).
	for _, at := range cap.times {
		phase := at % sim.Time(sim.Millisecond)
		if phase > sim.Time(700*sim.Microsecond) {
			t.Fatalf("delivery at phase %v µs: supersteps not synchronized", sim.Duration(phase).Micros())
		}
	}
}

func TestMemcacheShape(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	mc := &Memcache{
		Net:     n,
		Clients: hosts(0),
		Servers: hosts(1, 2, 3, 4, 5),
	}
	mc.Start()
	n.RunFor(2 * sim.Millisecond)
	mc.Stop()
	if len(cap.pkts) < 100 {
		t.Fatalf("only %d packets", len(cap.pkts))
	}
	reqs, resps := 0, 0
	flows := map[uint64]bool{}
	for _, p := range cap.pkts {
		flows[p.FlowHash()] = true
		switch {
		case p.DstPort == 11211:
			reqs++
		case p.SrcPort == 11211:
			resps++
		default:
			t.Fatalf("unexpected packet %+v", p)
		}
	}
	if reqs == 0 || resps == 0 {
		t.Fatalf("reqs=%d resps=%d", reqs, resps)
	}
	// Responses roughly pair with requests.
	if resps < reqs*8/10 {
		t.Errorf("resps=%d much lower than reqs=%d", resps, reqs)
	}
	// Many ephemeral connections: flow count far exceeds host pairs.
	if len(flows) < 50 {
		t.Errorf("memcache used only %d flows; expected many ephemeral ones", len(flows))
	}
}

func TestUniformBackground(t *testing.T) {
	var cap capture
	n := testNet(t, &cap)
	u := &Uniform{Net: n, Hosts: hosts(0, 1, 2, 3, 4, 5)}
	u.Start()
	n.RunFor(2 * sim.Millisecond)
	u.Stop()
	if len(cap.pkts) < 200 {
		t.Fatalf("only %d packets", len(cap.pkts))
	}
	seen := map[uint32]bool{}
	for _, p := range cap.pkts {
		seen[p.SrcHost] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d hosts sent", len(seen))
	}
	n.RunFor(sim.Millisecond) // drain in-flight packets
	before := len(cap.pkts)
	n.RunFor(2 * sim.Millisecond)
	if len(cap.pkts) != before {
		t.Error("traffic after Stop")
	}
}

func TestAppNames(t *testing.T) {
	apps := []App{&Terasort{}, &PageRank{}, &Memcache{}, &Uniform{}}
	want := []string{"hadoop-terasort", "graphx-pagerank", "memcache", "uniform"}
	for i, a := range apps {
		if a.Name() != want[i] {
			t.Errorf("name %d = %s", i, a.Name())
		}
	}
}
