package experiments

import (
	"fmt"

	"speedlight/internal/packet"
	"speedlight/internal/polling"
	"speedlight/internal/sim"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

// Fig9Config parameterizes the synchronization experiment.
type Fig9Config struct {
	// Snapshots is the number of snapshots (and poll sweeps) measured.
	// The paper plots a full CDF; 200 gives a smooth one.
	Snapshots int
	Seed      int64
	// Shards selects the simulation engine (0/1 serial, >=2 parallel).
	// Results are identical either way.
	Shards int
}

func (c *Fig9Config) defaults() {
	if c.Snapshots == 0 {
		c.Snapshots = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig9Result holds the three synchronization distributions of Figure 9,
// in microseconds.
type Fig9Result struct {
	SwitchState        *stats.CDF // Speedlight without channel state
	SwitchChannelState *stats.CDF // Speedlight with channel state
	Polling            *stats.CDF // traditional counter polling
}

// Fig9 measures the synchronization of network-wide measurements using
// snapshots and traditional polling (Section 8.1). Synchronization of a
// snapshot is the difference between the earliest and latest data-plane
// notification timestamps carrying its ID; for polling it is the spread
// between the first and last poll of a sweep.
func Fig9(cfg Fig9Config) *Fig9Result {
	cfg.defaults()
	res := &Fig9Result{}

	snapshotRun := func(channelState bool) *stats.CDF {
		n, _ := testbedNet(cfg.Seed, cfg.Shards, channelState, nil)
		// Heavy background load: the testbed measured synchronization
		// under running application workloads, so every utilized
		// channel sees fresh-epoch traffic within microseconds.
		bg := &workload.Uniform{Net: n, Hosts: hostIDs(n), Interval: sim.Microsecond, PacketSize: 500}
		bg.Start()
		n.RunFor(2 * sim.Millisecond) // warm up

		var ids []packet.SeqID
		const gap = 2 * sim.Millisecond
		for i := 0; i < cfg.Snapshots; i++ {
			n.Engine().After(gap, func() {
				if id, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err == nil {
					ids = append(ids, id)
				}
			})
			n.RunFor(gap)
		}
		n.RunFor(50 * sim.Millisecond) // let stragglers finish
		var spreads []float64
		for _, id := range ids {
			if d, ok := n.SyncSpread(id); ok {
				spreads = append(spreads, d.Micros())
			}
		}
		return stats.NewCDF(spreads)
	}

	res.SwitchState = snapshotRun(false)
	res.SwitchChannelState = snapshotRun(true)

	// Polling baseline: sequential sweeps over every unit.
	n, _ := testbedNet(cfg.Seed+1, cfg.Shards, false, nil)
	bg := &workload.Uniform{Net: n, Hosts: hostIDs(n), Interval: 5 * sim.Microsecond}
	bg.Start()
	n.RunFor(2 * sim.Millisecond)
	poller := polling.New(n, polling.Config{})
	units := allUnits(n)
	var spreads []float64
	for i := 0; i < cfg.Snapshots; i++ {
		done := false
		poller.PollAll(units, func(s []polling.Sample) {
			spreads = append(spreads, polling.Spread(s).Micros())
			done = true
		})
		for !done {
			n.RunFor(sim.Millisecond)
		}
	}
	res.Polling = stats.NewCDF(spreads)
	return res
}

// Figure renders the result in the paper's form: CDFs of
// synchronization in microseconds.
func (r *Fig9Result) Figure() *Figure {
	f := &Figure{
		Title:  "Figure 9: synchronization of network-wide measurements",
		XLabel: "synchronization (us)",
		YLabel: "CDF",
	}
	for _, s := range []struct {
		name string
		cdf  *stats.CDF
	}{
		{"Switch State", r.SwitchState},
		{"Switch + Channel State", r.SwitchChannelState},
		{"Polling", r.Polling},
	} {
		ser := Series{Name: s.name}
		for _, p := range s.cdf.Points(20) {
			ser.Points = append(ser.Points, Point{X: p.X, Y: p.F})
		}
		f.Series = append(f.Series, ser)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("median sync: switch state %.1f us, +channel state %.1f us, polling %.0f us (paper: ~6.4 us / ~6.4 us / ~2600 us)",
			r.SwitchState.Median(), r.SwitchChannelState.Median(), r.Polling.Median()),
		fmt.Sprintf("max sync: switch state %.1f us, +channel state %.1f us (paper: 22 us / 27 us)",
			r.SwitchState.MaxValue(), r.SwitchChannelState.MaxValue()))
	return f
}

// hostIDs lists every host in the network.
func hostIDs(n interface {
	Topo() *topology.Topology
}) []topology.HostID {
	var out []topology.HostID
	for _, h := range n.Topo().Hosts {
		out = append(out, h.ID)
	}
	return out
}
