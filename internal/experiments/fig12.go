package experiments

import (
	"fmt"

	"speedlight/internal/analysis"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/polling"
	"speedlight/internal/sim"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

// Fig12Config parameterizes the load-balancing experiment.
type Fig12Config struct {
	// Samples is the number of snapshots (and poll sweeps) per job
	// execution.
	Samples int
	// Runs is the number of independent job executions pooled per
	// combination. ECMP's imbalance depends on how the jobs' flow
	// tuples happen to hash, so a campaign observes several executions
	// (the paper's workloads likewise ran repeatedly during
	// measurement).
	Runs int
	Seed int64
	// Shards selects the simulation engine (0/1 serial, >=2 parallel).
	// Results are identical either way.
	Shards int
}

func (c *Fig12Config) defaults() {
	if c.Samples == 0 {
		c.Samples = 60
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig12Series names one (balancer, method) combination's distribution
// of uplink-load standard deviations.
type Fig12Series struct {
	Balancer string // "ecmp" or "flowlet"
	Method   string // "snapshots" or "polling"
	CDF      *stats.CDF
}

// Fig12Workload holds one application's four series.
type Fig12Workload struct {
	Workload string
	Series   []Fig12Series
}

// Fig12Result holds the three sub-figures.
type Fig12Result struct {
	Workloads []Fig12Workload
}

// Fig12 evaluates load balancing the way Section 8.3 does: under each
// workload and balancing algorithm it takes a series of snapshots of
// the EWMA of packet interarrival time on every uplink, computes the
// standard deviation across the uplinks of each leaf at each instant
// (uplinks are compared only to other uplinks of the same switch), and
// plots the CDF of those deviations — alongside the same analysis done
// with asynchronous polling.
func Fig12(cfg Fig12Config) *Fig12Result {
	cfg.defaults()
	res := &Fig12Result{}
	apps := []string{"hadoop", "graphx", "memcache"}
	for _, app := range apps {
		wl := Fig12Workload{Workload: app}
		for _, balancer := range []string{"ecmp", "flowlet"} {
			var snapStd, pollStd []float64
			for run := 0; run < cfg.Runs; run++ {
				runCfg := cfg
				runCfg.Seed = cfg.Seed + int64(run)*101
				s, p := fig12Run(app, balancer, runCfg)
				snapStd = append(snapStd, s...)
				pollStd = append(pollStd, p...)
			}
			wl.Series = append(wl.Series,
				Fig12Series{Balancer: balancer, Method: "snapshots", CDF: stats.NewCDF(snapStd)},
				Fig12Series{Balancer: balancer, Method: "polling", CDF: stats.NewCDF(pollStd)},
			)
		}
		res.Workloads = append(res.Workloads, wl)
	}
	return res
}

// fig12Run measures one (workload, balancer) combination with both
// methods over the same run, returning per-instant uplink standard
// deviations in microseconds.
func fig12Run(app, balancer string, cfg Fig12Config) (snapStd, pollStd []float64) {
	var net *emunet.Network
	var ls *topology.LeafSpine
	mod := func(c *emunet.Config) {
		c.Metrics = ewmaMetrics
		if balancer == "flowlet" {
			c.NewBalancer = flowletFactory(100 * sim.Microsecond)
		}
	}
	net, ls = testbedNet(cfg.Seed, cfg.Shards, false, mod)

	hosts := hostIDs(net)
	var wl workload.App
	switch app {
	case "hadoop":
		// The paper runs 10 mappers and 8 reducers across 6 servers:
		// every host both maps and reduces, so shuffle fetches cross
		// the fabric in both directions.
		wl = &workload.Terasort{Net: net, Mappers: hosts, Reducers: hosts}
	case "graphx":
		wl = &workload.PageRank{Net: net, Workers: hosts[1:]} // host 0 is the master
	case "memcache":
		wl = &workload.Memcache{Net: net, Clients: hosts[:1], Servers: hosts[1:]}
	default:
		panic("unknown workload " + app)
	}
	wl.Start()
	net.RunFor(5 * sim.Millisecond) // warm up EWMAs

	// The units under study: uplink egress units, grouped per leaf.
	groups := uplinkGroups(net, ls)
	var flat []dataplane.UnitID
	for _, g := range groups {
		flat = append(flat, g...)
	}

	poller := polling.New(net, polling.Config{})
	// A real polling framework sweeps every counter in the network; the
	// uplink readings land at whatever instants the sweep reaches them
	// (the full-sequence spread the paper measures at 2.6 ms median).
	sweep := allUnits(net)
	completed := map[packet.SeqID]*observer.GlobalSnapshot{}
	before := len(net.Snapshots())

	const gap = sim.Millisecond
	var ids []packet.SeqID
	for i := 0; i < cfg.Samples; i++ {
		// One snapshot and one poll sweep per instant, over the same
		// live traffic.
		net.Engine().After(gap, func() {
			if id, err := net.ScheduleSnapshot(net.Engine().Now().Add(200 * sim.Microsecond)); err == nil {
				ids = append(ids, id)
			}
			poller.PollAll(sweep, func(s []polling.Sample) {
				pollStd = append(pollStd, groupStddevs(groups, samplesByUnit(s))...)
			})
		})
		net.RunFor(gap)
	}
	net.RunFor(50 * sim.Millisecond)
	wl.Stop()

	for _, g := range net.Snapshots()[before:] {
		if _, seen := completed[g.ID]; !seen {
			completed[g.ID] = g
		}
	}
	var done []*observer.GlobalSnapshot
	for _, id := range ids {
		if g, ok := completed[id]; ok {
			done = append(done, g)
		}
	}
	snapStd = analysis.ImbalanceSamples(done, groups, 0.001) // ns -> µs
	return snapStd, pollStd
}

// uplinkGroups returns, per leaf, its uplink egress units.
func uplinkGroups(net *emunet.Network, ls *topology.LeafSpine) [][]dataplane.UnitID {
	var groups [][]dataplane.UnitID
	for _, leaf := range ls.Leaves {
		var g []dataplane.UnitID
		for _, port := range ls.UplinkPorts(leaf) {
			g = append(g, dataplane.UnitID{Node: leaf, Port: port, Dir: dataplane.Egress})
		}
		groups = append(groups, g)
	}
	return groups
}

// samplesByUnit converts poll samples to a per-unit value map in
// microseconds.
func samplesByUnit(s []polling.Sample) map[dataplane.UnitID]float64 {
	out := make(map[dataplane.UnitID]float64, len(s))
	for _, smp := range s {
		out[smp.Unit] = float64(smp.Value) / 1000
	}
	return out
}

// groupStddevs computes the per-group standard deviation of the units'
// values; groups with missing values are skipped.
func groupStddevs(groups [][]dataplane.UnitID, values map[dataplane.UnitID]float64) []float64 {
	var out []float64
	for _, g := range groups {
		var xs []float64
		for _, u := range g {
			if v, ok := values[u]; ok {
				xs = append(xs, v)
			}
		}
		if len(xs) == len(g) && len(xs) > 1 {
			out = append(out, stats.PopStddev(xs))
		}
	}
	return out
}

// Figures renders one figure per workload, in the paper's form.
func (r *Fig12Result) Figures() []*Figure {
	var out []*Figure
	for _, wl := range r.Workloads {
		f := &Figure{
			Title:  fmt.Sprintf("Figure 12 (%s): stddev of uplink load balancing", wl.Workload),
			XLabel: "standard deviation of uplink EWMA interarrival (us)",
			YLabel: "CDF",
		}
		for _, s := range wl.Series {
			ser := Series{Name: fmt.Sprintf("%s %s", s.Balancer, s.Method)}
			for _, p := range s.CDF.Points(20) {
				ser.Points = append(ser.Points, Point{X: p.X, Y: p.F})
			}
			f.Series = append(f.Series, ser)
			f.Notes = append(f.Notes, fmt.Sprintf("%s %s: stddev p50 %.2f us, p75 %.2f us (n=%d)",
				s.Balancer, s.Method, s.CDF.Median(), s.CDF.Quantile(0.75), s.CDF.N()))
		}
		out = append(out, f)
	}
	return out
}

// Median returns the median stddev for one combination, for tests and
// summaries.
func (r *Fig12Result) Median(workload, balancer, method string) (float64, bool) {
	return r.Quantile(workload, balancer, method, 0.5)
}

// Quantile returns the q-th quantile of the stddev distribution for one
// combination.
func (r *Fig12Result) Quantile(workload, balancer, method string, q float64) (float64, bool) {
	for _, wl := range r.Workloads {
		if wl.Workload != workload {
			continue
		}
		for _, s := range wl.Series {
			if s.Balancer == balancer && s.Method == method {
				return s.CDF.Quantile(q), true
			}
		}
	}
	return 0, false
}
