package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// FprintPlot renders a figure as an ASCII chart: one glyph per series,
// points mapped onto a fixed-size grid, with a log-scaled x-axis when
// the data spans more than two decades (synchronization CDFs do). It
// complements the numeric series output for terminal-only inspection.
func (f *Figure) FprintPlot(w io.Writer, width, height int) {
	if width < 20 {
		width = 64
	}
	if height < 5 {
		height = 16
	}
	var xs, ys []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
	}
	if len(xs) == 0 {
		fmt.Fprintf(w, "== %s == (no data)\n", f.Title)
		return
	}
	xmin, xmax := minmax(xs)
	ymin, ymax := minmax(ys)
	logX := xmin > 0 && xmax/xmin > 100
	tx := func(x float64) float64 {
		if logX {
			return math.Log10(x)
		}
		return x
	}
	xlo, xhi := tx(xmin), tx(xmax)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := "*+xo#@%&"
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			c := int((tx(p.X) - xlo) / (xhi - xlo) * float64(width-1))
			r := height - 1 - int((p.Y-ymin)/(ymax-ymin)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = g
			}
		}
	}

	fmt.Fprintf(w, "== %s ==\n", f.Title)
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", ymin)
		}
		fmt.Fprintf(w, "%s |%s\n", label, strings.TrimRight(string(row), " "))
	}
	axis := "linear"
	if logX {
		axis = "log10"
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-.3g%s%.3g  (%s, x: %s; y: %s)\n",
		"", xmin, strings.Repeat(" ", max(1, width-16)), xmax, axis, f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(w, "    %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
}

func minmax(xs []float64) (float64, float64) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
