package experiments

import (
	"fmt"

	"speedlight/internal/clock"
	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

// The ablations quantify the design choices DESIGN.md calls out:
//
//   - multi-initiator initiation (Section 3: "snapshots in our system
//     are initiated at all nodes simultaneously") versus the classical
//     single-initiator Chandy-Lamport start;
//   - the clock-synchronization protocol (Section 2.1's PTP-vs-NTP
//     motivation, and the perfect-clock lower bound);
//   - the notification socket buffer (Section 8.2: bursts above the
//     sustained rate survive "given a sufficiently large socket
//     receive buffer").

// AblationConfig parameterizes the ablation runs.
type AblationConfig struct {
	// Snapshots per measurement series.
	Snapshots int
	Seed      int64
	// Shards selects the simulation engine (0/1 serial, >=2 parallel).
	// Results are identical either way.
	Shards int
}

func (c *AblationConfig) defaults() {
	if c.Snapshots == 0 {
		c.Snapshots = 80
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// InitiatorsResult compares multi-initiator and single-initiator
// synchronization.
type InitiatorsResult struct {
	Multi  *stats.CDF // sync spread, µs
	Single *stats.CDF
}

// AblationInitiators measures snapshot synchronization with the paper's
// multi-initiator design against a single-initiator run where the epoch
// must propagate through the network on piggybacked traffic.
func AblationInitiators(cfg AblationConfig) *InitiatorsResult {
	cfg.defaults()
	run := func(single bool) *stats.CDF {
		n, ls := testbedNet(cfg.Seed, cfg.Shards, false, nil)
		bg := &workload.Uniform{Net: n, Hosts: hostIDs(n), Interval: 2 * sim.Microsecond}
		bg.Start()
		n.RunFor(2 * sim.Millisecond)
		var ids []packet.SeqID
		const gap = 2 * sim.Millisecond
		for i := 0; i < cfg.Snapshots; i++ {
			n.Engine().After(gap, func() {
				deadline := n.Engine().Now().Add(sim.Millisecond)
				var id packet.SeqID
				var err error
				if single {
					id, err = n.ScheduleSnapshotSingle(ls.Leaves[0], deadline)
				} else {
					id, err = n.ScheduleSnapshot(deadline)
				}
				if err == nil {
					ids = append(ids, id)
				}
			})
			n.RunFor(gap)
		}
		n.RunFor(50 * sim.Millisecond)
		var spreads []float64
		for _, id := range ids {
			if d, ok := n.SyncSpread(id); ok {
				spreads = append(spreads, d.Micros())
			}
		}
		return stats.NewCDF(spreads)
	}
	return &InitiatorsResult{Multi: run(false), Single: run(true)}
}

// Table renders the initiator ablation.
func (r *InitiatorsResult) Table() *Table {
	return &Table{
		Title:  "Ablation: multi-initiator vs single-initiator synchronization",
		Header: []string{"Design", "median sync (us)", "p90 (us)", "max (us)"},
		Rows: [][]string{
			{"multi-initiator (paper)", fmt.Sprintf("%.1f", r.Multi.Median()),
				fmt.Sprintf("%.1f", r.Multi.Quantile(0.9)), fmt.Sprintf("%.1f", r.Multi.MaxValue())},
			{"single initiator", fmt.Sprintf("%.1f", r.Single.Median()),
				fmt.Sprintf("%.1f", r.Single.Quantile(0.9)), fmt.Sprintf("%.1f", r.Single.MaxValue())},
		},
		Notes: []string{
			"host-facing ingress units cannot learn epochs from traffic (their upstream is a host, Section 6),",
			"so a single-initiator snapshot reaches them only through recovery retries - the multi-initiator",
			"design exists precisely to avoid this",
		},
	}
}

// ClocksResult compares clock-discipline quality.
type ClocksResult struct {
	Perfect *stats.CDF
	PTP     *stats.CDF
	NTP     *stats.CDF
}

// AblationClocks measures snapshot synchronization under perfect
// clocks, PTP discipline (the paper's choice), and LAN NTP.
func AblationClocks(cfg AblationConfig) *ClocksResult {
	cfg.defaults()
	run := func(cc clock.Config) *stats.CDF {
		n, _ := testbedNet(cfg.Seed, cfg.Shards, false, func(c *emunet.Config) { c.Clock = cc })
		bg := &workload.Uniform{Net: n, Hosts: hostIDs(n), Interval: 2 * sim.Microsecond}
		bg.Start()
		n.RunFor(2 * sim.Millisecond)
		var ids []packet.SeqID
		const gap = 2 * sim.Millisecond
		for i := 0; i < cfg.Snapshots; i++ {
			n.Engine().After(gap, func() {
				// NTP-scale offsets need a deadline far enough out that
				// no clock has already passed it.
				if id, err := n.ScheduleSnapshot(n.Engine().Now().Add(5 * sim.Millisecond)); err == nil {
					ids = append(ids, id)
				}
			})
			n.RunFor(gap)
		}
		n.RunFor(100 * sim.Millisecond)
		var spreads []float64
		for _, id := range ids {
			if d, ok := n.SyncSpread(id); ok {
				spreads = append(spreads, d.Micros())
			}
		}
		return stats.NewCDF(spreads)
	}
	return &ClocksResult{
		Perfect: run(clock.Perfect()),
		PTP:     run(clock.PTP()),
		NTP:     run(clock.NTPLAN()),
	}
}

// Table renders the clock ablation.
func (r *ClocksResult) Table() *Table {
	row := func(name string, c *stats.CDF) []string {
		return []string{name, fmt.Sprintf("%.1f", c.Median()), fmt.Sprintf("%.1f", c.MaxValue())}
	}
	return &Table{
		Title:  "Ablation: clock discipline vs snapshot synchronization",
		Header: []string{"Clock", "median sync (us)", "max (us)"},
		Rows: [][]string{
			row("perfect", r.Perfect),
			row("PTP (paper)", r.PTP),
			row("LAN NTP", r.NTP),
		},
		Notes: []string{
			"PTP's microsecond residuals keep snapshots under an RTT; millisecond NTP error dominates everything else",
		},
	}
}

// BufferPoint is one socket-buffer size's outcome under burst load.
type BufferPoint struct {
	Capacity int
	Drops    uint64
	Complete int
}

// BuffersResult holds the buffer-size sweep.
type BuffersResult struct {
	BurstRateHz float64
	BurstLen    int
	Points      []BufferPoint
}

// AblationNotifBuffers fires a burst of snapshots far above the
// sustainable rate at a 16-port switch and sweeps the notification
// socket buffer: a sufficiently large buffer absorbs the burst with no
// loss (Section 8.2), while small buffers drop notifications and lean
// on recovery.
func AblationNotifBuffers(cfg AblationConfig) *BuffersResult {
	cfg.defaults()
	const ports = 16
	const burst = 50
	res := &BuffersResult{BurstRateHz: 5000, BurstLen: burst}
	for _, capacity := range []int{8, 64, 512, 4096} {
		n, err := emunet.New(emunet.Config{
			Topo:          starTopo(ports),
			Seed:          cfg.Seed,
			MaxID:         1 << 20,
			WrapAround:    false,
			NotifCapacity: capacity,
			RetryAfter:    -1,
			ExcludeAfter:  -1,
		})
		if err != nil {
			panic(err)
		}
		period := sim.DurationOfSeconds(1 / res.BurstRateHz)
		for i := 0; i < burst; i++ {
			n.Engine().After(period, func() { n.ScheduleSnapshot(n.Engine().Now()) })
			n.RunFor(period)
		}
		n.RunFor(2 * sim.Second) // drain the burst
		res.Points = append(res.Points, BufferPoint{
			Capacity: capacity,
			Drops:    n.NotifDropsTotal(),
			Complete: len(n.Snapshots()),
		})
	}
	return res
}

// Table renders the buffer ablation.
func (r *BuffersResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Ablation: notification socket buffer under a %d-snapshot burst at %.0f Hz",
			r.BurstLen, r.BurstRateHz),
		Header: []string{"Buffer (notifs)", "drops", "snapshots completed"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Capacity),
			fmt.Sprintf("%d", p.Drops),
			fmt.Sprintf("%d/%d", p.Complete, r.BurstLen),
		})
	}
	t.Notes = append(t.Notes,
		"the burst is ~70x the sustainable 16-port rate; a large enough buffer absorbs it losslessly")
	return t
}

// PartialPoint is one partial-deployment configuration's outcome.
type PartialPoint struct {
	Disabled     int // snapshot-disabled spines
	Units        int // units covered by the snapshot
	MedianSyncUs float64
	Consistent   int // consistent snapshots out of Total
	Total        int
}

// PartialResult holds the partial-deployment sweep.
type PartialResult struct {
	Points []PartialPoint
}

// AblationPartialDeployment disables snapshot support on a growing set
// of spine switches (Section 10: partial deployment). Traffic still
// crosses the disabled devices — their pipelines forward the header
// untouched — and the snapshot remains consistent and microsecond-
// synchronous over the participating devices.
func AblationPartialDeployment(cfg AblationConfig) *PartialResult {
	cfg.defaults()
	res := &PartialResult{}
	for disabled := 0; disabled <= 2; disabled++ {
		n, ls := testbedNet(cfg.Seed, cfg.Shards, false, func(c *emunet.Config) {
			c.SnapshotDisabled = map[topology.NodeID]bool{}
			for i := 0; i < disabled; i++ {
				c.SnapshotDisabled[topology.NodeID(2+i)] = true // spines are nodes 2,3
			}
		})
		_ = ls
		bg := &workload.Uniform{Net: n, Hosts: hostIDs(n), Interval: 2 * sim.Microsecond}
		bg.Start()
		n.RunFor(2 * sim.Millisecond)
		var ids []packet.SeqID
		const gap = 2 * sim.Millisecond
		for i := 0; i < cfg.Snapshots; i++ {
			n.Engine().After(gap, func() {
				if id, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err == nil {
					ids = append(ids, id)
				}
			})
			n.RunFor(gap)
		}
		n.RunFor(50 * sim.Millisecond)

		var spreads []float64
		for _, id := range ids {
			if d, ok := n.SyncSpread(id); ok {
				spreads = append(spreads, d.Micros())
			}
		}
		pt := PartialPoint{Disabled: disabled, Total: len(ids)}
		for _, g := range n.Snapshots() {
			if pt.Units == 0 {
				pt.Units = len(g.Results)
			}
			if g.Consistent {
				pt.Consistent++
			}
		}
		if len(spreads) > 0 {
			pt.MedianSyncUs = stats.NewCDF(spreads).Median()
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Table renders the partial-deployment ablation.
func (r *PartialResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: partial deployment (snapshot-disabled spines)",
		Header: []string{"Disabled spines", "units covered", "median sync (us)", "consistent"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Disabled),
			fmt.Sprintf("%d", p.Units),
			fmt.Sprintf("%.1f", p.MedianSyncUs),
			fmt.Sprintf("%d/%d", p.Consistent, p.Total),
		})
	}
	t.Notes = append(t.Notes,
		"disabled devices forward headers untouched; the snapshot covers the participating devices consistently (Section 10)")
	return t
}
