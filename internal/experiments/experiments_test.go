package experiments

import (
	"bytes"
	"strings"
	"testing"

	"speedlight/internal/sim"
)

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1(64)
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	// Spot-check the printed cells against the paper's Table 1.
	for _, want := range []string{"606KB", "671KB", "770KB", "42KB", "59KB", "244KB", "638KB", "90KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Physical Stages") {
		t.Error("missing stages row")
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(Fig9Config{Snapshots: 40, Seed: 3})
	t.Logf("switch state: median=%.2f max=%.2f", r.SwitchState.Median(), r.SwitchState.MaxValue())
	t.Logf("chnl  state: median=%.2f max=%.2f", r.SwitchChannelState.Median(), r.SwitchChannelState.MaxValue())
	t.Logf("polling    : median=%.2f", r.Polling.Median())

	if n := r.SwitchState.N(); n != 40 {
		t.Errorf("switch-state samples = %d, want 40", n)
	}
	if n := r.SwitchChannelState.N(); n != 40 {
		t.Errorf("channel-state samples = %d, want 40", n)
	}
	// Microsecond-scale snapshot synchronization (paper: ~6.4 us median,
	// max 22-27 us).
	if m := r.SwitchState.Median(); m <= 0 || m > 50 {
		t.Errorf("switch-state median %v us out of range", m)
	}
	if m := r.SwitchState.MaxValue(); m > 100 {
		t.Errorf("switch-state max %v us out of range", m)
	}
	// Channel state has the longer tail: completion depends on all
	// upstream neighbors advancing.
	if r.SwitchChannelState.MaxValue() < r.SwitchState.MaxValue() {
		t.Errorf("channel-state tail (%v) shorter than switch-state (%v)",
			r.SwitchChannelState.MaxValue(), r.SwitchState.MaxValue())
	}
	// Polling is orders of magnitude worse (paper: 2.6 ms median).
	if m := r.Polling.Median(); m < 1000 {
		t.Errorf("polling median %v us implausibly good", m)
	}
	if r.Polling.Median() < 20*r.SwitchState.Median() {
		t.Error("polling should be orders of magnitude worse than snapshots")
	}
	// Rendering must not panic and must carry all three series.
	fig := r.Figure()
	if len(fig.Series) != 3 {
		t.Errorf("figure series = %d", len(fig.Series))
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("rate search is slow")
	}
	r := Fig10(Fig10Config{PortCounts: []int{8, 64}, TrialDuration: 80 * sim.Millisecond, Seed: 2})
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	small, large := r.Points[0], r.Points[1]
	t.Logf("8 ports: %.0f Hz, 64 ports: %.0f Hz", small.MaxRateHz, large.MaxRateHz)
	// Rate falls roughly inversely with port count (paper's Figure 10
	// spans 4..64 ports over about two decades).
	if small.MaxRateHz <= large.MaxRateHz {
		t.Error("rate should fall with port count")
	}
	if ratio := small.MaxRateHz / large.MaxRateHz; ratio < 4 || ratio > 16 {
		t.Errorf("8:64 rate ratio = %.1f, want ~8x", ratio)
	}
	// The paper sustains over 70 snapshots/s at 64 ports.
	if large.MaxRateHz < 40 || large.MaxRateHz > 200 {
		t.Errorf("64-port rate %.0f Hz far from paper's ~70", large.MaxRateHz)
	}
	if fig := r.Figure(); len(fig.Series) != 1 {
		t.Error("figure rendering")
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(Fig11Config{RouterCounts: []int{10, 100, 1000, 10000},
		Trials: 30, CalibrationSnapshots: 60, Seed: 2})
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		t.Logf("%d routers: %.1f us", p.Routers, p.AvgSyncUs)
		if i > 0 && p.AvgSyncUs < r.Points[i-1].AvgSyncUs {
			t.Errorf("sync shrank from %d to %d routers", r.Points[i-1].Routers, p.Routers)
		}
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.AvgSyncUs <= first.AvgSyncUs {
		t.Error("sync should grow with network size")
	}
	// Growth is asymptotic: the 10x size step from 1000 to 10000 must
	// add less than the 100x step from 10 to 1000.
	g1 := r.Points[2].AvgSyncUs - r.Points[0].AvgSyncUs
	g2 := last.AvgSyncUs - r.Points[2].AvgSyncUs
	if g2 > g1 {
		t.Errorf("growth accelerating (%.1f then %.1f): not asymptotic", g1, g2)
	}
	// Stays under typical RTTs (paper: < ~100 us even at 10k routers).
	if last.AvgSyncUs > 150 {
		t.Errorf("10k-router sync %.1f us too large", last.AvgSyncUs)
	}
	if fig := r.Figure(); len(fig.Series) != 1 {
		t.Error("figure rendering")
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep is slow")
	}
	r := Fig12(Fig12Config{Samples: 50, Seed: 2})
	if len(r.Workloads) != 3 {
		t.Fatalf("workloads = %d", len(r.Workloads))
	}
	for _, wl := range r.Workloads {
		if len(wl.Series) != 4 {
			t.Fatalf("%s series = %d", wl.Workload, len(wl.Series))
		}
		for _, s := range wl.Series {
			if s.CDF.N() < 60 {
				t.Errorf("%s %s %s: only %d samples", wl.Workload, s.Balancer, s.Method, s.CDF.N())
			}
		}
	}
	// The headline result: snapshots reveal that flowlet switching
	// balances the Hadoop shuffle far better than ECMP. The CDFs
	// diverge in the body and tail (the paper's Figure 12a), so compare
	// the 75th percentile.
	he, _ := r.Quantile("hadoop", "ecmp", "snapshots", 0.75)
	hf, _ := r.Quantile("hadoop", "flowlet", "snapshots", 0.75)
	t.Logf("hadoop snapshots p75: ecmp=%.2f flowlet=%.2f", he, hf)
	if hf >= he {
		t.Errorf("flowlet (p75 %.2f) should balance better than ECMP (p75 %.2f) under snapshots", hf, he)
	}
	// Memcache is inherently well balanced: its imbalance is small
	// under either balancer.
	me, _ := r.Median("memcache", "ecmp", "snapshots")
	mf, _ := r.Median("memcache", "flowlet", "snapshots")
	if me <= 0 || mf <= 0 {
		t.Error("memcache medians should be positive (live EWMAs)")
	}
	// Rendering.
	figs := r.Figures()
	if len(figs) != 3 {
		t.Errorf("figures = %d", len(figs))
	}
	if _, ok := r.Median("nope", "ecmp", "snapshots"); ok {
		t.Error("unknown workload lookup should fail")
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(Fig13Config{Snapshots: 100, Seed: 1})
	t.Logf("snapshots: sig=%d ecmp +%d -%d; polling: sig=%d ecmp +%d -%d",
		r.Snapshot.Significant, r.Snapshot.ECMPPairsPositive, r.Snapshot.ECMPPairsNegative,
		r.Polling.Significant, r.Polling.ECMPPairsPositive, r.Polling.ECMPPairsNegative)

	// Paper: snapshots find more significant correlations (43% more in
	// their run).
	if r.Snapshot.Significant <= r.Polling.Significant {
		t.Errorf("snapshots (%d) should find more significant pairs than polling (%d)",
			r.Snapshot.Significant, r.Polling.Significant)
	}
	// Ground truth 1: the master's port is uncorrelated under snapshots.
	if !r.Snapshot.MasterPortClean {
		t.Error("snapshots found spurious master-port correlations")
	}
	// Ground truth 2: snapshots find the positive ECMP correlations;
	// polling misses them (insignificant or even negative).
	if r.Snapshot.ECMPPairsPositive != r.Snapshot.ECMPPairsTotal {
		t.Errorf("snapshots matched %d/%d ECMP pairs",
			r.Snapshot.ECMPPairsPositive, r.Snapshot.ECMPPairsTotal)
	}
	if r.Polling.ECMPPairsPositive == r.Polling.ECMPPairsTotal {
		t.Error("polling should fail to identify the ECMP correlations")
	}
	// Rendering.
	tbl := r.Table()
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "significant pairs") {
		t.Error("table rendering")
	}
}

func TestFigureAndTableRendering(t *testing.T) {
	f := &Figure{
		Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{1, 2}}}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	f.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== t ==", "series \"s\"", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
	tbl := &Table{Title: "tt", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	buf.Reset()
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "== tt ==") {
		t.Error("table title missing")
	}
}

func TestFprintPlot(t *testing.T) {
	f := &Figure{
		Title: "plot", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 0}, {10, 0.5}, {10000, 1}}},
			{Name: "b", Points: []Point{{2, 0.2}, {500, 0.9}}},
		},
	}
	var buf bytes.Buffer
	f.FprintPlot(&buf, 40, 10)
	out := buf.String()
	for _, want := range []string{"== plot ==", "* = a", "+ = b", "log10"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("plot too short: %d lines", lines)
	}
	// Degenerate inputs must not panic.
	empty := &Figure{Title: "e"}
	buf.Reset()
	empty.FprintPlot(&buf, 0, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty figure handling")
	}
	flat := &Figure{Title: "f", Series: []Series{{Name: "s", Points: []Point{{5, 3}, {5, 3}}}}}
	buf.Reset()
	flat.FprintPlot(&buf, 30, 8)
	if !strings.Contains(buf.String(), "== f ==") {
		t.Error("flat figure handling")
	}
}
