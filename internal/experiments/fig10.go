package experiments

import (
	"fmt"
	"math"

	"speedlight/internal/emunet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// Fig10Config parameterizes the snapshot-rate experiment.
type Fig10Config struct {
	// PortCounts are the router sizes to sweep (paper: 4..64).
	PortCounts []int
	// TrialDuration is how long each candidate rate is sustained.
	TrialDuration sim.Duration
	Seed          int64
	// Shards selects the simulation engine (0/1 serial, >=2 parallel).
	// A single-switch star cannot exploit parallelism, but the results
	// are identical either way.
	Shards int
}

func (c *Fig10Config) defaults() {
	if len(c.PortCounts) == 0 {
		c.PortCounts = []int{4, 8, 16, 32, 64}
	}
	if c.TrialDuration == 0 {
		c.TrialDuration = 500 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig10Point is one measurement: the maximum sustained snapshot rate
// for a router with the given port count.
type Fig10Point struct {
	Ports     int
	MaxRateHz float64
}

// Fig10Result holds the rate-versus-ports sweep.
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10 measures the maximum sustained snapshot frequency before
// notification-queue buildup, for a single switch with a range of port
// counts and no channel state (Section 8.2). The bottleneck is the
// control plane's per-notification processing latency: each snapshot
// produces two notifications per port (ingress and egress snapshot ID
// advances), so the sustainable rate falls inversely with port count.
func Fig10(cfg Fig10Config) *Fig10Result {
	cfg.defaults()
	res := &Fig10Result{}
	for _, ports := range cfg.PortCounts {
		rate := maxSustainedRate(ports, cfg)
		res.Points = append(res.Points, Fig10Point{Ports: ports, MaxRateHz: rate})
	}
	return res
}

// starTopo builds one switch with a host on every port.
func starTopo(ports int) *topology.Topology {
	b := topology.NewBuilder()
	sw := b.AddSwitch(ports)
	for p := 0; p < ports; p++ {
		b.AttachHost(sw, p, sim.Microsecond)
	}
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// sustains reports whether a switch with the given port count can take
// snapshots at rateHz without notification loss or queue buildup.
func sustains(ports int, rateHz float64, cfg Fig10Config) bool {
	n, err := emunet.New(emunet.Config{
		Topo:   starTopo(ports),
		Seed:   cfg.Seed,
		Shards: cfg.Shards,
		// Unbounded ID space isolates the CP bottleneck from the
		// observer's rollover window.
		MaxID:        1 << 20,
		WrapAround:   false,
		ChannelState: false,
		RetryAfter:   -1,
		ExcludeAfter: -1,
	})
	if err != nil {
		panic(err)
	}
	period := sim.DurationOfSeconds(1 / rateHz)
	tick := n.Engine().NewTicker(period, func() {
		// Errors cannot occur without the wraparound window.
		if _, err := n.ScheduleSnapshot(n.Engine().Now()); err != nil {
			panic(err)
		}
	})
	n.RunFor(cfg.TrialDuration)
	tick.Stop()
	if n.NotifDropsTotal() > 0 {
		return false
	}
	// Sustained operation also means the CPU queue keeps up: after the
	// load stops, at most the final snapshot's worth may linger.
	pending := n.Switch(0).DP.PendingNotifs()
	return pending <= 2*ports
}

// maxSustainedRate binary-searches the highest sustainable rate to ~5%.
func maxSustainedRate(ports int, cfg Fig10Config) float64 {
	lo, hi := 1.0, 50_000.0
	if !sustains(ports, lo, cfg) {
		return 0
	}
	for hi/lo > 1.05 {
		mid := math.Sqrt(lo * hi) // geometric midpoint: the sweep is log-scale
		if sustains(ports, mid, cfg) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Figure renders the sweep in the paper's form.
func (r *Fig10Result) Figure() *Figure {
	f := &Figure{
		Title:  "Figure 10: max sustained snapshot rate vs ports per router",
		XLabel: "ports per router",
		YLabel: "max rate (Hz)",
	}
	s := Series{Name: "max sustained rate"}
	for _, p := range r.Points {
		s.Points = append(s.Points, Point{X: float64(p.Ports), Y: p.MaxRateHz})
	}
	f.Series = append(f.Series, s)
	for _, p := range r.Points {
		if p.Ports == 64 {
			f.Notes = append(f.Notes, fmt.Sprintf(
				"64-port rate: %.0f Hz (paper: >70 Hz; bottleneck is control-plane processing)", p.MaxRateHz))
		}
	}
	return f
}
