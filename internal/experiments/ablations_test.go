package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationInitiators(t *testing.T) {
	r := AblationInitiators(AblationConfig{Snapshots: 30, Seed: 4})
	t.Logf("multi: median=%.1f max=%.1f | single: median=%.1f max=%.1f",
		r.Multi.Median(), r.Multi.MaxValue(), r.Single.Median(), r.Single.MaxValue())
	if r.Multi.N() == 0 || r.Single.N() == 0 {
		t.Fatal("empty series")
	}
	// The design choice's payoff: multi-initiator synchronization is
	// markedly tighter, because single-initiator epochs must propagate
	// hop by hop on transit traffic.
	if r.Single.Median() < 2*r.Multi.Median() {
		t.Errorf("single-initiator (%.1f us) should be much worse than multi (%.1f us)",
			r.Single.Median(), r.Multi.Median())
	}
	var buf bytes.Buffer
	r.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "multi-initiator") {
		t.Error("table rendering")
	}
}

func TestAblationClocks(t *testing.T) {
	r := AblationClocks(AblationConfig{Snapshots: 30, Seed: 4})
	t.Logf("perfect=%.1f ptp=%.1f ntp=%.1f (medians, us)",
		r.Perfect.Median(), r.PTP.Median(), r.NTP.Median())
	// Ordering: perfect <= PTP << NTP.
	if r.Perfect.Median() > r.PTP.Median() {
		t.Errorf("perfect clocks (%.1f) should not be worse than PTP (%.1f)",
			r.Perfect.Median(), r.PTP.Median())
	}
	if r.NTP.Median() < 5*r.PTP.Median() {
		t.Errorf("NTP (%.1f us) should be far worse than PTP (%.1f us)",
			r.NTP.Median(), r.PTP.Median())
	}
	// NTP-scale error is what makes measurements incomparable in bursty
	// networks (Section 2.1): hundreds of microseconds to milliseconds.
	if r.NTP.Median() < 100 {
		t.Errorf("NTP median %.1f us implausibly tight", r.NTP.Median())
	}
	var buf bytes.Buffer
	r.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "PTP") {
		t.Error("table rendering")
	}
}

func TestAblationNotifBuffers(t *testing.T) {
	r := AblationNotifBuffers(AblationConfig{Seed: 4})
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		t.Logf("capacity=%d drops=%d complete=%d", p.Capacity, p.Drops, p.Complete)
	}
	// Drops are monotone non-increasing in buffer size, and the largest
	// buffer absorbs the whole burst.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Drops > r.Points[i-1].Drops {
			t.Errorf("drops grew with buffer size: %d -> %d",
				r.Points[i-1].Drops, r.Points[i].Drops)
		}
	}
	smallest, largest := r.Points[0], r.Points[len(r.Points)-1]
	if smallest.Drops == 0 {
		t.Error("smallest buffer should drop under the burst")
	}
	if largest.Drops != 0 {
		t.Errorf("largest buffer dropped %d notifications", largest.Drops)
	}
	if largest.Complete != r.BurstLen {
		t.Errorf("largest buffer completed %d/%d", largest.Complete, r.BurstLen)
	}
	var buf bytes.Buffer
	r.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "burst") {
		t.Error("table rendering")
	}
}

func TestAblationPartialDeployment(t *testing.T) {
	r := AblationPartialDeployment(AblationConfig{Snapshots: 20, Seed: 4})
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		t.Logf("disabled=%d units=%d sync=%.1fus consistent=%d/%d",
			p.Disabled, p.Units, p.MedianSyncUs, p.Consistent, p.Total)
		if p.Consistent != p.Total {
			t.Errorf("disabled=%d: only %d/%d consistent", p.Disabled, p.Consistent, p.Total)
		}
		// Partial deployments still synchronize at microsecond scale.
		if p.MedianSyncUs <= 0 || p.MedianSyncUs > 100 {
			t.Errorf("disabled=%d: sync %.1f us out of range", p.Disabled, p.MedianSyncUs)
		}
	}
	// Each disabled spine removes its 4 units (2 ports x 2 directions).
	if r.Points[0].Units != 28 || r.Points[1].Units != 24 || r.Points[2].Units != 20 {
		t.Errorf("unit coverage: %d, %d, %d", r.Points[0].Units, r.Points[1].Units, r.Points[2].Units)
	}
	var buf bytes.Buffer
	r.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "partial deployment") {
		t.Error("table rendering")
	}
}
