package experiments

import (
	"fmt"

	"speedlight/internal/resources"
)

// Table1 regenerates the paper's Table 1: resource usage of the
// Speedlight data plane on the Tofino for the three build variants,
// snapshotting the given number of ports (the paper uses 64).
func Table1(ports int) *Table {
	rows := resources.Table1(ports)
	t := &Table{
		Title: fmt.Sprintf("Table 1: Speedlight data plane resource usage (%d ports)", ports),
		Header: []string{"Resource", rows[0].Variant.String(), rows[1].Variant.String(),
			rows[2].Variant.String()},
	}
	cell := func(f func(resources.Usage) string) []string {
		return []string{f(rows[0]), f(rows[1]), f(rows[2])}
	}
	add := func(name string, f func(resources.Usage) string) {
		t.Rows = append(t.Rows, append([]string{name}, cell(f)...))
	}
	add("Stateless ALUs", func(u resources.Usage) string { return fmt.Sprintf("%d", u.StatelessALUs) })
	add("Stateful ALUs", func(u resources.Usage) string { return fmt.Sprintf("%d", u.StatefulALUs) })
	add("Logical Table IDs", func(u resources.Usage) string { return fmt.Sprintf("%d", u.LogicalTables) })
	add("Conditional Table Gateways", func(u resources.Usage) string { return fmt.Sprintf("%d", u.Gateways) })
	add("Physical Stages", func(u resources.Usage) string { return fmt.Sprintf("%d", u.Stages) })
	add("SRAM", func(u resources.Usage) string { return fmt.Sprintf("%.0fKB", u.SRAMKB) })
	add("TCAM", func(u resources.Usage) string { return fmt.Sprintf("%.0fKB", u.TCAMKB) })

	ev := resources.Estimate(resources.ChannelState, 14)
	t.Notes = append(t.Notes,
		fmt.Sprintf("14-port wraparound+channel-state build (Section 8 config): %.0fKB SRAM, %.0fKB TCAM",
			ev.SRAMKB, ev.TCAMKB),
		fmt.Sprintf("heaviest dedicated-resource use at 64 ports: %.1f%% of the Tofino (paper: <25%%)",
			resources.FractionOfTofino(resources.Estimate(resources.ChannelState, ports))*100))
	return t
}
