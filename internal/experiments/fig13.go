package experiments

import (
	"fmt"

	"speedlight/internal/analysis"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/polling"
	"speedlight/internal/sim"
	"speedlight/internal/stats"
	"speedlight/internal/topology"
	"speedlight/internal/workload"
)

// Fig13Config parameterizes the correlation experiment.
type Fig13Config struct {
	// Snapshots is the series length (the paper takes 100).
	Snapshots int
	// Alpha is the significance cutoff (the paper uses p < 0.1).
	Alpha float64
	Seed  int64
	// Shards selects the simulation engine (0/1 serial, >=2 parallel).
	// Results are identical either way.
	Shards int
}

func (c *Fig13Config) defaults() {
	if c.Snapshots == 0 {
		c.Snapshots = 100
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig13Method holds one measurement method's correlation analysis.
type Fig13Method struct {
	Method string
	Matrix *stats.CorrMatrix
	// Units maps matrix indices to processing units.
	Units []dataplane.UnitID
	// Significant is the number of significant pairs at the cutoff.
	Significant int
	// MasterPortClean reports ground truth 1: no significant
	// correlation between the master server's egress port and any other
	// port (the master does not participate in the computation).
	MasterPortClean bool
	// ECMPPairsPositive counts ground truth 2: leaf uplink pairs (the
	// possible ECMP next-hops of the same traffic) found significantly
	// POSITIVELY correlated, out of ECMPPairsTotal.
	ECMPPairsPositive int
	// ECMPPairsNegative counts uplink pairs found significantly
	// negatively correlated — the "worse" failure mode the paper
	// highlights for polling.
	ECMPPairsNegative int
	ECMPPairsTotal    int
}

// Fig13Result compares snapshot-based and polling-based correlation
// analysis under the GraphX workload.
type Fig13Result struct {
	Snapshot Fig13Method
	Polling  Fig13Method
	Alpha    float64
}

// Fig13 reproduces Section 8.4: EWMA packet-timing series are collected
// for every egress port in repeated snapshots (and in poll sweeps over
// the same run), pairwise Spearman correlations are computed, and the
// significant ones are compared against two ground truths — the idle
// master's port must be uncorrelated, and same-leaf uplink pairs
// (ECMP next-hops) must be positively correlated.
func Fig13(cfg Fig13Config) *Fig13Result {
	cfg.defaults()
	net, ls := testbedNet(cfg.Seed, cfg.Shards, false, func(c *emunet.Config) {
		c.Metrics = ewmaMetrics
	})
	hosts := hostIDs(net)
	// Host 0 is the master and does not participate (ground truth 1).
	// Long supersteps give the on/off common mode that correlates the
	// two ECMP next-hop uplinks of each leaf (ground truth 2).
	wl := &workload.PageRank{Net: net, Workers: hosts[1:], BurstPackets: 250}
	wl.Start()
	net.RunFor(5 * sim.Millisecond)

	// Series over every egress unit of every switch.
	units := egressUnits(net)
	idx := make(map[dataplane.UnitID]int, len(units))
	for i, u := range units {
		idx[u] = i
	}
	var snapSeries [][]float64
	pollSeries := make([][]float64, len(units))

	poller := polling.New(net, polling.Config{})
	sweep := allUnits(net)
	var ids []packet.SeqID
	const gap = sim.Millisecond // supersteps are 1 ms; sample across phases
	sampleGap := gap + 137*sim.Microsecond
	for i := 0; i < cfg.Snapshots; i++ {
		net.Engine().After(sampleGap, func() {
			if id, err := net.ScheduleSnapshot(net.Engine().Now().Add(200 * sim.Microsecond)); err == nil {
				ids = append(ids, id)
			}
			// The polling framework sweeps every counter; only the
			// egress units' readings feed the correlation series.
			poller.PollAll(sweep, func(s []polling.Sample) {
				for _, smp := range s {
					if i, ok := idx[smp.Unit]; ok {
						pollSeries[i] = append(pollSeries[i], float64(smp.Value))
					}
				}
			})
		})
		net.RunFor(sampleGap)
	}
	net.RunFor(50 * sim.Millisecond)
	wl.Stop()

	snapSeries = analysis.UnitSeries(net.Snapshots(), units)

	// Equalize polling series lengths (a sweep cut off by the end of
	// the run would desynchronize the matrix).
	trim(pollSeries)

	res := &Fig13Result{Alpha: cfg.Alpha}
	res.Snapshot = analyzeFig13("snapshots", snapSeries, units, ls, net, cfg.Alpha)
	res.Polling = analyzeFig13("polling", pollSeries, units, ls, net, cfg.Alpha)
	return res
}

// egressUnits lists every egress unit in the network.
func egressUnits(net *emunet.Network) []dataplane.UnitID {
	var out []dataplane.UnitID
	for _, sw := range net.Topo().Switches {
		for _, id := range net.Switch(sw.ID).DP.UnitIDs() {
			if id.Dir == dataplane.Egress {
				out = append(out, id)
			}
		}
	}
	return out
}

func trim(series [][]float64) {
	min := -1
	for _, s := range series {
		if min < 0 || len(s) < min {
			min = len(s)
		}
	}
	for i := range series {
		series[i] = series[i][:min]
	}
}

func analyzeFig13(method string, series [][]float64, units []dataplane.UnitID,
	ls *topology.LeafSpine, net *emunet.Network, alpha float64) Fig13Method {
	m, err := stats.NewCorrMatrix(series)
	if err != nil {
		panic(err)
	}
	out := Fig13Method{Method: method, Matrix: m, Units: units}
	out.Significant = m.SignificantCount(alpha)

	// Ground truth 1: the master (host 0) egress port.
	masterIdx := -1
	masterHost := net.Topo().Host(0)
	for i, u := range units {
		if u.Node == masterHost.Node && u.Port == masterHost.Port {
			masterIdx = i
		}
	}
	out.MasterPortClean = true
	for _, r := range m.Results {
		if (r.I == masterIdx || r.J == masterIdx) && r.Significant(alpha) {
			out.MasterPortClean = false
		}
	}

	// Ground truth 2: same-leaf uplink pairs.
	for _, leaf := range ls.Leaves {
		ports := ls.UplinkPorts(leaf)
		for a := 0; a < len(ports); a++ {
			for b := a + 1; b < len(ports); b++ {
				ia := idxOf(units, dataplane.UnitID{Node: leaf, Port: ports[a], Dir: dataplane.Egress})
				ib := idxOf(units, dataplane.UnitID{Node: leaf, Port: ports[b], Dir: dataplane.Egress})
				out.ECMPPairsTotal++
				rho, p := m.Rho[ia][ib], m.P[ia][ib]
				if p < alpha && rho > 0 {
					out.ECMPPairsPositive++
				}
				if p < alpha && rho < 0 {
					out.ECMPPairsNegative++
				}
			}
		}
	}
	return out
}

func idxOf(units []dataplane.UnitID, u dataplane.UnitID) int {
	for i, v := range units {
		if v == u {
			return i
		}
	}
	panic("unit not in series")
}

// Table renders the comparison in the paper's terms.
func (r *Fig13Result) Table() *Table {
	t := &Table{
		Title:  "Figure 13: pairwise egress-port correlations under GraphX",
		Header: []string{"Metric", "Snapshots", "Polling"},
	}
	row := func(name string, f func(Fig13Method) string) {
		t.Rows = append(t.Rows, []string{name, f(r.Snapshot), f(r.Polling)})
	}
	row("significant pairs (p < alpha)", func(m Fig13Method) string {
		return fmt.Sprintf("%d", m.Significant)
	})
	row("master port uncorrelated (truth)", func(m Fig13Method) string {
		return fmt.Sprintf("%v", m.MasterPortClean)
	})
	row("ECMP uplink pairs positive", func(m Fig13Method) string {
		return fmt.Sprintf("%d/%d", m.ECMPPairsPositive, m.ECMPPairsTotal)
	})
	row("ECMP uplink pairs negative (wrong)", func(m Fig13Method) string {
		return fmt.Sprintf("%d/%d", m.ECMPPairsNegative, m.ECMPPairsTotal)
	})
	if r.Polling.Significant > 0 {
		gain := float64(r.Snapshot.Significant-r.Polling.Significant) / float64(r.Polling.Significant) * 100
		t.Notes = append(t.Notes, fmt.Sprintf(
			"snapshots found %.0f%% more significant pairs than polling (paper: 43%% more)", gain))
	}
	return t
}
