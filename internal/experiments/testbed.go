package experiments

import (
	"math/rand"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/emunet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// testbedTopo builds the paper's testbed fabric (Figure 8): two leaves
// and two spines carved as four virtual switches, six servers.
func testbedTopo() *topology.LeafSpine {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
		// The testbed pairs 25 GbE server links with 100 GbE fabric
		// links (Section 8).
		HostRateBps:   25e9,
		FabricRateBps: 100e9,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return ls
}

// testbedNet builds an emulated network over the testbed topology.
// shards selects the simulation engine (0/1 serial, >=2 parallel);
// results are byte-identical either way.
func testbedNet(seed int64, shards int, channelState bool, mod func(*emunet.Config)) (*emunet.Network, *topology.LeafSpine) {
	ls := testbedTopo()
	cfg := emunet.Config{
		Topo:         ls.Topology,
		Seed:         seed,
		Shards:       shards,
		MaxID:        256,
		WrapAround:   true,
		ChannelState: channelState,
	}
	if mod != nil {
		mod(&cfg)
	}
	n, err := emunet.New(cfg)
	if err != nil {
		panic(err)
	}
	return n, ls
}

// ewmaMetrics is a metric factory that attaches an EWMA interarrival
// counter (Section 8's primary counter) to every egress unit and a
// packet counter to every ingress unit.
func ewmaMetrics(net *emunet.Network, id dataplane.UnitID) core.Metric {
	if id.Dir == dataplane.Egress {
		// Clock from the unit's own domain: under shards the engine-wide
		// clock lags shard-local virtual time.
		proc := net.Proc(id.Node)
		return counters.NewEWMAInterarrival(func() int64 { return int64(proc.Now()) })
	}
	return &counters.PacketCount{}
}

// flowletFactory builds flowlet balancers with the paper's typical gap.
func flowletFactory(gap sim.Duration) func(topology.NodeID, *rand.Rand) routing.Balancer {
	return func(_ topology.NodeID, r *rand.Rand) routing.Balancer {
		return routing.NewFlowlet(gap, r)
	}
}

// allUnits lists every processing unit in the network, in topology
// order.
func allUnits(n *emunet.Network) []dataplane.UnitID {
	var out []dataplane.UnitID
	for _, sw := range n.Topo().Switches {
		out = append(out, n.Switch(sw.ID).DP.UnitIDs()...)
	}
	return out
}
