package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"speedlight/internal/emunet"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/stats"
	"speedlight/internal/workload"
)

// Fig11Config parameterizes the scale experiment.
type Fig11Config struct {
	// RouterCounts are the simulated network sizes (paper: 10..10000,
	// log-spaced).
	RouterCounts []int
	// PortsPerRouter matches the paper's 64-port routers.
	PortsPerRouter int
	// Trials per network size.
	Trials int
	// CalibrationSnapshots sets how many snapshots the testbed run uses
	// to collect the offset distribution.
	CalibrationSnapshots int
	Seed                 int64
	// Shards selects the simulation engine for the calibration run
	// (0/1 serial, >=2 parallel). Results are identical either way.
	Shards int
}

func (c *Fig11Config) defaults() {
	if len(c.RouterCounts) == 0 {
		c.RouterCounts = []int{10, 32, 100, 316, 1000, 3162, 10000}
	}
	if c.PortsPerRouter == 0 {
		c.PortsPerRouter = 64
	}
	if c.Trials == 0 {
		c.Trials = 50
	}
	if c.CalibrationSnapshots == 0 {
		c.CalibrationSnapshots = 150
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig11Point is the average synchronization at one network size.
type Fig11Point struct {
	Routers   int
	AvgSyncUs float64
}

// Fig11Result holds the scale sweep.
type Fig11Result struct {
	Points []Fig11Point
}

// Fig11 estimates the average whole-network synchronization of
// Speedlight snapshots in large deployments (Section 8.2). Mirroring
// the paper's methodology, the per-unit notification-time offsets
// (clock drift + scheduling + initiation-to-execution latency) are
// collected from the emulated testbed, and larger networks are
// simulated by drawing per-unit offsets from that empirical
// distribution: the synchronization of a snapshot is the range of
// offsets across all routers and ports.
//
// A shifted lognormal is fitted to the collected offsets by moment
// matching: the growth of synchronization with network size comes from
// the distribution's tail, which a bounded raw-resampling scheme would
// clip. The max/min of k i.i.d. draws is then sampled exactly through
// the inverse CDF (max = Q(U^(1/k))), so 10,000-router networks cost
// the same as 10-router ones.
func Fig11(cfg Fig11Config) *Fig11Result {
	cfg.defaults()
	offsets := collectTestbedOffsets(cfg)
	shift, mu, sigma := fitShiftedLogNormal(offsets)
	quantile := func(q float64) float64 {
		return shift + math.Exp(mu+sigma*stats.QNorm(q))
	}
	r := rand.New(rand.NewSource(cfg.Seed + 7))

	res := &Fig11Result{}
	for _, routers := range cfg.RouterCounts {
		k := float64(routers * cfg.PortsPerRouter * 2) // ingress+egress units
		var sum float64
		for t := 0; t < cfg.Trials; t++ {
			hi := quantile(math.Pow(r.Float64(), 1/k))
			lo := quantile(1 - math.Pow(r.Float64(), 1/k))
			sum += (hi - lo) / 1000 // ns -> us
		}
		res.Points = append(res.Points, Fig11Point{
			Routers:   routers,
			AvgSyncUs: sum / float64(cfg.Trials),
		})
	}
	return res
}

// fitShiftedLogNormal fits offset ~ shift + LogNormal(mu, sigma) by
// moment matching on the positive part.
func fitShiftedLogNormal(samples []float64) (shift, mu, sigma float64) {
	shift = stats.Min(samples) - 500 // leave 0.5 µs of support below the observed min
	var pos []float64
	for _, s := range samples {
		pos = append(pos, s-shift)
	}
	m := stats.Mean(pos)
	v := stats.Variance(pos)
	sigma2 := math.Log(1 + v/(m*m))
	return shift, math.Log(m) - sigma2/2, math.Sqrt(sigma2)
}

// collectTestbedOffsets runs snapshots on the emulated testbed and
// returns, for every progress notification, its offset in nanoseconds
// from the snapshot's scheduled initiation deadline.
func collectTestbedOffsets(cfg Fig11Config) []float64 {
	deadlines := map[packet.SeqID]sim.Time{}
	type rec struct {
		id packet.SeqID
		at sim.Time
	}
	var (
		recsMu sync.Mutex // OnProgress fires concurrently under shards
		recs   []rec
	)
	n, _ := testbedNet(cfg.Seed, cfg.Shards, false, func(c *emunet.Config) {
		c.OnProgress = func(id packet.SeqID, at sim.Time) {
			recsMu.Lock()
			recs = append(recs, rec{id, at})
			recsMu.Unlock()
		}
	})
	bg := &workload.Uniform{Net: n, Hosts: hostIDs(n), Interval: 2 * sim.Microsecond}
	bg.Start()
	n.RunFor(2 * sim.Millisecond)

	const gap = 2 * sim.Millisecond
	for i := 0; i < cfg.CalibrationSnapshots; i++ {
		n.Engine().After(gap, func() {
			deadline := n.Engine().Now().Add(sim.Millisecond)
			if id, err := n.ScheduleSnapshot(deadline); err == nil {
				deadlines[id] = deadline
			}
		})
		n.RunFor(gap)
	}
	n.RunFor(20 * sim.Millisecond)

	// Under shards, OnProgress arrival order depends on goroutine
	// interleaving; sorting by (id, at) restores a deterministic
	// summation order (ties carry identical offset values).
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].id != recs[b].id {
			return recs[a].id < recs[b].id
		}
		return recs[a].at < recs[b].at
	})
	var offsets []float64
	for _, r := range recs {
		if deadline, ok := deadlines[r.id]; ok {
			offsets = append(offsets, float64(r.at.Sub(deadline)))
		}
	}
	if len(offsets) == 0 {
		panic("experiments: calibration produced no offsets")
	}
	return offsets
}

// Figure renders the sweep in the paper's form.
func (r *Fig11Result) Figure() *Figure {
	f := &Figure{
		Title:  "Figure 11: average synchronization in larger deployments (64-port routers)",
		XLabel: "number of routers",
		YLabel: "synchronization (us)",
	}
	s := Series{Name: "average synchronization"}
	for _, p := range r.Points {
		s.Points = append(s.Points, Point{X: float64(p.Routers), Y: p.AvgSyncUs})
	}
	f.Series = append(f.Series, s)
	last := r.Points[len(r.Points)-1]
	f.Notes = append(f.Notes, fmt.Sprintf(
		"sync at %d routers: %.1f us (paper: grows asymptotically, stays under ~100 us / typical RTTs)",
		last.Routers, last.AvgSyncUs))
	return f
}
