// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 8) on the emulated substrate:
//
//	Table 1  — data-plane resource usage of the three variants
//	Figure 9 — synchronization CDFs: snapshots vs. counter polling
//	Figure 10 — max sustained snapshot rate vs. ports per router
//	Figure 11 — synchronization vs. network size (Monte Carlo over
//	            distributions collected from the emulated testbed,
//	            mirroring the paper's own methodology)
//	Figure 12 — load-balance standard deviation CDFs for Hadoop,
//	            GraphX and memcache under ECMP and flowlet switching,
//	            measured with snapshots and with polling
//	Figure 13 — pairwise Spearman correlation of egress ports under
//	            GraphX, snapshots vs. polling
//
// Each experiment is a plain function returning a printable result;
// cmd/experiments and the repository benchmarks drive them. Absolute
// numbers depend on the calibrated delay distributions, but the shapes
// the paper reports are reproduced: the microsecond-vs-millisecond gap
// between snapshots and polling, the channel-state variant's longer
// tail, snapshot rate falling inversely with port count, sub-RTT
// synchronization even for 10,000 routers, flowlet switching's better
// balance (and polling's inability to bound its own error), and
// snapshots finding strictly more significant correlations.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable table of results.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Point is one (x, y) coordinate of a plotted series.
type Point struct {
	X, Y float64
}

// Series is one plotted line.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a printable figure: one or more series plus summary notes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Fprint renders the figure as aligned data series.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	fmt.Fprintf(w, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "-- series %q (%d points)\n", s.Name, len(s.Points))
		for _, p := range s.Points {
			fmt.Fprintf(w, "%12.4g  %12.4g\n", p.X, p.Y)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
