package epochtrace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"speedlight/internal/packet"
)

// epochSummary is the one-line listing served when no epoch is named.
type epochSummary struct {
	Epoch          packet.SeqID `json:"epoch"`
	BeginNs        int64        `json:"begin_ns"`
	DurationNs     int64        `json:"duration_ns"`
	SpreadNs       int64        `json:"spread_ns"`
	Consistent     bool         `json:"consistent"`
	Excluded       int          `json:"excluded"`
	CriticalSwitch int          `json:"critical_switch"`
	TopStage       string       `json:"top_stage"`
	TopStageNs     int64        `json:"top_stage_ns"`
}

// HTTPHandler serves epoch traces reconstructed from src. Mounted at
// both /trace/epoch and /trace/critical:
//
//	/trace/epoch            epoch summaries (JSON array)
//	/trace/epoch?n=N        epoch N's full span tree
//	/trace/epoch?n=N&format=chrome   Chrome trace-event JSON for epoch N
//	/trace/epoch?format=chrome       Chrome trace-event JSON, all epochs
//	/trace/epoch?format=jsonl        full traces as JSON Lines
//	/trace/critical         critical-path rollup across all epochs
//
// blocking, when non-nil, supplies the sharded engine's per-pair stall
// attribution and is folded into the /trace/critical rollup as its
// "blocking" field (see ShardBlocking); serial engines and offline
// replays pass nil and the field is simply omitted.
//
// A nil src yields 503 on every request, matching the mux's
// not-attached convention.
func HTTPHandler(src func() []*EpochTrace, blocking func() []ShardBlocking) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if src == nil {
			http.Error(w, "epoch tracer not attached", http.StatusServiceUnavailable)
			return
		}
		traces := src()
		if strings.HasSuffix(r.URL.Path, "/critical") {
			roll := NewRollup(traces)
			if blocking != nil {
				roll.Blocking = blocking()
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(roll); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		format := r.URL.Query().Get("format")
		if ns := r.URL.Query().Get("n"); ns != "" {
			n, err := strconv.ParseUint(ns, 10, 64)
			if err != nil {
				http.Error(w, "bad epoch number: "+err.Error(), http.StatusBadRequest)
				return
			}
			t := ByID(traces, packet.SeqID(n))
			if t == nil {
				http.Error(w, "epoch not traced", http.StatusNotFound)
				return
			}
			traces = []*EpochTrace{t}
			if format == "" {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				if err := enc.Encode(t); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
				return
			}
		}
		switch format {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := WriteJSONL(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "":
			sums := make([]epochSummary, 0, len(traces))
			for _, t := range traces {
				s := epochSummary{
					Epoch: t.ID, BeginNs: t.BeginNs, DurationNs: t.DurationNs(),
					SpreadNs: t.SpreadNs, Consistent: t.Consistent,
					Excluded: t.Excluded, CriticalSwitch: t.CriticalUnit.Switch,
				}
				for _, seg := range t.Critical {
					if d := seg.DurationNs(); d > s.TopStageNs {
						s.TopStageNs, s.TopStage = d, seg.Stage
					}
				}
				sums = append(sums, s)
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sums); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format "+format, http.StatusBadRequest)
		}
	})
}
