// Package epochtrace reconstructs each snapshot epoch's causal history
// from the total-ordered journal: the propagation wavefront (when the
// initiation first touched every switch, when every unit recorded, how
// channel state balanced), the notification pipeline (enqueue, queue
// wait, control-plane service), and the observer's assembly of the
// global cut. On top of the reconstruction it computes the epoch's
// critical path — the slowest causal chain that determined completion
// latency — segmented so the spans partition [ObsBegin, ObsComplete]
// exactly and their durations sum to the measured completion latency.
//
// The tracer is strictly post-hoc: it consumes journal events that the
// protocol already emits and adds no instrumentation to any hot path.
// Because the journal's total order is byte-identical across serial and
// sharded runs, the reconstruction is too.
package epochtrace

import (
	"sort"

	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

// Critical-path stage names, in causal order. Every epoch's critical
// chain carries exactly one segment per stage; a stage the chain did
// not pass through (e.g. a notification recovered by polling) appears
// with zero duration so the partition of [begin, end] stays exact.
const (
	// StageInitiation is ObsBegin → the initiation reaching the
	// critical switch's control plane (scheduling lead + command fabric).
	StageInitiation = "initiation"
	// StageWavefront is initiation → the critical unit recording
	// (marker/packet propagation and local recording).
	StageWavefront = "wavefront"
	// StageNotifEnqueue is record → the CPU notification being exported
	// by the dataplane (coalescing and queue admission).
	StageNotifEnqueue = "notif_enqueue"
	// StageCPQueue is notification export → the control plane dequeuing
	// it (DMA latency plus queue wait behind earlier notifications).
	StageCPQueue = "cp_queue"
	// StageCPService is dequeue → the unit's Result being emitted
	// upstream (control-plane servicing).
	StageCPService = "cp_service"
	// StageObserverWire is Result emission → the observer accepting it
	// (collection network).
	StageObserverWire = "observer_wire"
	// StageFinalize is the last accepted result → ObsComplete
	// (observer-side assembly, retry and exclusion timers).
	StageFinalize = "finalize"
)

// Stages lists the critical-path stages in causal order.
var Stages = []string{
	StageInitiation, StageWavefront, StageNotifEnqueue,
	StageCPQueue, StageCPService, StageObserverWire, StageFinalize,
}

// UnitRef names a processing unit. Switch is journal.ObserverNode for
// observer-side attribution.
type UnitRef struct {
	Switch int         `json:"switch"`
	Port   int         `json:"port"`
	Dir    journal.Dir `json:"dir"`
}

// Segment is one span of an epoch's critical path. Segments are
// contiguous: each FromNs equals the previous segment's ToNs, the first
// starts at the epoch's BeginNs and the last ends at EndNs.
type Segment struct {
	Stage string `json:"stage"`
	// Switch is the device the time is attributed to
	// (journal.ObserverNode for observer-side stages).
	Switch int `json:"switch"`
	// Port/Dir name the unit for unit-scoped stages (-1/none otherwise).
	Port int         `json:"port"`
	Dir  journal.Dir `json:"dir"`
	// Channel is the inbound channel that delivered the recording
	// trigger for the wavefront stage (-1 otherwise).
	Channel int   `json:"channel"`
	FromNs  int64 `json:"from_ns"`
	ToNs    int64 `json:"to_ns"`
}

// DurationNs is the segment's span length.
func (s Segment) DurationNs() int64 { return s.ToNs - s.FromNs }

// SwitchTrace is one switch's slice of an epoch's wavefront.
type SwitchTrace struct {
	Switch int `json:"switch"`
	// FirstTouchNs is the earliest moment the epoch reached the switch
	// (initiation, marker arrival, or first record); -1 if it never did.
	FirstTouchNs int64 `json:"first_touch_ns"`
	// InitiateNs is when the initiation command reached the control
	// plane (-1 if the wavefront arrived only by neighbor-cast).
	InitiateNs    int64 `json:"initiate_ns"`
	FirstRecordNs int64 `json:"first_record_ns"`
	LastRecordNs  int64 `json:"last_record_ns"`
	Records       int   `json:"records"`
	Markers       int   `json:"markers"`
	Absorbs       int   `json:"absorbs"`
	AbsorbMisses  int   `json:"absorb_misses"`
	NotifsGen     int   `json:"notifs_generated"`
	NotifsSvc     int   `json:"notifs_serviced"`
	NotifsDropped int   `json:"notifs_dropped"`
	// CPQueueNs sums, over this switch's units, the wait between a
	// notification's export and its control-plane dequeue.
	CPQueueNs int64 `json:"cp_queue_ns"`
	// CPServiceNs sums the dequeue → Result emission time.
	CPServiceNs   int64 `json:"cp_service_ns"`
	FirstResultNs int64 `json:"first_result_ns"`
	LastResultNs  int64 `json:"last_result_ns"`
	Results       int   `json:"results"`
	// LastObsNs is the observer's last accepted result from this switch.
	LastObsNs int64 `json:"last_obs_ns"`
	Retries   int   `json:"retries"`
	Excluded  bool  `json:"excluded"`
}

// EpochTrace is one epoch's reconstructed causal history.
type EpochTrace struct {
	ID         packet.SeqID `json:"epoch"`
	BeginNs    int64        `json:"begin_ns"`
	EndNs      int64        `json:"end_ns"`
	Consistent bool         `json:"consistent"`
	Excluded   int          `json:"excluded"`
	Retries    int          `json:"retries"`
	// SpreadNs is the recording wavefront's spread — last record minus
	// first record across all units (the paper's sync-spread figure).
	SpreadNs int64 `json:"spread_ns"`
	// Switches is the per-switch wavefront, ordered by first touch.
	Switches []SwitchTrace `json:"switches"`
	// CriticalUnit is the unit whose result completed the cut last
	// ({-1,-1,none} when the epoch closed with no accepted results).
	CriticalUnit UnitRef `json:"critical_unit"`
	// Critical is the slowest causal chain, partitioning [begin, end].
	Critical []Segment `json:"critical"`
}

// DurationNs is the epoch's completion latency.
func (t *EpochTrace) DurationNs() int64 { return t.EndNs - t.BeginNs }

// CriticalSumNs sums the critical segments; by construction it equals
// DurationNs.
func (t *EpochTrace) CriticalSumNs() int64 {
	var sum int64
	for _, s := range t.Critical {
		sum += s.DurationNs()
	}
	return sum
}

// unitTimes collects the causal chain timestamps of one unit within one
// epoch; -1 marks an event the journal did not record.
type unitTimes struct {
	record  int64
	channel int
	gen     int64
	svc     int64
	result  int64
	obs     int64
}

// builder accumulates one epoch's events between ObsBegin and
// ObsComplete.
type builder struct {
	id       packet.SeqID
	begin    int64
	switches map[int]*SwitchTrace
	units    map[UnitRef]*unitTimes
	retries  int
}

func newBuilder(id packet.SeqID, begin int64) *builder {
	return &builder{
		id:       id,
		begin:    begin,
		switches: make(map[int]*SwitchTrace),
		units:    make(map[UnitRef]*unitTimes),
	}
}

func (b *builder) sw(node int) *SwitchTrace {
	st, ok := b.switches[node]
	if !ok {
		st = &SwitchTrace{
			Switch: node, FirstTouchNs: -1, InitiateNs: -1,
			FirstRecordNs: -1, LastRecordNs: -1,
			FirstResultNs: -1, LastResultNs: -1, LastObsNs: -1,
		}
		b.switches[node] = st
	}
	return st
}

func (b *builder) unit(sw, port int, dir journal.Dir) *unitTimes {
	ref := UnitRef{Switch: sw, Port: port, Dir: dir}
	ut, ok := b.units[ref]
	if !ok {
		ut = &unitTimes{record: -1, channel: -1, gen: -1, svc: -1, result: -1, obs: -1}
		b.units[ref] = ut
	}
	return ut
}

func touch(st *SwitchTrace, at int64) {
	if st.FirstTouchNs < 0 || at < st.FirstTouchNs {
		st.FirstTouchNs = at
	}
}

func (b *builder) add(ev journal.Event) {
	switch ev.Kind {
	case journal.KindInitiate:
		st := b.sw(ev.Switch)
		if st.InitiateNs < 0 {
			st.InitiateNs = ev.AtNs
		}
		touch(st, ev.AtNs)
	case journal.KindRecord:
		st := b.sw(ev.Switch)
		st.Records++
		if st.FirstRecordNs < 0 {
			st.FirstRecordNs = ev.AtNs
		}
		st.LastRecordNs = ev.AtNs
		touch(st, ev.AtNs)
		ut := b.unit(ev.Switch, ev.Port, ev.Dir)
		if ut.record < 0 {
			ut.record = ev.AtNs
			ut.channel = ev.Channel
		}
	case journal.KindMarkerRecv:
		st := b.sw(ev.Switch)
		st.Markers++
		touch(st, ev.AtNs)
	case journal.KindAbsorb:
		b.sw(ev.Switch).Absorbs++
	case journal.KindAbsorbMiss:
		b.sw(ev.Switch).AbsorbMisses++
	case journal.KindNotifGen:
		b.sw(ev.Switch).NotifsGen++
		ut := b.unit(ev.Switch, ev.Port, ev.Dir)
		if ut.gen < 0 {
			ut.gen = ev.AtNs
		}
	case journal.KindNotifDrop:
		b.sw(ev.Switch).NotifsDropped++
	case journal.KindNotifService:
		b.sw(ev.Switch).NotifsSvc++
		ut := b.unit(ev.Switch, ev.Port, ev.Dir)
		if ut.svc < 0 {
			ut.svc = ev.AtNs
		}
	case journal.KindResult:
		st := b.sw(ev.Switch)
		st.Results++
		if st.FirstResultNs < 0 {
			st.FirstResultNs = ev.AtNs
		}
		st.LastResultNs = ev.AtNs
		ut := b.unit(ev.Switch, ev.Port, ev.Dir)
		if ut.result < 0 {
			ut.result = ev.AtNs
		}
	case journal.KindObsResult:
		st := b.sw(ev.Switch)
		if ev.AtNs > st.LastObsNs {
			st.LastObsNs = ev.AtNs
		}
		ut := b.unit(ev.Switch, ev.Port, ev.Dir)
		if ut.obs < 0 {
			ut.obs = ev.AtNs
		}
	case journal.KindObsRetry:
		b.retries++
		b.sw(ev.Switch).Retries++
	case journal.KindObsExclude:
		b.sw(ev.Switch).Excluded = true
	}
}

// finish seals the builder into an EpochTrace at the ObsComplete event.
func (b *builder) finish(ev journal.Event) *EpochTrace {
	t := &EpochTrace{
		ID:         b.id,
		BeginNs:    b.begin,
		EndNs:      ev.AtNs,
		Consistent: ev.Flag,
		Excluded:   int(ev.Value),
		Retries:    b.retries,
	}

	// Fold per-unit queue/service waits into their switch buckets.
	for ref, ut := range b.units {
		st := b.sw(ref.Switch)
		if ut.gen >= 0 && ut.svc >= ut.gen {
			st.CPQueueNs += ut.svc - ut.gen
		}
		if ut.svc >= 0 && ut.result >= ut.svc {
			st.CPServiceNs += ut.result - ut.svc
		}
	}

	// Wavefront spread across all records.
	firstRec, lastRec := int64(-1), int64(-1)
	for _, st := range b.switches {
		if st.FirstRecordNs >= 0 && (firstRec < 0 || st.FirstRecordNs < firstRec) {
			firstRec = st.FirstRecordNs
		}
		if st.LastRecordNs > lastRec {
			lastRec = st.LastRecordNs
		}
	}
	if firstRec >= 0 {
		t.SpreadNs = lastRec - firstRec
	}

	for _, st := range b.switches {
		t.Switches = append(t.Switches, *st)
	}
	sort.Slice(t.Switches, func(i, j int) bool {
		a, c := t.Switches[i], t.Switches[j]
		af, cf := a.FirstTouchNs, c.FirstTouchNs
		if af < 0 {
			af = int64(^uint64(0) >> 1)
		}
		if cf < 0 {
			cf = int64(^uint64(0) >> 1)
		}
		if af != cf {
			return af < cf
		}
		return a.Switch < c.Switch
	})

	t.CriticalUnit, t.Critical = b.critical(t)
	return t
}

// Build reconstructs the trace of every epoch that both opened and
// completed within the journal, ordered by epoch ID. The journal's
// deterministic total order makes the output deterministic too.
func Build(events []journal.Event) []*EpochTrace {
	open := make(map[packet.SeqID]*builder)
	var done []*EpochTrace
	for _, ev := range events {
		switch ev.Kind {
		case journal.KindObsBegin:
			open[ev.SnapshotID] = newBuilder(ev.SnapshotID, ev.AtNs)
		case journal.KindObsComplete:
			if b, ok := open[ev.SnapshotID]; ok {
				done = append(done, b.finish(ev))
				delete(open, ev.SnapshotID)
			}
		default:
			if b, ok := open[ev.SnapshotID]; ok {
				b.add(ev)
			}
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	return done
}

// ByID returns the trace for epoch n, or nil.
func ByID(traces []*EpochTrace, n packet.SeqID) *EpochTrace {
	for _, t := range traces {
		if t.ID == n {
			return t
		}
	}
	return nil
}
