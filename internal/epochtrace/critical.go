package epochtrace

import (
	"sort"

	"speedlight/internal/journal"
	"speedlight/internal/packet"
)

// critical computes the epoch's critical path: the causal chain through
// the unit whose result completed the cut last. The chain's points are
// clamped monotone and missing points collapse onto their predecessor,
// so the seven segments always partition [BeginNs, EndNs] exactly —
// their durations sum to the completion latency by construction.
func (b *builder) critical(t *EpochTrace) (UnitRef, []Segment) {
	// The critical unit is the argmax of observer-accepted result times;
	// ties break toward the lowest (switch, port, dir) so the choice is
	// independent of map iteration order.
	crit := UnitRef{Switch: journal.ObserverNode, Port: -1, Dir: journal.DirNone}
	var cu *unitTimes
	for ref, ut := range b.units {
		if ut.obs < 0 {
			continue
		}
		if cu == nil || ut.obs > cu.obs || (ut.obs == cu.obs && lessUnit(ref, crit)) {
			crit, cu = ref, ut
		}
	}

	// Causal chain points, -1 where the journal has no event.
	init, rec, gen, svc, res, obs := int64(-1), int64(-1), int64(-1), int64(-1), int64(-1), int64(-1)
	channel := -1
	if cu != nil {
		if st, ok := b.switches[crit.Switch]; ok {
			init = st.InitiateNs
		}
		rec, channel = cu.record, cu.channel
		gen, svc, res, obs = cu.gen, cu.svc, cu.result, cu.obs
	}

	points := [8]int64{t.BeginNs, init, rec, gen, svc, res, obs, t.EndNs}
	for i := 1; i < len(points); i++ {
		if points[i] < points[i-1] {
			points[i] = points[i-1]
		}
	}

	obsRef := UnitRef{Switch: journal.ObserverNode, Port: -1, Dir: journal.DirNone}
	swRef := UnitRef{Switch: crit.Switch, Port: -1, Dir: journal.DirNone}
	if cu == nil {
		swRef = obsRef
	}
	specs := [7]struct {
		stage   string
		ref     UnitRef
		channel int
	}{
		{StageInitiation, obsRef, -1},
		{StageWavefront, crit, channel},
		{StageNotifEnqueue, crit, -1},
		{StageCPQueue, swRef, -1},
		{StageCPService, swRef, -1},
		{StageObserverWire, crit, -1},
		{StageFinalize, obsRef, -1},
	}
	segs := make([]Segment, 0, len(specs))
	for i, sp := range specs {
		segs = append(segs, Segment{
			Stage:   sp.stage,
			Switch:  sp.ref.Switch,
			Port:    sp.ref.Port,
			Dir:     sp.ref.Dir,
			Channel: sp.channel,
			FromNs:  points[i],
			ToNs:    points[i+1],
		})
	}
	return crit, segs
}

func lessUnit(a, b UnitRef) bool {
	if a.Switch != b.Switch {
		return a.Switch < b.Switch
	}
	if a.Port != b.Port {
		return a.Port < b.Port
	}
	return a.Dir < b.Dir
}

// StageTotal aggregates one critical-path stage across epochs.
type StageTotal struct {
	Stage   string `json:"stage"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// SwitchTotal aggregates critical-path time attributed to one switch,
// broken down by stage.
type SwitchTotal struct {
	Switch int `json:"switch"`
	// Epochs counts epochs whose critical path ran through the switch.
	Epochs      int   `json:"epochs"`
	TotalNs     int64 `json:"total_ns"`
	WavefrontNs int64 `json:"wavefront_ns"`
	NotifNs     int64 `json:"notif_enqueue_ns"`
	CPQueueNs   int64 `json:"cp_queue_ns"`
	CPServiceNs int64 `json:"cp_service_ns"`
	WireNs      int64 `json:"observer_wire_ns"`
}

// LinkTotal aggregates critical wavefront time by the inbound channel
// that delivered the recording trigger.
type LinkTotal struct {
	Switch  int   `json:"switch"`
	Channel int   `json:"channel"`
	Epochs  int   `json:"epochs"`
	TotalNs int64 `json:"total_ns"`
}

// QueueTotal aggregates critical control-plane queue wait by switch.
type QueueTotal struct {
	Switch  int   `json:"switch"`
	Epochs  int   `json:"epochs"`
	TotalNs int64 `json:"total_ns"`
}

// ShardBlocking is one directed waiter→holdup pair of the sharded
// engine's stall attribution: wall time the waiter shard spent unable
// to advance because the holdup shard's published clock bounded it.
// It is runtime (wall-clock) accounting, not virtual-time causality —
// the complement of the stage breakdown above: stages say where epoch
// latency goes inside the protocol, blocking says which shard pair
// gates the engine that executes it.
type ShardBlocking struct {
	Waiter int   `json:"waiter"`
	Holdup int   `json:"holdup"`
	WaitNs int64 `json:"wait_ns"`
}

// Rollup aggregates critical-path attribution across epochs: where
// completion latency is spent by stage, and which switches, links and
// control-plane queues carry it.
type Rollup struct {
	Epochs       int          `json:"epochs"`
	Consistent   int          `json:"consistent"`
	TotalNs      int64        `json:"total_ns"`
	MeanNs       int64        `json:"mean_ns"`
	MaxNs        int64        `json:"max_ns"`
	MaxEpoch     packet.SeqID `json:"max_epoch"`
	MaxSpreadNs  int64        `json:"max_spread_ns"`
	MeanSpreadNs int64        `json:"mean_spread_ns"`
	// Stages follows the causal stage order.
	Stages []StageTotal `json:"stages"`
	// Switches/Links/Queues are sorted by descending total time.
	Switches []SwitchTotal `json:"switches"`
	Links    []LinkTotal   `json:"links"`
	Queues   []QueueTotal  `json:"queues"`
	// Blocking is the sharded engine's per-pair stall attribution,
	// most blocking pair first. Traces alone cannot produce it (it is
	// wall-clock engine accounting, not journal causality), so
	// NewRollup leaves it empty and the owner of the engine fills it
	// in — see emunet.Network.BlockedProfile.
	Blocking []ShardBlocking `json:"blocking,omitempty"`
}

// NewRollup aggregates traces into a critical-path rollup.
func NewRollup(traces []*EpochTrace) *Rollup {
	r := &Rollup{}
	stageIdx := make(map[string]int, len(Stages))
	for i, s := range Stages {
		stageIdx[s] = i
		r.Stages = append(r.Stages, StageTotal{Stage: s})
	}
	switches := make(map[int]*SwitchTotal)
	links := make(map[[2]int]*LinkTotal)
	queues := make(map[int]*QueueTotal)
	var spreadSum int64
	for _, t := range traces {
		r.Epochs++
		if t.Consistent {
			r.Consistent++
		}
		d := t.DurationNs()
		r.TotalNs += d
		if d > r.MaxNs {
			r.MaxNs, r.MaxEpoch = d, t.ID
		}
		spreadSum += t.SpreadNs
		if t.SpreadNs > r.MaxSpreadNs {
			r.MaxSpreadNs = t.SpreadNs
		}
		seen := make(map[int]bool)
		for _, seg := range t.Critical {
			dur := seg.DurationNs()
			st := &r.Stages[stageIdx[seg.Stage]]
			st.TotalNs += dur
			if dur > st.MaxNs {
				st.MaxNs = dur
			}
			if seg.Switch == journal.ObserverNode {
				continue
			}
			sw, ok := switches[seg.Switch]
			if !ok {
				sw = &SwitchTotal{Switch: seg.Switch}
				switches[seg.Switch] = sw
			}
			if !seen[seg.Switch] {
				seen[seg.Switch] = true
				sw.Epochs++
			}
			sw.TotalNs += dur
			switch seg.Stage {
			case StageWavefront:
				sw.WavefrontNs += dur
				if seg.Channel >= 0 {
					key := [2]int{seg.Switch, seg.Channel}
					l, ok := links[key]
					if !ok {
						l = &LinkTotal{Switch: seg.Switch, Channel: seg.Channel}
						links[key] = l
					}
					l.Epochs++
					l.TotalNs += dur
				}
			case StageNotifEnqueue:
				sw.NotifNs += dur
			case StageCPQueue:
				sw.CPQueueNs += dur
				q, ok := queues[seg.Switch]
				if !ok {
					q = &QueueTotal{Switch: seg.Switch}
					queues[seg.Switch] = q
				}
				q.Epochs++
				q.TotalNs += dur
			case StageCPService:
				sw.CPServiceNs += dur
			case StageObserverWire:
				sw.WireNs += dur
			}
		}
	}
	if r.Epochs > 0 {
		r.MeanNs = r.TotalNs / int64(r.Epochs)
		r.MeanSpreadNs = spreadSum / int64(r.Epochs)
	}
	for _, sw := range switches {
		r.Switches = append(r.Switches, *sw)
	}
	sort.Slice(r.Switches, func(i, j int) bool {
		a, b := r.Switches[i], r.Switches[j]
		if a.TotalNs != b.TotalNs {
			return a.TotalNs > b.TotalNs
		}
		return a.Switch < b.Switch
	})
	for _, l := range links {
		r.Links = append(r.Links, *l)
	}
	sort.Slice(r.Links, func(i, j int) bool {
		a, b := r.Links[i], r.Links[j]
		if a.TotalNs != b.TotalNs {
			return a.TotalNs > b.TotalNs
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		return a.Channel < b.Channel
	})
	for _, q := range queues {
		r.Queues = append(r.Queues, *q)
	}
	sort.Slice(r.Queues, func(i, j int) bool {
		a, b := r.Queues[i], r.Queues[j]
		if a.TotalNs != b.TotalNs {
			return a.TotalNs > b.TotalNs
		}
		return a.Switch < b.Switch
	})
	return r
}

// Top returns the k switches carrying the most critical-path time.
func (r *Rollup) Top(k int) []SwitchTotal {
	if k > len(r.Switches) {
		k = len(r.Switches)
	}
	return r.Switches[:k]
}
