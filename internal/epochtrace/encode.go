package epochtrace

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteJSONL writes one epoch trace per line — the tracer's native
// interchange format. Structs marshal field-by-field, so the bytes are
// deterministic for a deterministic journal.
func WriteJSONL(w io.Writer, traces []*EpochTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range traces {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL epoch-trace dump.
func ReadJSONL(r io.Reader) ([]*EpochTrace, error) {
	var traces []*EpochTrace
	dec := json.NewDecoder(r)
	for {
		var t EpochTrace
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				return traces, nil
			}
			return nil, err
		}
		traces = append(traces, &t)
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("catapult"
// JSON array flavor), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders traces in the Chrome trace-event format: one
// thread per epoch, one complete ("X") event per critical-path segment,
// plus a whole-epoch span and per-switch wavefront spans, with
// timestamps in microseconds as the format requires.
func WriteChromeTrace(w io.Writer, traces []*EpochTrace) error {
	const pid = 1
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": "speedlight epoch trace"},
	}}
	for _, t := range traces {
		tid := int64(t.ID)
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": "epoch " + itoa(int64(t.ID))},
		})
		events = append(events, chromeEvent{
			Name: "epoch", Cat: "epoch", Ph: "X", PID: pid, TID: tid,
			TS: us(t.BeginNs), Dur: us(t.EndNs - t.BeginNs),
			Args: map[string]any{
				"consistent": t.Consistent,
				"excluded":   t.Excluded,
				"spread_ns":  t.SpreadNs,
			},
		})
		for _, seg := range t.Critical {
			if seg.DurationNs() == 0 {
				continue
			}
			events = append(events, chromeEvent{
				Name: seg.Stage, Cat: "critical", Ph: "X", PID: pid, TID: tid,
				TS: us(seg.FromNs), Dur: us(seg.DurationNs()),
				Args: map[string]any{
					"switch":  seg.Switch,
					"port":    seg.Port,
					"dir":     seg.Dir.String(),
					"channel": seg.Channel,
				},
			})
		}
		for _, st := range t.Switches {
			if st.FirstTouchNs < 0 || st.LastObsNs < st.FirstTouchNs {
				continue
			}
			events = append(events, chromeEvent{
				Name: "switch " + itoa(int64(st.Switch)), Cat: "wavefront",
				Ph: "X", PID: pid, TID: tid,
				TS: us(st.FirstTouchNs), Dur: us(st.LastObsNs - st.FirstTouchNs),
				Args: map[string]any{
					"records":     st.Records,
					"cp_queue_ns": st.CPQueueNs,
					"excluded":    st.Excluded,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// itoa formats without fmt so the exporter stays dependency-light.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
