package epochtrace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"speedlight/internal/journal"
)

// twoSwitchJournal builds a synthetic two-switch campaign: epoch 1
// completes through switch 1 (the straggler), epoch 2 times out with
// switch 1 excluded and no results accepted.
func twoSwitchJournal() []journal.Event {
	return []journal.Event{
		journal.ObsBegin(1000, 1),
		journal.Initiate(2000, 0, 1, false),
		journal.Initiate(2500, 1, 1, false),
		journal.Record(3000, 0, 0, journal.DirIngress, -1, 0, 1, 1),
		journal.NotifGenerated(3200, 0, 0, journal.DirIngress, 1),
		journal.MarkerReceived(3400, 1, 1, 2, 1),
		journal.Record(3500, 1, 1, journal.DirIngress, 2, 0, 1, 1),
		journal.Absorb(3550, 1, 1, journal.DirIngress, 2, 0, 1),
		journal.NotifGenerated(3600, 1, 1, journal.DirIngress, 1),
		journal.NotifService(4000, 0, 0, journal.DirIngress, 1),
		journal.Result(4100, 0, 0, journal.DirIngress, 1, 7, true),
		journal.ObsResult(5000, 0, 0, journal.DirIngress, 1, true),
		journal.NotifService(5600, 1, 1, journal.DirIngress, 1),
		journal.Result(5700, 1, 1, journal.DirIngress, 1, 9, true),
		journal.ObsResult(6500, 1, 1, journal.DirIngress, 1, true),
		journal.ObsComplete(7000, 1, true, 0),

		journal.ObsBegin(10000, 2),
		journal.Initiate(10500, 0, 2, false),
		journal.ObsRetry(12000, 2, 1),
		journal.ObsExclude(15000, 2, 1),
		journal.ObsComplete(20000, 2, false, 1),
	}
}

func TestBuildReconstructsWavefront(t *testing.T) {
	traces := Build(twoSwitchJournal())
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	tr := traces[0]
	if tr.ID != 1 || tr.BeginNs != 1000 || tr.EndNs != 7000 || !tr.Consistent {
		t.Fatalf("epoch 1 header wrong: %+v", tr)
	}
	if tr.SpreadNs != 500 {
		t.Errorf("spread = %d, want 500 (records at 3000 and 3500)", tr.SpreadNs)
	}
	if len(tr.Switches) != 2 {
		t.Fatalf("got %d switches, want 2", len(tr.Switches))
	}
	// Switch 0 touched first (initiate 2000), switch 1 second.
	if tr.Switches[0].Switch != 0 || tr.Switches[1].Switch != 1 {
		t.Fatalf("wavefront order wrong: %+v", tr.Switches)
	}
	s1 := tr.Switches[1]
	if s1.FirstTouchNs != 2500 || s1.Markers != 1 || s1.Records != 1 || s1.Absorbs != 1 {
		t.Errorf("switch 1 wavefront wrong: %+v", s1)
	}
	if s1.CPQueueNs != 2000 || s1.CPServiceNs != 100 {
		t.Errorf("switch 1 cp buckets = %d/%d, want 2000/100", s1.CPQueueNs, s1.CPServiceNs)
	}

	tr2 := traces[1]
	if tr2.ID != 2 || tr2.Consistent || tr2.Excluded != 1 || tr2.Retries != 1 {
		t.Fatalf("epoch 2 header wrong: %+v", tr2)
	}
}

func TestCriticalPathPartitionsEpoch(t *testing.T) {
	traces := Build(twoSwitchJournal())
	tr := traces[0]
	want := UnitRef{Switch: 1, Port: 1, Dir: journal.DirIngress}
	if tr.CriticalUnit != want {
		t.Fatalf("critical unit = %+v, want %+v", tr.CriticalUnit, want)
	}
	wantSegs := []struct {
		stage    string
		from, to int64
	}{
		{StageInitiation, 1000, 2500},
		{StageWavefront, 2500, 3500},
		{StageNotifEnqueue, 3500, 3600},
		{StageCPQueue, 3600, 5600},
		{StageCPService, 5600, 5700},
		{StageObserverWire, 5700, 6500},
		{StageFinalize, 6500, 7000},
	}
	if len(tr.Critical) != len(wantSegs) {
		t.Fatalf("got %d segments, want %d", len(tr.Critical), len(wantSegs))
	}
	for i, w := range wantSegs {
		g := tr.Critical[i]
		if g.Stage != w.stage || g.FromNs != w.from || g.ToNs != w.to {
			t.Errorf("segment %d = %s [%d,%d], want %s [%d,%d]",
				i, g.Stage, g.FromNs, g.ToNs, w.stage, w.from, w.to)
		}
	}
	if got := tr.Critical[1].Channel; got != 2 {
		t.Errorf("wavefront channel = %d, want 2", got)
	}

	// The contiguity invariant: segments sum to completion latency
	// exactly, for every epoch including the degenerate excluded one.
	for _, tr := range traces {
		if tr.CriticalSumNs() != tr.DurationNs() {
			t.Errorf("epoch %d: critical sum %d != duration %d",
				tr.ID, tr.CriticalSumNs(), tr.DurationNs())
		}
	}
	if traces[1].CriticalUnit.Switch != journal.ObserverNode {
		t.Errorf("excluded epoch critical unit = %+v, want observer sentinel",
			traces[1].CriticalUnit)
	}
}

func TestRollupAttributesStraggler(t *testing.T) {
	traces := Build(twoSwitchJournal())
	r := NewRollup(traces)
	if r.Epochs != 2 || r.Consistent != 1 {
		t.Fatalf("rollup header wrong: %+v", r)
	}
	if r.MaxEpoch != 2 || r.MaxNs != 10000 {
		t.Errorf("max epoch = %d (%d ns), want epoch 2 (10000 ns)", r.MaxEpoch, r.MaxNs)
	}
	top := r.Top(1)
	if len(top) != 1 || top[0].Switch != 1 {
		t.Fatalf("top contributor = %+v, want switch 1", top)
	}
	if top[0].CPQueueNs != 2000 || top[0].WavefrontNs != 1000 {
		t.Errorf("switch 1 buckets wrong: %+v", top[0])
	}
	var stageSum int64
	for _, st := range r.Stages {
		stageSum += st.TotalNs
	}
	if stageSum != r.TotalNs {
		t.Errorf("stage totals sum %d != total %d", stageSum, r.TotalNs)
	}
	if len(r.Queues) == 0 || r.Queues[0].Switch != 1 {
		t.Errorf("queue buckets wrong: %+v", r.Queues)
	}
	if len(r.Links) == 0 || r.Links[0].Channel != 2 {
		t.Errorf("link buckets wrong: %+v", r.Links)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(twoSwitchJournal()), Build(twoSwitchJournal())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Build not deterministic across runs")
	}
	var ba, bb bytes.Buffer
	if err := WriteJSONL(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("JSONL serialization not byte-identical")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := Build(twoSwitchJournal())
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in[0], out[0])
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Build(twoSwitchJournal())); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	var criticals int
	for _, ev := range events {
		if ev["cat"] == "critical" {
			criticals++
		}
	}
	if criticals == 0 {
		t.Fatal("no critical-path events in chrome trace")
	}
}

func TestHTTPHandler(t *testing.T) {
	traces := Build(twoSwitchJournal())
	blocking := []ShardBlocking{{Waiter: 1, Holdup: 0, WaitNs: 420}}
	h := HTTPHandler(func() []*EpochTrace { return traces },
		func() []ShardBlocking { return blocking })

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	if rec := get("/trace/epoch"); rec.Code != 200 {
		t.Fatalf("listing: code %d", rec.Code)
	} else {
		var sums []map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &sums); err != nil || len(sums) != 2 {
			t.Fatalf("listing: %v (%d entries)", err, len(sums))
		}
	}
	if rec := get("/trace/epoch?n=1"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"critical"`) {
		t.Fatalf("epoch fetch: code %d body %.80s", rec.Code, rec.Body.String())
	}
	if rec := get("/trace/epoch?n=99"); rec.Code != 404 {
		t.Fatalf("missing epoch: code %d, want 404", rec.Code)
	}
	if rec := get("/trace/epoch?n=bogus"); rec.Code != 400 {
		t.Fatalf("bad epoch: code %d, want 400", rec.Code)
	}
	if rec := get("/trace/epoch?n=1&format=chrome"); rec.Code != 200 ||
		!strings.HasPrefix(rec.Body.String(), "[") {
		t.Fatalf("chrome fetch: code %d", rec.Code)
	}
	if rec := get("/trace/epoch?format=jsonl"); rec.Code != 200 {
		t.Fatalf("jsonl fetch: code %d", rec.Code)
	}
	if rec := get("/trace/critical"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"stages"`) {
		t.Fatalf("critical rollup: code %d body %.80s", rec.Code, rec.Body.String())
	} else {
		var roll Rollup
		if err := json.Unmarshal(rec.Body.Bytes(), &roll); err != nil {
			t.Fatalf("critical rollup decode: %v", err)
		}
		if len(roll.Blocking) != 1 || roll.Blocking[0] != blocking[0] {
			t.Fatalf("critical rollup blocking = %+v, want %+v", roll.Blocking, blocking)
		}
	}

	hNil := HTTPHandler(nil, nil)
	rec := httptest.NewRecorder()
	hNil.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/epoch", nil))
	if rec.Code != 503 {
		t.Fatalf("nil src: code %d, want 503", rec.Code)
	}
}
