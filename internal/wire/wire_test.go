package wire

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func leafSpine(t *testing.T) *topology.LeafSpine {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestMessageCodecs(t *testing.T) {
	// Data.
	p := &packet.Packet{SrcHost: 1, DstHost: 2, Size: 100, HasSnap: true,
		Snap: packet.SnapshotHeader{Type: packet.TypeData, ID: 7, Channel: 3}}
	data := appendData(nil, 12, p)
	if typ, _ := msgTypeOf(data); typ != msgData {
		t.Fatal("data type byte")
	}
	port, got, err := decodeData(data)
	if err != nil || port != 12 || *got != *p {
		t.Fatalf("data round trip: %v %d %+v", err, port, got)
	}

	// Host deliver.
	hd := appendHostDeliver(nil, 42, p)
	host, got2, err := decodeHostDeliver(hd)
	if err != nil || host != 42 || *got2 != *p {
		t.Fatalf("host round trip: %v %d", err, host)
	}

	// Initiate.
	id, err := decodeInitiate(appendInitiate(nil, 987654321))
	if err != nil || id != 987654321 {
		t.Fatalf("initiate round trip: %v %d", err, id)
	}

	// Result.
	res := control.Result{
		Unit:       dataplane.UnitID{Node: 3, Port: 9, Dir: dataplane.Egress},
		SnapshotID: 55, Value: 1 << 40, Consistent: true, ReadAt: 123456789,
	}
	got3, err := decodeResult(appendResult(nil, res))
	if err != nil || got3 != res {
		t.Fatalf("result round trip: %v %+v", err, got3)
	}

	// Poll.
	if typ, _ := msgTypeOf(pollMsg[:]); typ != msgPoll {
		t.Fatal("poll type byte")
	}
}

func TestResultCodecProperty(t *testing.T) {
	f := func(node uint16, port uint8, egress bool, id, value uint64, consistent bool, at int64) bool {
		dir := dataplane.Ingress
		if egress {
			dir = dataplane.Egress
		}
		res := control.Result{
			Unit:       dataplane.UnitID{Node: topology.NodeID(node), Port: int(port), Dir: dir},
			SnapshotID: packet.SeqID(id), Value: value, Consistent: consistent,
			ReadAt: sim.Time(at & (1<<62 - 1)), // keep non-negative: protocol time
		}
		got, err := decodeResult(appendResult(nil, res))
		return err == nil && got == res
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageCodecErrors(t *testing.T) {
	if _, err := msgTypeOf(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := msgTypeOf([]byte{0xEE}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, _, err := decodeData([]byte{msgData, 0}); err == nil {
		t.Error("short data accepted")
	}
	if _, _, err := decodeHostDeliver([]byte{msgHostDeliver}); err == nil {
		t.Error("short host deliver accepted")
	}
	if _, err := decodeInitiate([]byte{msgInitiate}); err == nil {
		t.Error("short initiate accepted")
	}
	if _, err := decodeResult([]byte{msgResult}); err == nil {
		t.Error("short result accepted")
	}
}

func TestDeployValidation(t *testing.T) {
	if _, err := Deploy(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestUDPDelivery(t *testing.T) {
	ls := leafSpine(t)
	var delivered atomic.Int64
	d, err := Deploy(Config{
		Topo:      ls.Topology,
		OnDeliver: func(p *packet.Packet, h topology.HostID) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < 50; i++ {
		if err := d.Inject(0, &packet.Packet{
			DstHost: 3, SrcPort: uint16(i), DstPort: 80, Proto: 6, Size: 200,
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := delivered.Load(); got != 50 {
		t.Errorf("delivered %d of 50 over UDP", got)
	}
}

func TestUDPSnapshot(t *testing.T) {
	ls := leafSpine(t)
	var delivered atomic.Int64
	d, err := Deploy(Config{
		Topo:      ls.Topology,
		OnDeliver: func(*packet.Packet, topology.HostID) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const N = 40
	for i := 0; i < N; i++ {
		d.Inject(1, &packet.Packet{DstHost: 2, SrcPort: 7, DstPort: 80, Proto: 6, Size: 100})
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < N && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != N {
		t.Fatalf("traffic lost: %d/%d", delivered.Load(), N)
	}

	id, done, err := d.TakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		if g.ID != id || !g.Consistent {
			t.Errorf("snapshot id=%d consistent=%v", g.ID, g.Consistent)
		}
		if len(g.Results) != 28 {
			t.Errorf("results = %d", len(g.Results))
		}
		// Host 1 and 2 share leaf 0: the quiesced path counts match.
		in := g.Results[dataplane.UnitID{Node: 0, Port: 1, Dir: dataplane.Ingress}]
		out := g.Results[dataplane.UnitID{Node: 0, Port: 2, Dir: dataplane.Egress}]
		if in.Value != N || out.Value != N {
			t.Errorf("path counts: in=%d out=%d want %d", in.Value, out.Value, N)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot never completed over UDP")
	}
}

func TestUDPSnapshotSequence(t *testing.T) {
	ls := leafSpine(t)
	d, err := Deploy(Config{Topo: ls.Topology, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Continuous concurrent traffic during the sequence.
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d.Inject(0, &packet.Packet{DstHost: 4, SrcPort: uint16(i), Proto: 6, Size: 300})
			time.Sleep(50 * time.Microsecond)
		}
	}()
	defer close(stop)

	var last uint64
	for i := 0; i < 8; i++ {
		_, done, err := d.TakeSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		select {
		case g := <-done:
			v := g.Results[dataplane.UnitID{Node: 0, Port: 0, Dir: dataplane.Ingress}].Value
			if v < last {
				t.Errorf("counter regressed across snapshots: %d -> %d", last, v)
			}
			last = v
		case <-time.After(10 * time.Second):
			t.Fatalf("snapshot %d timed out", i)
		}
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	ls := leafSpine(t)
	d, err := Deploy(Config{Topo: ls.Topology})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // must not panic or hang
}

func TestUDPChannelStateSnapshot(t *testing.T) {
	ls := leafSpine(t)
	var delivered atomic.Int64
	d, err := Deploy(Config{
		Topo:         ls.Topology,
		ChannelState: true,
		RetryEvery:   20 * time.Millisecond,
		OnDeliver:    func(*packet.Packet, topology.HostID) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d.Inject(topology.HostID(i%6), &packet.Packet{
				DstHost: uint32((i + 3) % 6), SrcPort: uint16(i), DstPort: 80, Proto: 6, Size: 300,
			})
			time.Sleep(20 * time.Microsecond)
		}
	}()
	defer close(stop)

	_, done, err := d.TakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		if len(g.Results) != 28 {
			t.Errorf("results = %d", len(g.Results))
		}
		if len(g.Excluded) != 0 {
			t.Errorf("excluded: %v", g.Excluded)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("channel-state snapshot over UDP never completed")
	}
}

func TestUDPRetryRecoversLostInitiation(t *testing.T) {
	// Deploy, then snapshot while one switch's initiation is delayed:
	// the retry loop re-sends initiations and polls until the snapshot
	// assembles. (Simulated by snapshotting with no traffic at all: the
	// first initiation round completes everything; the retry loop's
	// ticks must at minimum do no harm, and Snapshots must report the
	// result.)
	ls := leafSpine(t)
	d, err := Deploy(Config{Topo: ls.Topology, RetryEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_, done, err := d.TakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot timed out")
	}
	// Let several retry ticks fire on the (now empty) pending set.
	time.Sleep(25 * time.Millisecond)
	if got := len(d.Snapshots()); got != 1 {
		t.Errorf("Snapshots() = %d, want 1", got)
	}
}
