package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"speedlight/internal/audit"
	"speedlight/internal/control"
	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/journal"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// maxDatagram bounds received message size.
const maxDatagram = 512

// Config parameterizes a UDP deployment.
type Config struct {
	// Topo is the network topology. Required.
	Topo *topology.Topology

	// Snapshot protocol parameters (defaults: MaxID 256, wraparound on,
	// channel state off).
	MaxID        uint32
	WrapAround   bool
	ChannelState bool

	// Metrics builds each unit's snapshot target; nil defaults to
	// packet counters.
	Metrics func(id dataplane.UnitID) core.Metric

	// RetryEvery drives the observer's recovery loop. Default 50 ms.
	RetryEvery time.Duration

	// OnDeliver observes packets delivered to hosts. Called from the
	// deployment's host-sink goroutine.
	OnDeliver func(pkt *packet.Packet, host topology.HostID)

	// Journal, when set, records every protocol event into per-switch
	// flight-recorder rings. The rings are lock-free and safe for the
	// deployment's concurrent goroutines. Nil disables journaling.
	Journal *journal.Set
	// FlightRecorderSize bounds the tail dumped on anomaly. Default
	// 512.
	FlightRecorderSize int
	// OnAnomaly receives a flight-recorder dump whenever a snapshot
	// finalizes inconsistent or with excluded devices. Called with
	// obsMu held; must not call back into the deployment.
	OnAnomaly func(reason string, snapshotID packet.SeqID, dump []journal.Event)
}

// switchNode is one switch bound to a UDP socket. A single goroutine
// owns the data plane and control plane, preserving unit
// linearizability; the socket provides per-sender FIFO on loopback.
type switchNode struct {
	node topology.NodeID
	dp   *dataplane.Switch
	cp   *control.Plane
	conn *net.UDPConn
	// peers and peerPort map an egress port to the neighbor switch's
	// socket and to its ingress port number there.
	peers    map[int]*net.UDPAddr
	peerPort map[int]int
	hosts    map[int]topology.HostID
	sink     *net.UDPAddr // host deliveries
	obs      *net.UDPAddr

	channelState bool
	started      time.Time
	// scratch is the node's reusable encode buffer. The switch
	// goroutine is the only sender on this connection (results
	// included: OnResult fires inside its handle loop), and every
	// encoded frame is written out before the next encode, so one
	// buffer per node suffices and steady-state sends allocate nothing.
	scratch []byte
}

func (s *switchNode) now() sim.Time {
	return sim.Time(time.Since(s.started).Nanoseconds())
}

// run is the switch's receive loop.
func (s *switchNode) run(wg *sync.WaitGroup) {
	defer wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed: shutdown
		}
		s.handle(buf[:n])
	}
}

func (s *switchNode) handle(data []byte) {
	typ, err := msgTypeOf(data)
	if err != nil {
		return // garbage datagram; a real device would count and drop
	}
	switch typ {
	case msgData:
		port, pkt, err := decodeData(data)
		if err != nil || port < 0 || port >= s.dp.NumPorts() {
			return
		}
		res := s.dp.Ingress(pkt, port, s.now())
		s.drainNotifs()
		if res.Drop {
			return
		}
		s.egress(pkt, res.EgressPort)
	case msgInitiate:
		id, err := decodeInitiate(data)
		if err != nil {
			return
		}
		for _, init := range s.cp.Initiate(id, s.now()) {
			s.egress(init.Pkt, init.Port)
		}
		s.drainNotifs()
		if s.channelState {
			s.injectMarkers()
		}
	case msgPoll:
		s.cp.Poll(s.now())
	}
}

// egress runs egress processing and forwards over the wire.
func (s *switchNode) egress(pkt *packet.Packet, port int) {
	res := s.dp.Egress(pkt, port, s.now())
	s.drainNotifs()
	if res.Drop {
		return
	}
	if peer, ok := s.peers[port]; ok {
		// The neighbor's ingress port is resolved at deployment time
		// and encoded by the sender.
		s.scratch = appendData(s.scratch[:0], s.peerPort[port], pkt)
		s.conn.WriteToUDP(s.scratch, peer)
		return
	}
	if host, ok := s.hosts[port]; ok {
		if res.StripHeader {
			pkt.HasSnap = false
			pkt.Snap = packet.SnapshotHeader{}
		}
		s.scratch = appendHostDeliver(s.scratch[:0], host, pkt)
		s.conn.WriteToUDP(s.scratch, s.sink)
	}
}

// broadcastHost marks marker broadcasts, which die after one wire
// hop's ingress processing (no route exists for them).
const broadcastHost = 0xFFFFFFFF

// injectMarkers floods marker broadcasts across every (port, class)
// FIFO channel and one hop outward — Section 6's liveness mechanism,
// run with every initiation in channel-state mode since UDP deployments
// may have idle channels.
func (s *switchNode) injectMarkers() {
	for port := 0; port < s.dp.NumPorts(); port++ {
		for cos := 0; cos < s.dp.NumCoS(); cos++ {
			m := &packet.Packet{DstHost: broadcastHost, Size: 64, CoS: uint8(cos)}
			s.dp.IngressFromCP(m, port, s.now())
			s.drainNotifs()
			for e := 0; e < s.dp.NumPorts(); e++ {
				s.egress(m.Clone(), e)
			}
		}
	}
}

// drainNotifs feeds data-plane notifications to the control plane.
func (s *switchNode) drainNotifs() {
	for {
		n, ok := s.dp.PopNotif()
		if !ok {
			return
		}
		s.cp.HandleNotification(n, s.now())
	}
}

// Deployment is a running UDP deployment: one socket per switch, one
// observer socket, and one host-sink socket.
type Deployment struct {
	cfg      Config
	topo     *topology.Topology
	switches map[topology.NodeID]*switchNode

	obs      *observer.Observer
	obsMu    sync.Mutex
	obsConn  *net.UDPConn
	obsAddrs map[topology.NodeID]*net.UDPAddr
	subs     map[packet.SeqID]chan *observer.GlobalSnapshot
	done     []*observer.GlobalSnapshot

	sinkConn *net.UDPConn
	hostConn *net.UDPConn // source socket for host injections
	hostTo   map[topology.HostID]struct {
		addr *net.UDPAddr
		port int
	}

	started time.Time
	wg      sync.WaitGroup
	stopped sync.Once
	closeCh chan struct{}
}

// Deploy binds all sockets on loopback and starts the node goroutines.
func Deploy(cfg Config) (*Deployment, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("wire: nil topology")
	}
	if cfg.MaxID == 0 {
		cfg.MaxID = 256
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 50 * time.Millisecond
	}
	fibs, err := routing.ComputeFIBs(cfg.Topo)
	if err != nil {
		return nil, err
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = func(dataplane.UnitID) core.Metric { return &counters.PacketCount{} }
	}

	d := &Deployment{
		cfg:      cfg,
		topo:     cfg.Topo,
		switches: make(map[topology.NodeID]*switchNode),
		obsAddrs: make(map[topology.NodeID]*net.UDPAddr),
		subs:     make(map[packet.SeqID]chan *observer.GlobalSnapshot),
		hostTo: make(map[topology.HostID]struct {
			addr *net.UDPAddr
			port int
		}),
		started: time.Now(),
		closeCh: make(chan struct{}),
	}

	bind := func() (*net.UDPConn, error) {
		return net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	}
	if d.obsConn, err = bind(); err != nil {
		return nil, err
	}
	if d.sinkConn, err = bind(); err != nil {
		d.obsConn.Close()
		return nil, err
	}
	if d.hostConn, err = bind(); err != nil {
		d.obsConn.Close()
		d.sinkConn.Close()
		return nil, err
	}

	if cfg.Journal != nil {
		cfg.Journal.Observer().Append(journal.Config(uint64(cfg.MaxID), cfg.WrapAround, cfg.ChannelState))
	}
	obs, err := observer.New(observer.Config{
		MaxID:      cfg.MaxID,
		WrapAround: cfg.WrapAround,
		RetryAfter: sim.Duration(cfg.RetryEvery.Nanoseconds()),
		Journal:    cfg.Journal.Observer(),
		OnComplete: d.onComplete,
	})
	if err != nil {
		d.closeSockets()
		return nil, err
	}
	d.obs = obs

	// Build and bind every switch.
	for _, spec := range cfg.Topo.Switches {
		sn, err := d.buildSwitch(spec, fibs[spec.ID], metrics)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.switches[spec.ID] = sn
		d.obsAddrs[spec.ID] = sn.conn.LocalAddr().(*net.UDPAddr)
		obs.Register(spec.ID, sn.dp.UnitIDs())
	}
	// Resolve neighbor addresses now that everything is bound.
	for _, spec := range cfg.Topo.Switches {
		sn := d.switches[spec.ID]
		for p, peer := range spec.Ports {
			switch peer.Kind {
			case topology.PeerSwitch:
				sn.peers[p] = d.switches[peer.Node].conn.LocalAddr().(*net.UDPAddr)
				sn.peerPort[p] = peer.Port
			case topology.PeerHost:
				sn.hosts[p] = peer.Host
				d.hostTo[peer.Host] = struct {
					addr *net.UDPAddr
					port int
				}{sn.conn.LocalAddr().(*net.UDPAddr), p}
			}
		}
	}

	// Launch goroutines.
	for _, sn := range d.switches {
		d.wg.Add(1)
		go sn.run(&d.wg)
	}
	d.wg.Add(2)
	go d.runObserver()
	go d.runSink()
	d.wg.Add(1)
	go d.runRetries()
	return d, nil
}

func (d *Deployment) buildSwitch(spec *topology.Switch, fib *routing.FIB,
	metrics func(dataplane.UnitID) core.Metric) (*switchNode, error) {
	edge := map[int]bool{}
	for p, peer := range spec.Ports {
		if peer.Kind == topology.PeerHost {
			edge[p] = true
		}
	}
	dp, err := dataplane.New(dataplane.Config{
		Node:         spec.ID,
		NumPorts:     len(spec.Ports),
		MaxID:        d.cfg.MaxID,
		WrapAround:   d.cfg.WrapAround,
		ChannelState: d.cfg.ChannelState,
		Metrics:      metrics,
		FIB:          fib,
		Balancer:     routing.ECMP{},
		EdgePorts:    edge,
		Journal:      d.cfg.Journal.For(int(spec.ID)),
	})
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	sn := &switchNode{
		node:         spec.ID,
		channelState: d.cfg.ChannelState,
		dp:           dp,
		conn:         conn,
		peers:        make(map[int]*net.UDPAddr),
		peerPort:     make(map[int]int),
		hosts:        make(map[int]topology.HostID),
		sink:         d.sinkConn.LocalAddr().(*net.UDPAddr),
		obs:          d.obsConn.LocalAddr().(*net.UDPAddr),
		started:      d.started,
		scratch:      make([]byte, 0, maxMsgLen),
	}
	cp, err := control.New(control.Config{
		Switch:  dp,
		Journal: d.cfg.Journal.For(int(spec.ID)),
		OnResult: func(res control.Result) {
			// Ship over the wire to the observer. Runs on the switch
			// goroutine (inside handle), so the scratch is free.
			sn.scratch = appendResult(sn.scratch[:0], res)
			sn.conn.WriteToUDP(sn.scratch, sn.obs)
		},
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	sn.cp = cp
	return sn, nil
}

// runObserver receives results on the observer socket.
func (d *Deployment) runObserver() {
	defer d.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := d.obsConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		typ, err := msgTypeOf(buf[:n])
		if err != nil || typ != msgResult {
			continue
		}
		res, err := decodeResult(buf[:n])
		if err != nil {
			continue
		}
		d.obsMu.Lock()
		d.obs.OnResult(res, d.now())
		d.obsMu.Unlock()
	}
}

// runSink receives host deliveries.
func (d *Deployment) runSink() {
	defer d.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := d.sinkConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		typ, err := msgTypeOf(buf[:n])
		if err != nil || typ != msgHostDeliver {
			continue
		}
		host, pkt, err := decodeHostDeliver(buf[:n])
		if err != nil {
			continue
		}
		if d.cfg.OnDeliver != nil {
			d.cfg.OnDeliver(pkt, host)
		}
	}
}

// runRetries drives the observer's recovery loop.
func (d *Deployment) runRetries() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.RetryEvery)
	defer t.Stop()
	scratch := make([]byte, 0, maxMsgLen) // goroutine-local encode buffer
	for {
		select {
		case <-d.closeCh:
			return
		case <-t.C:
			d.obsMu.Lock()
			acts := d.obs.CheckTimeouts(d.now())
			d.obsMu.Unlock()
			for _, act := range acts {
				for _, node := range act.Retry {
					addr := d.obsAddrs[node]
					scratch = appendInitiate(scratch[:0], act.SnapshotID)
					d.obsConn.WriteToUDP(scratch, addr)
					d.obsConn.WriteToUDP(pollMsg[:], addr)
				}
			}
		}
	}
}

func (d *Deployment) now() sim.Time {
	return sim.Time(time.Since(d.started).Nanoseconds())
}

// onComplete runs under obsMu.
func (d *Deployment) onComplete(g *observer.GlobalSnapshot) {
	if !g.Consistent {
		d.anomaly(fmt.Sprintf("snapshot %d finalized inconsistent", g.ID), g.ID)
	} else if len(g.Excluded) > 0 {
		d.anomaly(fmt.Sprintf("snapshot %d finalized with %d device(s) excluded", g.ID, len(g.Excluded)), g.ID)
	}
	d.done = append(d.done, g)
	if sub, ok := d.subs[g.ID]; ok {
		delete(d.subs, g.ID)
		sub <- g
		close(sub)
	}
}

// Inject sends a packet from a host into its edge switch, over UDP.
func (d *Deployment) Inject(host topology.HostID, pkt *packet.Packet) error {
	dst, ok := d.hostTo[host]
	if !ok {
		return fmt.Errorf("wire: unknown host %d", host)
	}
	pkt.SrcHost = uint32(host)
	// Inject is public API reachable from any goroutine, so it encodes
	// into a fresh buffer rather than sharing a scratch.
	data := appendData(make([]byte, 0, maxMsgLen), dst.port, pkt)
	_, err := d.hostConn.WriteToUDP(data, dst.addr)
	return err
}

// TakeSnapshot begins a snapshot, broadcasts initiations over UDP, and
// returns a channel yielding the assembled global snapshot.
func (d *Deployment) TakeSnapshot() (packet.SeqID, <-chan *observer.GlobalSnapshot, error) {
	d.obsMu.Lock()
	id, err := d.obs.Begin(d.now())
	if err != nil {
		d.obsMu.Unlock()
		return 0, nil, err
	}
	sub := make(chan *observer.GlobalSnapshot, 1)
	d.subs[id] = sub
	d.obsMu.Unlock()

	msg := appendInitiate(make([]byte, 0, maxMsgLen), id)
	for _, addr := range d.obsAddrs {
		d.obsConn.WriteToUDP(msg, addr)
	}
	return id, sub, nil
}

// Journal returns the flight-recorder set, or nil when journaling is
// disabled.
func (d *Deployment) Journal() *journal.Set { return d.cfg.Journal }

// Audit replays the journal and verifies every snapshot's consistency
// invariants. Nil when journaling is disabled.
func (d *Deployment) Audit() *audit.Report {
	if d.cfg.Journal == nil {
		return nil
	}
	return audit.Run(d.cfg.Journal.Events(), audit.Config{
		MaxID:        uint64(d.cfg.MaxID),
		Wraparound:   d.cfg.WrapAround,
		ChannelState: d.cfg.ChannelState,
	})
}

// anomaly dumps the flight recorder to the OnAnomaly hook.
func (d *Deployment) anomaly(reason string, id packet.SeqID) {
	if d.cfg.OnAnomaly == nil {
		return
	}
	size := d.cfg.FlightRecorderSize
	if size <= 0 {
		size = 512
	}
	d.cfg.OnAnomaly(reason, id, d.cfg.Journal.Tail(size))
}

// Snapshots returns the snapshots completed so far.
func (d *Deployment) Snapshots() []*observer.GlobalSnapshot {
	d.obsMu.Lock()
	defer d.obsMu.Unlock()
	out := make([]*observer.GlobalSnapshot, len(d.done))
	copy(out, d.done)
	return out
}

func (d *Deployment) closeSockets() {
	d.obsConn.Close()
	d.sinkConn.Close()
	d.hostConn.Close()
	for _, sn := range d.switches {
		sn.conn.Close()
	}
}

// Close shuts the deployment down and waits for its goroutines.
func (d *Deployment) Close() {
	d.stopped.Do(func() {
		close(d.closeCh)
		d.closeSockets()
	})
	d.wg.Wait()
}
