package wire

import (
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
)

// TestAppendCodecAllocs pins the wire hot path: encoding into a reused
// scratch buffer allocates nothing. This is the contract that lets a
// switch node's egress loop run allocation-free per forwarded packet.
//
//speedlight:allocgate wire.appendData wire.appendHostDeliver wire.appendResult packet.Packet.AppendBinary
func TestAppendCodecAllocs(t *testing.T) {
	p := &packet.Packet{SrcHost: 1, DstHost: 2, Size: 100, HasSnap: true,
		Snap: packet.SnapshotHeader{Type: packet.TypeData, ID: 7, Channel: 3}}
	res := control.Result{
		Unit:       dataplane.UnitID{Node: 3, Port: 9, Dir: dataplane.Egress},
		SnapshotID: 55, Value: 1 << 40, Consistent: true, ReadAt: 123456789,
	}
	scratch := make([]byte, 0, maxMsgLen)

	if n := testing.AllocsPerRun(1000, func() {
		scratch = appendData(scratch[:0], 12, p)
	}); n != 0 {
		t.Fatalf("appendData allocates %v per message, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		scratch = appendHostDeliver(scratch[:0], 42, p)
	}); n != 0 {
		t.Fatalf("appendHostDeliver allocates %v per message, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		scratch = appendInitiate(scratch[:0], 987654321)
	}); n != 0 {
		t.Fatalf("appendInitiate allocates %v per message, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		scratch = appendResult(scratch[:0], res)
	}); n != 0 {
		t.Fatalf("appendResult allocates %v per message, want 0", n)
	}
}
