// Package wire deploys Speedlight over real UDP sockets: every switch
// is a socket-owning node exchanging encoded packets with its neighbors,
// control planes ship results to an observer node over the same
// network, and snapshot initiations arrive as datagrams — the shape of
// an actual deployment, with the same protocol state machines the
// simulator drives.
//
// The package exists for two reasons: it exercises the binary codecs
// end-to-end through the kernel's loopback, and it demonstrates that
// nothing in the protocol implementation depends on the simulator. UDP
// may drop or reorder under load; the protocol's recovery machinery
// (re-initiation, register polls) is expected to cope, exactly as it
// must on a lossy ASIC-to-CPU path.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// Message types on the wire.
const (
	// msgData carries an emulated packet between switches (or from a
	// host into an edge port).
	msgData = 0x01
	// msgHostDeliver carries a packet from an edge switch to a host.
	msgHostDeliver = 0x02
	// msgInitiate asks a switch control plane to initiate a snapshot.
	msgInitiate = 0x03
	// msgResult ships one finished unit result to the observer.
	msgResult = 0x04
	// msgPoll asks a switch control plane to poll its registers.
	msgPoll = 0x05
)

// Codec errors.
var (
	ErrMsgShort   = errors.New("wire: message too short")
	ErrMsgUnknown = errors.New("wire: unknown message type")
)

// encodeData frames a packet arriving at a switch ingress port.
func encodeData(port int, p *packet.Packet) ([]byte, error) {
	pb, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 3+len(pb))
	buf[0] = msgData
	binary.BigEndian.PutUint16(buf[1:3], uint16(port))
	copy(buf[3:], pb)
	return buf, nil
}

// decodeData parses a msgData payload (after the type byte check).
func decodeData(data []byte) (port int, p *packet.Packet, err error) {
	if len(data) < 3 {
		return 0, nil, ErrMsgShort
	}
	port = int(binary.BigEndian.Uint16(data[1:3]))
	p = &packet.Packet{}
	if err := p.UnmarshalBinary(data[3:]); err != nil {
		return 0, nil, err
	}
	return port, p, nil
}

// encodeHostDeliver frames a packet delivered to a host.
func encodeHostDeliver(host topology.HostID, p *packet.Packet) ([]byte, error) {
	pb, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 5+len(pb))
	buf[0] = msgHostDeliver
	binary.BigEndian.PutUint32(buf[1:5], uint32(host))
	copy(buf[5:], pb)
	return buf, nil
}

func decodeHostDeliver(data []byte) (topology.HostID, *packet.Packet, error) {
	if len(data) < 5 {
		return 0, nil, ErrMsgShort
	}
	host := topology.HostID(binary.BigEndian.Uint32(data[1:5]))
	p := &packet.Packet{}
	if err := p.UnmarshalBinary(data[5:]); err != nil {
		return 0, nil, err
	}
	return host, p, nil
}

// encodeInitiate frames a snapshot initiation command.
func encodeInitiate(id packet.SeqID) []byte {
	buf := make([]byte, 9)
	buf[0] = msgInitiate
	binary.BigEndian.PutUint64(buf[1:9], uint64(id))
	return buf
}

func decodeInitiate(data []byte) (packet.SeqID, error) {
	if len(data) < 9 {
		return 0, ErrMsgShort
	}
	return packet.SeqID(binary.BigEndian.Uint64(data[1:9])), nil
}

// encodePoll frames a register-poll command.
func encodePoll() []byte { return []byte{msgPoll} }

// resultLen is the encoded size of a control.Result.
const resultLen = 1 + 4 + 2 + 1 + 8 + 8 + 1 + 8

// encodeResult frames one finished unit snapshot for the observer.
func encodeResult(r control.Result) []byte {
	buf := make([]byte, resultLen)
	buf[0] = msgResult
	binary.BigEndian.PutUint32(buf[1:5], uint32(r.Unit.Node))
	binary.BigEndian.PutUint16(buf[5:7], uint16(r.Unit.Port))
	if r.Unit.Dir == dataplane.Egress {
		buf[7] = 1
	}
	binary.BigEndian.PutUint64(buf[8:16], uint64(r.SnapshotID))
	binary.BigEndian.PutUint64(buf[16:24], r.Value)
	if r.Consistent {
		buf[24] = 1
	}
	binary.BigEndian.PutUint64(buf[25:33], uint64(r.ReadAt))
	return buf
}

func decodeResult(data []byte) (control.Result, error) {
	if len(data) < resultLen {
		return control.Result{}, ErrMsgShort
	}
	dir := dataplane.Ingress
	if data[7] == 1 {
		dir = dataplane.Egress
	}
	return control.Result{
		Unit: dataplane.UnitID{
			Node: topology.NodeID(binary.BigEndian.Uint32(data[1:5])),
			Port: int(binary.BigEndian.Uint16(data[5:7])),
			Dir:  dir,
		},
		SnapshotID: packet.SeqID(binary.BigEndian.Uint64(data[8:16])),
		Value:      binary.BigEndian.Uint64(data[16:24]),
		Consistent: data[24] == 1,
		ReadAt:     sim.Time(binary.BigEndian.Uint64(data[25:33])),
	}, nil
}

// msgTypeOf returns the message type byte, validating length.
func msgTypeOf(data []byte) (byte, error) {
	if len(data) < 1 {
		return 0, ErrMsgShort
	}
	switch data[0] {
	case msgData, msgHostDeliver, msgInitiate, msgResult, msgPoll:
		return data[0], nil
	default:
		return 0, fmt.Errorf("%w: 0x%02x", ErrMsgUnknown, data[0])
	}
}
