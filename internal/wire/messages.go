// Package wire deploys Speedlight over real UDP sockets: every switch
// is a socket-owning node exchanging encoded packets with its neighbors,
// control planes ship results to an observer node over the same
// network, and snapshot initiations arrive as datagrams — the shape of
// an actual deployment, with the same protocol state machines the
// simulator drives.
//
// The package exists for two reasons: it exercises the binary codecs
// end-to-end through the kernel's loopback, and it demonstrates that
// nothing in the protocol implementation depends on the simulator. UDP
// may drop or reorder under load; the protocol's recovery machinery
// (re-initiation, register polls) is expected to cope, exactly as it
// must on a lossy ASIC-to-CPU path.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// Message types on the wire.
const (
	// msgData carries an emulated packet between switches (or from a
	// host into an edge port).
	msgData = 0x01
	// msgHostDeliver carries a packet from an edge switch to a host.
	msgHostDeliver = 0x02
	// msgInitiate asks a switch control plane to initiate a snapshot.
	msgInitiate = 0x03
	// msgResult ships one finished unit result to the observer.
	msgResult = 0x04
	// msgPoll asks a switch control plane to poll its registers.
	msgPoll = 0x05
)

// Codec errors.
var (
	ErrMsgShort   = errors.New("wire: message too short")
	ErrMsgUnknown = errors.New("wire: unknown message type")
)

// The encoders are append-into-caller-buffer APIs: each appends one
// framed message to dst and returns the extended slice, so a caller
// that reuses a scratch buffer (appendX(scratch[:0], ...)) encodes
// without allocating. Every send context in this package owns its
// scratch exclusively: a switch node's goroutine is the only writer of
// its connection (results included — OnResult fires on the switch
// goroutine), and the retry loop keeps its own.

// maxMsgLen bounds every framed message this package produces, sizing
// scratch buffers so steady state never grows them.
const maxMsgLen = 5 + packet.PacketMaxLen

// appendData appends a framed packet arriving at a switch ingress port.
//
//speedlight:hotpath
func appendData(dst []byte, port int, p *packet.Packet) []byte {
	dst = append(dst, msgData, byte(port>>8), byte(port))
	return p.AppendBinary(dst)
}

// decodeData parses a msgData payload (after the type byte check).
func decodeData(data []byte) (port int, p *packet.Packet, err error) {
	if len(data) < 3 {
		return 0, nil, ErrMsgShort
	}
	port = int(binary.BigEndian.Uint16(data[1:3]))
	p = &packet.Packet{}
	if err := p.UnmarshalBinary(data[3:]); err != nil {
		return 0, nil, err
	}
	return port, p, nil
}

// appendHostDeliver appends a framed packet delivered to a host.
//
//speedlight:hotpath
func appendHostDeliver(dst []byte, host topology.HostID, p *packet.Packet) []byte {
	h := uint32(host)
	dst = append(dst, msgHostDeliver, byte(h>>24), byte(h>>16), byte(h>>8), byte(h))
	return p.AppendBinary(dst)
}

func decodeHostDeliver(data []byte) (topology.HostID, *packet.Packet, error) {
	if len(data) < 5 {
		return 0, nil, ErrMsgShort
	}
	host := topology.HostID(binary.BigEndian.Uint32(data[1:5]))
	p := &packet.Packet{}
	if err := p.UnmarshalBinary(data[5:]); err != nil {
		return 0, nil, err
	}
	return host, p, nil
}

// appendInitiate appends a framed snapshot initiation command.
func appendInitiate(dst []byte, id packet.SeqID) []byte {
	v := uint64(id)
	return append(dst, msgInitiate,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func decodeInitiate(data []byte) (packet.SeqID, error) {
	if len(data) < 9 {
		return 0, ErrMsgShort
	}
	return packet.SeqID(binary.BigEndian.Uint64(data[1:9])), nil
}

// pollMsg is the (static, immutable) register-poll command frame.
var pollMsg = [1]byte{msgPoll}

// resultLen is the encoded size of a control.Result.
const resultLen = 1 + 4 + 2 + 1 + 8 + 8 + 1 + 8

// appendResult appends one framed unit snapshot for the observer.
//
//speedlight:hotpath
func appendResult(dst []byte, r control.Result) []byte {
	var dir byte
	if r.Unit.Dir == dataplane.Egress {
		dir = 1
	}
	var consistent byte
	if r.Consistent {
		consistent = 1
	}
	node := uint32(r.Unit.Node)
	port := uint16(r.Unit.Port)
	sid := uint64(r.SnapshotID)
	readAt := uint64(r.ReadAt)
	return append(dst, msgResult,
		byte(node>>24), byte(node>>16), byte(node>>8), byte(node),
		byte(port>>8), byte(port),
		dir,
		byte(sid>>56), byte(sid>>48), byte(sid>>40), byte(sid>>32),
		byte(sid>>24), byte(sid>>16), byte(sid>>8), byte(sid),
		byte(r.Value>>56), byte(r.Value>>48), byte(r.Value>>40), byte(r.Value>>32),
		byte(r.Value>>24), byte(r.Value>>16), byte(r.Value>>8), byte(r.Value),
		consistent,
		byte(readAt>>56), byte(readAt>>48), byte(readAt>>40), byte(readAt>>32),
		byte(readAt>>24), byte(readAt>>16), byte(readAt>>8), byte(readAt))
}

func decodeResult(data []byte) (control.Result, error) {
	if len(data) < resultLen {
		return control.Result{}, ErrMsgShort
	}
	dir := dataplane.Ingress
	if data[7] == 1 {
		dir = dataplane.Egress
	}
	return control.Result{
		Unit: dataplane.UnitID{
			Node: topology.NodeID(binary.BigEndian.Uint32(data[1:5])),
			Port: int(binary.BigEndian.Uint16(data[5:7])),
			Dir:  dir,
		},
		SnapshotID: packet.SeqID(binary.BigEndian.Uint64(data[8:16])),
		Value:      binary.BigEndian.Uint64(data[16:24]),
		Consistent: data[24] == 1,
		ReadAt:     sim.Time(binary.BigEndian.Uint64(data[25:33])),
	}, nil
}

// msgTypeOf returns the message type byte, validating length.
func msgTypeOf(data []byte) (byte, error) {
	if len(data) < 1 {
		return 0, ErrMsgShort
	}
	switch data[0] {
	case msgData, msgHostDeliver, msgInitiate, msgResult, msgPoll:
		return data[0], nil
	default:
		return 0, fmt.Errorf("%w: 0x%02x", ErrMsgUnknown, data[0])
	}
}
