package wire

import (
	"bytes"
	"testing"

	"speedlight/internal/control"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/topology"
)

// FuzzWireMessages feeds arbitrary datagrams through the full wire
// codec surface: type dispatch plus every per-type decoder. Contract:
// no input panics, and any message that decodes successfully must
// survive an encode/decode round trip unchanged (the datagram a node
// would forward is the datagram it understood).
func FuzzWireMessages(f *testing.F) {
	// One well-formed seed per message type, plus pathological shapes.
	pkt := &packet.Packet{
		SrcHost: 1,
		DstHost: 2,
		SrcPort: 1000,
		DstPort: 2000,
		Proto:   17,
		Size:    1500,
		Seq:     99,
		CoS:     1,
	}
	f.Add(appendData(nil, 3, pkt))
	f.Add(appendHostDeliver(nil, topology.HostID(12), pkt))
	f.Add(appendInitiate(nil, packet.SeqID(41)))
	f.Add(pollMsg[:])
	f.Add(appendResult(nil, control.Result{
		Unit:       dataplane.UnitID{Node: 2, Port: 5, Dir: dataplane.Egress},
		SnapshotID: 17,
		Value:      123456,
		Consistent: true,
		ReadAt:     999,
	}))
	f.Add([]byte{})
	f.Add([]byte{msgData})
	f.Add([]byte{msgResult, 0xff})
	f.Add([]byte{0x7f, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, err := msgTypeOf(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		switch typ {
		case msgData:
			port, p, err := decodeData(data)
			if err != nil {
				return
			}
			enc := appendData(nil, port, p)
			port2, p2, err := decodeData(enc)
			if err != nil {
				t.Fatalf("re-encoded data message does not decode: %v", err)
			}
			if port2 != port || *p2 != *p {
				t.Fatalf("data round trip: (%d, %+v) -> (%d, %+v)", port, p, port2, p2)
			}
		case msgHostDeliver:
			host, p, err := decodeHostDeliver(data)
			if err != nil {
				return
			}
			enc := appendHostDeliver(nil, host, p)
			host2, p2, err := decodeHostDeliver(enc)
			if err != nil {
				t.Fatalf("re-encoded host-deliver does not decode: %v", err)
			}
			if host2 != host || *p2 != *p {
				t.Fatalf("host-deliver round trip: (%d, %+v) -> (%d, %+v)", host, p, host2, p2)
			}
		case msgInitiate:
			id, err := decodeInitiate(data)
			if err != nil {
				return
			}
			id2, err := decodeInitiate(appendInitiate(nil, id))
			if err != nil || id2 != id {
				t.Fatalf("initiate round trip: %d -> %d (%v)", id, id2, err)
			}
		case msgResult:
			r, err := decodeResult(data)
			if err != nil {
				return
			}
			r2, err := decodeResult(appendResult(nil, r))
			if err != nil || r2 != r {
				t.Fatalf("result round trip: %+v -> %+v (%v)", r, r2, err)
			}
		case msgPoll:
			if !bytes.Equal(pollMsg[:], []byte{msgPoll}) {
				t.Fatal("poll encoding changed shape")
			}
		}
	})
}
