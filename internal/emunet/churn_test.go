package emunet_test

// Churn-hardened snapshot conformance: the seeded scenario suite from
// DESIGN.md §13. Each scenario scripts runtime fabric churn — switches
// and links leaving and rejoining mid-campaign — through the
// reconciliation controller, and every scenario must preserve the full
// determinism contract (byte-identical journal, audit report, snapshot
// set, epoch traces, and churn classification across engines and shard
// counts), end audit-sound (zero silent disagreements), and leak no
// pooled packets through any teardown path.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"speedlight/internal/emunet"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/reconcile"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/topology"
)

// churnCampaign is the scenario suite's fixed fabric: the testbed
// 4x2 leaf-spine with wire loss, traffic stopped early enough for the
// drain to quiesce (leak checks need a quiet fabric).
func churnCampaign(seed int64) (campaignConfig, *topology.LeafSpine) {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 2,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	return campaignConfig{
		topo:       ls.Topology,
		hosts:      hostIDsOf(ls.Topology),
		seed:       seed,
		interval:   3 * sim.Microsecond,
		snapshots:  4,
		trafficFor: 16 * sim.Millisecond,
		leakCheck:  true,
		mutate: func(c *emunet.Config) {
			c.ChannelState = true
			c.LinkLossProb = 0.02
		},
	}, ls
}

// uplinksOf returns the fabric links touching one switch.
func uplinksOf(links []reconcile.Link, node topology.NodeID) []reconcile.Link {
	var out []reconcile.Link
	for _, l := range links {
		if l.A.Node == node || l.B.Node == node {
			out = append(out, l)
		}
	}
	return out
}

// TestChurnScenarioEquivalence is the seeded churn scenario suite:
// four canonical churn shapes, each replayed serially and at shard
// counts {1,2,4,8}. Every run must produce byte-identical artifacts,
// classify every churn event (clean / excluded / inconsistent-caught)
// with zero silent disagreements, and finish with every pooled packet
// back in a free list.
func TestChurnScenarioEquivalence(t *testing.T) {
	_, ls := churnCampaign(0)
	cases := []struct {
		name  string
		churn func(c *reconcile.Controller)
	}{
		{
			// Both spines rebooted one after the other; the fabric keeps
			// forwarding through the survivor.
			name: "rolling_upgrade",
			churn: func(c *reconcile.Controller) {
				reconcile.RollingUpgrade(ls.Spines, 3*sim.Millisecond,
					2*sim.Millisecond, 4*sim.Millisecond).Schedule(c)
			},
		},
		{
			// A seeded storm of link drains and restores across the
			// whole fabric.
			name: "link_flap_storm",
			churn: func(c *reconcile.Controller) {
				cr := rand.New(rand.NewSource(99))
				reconcile.LinkFlapStorm(c.Links(), cr, 3*sim.Millisecond, 8,
					1200*sim.Microsecond, 900*sim.Microsecond).Schedule(c)
			},
		},
		{
			// Every uplink of one leaf cut at once — the leaf and its
			// hosts are severed from the fabric — then healed.
			name: "partition_and_heal",
			churn: func(c *reconcile.Controller) {
				cut := uplinksOf(c.Links(), ls.Leaves[0])
				reconcile.PartitionAndHeal(cut, 4*sim.Millisecond,
					4*sim.Millisecond).Schedule(c)
			},
		},
		{
			// A leaf and a spine deprovisioned together, then brought
			// back one at a time with config re-pushes.
			name: "provisioning_ramp",
			churn: func(c *reconcile.Controller) {
				nodes := []topology.NodeID{ls.Leaves[3], ls.Spines[1]}
				reconcile.ProvisioningRamp(nodes, 3*sim.Millisecond,
					3*sim.Millisecond).Schedule(c)
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cc, _ := churnCampaign(42)
			cc.churn = tc.churn
			serial := runCampaign(t, cc, 0)
			if serial.churn == "" {
				t.Fatal("scenario journaled no churn events")
			}
			if serial.completed == 0 {
				t.Fatal("no snapshot completed under churn")
			}
			// Audit soundness: detected damage is fine, silent damage
			// is not.
			if serial.disagreements != 0 || serial.tally.SilentDisagreement != 0 {
				t.Fatalf("silent disagreement under churn: audit=%d tally=%s",
					serial.disagreements, serial.tally)
			}
			// Every churn event must be classified — one line per event.
			events := strings.Count(serial.churn, "\n")
			tal := serial.tally
			if got := tal.Clean + tal.Excluded + tal.InconsistentCaught + tal.SilentDisagreement; got != events {
				t.Fatalf("classified %d of %d churn events (%s)", got, events, tal)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				shards := shards
				t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
					got := runCampaign(t, cc, shards)
					diffArtifacts(t, fmt.Sprintf("%s shards=%d", tc.name, shards), serial, got)
				})
			}
		})
	}
}

// TestChurnSnapstoreDeparture drives a switch departure through the
// snapshot-history store: a spine leaves mid-retention-window and never
// returns, so its units flow through snapstore's departure-delta path
// while eviction promotes retention heads. Every retained epoch's
// reconstruction from the final view must equal the state captured when
// that epoch was ingested, and the departed units must read absent from
// every post-departure cut.
func TestChurnSnapstoreDeparture(t *testing.T) {
	cc, ls := churnCampaign(7)
	cc.snapshots = 7
	gone := ls.Spines[1]
	cc.churn = func(c *reconcile.Controller) {
		sc := &reconcile.Scenario{Name: "departure", Steps: []reconcile.Step{{
			At: 9 * sim.Millisecond, Label: "spine departs for good",
			Mutate: func(s *reconcile.Spec) { s.SetSwitchDown(gone, true) },
		}}}
		sc.Schedule(c)
	}

	set := journal.NewSet(0)
	cfg := emunet.Config{
		Topo: cc.topo, Seed: cc.seed, MaxID: 64, WrapAround: true, Journal: set,
	}
	cc.mutate(&cfg)
	n, err := emunet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Engine()
	ctrl, err := reconcile.New(reconcile.Config{Fabric: n, Proc: eng.Proc(sim.GlobalDomain)})
	if err != nil {
		t.Fatal(err)
	}
	cc.churn(ctrl)
	tr := eng.NewRand()
	cutoff := eng.Now().Add(cc.trafficFor)
	eng.NewTicker(cc.interval, func() {
		if eng.Now() >= cutoff {
			return
		}
		src := cc.hosts[tr.Intn(len(cc.hosts))]
		dst := cc.hosts[tr.Intn(len(cc.hosts))]
		if src == dst {
			return
		}
		pkt := n.NewPacket()
		pkt.DstHost = uint32(dst)
		pkt.Size = 200
		n.InjectFromHost(src, pkt)
	})
	n.RunFor(2 * sim.Millisecond)
	for i := 0; i < cc.snapshots; i++ {
		n.RunFor(2 * sim.Millisecond)
		if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err != nil {
			t.Fatalf("scheduling snapshot %d: %v", i, err)
		}
	}
	n.RunFor(80 * sim.Millisecond)

	snaps := n.Snapshots()
	if len(snaps) < 4 {
		t.Fatalf("campaign completed %d snapshots, want at least 4", len(snaps))
	}

	// Small retention and a long checkpoint cadence force head
	// promotion: eviction repeatedly lands on non-checkpoint epochs.
	store := snapstore.New(snapstore.Config{Retention: 3, CheckpointEvery: 5})
	type capture struct {
		regs    []snapstore.Reg
		present bool // departed spine's units present in this cut
	}
	captured := make(map[packet.SeqID]capture)
	presentAt := func(st *snapstore.State) bool {
		for _, u := range st.Units {
			if u.Node == gone {
				if _, ok := st.Value(u); ok {
					return true
				}
			}
		}
		return false
	}
	var sawPresent, sawAbsent bool
	for _, g := range snaps {
		store.Ingest(g, 0)
		st, err := store.View().State(g.ID)
		if err != nil {
			t.Fatalf("state at ingest of epoch %d: %v", g.ID, err)
		}
		p := presentAt(st)
		captured[g.ID] = capture{regs: append([]snapstore.Reg(nil), st.Regs...), present: p}
		if p {
			sawPresent = true
		} else {
			sawAbsent = true
		}
	}
	if !sawPresent || !sawAbsent {
		t.Fatalf("departure not observed: present=%v absent=%v (want both)", sawPresent, sawAbsent)
	}

	// Reconstruction equivalence: every retained epoch rebuilt from the
	// final view — across whatever promotions eviction performed — must
	// match its at-ingest materialization exactly.
	final := store.View()
	if !final.Epochs()[0].IsBase() {
		t.Fatal("view invariant broken: retention head is not a base")
	}
	for _, e := range final.Epochs() {
		st, err := final.State(e.ID)
		if err != nil {
			t.Fatalf("reconstructing retained epoch %d: %v", e.ID, err)
		}
		want := captured[e.ID]
		if len(st.Regs) != len(want.regs) {
			t.Fatalf("epoch %d: reconstructed %d regs, ingested %d", e.ID, len(st.Regs), len(want.regs))
		}
		for i := range st.Regs {
			if st.Regs[i] != want.regs[i] {
				t.Fatalf("epoch %d unit %d: reconstructed %+v, ingested %+v",
					e.ID, i, st.Regs[i], want.regs[i])
			}
		}
		if p := presentAt(st); p != want.present {
			t.Fatalf("epoch %d: departed-switch presence %v, want %v", e.ID, p, want.present)
		}
	}
	if err := n.LeakCheck(); err != nil {
		t.Error(err)
	}
}

// TestChurnEpochTraceExact asserts the causal tracer's exactness
// invariant survives churn: for every epoch reconstructed from a
// campaign where switches vanished mid-wavefront, the critical-path
// segments still partition the epoch's duration exactly.
func TestChurnEpochTraceExact(t *testing.T) {
	cc, ls := churnCampaign(11)
	cc.churn = func(c *reconcile.Controller) {
		// Bounce a spine and a leaf across the snapshot windows so
		// wavefronts lose devices mid-flight.
		reconcile.RollingUpgrade([]topology.NodeID{ls.Spines[0], ls.Leaves[2]},
			4*sim.Millisecond, 1500*sim.Microsecond, 3*sim.Millisecond).Schedule(c)
	}

	set := journal.NewSet(0)
	cfg := emunet.Config{
		Topo: cc.topo, Seed: cc.seed, MaxID: 64, WrapAround: true, Journal: set,
	}
	cc.mutate(&cfg)
	n, err := emunet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Engine()
	ctrl, err := reconcile.New(reconcile.Config{Fabric: n, Proc: eng.Proc(sim.GlobalDomain)})
	if err != nil {
		t.Fatal(err)
	}
	cc.churn(ctrl)
	ctrl.Start()
	tr := eng.NewRand()
	cutoff := eng.Now().Add(cc.trafficFor)
	eng.NewTicker(cc.interval, func() {
		if eng.Now() >= cutoff {
			return
		}
		src := cc.hosts[tr.Intn(len(cc.hosts))]
		dst := cc.hosts[tr.Intn(len(cc.hosts))]
		if src == dst {
			return
		}
		pkt := n.NewPacket()
		pkt.DstHost = uint32(dst)
		pkt.Size = 400
		n.InjectFromHost(src, pkt)
	})
	n.RunFor(2 * sim.Millisecond)
	for i := 0; i < cc.snapshots; i++ {
		n.RunFor(2 * sim.Millisecond)
		if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err != nil {
			t.Fatalf("scheduling snapshot %d: %v", i, err)
		}
	}
	n.RunFor(80 * sim.Millisecond)

	traces := n.EpochTraces()
	if len(traces) == 0 {
		t.Fatal("churn campaign produced no epoch traces")
	}
	churned := 0
	for _, ev := range set.Events() {
		if ev.Kind == journal.KindChurn {
			churned++
		}
	}
	if churned == 0 {
		t.Fatal("campaign journaled no churn events")
	}
	for _, tr := range traces {
		if got, want := tr.CriticalSumNs(), tr.DurationNs(); got != want {
			t.Errorf("epoch %d: critical-path sum %d ns != duration %d ns (excluded=%d retries=%d)",
				tr.ID, got, want, tr.Excluded, tr.Retries)
		}
	}
	if err := n.LeakCheck(); err != nil {
		t.Error(err)
	}
}
