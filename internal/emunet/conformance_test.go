package emunet

import (
	"fmt"
	"math/rand"
	"testing"

	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// TestRandomizedConformance sweeps randomized configurations — fabric
// dimensions, channel state, CoS levels, link loss, notification
// capacity, traffic intensity — and checks the protocol's end-to-end
// guarantees on each: every scheduled snapshot completes (liveness
// through the recovery machinery), assembled snapshots cover every
// registered unit, and per-unit consistent counter values never
// regress across the snapshot sequence (causal consistency implies a
// monotone cut sequence for monotone state).
func TestRandomizedConformance(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		leaves := 2 + r.Intn(2)
		spines := 1 + r.Intn(3)
		hostsPer := 1 + r.Intn(3)
		cfgMut := Config{
			Seed:          r.Int63(),
			MaxID:         uint32(16 << r.Intn(3)),
			WrapAround:    r.Intn(2) == 0,
			ChannelState:  r.Intn(2) == 0,
			NumCoS:        1 + r.Intn(3),
			LinkLossProb:  float64(r.Intn(3)) * 0.03,
			NotifCapacity: []int{0, 64, 1024}[r.Intn(3)],
			RetryAfter:    2 * sim.Millisecond,
		}
		interval := sim.Duration(2+r.Intn(10)) * sim.Microsecond
		name := fmt.Sprintf("trial%d_l%d_s%d_h%d_cs%v_cos%d_loss%.2f",
			trial, leaves, spines, hostsPer, cfgMut.ChannelState, cfgMut.NumCoS, cfgMut.LinkLossProb)
		t.Run(name, func(t *testing.T) {
			ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
				Leaves: leaves, Spines: spines, HostsPerLeaf: hostsPer,
				HostLinkLatency:   sim.Microsecond,
				FabricLinkLatency: sim.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := cfgMut
			cfg.Topo = ls.Topology
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Randomized traffic across hosts and classes.
			eng := n.Engine()
			tr := eng.NewRand()
			hosts := ls.Hosts
			var seq uint16
			if len(hosts) > 1 {
				eng.NewTicker(interval, func() {
					src := hosts[tr.Intn(len(hosts))]
					dst := hosts[tr.Intn(len(hosts))]
					if src.ID == dst.ID {
						return
					}
					seq++
					n.InjectFromHost(src.ID, &packet.Packet{
						DstHost: uint32(dst.ID),
						SrcPort: 1000 + seq,
						DstPort: 80,
						Proto:   6,
						Size:    uint32(100 + tr.Intn(1400)),
						CoS:     uint8(tr.Intn(cfg.NumCoS)),
					})
				})
			}
			n.RunFor(2 * sim.Millisecond)

			const snapshots = 4
			scheduled := 0
			for i := 0; i < snapshots; i++ {
				n.RunFor(2 * sim.Millisecond)
				if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err == nil {
					scheduled++
				}
			}
			n.RunFor(80 * sim.Millisecond)

			snaps := n.Snapshots()
			if len(snaps) != scheduled {
				t.Fatalf("completed %d of %d snapshots (drops: wire=%d notif=%d)",
					len(snaps), scheduled, n.WireDrops(), n.NotifDropsTotal())
			}
			wantUnits := 0
			for _, sw := range ls.Switches {
				wantUnits += 2 * len(sw.Ports)
			}
			last := map[dataplane.UnitID]uint64{}
			for _, g := range snaps {
				if len(g.Excluded) != 0 {
					t.Errorf("snapshot %d excluded devices: %v", g.ID, g.Excluded)
				}
				if len(g.Results) != wantUnits {
					t.Errorf("snapshot %d has %d results, want %d", g.ID, len(g.Results), wantUnits)
				}
				for u, res := range g.Results {
					if !res.Consistent {
						continue
					}
					if res.Value < last[u] {
						t.Errorf("unit %v regressed: %d -> %d", u, last[u], res.Value)
					}
					last[u] = res.Value
				}
			}
		})
	}
}
