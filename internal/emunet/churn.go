package emunet

// Runtime fabric churn: switches and links leave and rejoin the
// emulated network while a campaign runs. Every mutator here executes
// in the serialized global domain (or driver context between Run*
// calls) — on the parallel engine that means every worker is parked,
// so touching any switch's state is race-free and the mutation lands
// at one deterministic point in the global total order. That is what
// keeps serial-vs-sharded journals byte-identical through churn.
//
// The teardown contract is leak-freedom: a switch or link leaving the
// fabric must return every pooled packet it strands (egress queues,
// packets on the wire) to a pool. LeakCheck verifies the identity
// allocated == free after a quiesced drain.
//
// The stale-event hazard: closure-free events (transmit completions,
// CP loop steps) armed before a teardown would otherwise fire against
// flushed queues or a rebooted control plane. Each switch carries a
// generation counter, bumped on every down/up transition and packed
// into the events' integer argument; a mismatch makes the event inert
// (see scheduleTx / cpCall in emunet.go).

import (
	"fmt"

	"speedlight/internal/journal"
	"speedlight/internal/routing"
	"speedlight/internal/topology"
)

// SwitchIsDown reports whether a switch is currently out of the
// fabric. Global-domain or driver context.
func (n *Network) SwitchIsDown(node topology.NodeID) bool {
	es, ok := n.sws[node]
	return ok && es.down
}

// LinkIsDown reports whether the link behind a switch port is
// administratively drained. Global-domain or driver context.
func (n *Network) LinkIsDown(node topology.NodeID, port int) bool {
	es, ok := n.sws[node]
	return ok && port >= 0 && port < len(es.linkDown) && es.linkDown[port]
}

// SetSwitchDown removes a switch from the fabric: its egress queues
// are flushed (every pooled packet returned), its control-plane loop
// is disarmed, and it is unregistered from the observer so snapshots
// begun from now on neither initiate there nor wait for it — the
// switch's units then vanish from the next sealed epoch through
// snapstore's departure-delta path. Snapshots already in flight
// recover via retry and, failing that, exclusion (§6). Idempotent.
//
//speedlight:global-only
func (n *Network) SetSwitchDown(node topology.NodeID) error {
	es, ok := n.sws[node]
	if !ok {
		return fmt.Errorf("emunet: unknown switch %d", node)
	}
	if es.down {
		return nil
	}
	n.flushQueues(es)
	es.down = true
	es.gen++
	es.cpBusy = false
	n.obs.Unregister(node)
	n.journalChurn(int(node), -1, journal.ChurnSwitchDown)
	return nil
}

// SetSwitchUp returns a previously removed switch to the fabric,
// modeling a reboot: data- and control-plane state is re-provisioned
// from scratch (zeroed registers, re-pushed forwarding config, fresh
// completion gating) and the switch re-registers with the observer.
// Forwarding through the rest of the fabric still routes around it
// until Reroute runs — the reconcile controller does both in one
// convergence pass. Idempotent.
//
//speedlight:global-only
func (n *Network) SetSwitchUp(node topology.NodeID) error {
	es, ok := n.sws[node]
	if !ok {
		return fmt.Errorf("emunet: unknown switch %d", node)
	}
	if !es.down {
		return nil
	}
	spec := n.switchSpec(node)
	if err := n.provisionPlanes(es, spec); err != nil {
		return fmt.Errorf("emunet: re-provisioning switch %d: %w", node, err)
	}
	es.down = false
	es.gen++
	if !n.cfg.SnapshotDisabled[node] {
		n.obs.Register(node, es.DP.UnitIDs())
	}
	n.journalChurn(int(node), -1, journal.ChurnSwitchUp)
	return nil
}

// SetLinkDown drains the switch-to-switch link behind the given port:
// both endpoints stop accepting the wire, and anything still queued
// toward it is eaten at transmission (deterministically, and returned
// to the packet pool). Only switch-to-switch links can be drained.
// Idempotent.
//
//speedlight:global-only
func (n *Network) SetLinkDown(node topology.NodeID, port int) error {
	return n.setLink(node, port, true)
}

// SetLinkUp re-adds a drained link. Traffic uses it again once
// Reroute recomputes paths over it. Idempotent.
//
//speedlight:global-only
func (n *Network) SetLinkUp(node topology.NodeID, port int) error {
	return n.setLink(node, port, false)
}

func (n *Network) setLink(node topology.NodeID, port int, down bool) error {
	es, ok := n.sws[node]
	if !ok {
		return fmt.Errorf("emunet: unknown switch %d", node)
	}
	if port < 0 || port >= len(es.linkDown) {
		return fmt.Errorf("emunet: switch %d has no port %d", node, port)
	}
	peer := n.topo.Peer(node, port)
	if peer.Kind != topology.PeerSwitch {
		return fmt.Errorf("emunet: port %d of switch %d is not a fabric link", port, node)
	}
	if es.linkDown[port] == down {
		return nil
	}
	es.linkDown[port] = down
	n.sws[peer.Node].linkDown[peer.Port] = down
	op := journal.ChurnLinkUp
	if down {
		op = journal.ChurnLinkDown
	}
	// One journal event per link, against the canonical endpoint.
	sw, p := node, port
	if peer.Node < node {
		sw, p = peer.Node, peer.Port
	}
	n.journalChurn(int(sw), p, op)
	return nil
}

// PushConfig re-pushes a switch's forwarding configuration: its FIB is
// recomputed over the currently live fabric and its version bumped, as
// a reconciliation controller does when desired config drifts from
// actual. The switch must be up.
//
//speedlight:global-only
func (n *Network) PushConfig(node topology.NodeID) error {
	es, ok := n.sws[node]
	if !ok {
		return fmt.Errorf("emunet: unknown switch %d", node)
	}
	if es.down {
		return fmt.Errorf("emunet: switch %d is down", node)
	}
	fresh := routing.ComputeFIBsFiltered(n.topo, n.churnFilter())
	fib := n.fibs[node]
	fib.NextHops = fresh[node].NextHops
	fib.Version++
	n.journalChurn(int(node), -1, journal.ChurnReconfig)
	return nil
}

// Reroute recomputes every switch's forwarding table around the
// current down set, in place: down switches and drained links carry no
// paths, and destinations severed by a partition lose their entries
// (the data plane then drops toward them, which is what a partitioned
// fabric does). Completion gating derives from the refreshed
// utilized-pair map at the next control-plane provisioning.
//
//speedlight:global-only
func (n *Network) Reroute() {
	fresh := routing.ComputeFIBsFiltered(n.topo, n.churnFilter())
	for _, sw := range n.topo.Switches {
		fib := n.fibs[sw.ID]
		fib.NextHops = fresh[sw.ID].NextHops
		fib.Version++
	}
	n.utilized = routing.UtilizedPairs(n.topo, n.fibs)
	n.journalChurn(journal.ObserverNode, -1, journal.ChurnReroute)
}

// churnFilter adapts the live down set to the routing filter.
func (n *Network) churnFilter() routing.Filter {
	return routing.Filter{
		SwitchDown: func(node topology.NodeID) bool { return n.sws[node].down },
		LinkDown:   func(node topology.NodeID, port int) bool { return n.sws[node].linkDown[port] },
	}
}

// flushQueues empties every egress queue of a departing switch,
// returning each pooled packet to the switch's free list. The
// transmit events already armed against those queues are neutralized
// by the generation bump that follows.
func (n *Network) flushQueues(es *EmuSwitch) {
	for port, q := range es.queues {
		for cos := range q.perCoS {
			f := &q.perCoS[cos]
			for f.len() > 0 {
				es.ppool.Put(f.pop().pkt)
				n.churnDrops.Add(1)
			}
		}
		q.txScheduled = false
		n.setDepthGauge(es, port)
	}
}

// switchSpec returns the topology spec of a switch.
func (n *Network) switchSpec(node topology.NodeID) *topology.Switch {
	for _, sw := range n.topo.Switches {
		if sw.ID == node {
			return sw
		}
	}
	panic(fmt.Sprintf("emunet: no topology spec for switch %d", node))
}

// journalChurn appends a churn event to the observer's ring at the
// current global time.
func (n *Network) journalChurn(sw, port int, op uint64) {
	if n.cfg.Journal == nil {
		return
	}
	n.cfg.Journal.Observer().Append(journal.Churn(int64(n.gproc.Now()), sw, port, op))
}

// PooledInFlight returns the number of pool-owned packets currently
// live anywhere in the emulation: allocated by any pool of the
// network's central exchange and not sitting in a free list. Driver
// context only (it reads every switch's pool).
func (n *Network) PooledInFlight() int {
	free := n.central.FreeLen() + n.dpool.FreeLen()
	for _, sw := range n.topo.Switches {
		free += n.sws[sw.ID].ppool.FreeLen()
	}
	return int(n.central.Allocated()) - free
}

// LeakCheck verifies pooled-packet leak-freedom: after traffic stops
// and the network drains, every pooled packet must be back in a free
// list. A nonzero residue means some teardown or drop path lost a
// packet. Driver context only, after a quiesced drain — packets still
// legitimately in flight count as leaks here.
func (n *Network) LeakCheck() error {
	if live := n.PooledInFlight(); live != 0 {
		return fmt.Errorf("emunet: %d pooled packet(s) still in flight after drain", live)
	}
	return nil
}
