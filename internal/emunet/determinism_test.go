package emunet_test

// Determinism-equivalence conformance: the parallel sharded engine must
// be indistinguishable from the serial reference engine at the level of
// every artifact the system can emit. For one seed, the flight-recorder
// journal (JSONL), the consistency-audit report (JSON), and the full
// snapshot set (JSON) must be byte-identical across engines, shard
// counts, and GOMAXPROCS settings. See DESIGN.md ("Parallel
// simulation") for the contract that makes this possible.

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"speedlight/internal/emunet"
	"speedlight/internal/export"
	"speedlight/internal/journal"
	"speedlight/internal/reconcile"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// The reconciliation controller drives churn through this interface;
// losing conformance here breaks every churn scenario.
var _ reconcile.Fabric = (*emunet.Network)(nil)

// artifacts holds one campaign's complete serialized output.
type artifacts struct {
	journal   string // flight-recorder JSONL
	audit     string // audit report JSON
	snapshots string // snapshot set JSON
	epochs    string // reconstructed epoch-trace JSONL
	churn     string // churn classification, one line per churn event
	// disagreements is the audit's count of snapshots the observer
	// published as consistent but the replay proved broken.
	disagreements int
	completed     int // snapshots the observer assembled
	tally         reconcile.Tally
}

// campaignConfig fixes everything about a conformance campaign except
// the engine choice.
type campaignConfig struct {
	topo      *topology.Topology
	hosts     []topology.HostID
	seed      int64
	interval  sim.Duration // traffic injection period
	snapshots int
	mutate    func(*emunet.Config) // fault-schedule knobs
	// churn, when set, is handed a fresh reconciliation controller
	// before the campaign starts; it schedules the scenario's steps
	// (any randomness must come from a source seeded inside the
	// callback so every engine replays the same schedule).
	churn func(c *reconcile.Controller)
	// trafficFor stops traffic injection after this much sim time
	// (zero = inject for the whole campaign) so the fabric can
	// quiesce and the pooled-packet leak check is meaningful.
	trafficFor sim.Duration
	leakCheck  bool
}

// runCampaign drives one full campaign — warm-up traffic, a snapshot
// series, drain — and serializes every artifact.
func runCampaign(t testing.TB, cc campaignConfig, shards int) artifacts {
	t.Helper()
	set := journal.NewSet(0)
	cfg := emunet.Config{
		Topo:       cc.topo,
		Seed:       cc.seed,
		Shards:     shards,
		MaxID:      64,
		WrapAround: true,
		Journal:    set,
	}
	if cc.mutate != nil {
		cc.mutate(&cfg)
	}
	n, err := emunet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Engine()
	var ctrl *reconcile.Controller
	if cc.churn != nil {
		ctrl, err = reconcile.New(reconcile.Config{
			Fabric: n,
			Proc:   eng.Proc(sim.GlobalDomain),
		})
		if err != nil {
			t.Fatal(err)
		}
		cc.churn(ctrl)
		ctrl.Start() // periodic watcher covers drift between steps
	}
	tr := eng.NewRand()
	var seq uint16
	var cutoff sim.Time
	if cc.trafficFor > 0 {
		cutoff = eng.Now().Add(cc.trafficFor)
	}
	if len(cc.hosts) > 1 {
		eng.NewTicker(cc.interval, func() {
			if cutoff != 0 && eng.Now() >= cutoff {
				return
			}
			src := cc.hosts[tr.Intn(len(cc.hosts))]
			dst := cc.hosts[tr.Intn(len(cc.hosts))]
			if src == dst {
				return
			}
			seq++
			cos := 0
			if cfg.NumCoS > 1 {
				cos = tr.Intn(cfg.NumCoS)
			}
			// Pooled packets (not &packet.Packet{} literals) so the
			// post-drain leak check covers the data path too.
			pkt := n.NewPacket()
			pkt.DstHost = uint32(dst)
			pkt.SrcPort = 1000 + seq
			pkt.DstPort = 80
			pkt.Proto = 6
			pkt.Size = uint32(100 + tr.Intn(1400))
			pkt.CoS = uint8(cos)
			n.InjectFromHost(src, pkt)
		})
	}
	n.RunFor(2 * sim.Millisecond)
	for i := 0; i < cc.snapshots; i++ {
		n.RunFor(2 * sim.Millisecond)
		if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err != nil {
			t.Fatalf("scheduling snapshot %d: %v", i, err)
		}
	}
	n.RunFor(80 * sim.Millisecond)

	rep := n.Audit()
	var jb, ab, sb, eb bytes.Buffer
	if err := export.JournalJSONL(&jb, set.Events()); err != nil {
		t.Fatal(err)
	}
	if err := export.AuditJSON(&ab, rep); err != nil {
		t.Fatal(err)
	}
	if err := export.SnapshotsJSON(&sb, n.Snapshots()); err != nil {
		t.Fatal(err)
	}
	if err := export.EpochTraceJSONL(&eb, n.EpochTraces()); err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	var tally reconcile.Tally
	if cc.churn != nil {
		cs := reconcile.Classify(set.Events(), rep)
		tally = reconcile.TallyOutcomes(cs)
		for _, c := range cs {
			fmt.Fprintf(&cb, "%d %s sw=%d port=%d snaps=%v %s\n",
				c.Event.AtNs, c.Op, c.Event.Switch, c.Event.Port, c.Snapshots, c.Outcome)
		}
		if cs := len(ctrl.Log()); cs == 0 {
			t.Error("churn campaign applied no reconciliation ops")
		}
	}
	if cc.leakCheck {
		if err := n.LeakCheck(); err != nil {
			t.Errorf("shards=%d: %v (churn drops=%d)", shards, err, n.ChurnDrops())
		}
	}
	return artifacts{
		journal:       jb.String(),
		audit:         ab.String(),
		snapshots:     sb.String(),
		epochs:        eb.String(),
		churn:         cb.String(),
		disagreements: rep.Disagreements,
		completed:     len(n.Snapshots()),
		tally:         tally,
	}
}

// diffArtifacts reports the first divergence between two campaigns'
// outputs, with a little context rather than two megabyte blobs.
func diffArtifacts(t *testing.T, name string, want, got artifacts) {
	t.Helper()
	check := func(kind, w, g string) {
		if w == g {
			return
		}
		i := 0
		for i < len(w) && i < len(g) && w[i] == g[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		end := func(s string) int {
			if i+120 < len(s) {
				return i + 120
			}
			return len(s)
		}
		t.Errorf("%s: %s diverges at byte %d\nserial:   ...%s...\nparallel: ...%s...",
			name, kind, i, w[lo:end(w)], g[lo:end(g)])
	}
	check("journal", want.journal, got.journal)
	check("audit report", want.audit, got.audit)
	check("snapshot set", want.snapshots, got.snapshots)
	check("epoch traces", want.epochs, got.epochs)
	check("churn classification", want.churn, got.churn)
}

func testbedCampaign(seed int64) campaignConfig {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 2,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	return campaignConfig{
		topo:      ls.Topology,
		hosts:     hostIDsOf(ls.Topology),
		seed:      seed,
		interval:  3 * sim.Microsecond,
		snapshots: 4,
		mutate: func(c *emunet.Config) {
			c.ChannelState = true
			c.LinkLossProb = 0.02
		},
	}
}

func hostIDsOf(topo *topology.Topology) []topology.HostID {
	var out []topology.HostID
	for _, h := range topo.Hosts {
		out = append(out, h.ID)
	}
	return out
}

// TestDeterminismEquivalence proves the tentpole contract: one seed
// produces the identical journal, audit report, and snapshot set on the
// serial engine and on the parallel engine at every shard count and
// GOMAXPROCS setting.
func TestDeterminismEquivalence(t *testing.T) {
	cc := testbedCampaign(42)
	serial := runCampaign(t, cc, 0)
	if serial.journal == "" {
		t.Fatal("campaign recorded no journal events")
	}
	// Non-power-of-two counts {3, 5, 7} matter since PR 10: uneven
	// switch-to-shard modulo assignment produces asymmetric pair-link
	// sets (some shard pairs carry no links at all), exercising the
	// undeclared-pair and per-pair-clock paths the even splits miss.
	shardCounts := []int{1, 2, 3, 4, 5, 7, 8}
	procCounts := []int{1, 4}
	for _, shards := range shardCounts {
		for _, procs := range procCounts {
			shards, procs := shards, procs
			t.Run(fmt.Sprintf("shards%d_procs%d", shards, procs), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				got := runCampaign(t, cc, shards)
				diffArtifacts(t, fmt.Sprintf("shards=%d GOMAXPROCS=%d", shards, procs), serial, got)
			})
		}
	}
}

// TestDeterminismEquivalenceFatTree repeats the equivalence check on a
// k=4 fat-tree, whose multi-tier ECMP fabric exercises cross-shard
// wiring much harder than the testbed leaf-spine.
func TestDeterminismEquivalenceFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{
		K:                 4,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc := campaignConfig{
		topo:      ft.Topology,
		hosts:     hostIDsOf(ft.Topology),
		seed:      7,
		interval:  2 * sim.Microsecond,
		snapshots: 3,
	}
	serial := runCampaign(t, cc, 0)
	for _, shards := range []int{2, 3, 4, 5, 7, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			got := runCampaign(t, cc, shards)
			diffArtifacts(t, fmt.Sprintf("shards=%d", shards), serial, got)
		})
	}
}

// TestPropertyRandomizedEquivalence is the property-based harness:
// randomized topologies x workloads x fault schedules (wire loss,
// notification-socket drops, egress-queue overflow, snapshot-ID
// rollover pressure). For every run the protocol must end in a sound
// state — the audit report agrees with the observer on every snapshot
// (no silent disagreement), and the parallel engine reproduces the
// serial run byte for byte even while faults fire.
func TestPropertyRandomizedEquivalence(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	r := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < trials; trial++ {
		// Topology: mostly random leaf-spines, sometimes a fat-tree.
		var (
			topo *topology.Topology
			kind string
		)
		if trial%4 == 3 {
			ft, err := topology.NewFatTree(topology.FatTreeConfig{
				K:                 4,
				HostLinkLatency:   sim.Microsecond,
				FabricLinkLatency: sim.Duration(1+r.Intn(3)) * sim.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			topo, kind = ft.Topology, "fattree4"
		} else {
			leaves := 2 + r.Intn(3)
			spines := 1 + r.Intn(2)
			ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
				Leaves: leaves, Spines: spines, HostsPerLeaf: 1 + r.Intn(3),
				HostLinkLatency:   sim.Microsecond,
				FabricLinkLatency: sim.Duration(1+r.Intn(3)) * sim.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			topo, kind = ls.Topology, fmt.Sprintf("leafspine%dx%d", leaves, spines)
		}
		// Fault schedule: every knob the protocol recovers from.
		faults := emunet.Config{
			ChannelState:  r.Intn(2) == 0,
			NumCoS:        1 + r.Intn(2),
			LinkLossProb:  float64(r.Intn(4)) * 0.02,     // wire loss
			NotifCapacity: []int{0, 16, 4}[r.Intn(3)],    // notif drops
			QueueCapacity: []int{0, 8, 4}[r.Intn(3)],     // queue overflow
			MaxID:         []uint32{0, 16, 8}[r.Intn(3)], // rollover pressure
			RetryAfter:    sim.Duration(2+r.Intn(3)) * sim.Millisecond,
		}
		cc := campaignConfig{
			topo:      topo,
			hosts:     hostIDsOf(topo),
			seed:      r.Int63(),
			interval:  sim.Duration(2+r.Intn(8)) * sim.Microsecond,
			snapshots: 3,
			mutate: func(c *emunet.Config) {
				c.ChannelState = faults.ChannelState
				c.NumCoS = faults.NumCoS
				c.LinkLossProb = faults.LinkLossProb
				c.NotifCapacity = faults.NotifCapacity
				c.QueueCapacity = faults.QueueCapacity
				if faults.MaxID != 0 {
					c.MaxID = faults.MaxID
				}
				c.RetryAfter = faults.RetryAfter
			},
		}
		// Churn schedule: half the trials interleave a randomized churn
		// schedule (drawn entirely at build time from its own seed, so
		// serial and parallel replay the identical schedule) with the
		// fault schedule above.
		churnSeed := r.Int63()
		withChurn := trial%2 == 0
		if withChurn {
			sws := make([]topology.NodeID, 0, len(topo.Switches))
			for _, sw := range topo.Switches {
				sws = append(sws, sw.ID)
			}
			cc.churn = func(c *reconcile.Controller) {
				cr := rand.New(rand.NewSource(churnSeed))
				reconcile.LinkFlapStorm(c.Links(), cr,
					sim.Duration(3+cr.Intn(3))*sim.Millisecond, 2+cr.Intn(4),
					sim.Millisecond, sim.Millisecond).Schedule(c)
				node := sws[cr.Intn(len(sws))]
				reconcile.RollingUpgrade([]topology.NodeID{node},
					sim.Duration(4+cr.Intn(3))*sim.Millisecond,
					sim.Duration(1+cr.Intn(2))*sim.Millisecond,
					sim.Millisecond).Schedule(c)
			}
			cc.trafficFor = 12 * sim.Millisecond
			cc.leakCheck = true
		}
		shards := 2 + r.Intn(5)
		name := fmt.Sprintf("trial%d_%s_loss%.2f_notif%d_queue%d_maxid%d_shards%d_churn%v",
			trial, kind, faults.LinkLossProb, faults.NotifCapacity, faults.QueueCapacity,
			faults.MaxID, shards, withChurn)
		t.Run(name, func(t *testing.T) {
			serial := runCampaign(t, cc, 0)
			parallel := runCampaign(t, cc, shards)
			diffArtifacts(t, name, serial, parallel)

			// Soundness: a faulty run may well end with snapshots marked
			// Inconsistent or Incomplete — what it must never do is
			// disagree silently: the audit proving broken a snapshot the
			// observer published as consistent.
			for _, a := range []artifacts{serial, parallel} {
				if a.disagreements != 0 {
					t.Fatalf("audit found %d silent disagreements", a.disagreements)
				}
				if a.tally.SilentDisagreement != 0 {
					t.Fatalf("churn classification found silent disagreement: %s", a.tally)
				}
			}
			if withChurn && serial.churn == "" {
				t.Fatal("churn trial journaled no churn events")
			}
			if serial.journal == "" {
				t.Fatal("campaign recorded no journal events")
			}
		})
	}
}
