package emunet_test

// Acceptance tests for the epoch causal tracer against live campaigns:
// the reconstructed critical path must partition each epoch's
// completion latency exactly, and attribution must point at a
// deliberately injected straggler.

import (
	"strings"
	"testing"

	"speedlight/internal/dist"
	"speedlight/internal/emunet"
	"speedlight/internal/epochtrace"
	"speedlight/internal/export"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// sixtyFourPortCampaign builds a 4x4 leaf-spine with 8 hosts per leaf:
// 4 leaves x (8 host + 4 uplink) ports + 4 spines x 4 downlinks = 64
// switch ports.
func sixtyFourPortCampaign(seed int64, mutate func(*emunet.Config)) campaignConfig {
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	return campaignConfig{
		topo:      ls.Topology,
		hosts:     hostIDsOf(ls.Topology),
		seed:      seed,
		interval:  3 * sim.Microsecond,
		snapshots: 6,
		mutate:    mutate,
	}
}

// TestCriticalPathSumMatchesCompletionLatency runs a seeded 64-port
// campaign and checks the acceptance bound: for every traced epoch the
// critical-path segment durations sum to the epoch's completion
// latency within 1%. (The reconstruction actually guarantees an exact
// partition; the test asserts the stronger property and reports
// against the 1% bound.)
func TestCriticalPathSumMatchesCompletionLatency(t *testing.T) {
	art := runCampaign(t, sixtyFourPortCampaign(17, nil), 0)
	traces, err := export.ReadEpochTraceJSONL(strings.NewReader(art.epochs))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("campaign produced no epoch traces")
	}
	for _, tr := range traces {
		dur, sum := tr.DurationNs(), tr.CriticalSumNs()
		tol := dur / 100
		if tol < 1 {
			tol = 1
		}
		if diff := sum - dur; diff > tol || diff < -tol {
			t.Errorf("epoch %d: critical-path sum %dns vs completion latency %dns (off by %dns, 1%% bound %dns)",
				tr.ID, sum, dur, diff, tol)
		}
		if sum != dur {
			t.Errorf("epoch %d: partition not exact: sum %dns != duration %dns", tr.ID, sum, dur)
		}
		if len(tr.Critical) == 0 && tr.Excluded == 0 {
			t.Errorf("epoch %d: completed epoch has no critical-path segments", tr.ID)
		}
	}
	// The fabric has 8 switches; a completed epoch's wavefront must
	// have touched all of them.
	if got := len(traces[0].Switches); got != 8 {
		t.Errorf("epoch %d wavefront covers %d switches, want 8", traces[0].ID, got)
	}
}

// TestCriticalPathAttributesInjectedStraggler makes one switch's
// control plane deliberately slow via CPServiceTimeFor and checks the
// rollup names it as the top critical-path contributor, with the time
// landing in the control-plane buckets.
func TestCriticalPathAttributesInjectedStraggler(t *testing.T) {
	const slow = topology.NodeID(2) // a leaf switch
	cc := sixtyFourPortCampaign(17, func(c *emunet.Config) {
		// A fast uniform control plane everywhere (5us/notification)
		// keeps the fabric itself out of the way; the straggler pays
		// 60x that on every notification. Recovery timers are pushed
		// out so the observer waits for the straggler instead of
		// retrying, which would smear attribution across switches.
		c.CPServiceTime = dist.Constant{V: 5_000}
		c.CPServiceTimeFor = func(node topology.NodeID) dist.Dist {
			if node == slow {
				return dist.Constant{V: 300_000}
			}
			return nil
		}
		c.RetryAfter = 100 * sim.Millisecond
		c.ExcludeAfter = 200 * sim.Millisecond
	})
	cc.snapshots = 4
	art := runCampaign(t, cc, 0)
	traces, err := export.ReadEpochTraceJSONL(strings.NewReader(art.epochs))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("campaign produced no epoch traces")
	}
	r := epochtrace.NewRollup(traces)
	top := r.Top(1)
	if len(top) == 0 {
		t.Fatal("rollup has no switch attribution")
	}
	if top[0].Switch != int(slow) {
		t.Fatalf("top critical-path contributor is switch %d, want injected straggler %d\nrollup: %+v",
			top[0].Switch, slow, r.Switches)
	}
	// The injected delay is control-plane service time, so it must
	// surface in the cp buckets, not wavefront or wire.
	cp := top[0].CPQueueNs + top[0].CPServiceNs
	if cp <= top[0].WavefrontNs+top[0].WireNs {
		t.Errorf("straggler time not in control-plane buckets: cp=%dns wavefront=%dns wire=%dns",
			cp, top[0].WavefrontNs, top[0].WireNs)
	}
	// And the slowdown must dominate: the straggler should carry most
	// epochs' critical paths.
	if top[0].Epochs*2 < r.Epochs {
		t.Errorf("straggler on only %d of %d critical paths", top[0].Epochs, r.Epochs)
	}
}
