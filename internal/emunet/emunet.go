// Package emunet assembles the full Speedlight system on the
// discrete-event simulator: switches (data plane + control plane +
// PTP-disciplined clock), links with propagation and serialization
// delay, bounded egress queues, the lossy notification path to each
// switch CPU with a modeled per-notification service time, and a
// snapshot observer connected over the network.
//
// This is the stand-in for the paper's Wedge100BF testbed (and for the
// large-network simulation behind its Figure 11). All randomness comes
// from the engine's seed; runs are reproducible.
package emunet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"speedlight/internal/audit"
	"speedlight/internal/clock"
	"speedlight/internal/control"
	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/dataplane"
	"speedlight/internal/dist"
	"speedlight/internal/epochtrace"
	"speedlight/internal/invariant"
	"speedlight/internal/journal"
	"speedlight/internal/observer"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/snapstore"
	"speedlight/internal/telemetry"
	"speedlight/internal/topology"
)

// BroadcastHost is the destination address of control-plane marker
// broadcasts. Markers advance snapshot IDs across every channel of the
// receiving device and are then dropped (single-hop scope), providing
// the liveness mechanism of Section 6 for traffic-free channels.
const BroadcastHost = topology.HostID(0xFFFFFFFF)

// Config parameterizes an emulated network.
type Config struct {
	// Topo is the network topology. Required.
	Topo *topology.Topology
	// Seed drives all randomness.
	Seed int64

	// Shards selects the simulation engine: 0 or 1 runs the serial
	// reference engine; >= 2 runs the conservative parallel engine with
	// that many worker shards. Both produce byte-identical journals,
	// audit reports, and snapshots for the same seed; see DESIGN.md for
	// the determinism contract. With shards, every switch-to-switch
	// link crossing a shard boundary must have positive latency.
	Shards int
	// Lookahead overrides the parallel engine's conservative lookahead.
	// Zero derives it from the topology (the minimum latency of any
	// cross-shard switch-to-switch link); a non-zero value larger than
	// that minimum is rejected at build time.
	Lookahead sim.Duration
	// ShardOf, when set, pins each switch to a shard in [0, Shards).
	// Nil assigns switches round-robin in topology order.
	ShardOf func(node topology.NodeID) int

	// Snapshot protocol parameters.
	MaxID        uint32
	WrapAround   bool
	ChannelState bool

	// NumCoS is the number of Class-of-Service levels (strict priority;
	// higher class wins). Each class is an independent FIFO logical
	// channel in the snapshot model. Zero means 1.
	NumCoS int

	// Metrics selects each unit's snapshot target. Nil defaults to
	// per-unit packet counters. The factory may return nil for "use the
	// default for this unit".
	Metrics func(net *Network, id dataplane.UnitID) core.Metric

	// NewBalancer builds each switch's load balancer. Nil defaults to
	// ECMP.
	NewBalancer func(node topology.NodeID, r *rand.Rand) routing.Balancer

	// Clock is the control planes' synchronization quality. The zero
	// value defaults to clock.PTP().
	Clock clock.Config

	// CPNotifLatency is the data-plane-to-CPU delivery latency of a
	// notification (DMA + kernel). Default: ~10 µs lognormal.
	CPNotifLatency dist.Dist
	// CPServiceTime is the control plane's per-notification processing
	// time — the bottleneck behind the paper's Figure 10. Default:
	// ~110 µs lognormal (calibrated to ~70 snapshots/s at 64 ports).
	CPServiceTime dist.Dist
	// CPServiceTimeFor overrides CPServiceTime per switch: a non-nil
	// return replaces the global distribution for that node. Fault
	// injection uses it to slow one control plane and check that the
	// epoch tracer's critical path names the straggler.
	CPServiceTimeFor func(node topology.NodeID) dist.Dist
	// InitiationLatency is the delay between a control plane's local
	// deadline and the initiation reaching the data plane (scheduler
	// wakeup + driver). Default: ~2 µs lognormal with a 15 µs p99.
	InitiationLatency dist.Dist
	// ObserverLatency is the control-plane-to-observer result delivery
	// time. Default: 50 µs constant.
	ObserverLatency dist.Dist
	// ObserverMinLatency floors sampled observer latencies and doubles
	// as the conservative lookahead of the switch-to-observer shard
	// pairs: result deliveries execute in the observer's own domain (so
	// snapshot assembly, store ingest and invariant evaluation run off
	// the serialized global domain), and the parallel engine needs a
	// positive lower bound on their delivery time. Samples below the
	// floor are raised to it — identically on both engines, keeping
	// serial and sharded runs byte-equal. Default 1 µs, far under the
	// 50 µs default delivery time.
	ObserverMinLatency sim.Duration

	// LinkRateBps is the transmission rate of every link. Default
	// 25 Gb/s (the testbed's server links).
	LinkRateBps float64
	// QueueCapacity bounds each egress queue, in packets. Default 512.
	QueueCapacity int
	// NotifCapacity bounds each switch CPU's notification socket
	// buffer. Default 4096.
	NotifCapacity int

	// RetryAfter / ExcludeAfter configure the observer's recovery
	// timers (zero keeps the defaults: 5 ms / 50 ms). Negative disables.
	RetryAfter   sim.Duration
	ExcludeAfter sim.Duration

	// LinkLossProb drops each switch-to-switch wire transmission with
	// this probability (failure injection). The snapshot protocol is
	// designed to survive loss: IDs piggyback on every packet and the
	// control planes re-initiate and poll (Section 6).
	LinkLossProb float64

	// SnapshotDisabled lists switches that forward traffic but do not
	// participate in snapshots (partial deployment, Section 10).
	SnapshotDisabled map[topology.NodeID]bool

	// OnDeliver, when set, observes every packet delivered to a host.
	// Setting it routes deliveries through the serializing global
	// domain, so invocations are single-threaded and deterministically
	// ordered even under Shards > 1 (at some cost to scaling).
	OnDeliver func(pkt *packet.Packet, host topology.HostID, now sim.Time)

	// OnProgress, when set, observes every progress-relevant data-plane
	// notification (the ones entering synchronization windows), keyed by
	// the unwrapped snapshot ID it advances. Experiments use it to
	// collect per-unit timing distributions. Under Shards > 1 it is
	// invoked from concurrent shard workers (serialized only per
	// switch): the hook must be thread-safe, and must not depend on
	// cross-switch invocation order.
	OnProgress func(id packet.SeqID, at sim.Time)

	// OnInject, when set, observes every host packet injection at its
	// injection time — e.g., to record a workload as a replayable
	// trace.
	OnInject func(pkt *packet.Packet, host topology.HostID, at sim.Time)

	// Registry, when set, enables telemetry: every protocol layer's
	// counters and histograms are registered on it. Nil disables
	// instrumentation at zero hot-path cost.
	Registry *telemetry.Registry
	// Tracer, when set, records snapshot-lifecycle spans.
	Tracer *telemetry.Tracer

	// Journal, when set, enables the flight recorder: every protocol
	// layer appends structured events to its per-switch rings, and
	// Network.Audit() can mechanically verify the run. Nil disables
	// journaling at one nil check per potential event.
	Journal *journal.Set
	// FlightRecorderSize is how many trailing events an anomaly dump
	// carries. Zero means 512.
	FlightRecorderSize int
	// OnAnomaly, when set, fires when a snapshot finalizes inconsistent
	// or with exclusions, or when a repeat retry of the same snapshot
	// shows recovery is not unsticking it —
	// with the flight-recorder tail at that moment (nil without a
	// Journal).
	OnAnomaly func(reason string, snapshotID packet.SeqID, dump []journal.Event)

	// Snapstore, when set, ingests every completed global snapshot as a
	// sealed delta-encoded epoch in the snapshot-history store (see
	// internal/snapstore). Ingestion runs on the observer's completion
	// path in the serialized global domain.
	Snapstore *snapstore.Store
	// Invariants, when set, streams every epoch sealed into Snapstore
	// through the registered invariants; each violation fires OnAnomaly
	// with a flight-recorder dump. Requires Snapstore.
	Invariants *invariant.Engine
}

func (c *Config) setDefaults() {
	if c.MaxID == 0 {
		c.MaxID = 256
	}
	if c.NumCoS <= 0 {
		c.NumCoS = 1
	}
	if c.Clock.ResidualOffset == nil {
		c.Clock = clock.PTP()
	}
	if c.CPNotifLatency == nil {
		c.CPNotifLatency = dist.LogNormalFromMedianP99(10_000, 40_000)
	}
	if c.CPServiceTime == nil {
		c.CPServiceTime = dist.LogNormalFromMedianP99(110_000, 200_000)
	}
	if c.InitiationLatency == nil {
		c.InitiationLatency = dist.LogNormalFromMedianP99(2_000, 15_000)
	}
	if c.ObserverLatency == nil {
		c.ObserverLatency = dist.Constant{V: 50_000}
	}
	if c.ObserverMinLatency <= 0 {
		c.ObserverMinLatency = sim.Microsecond
	}
	if c.LinkRateBps == 0 {
		c.LinkRateBps = 25e9
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 512
	}
	if c.NotifCapacity == 0 {
		c.NotifCapacity = 4096
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 5 * sim.Millisecond
	}
	if c.ExcludeAfter == 0 {
		c.ExcludeAfter = 50 * sim.Millisecond
	}
}

// queuedPkt is one packet waiting in an egress queue.
type queuedPkt struct {
	pkt *packet.Packet
}

// pktFIFO is a head-indexed FIFO: pops advance a cursor instead of
// re-slicing the front (which strands the backing array's prefix and
// forces append to keep growing fresh arrays), and the buffer compacts
// once the dead prefix dominates. Steady state pushes and pops without
// allocating.
type pktFIFO struct {
	items []queuedPkt
	head  int
}

func (f *pktFIFO) len() int { return len(f.items) - f.head }

//speedlight:hotpath
func (f *pktFIFO) push(q queuedPkt) { f.items = append(f.items, q) }

//speedlight:hotpath
func (f *pktFIFO) peek() queuedPkt { return f.items[f.head] }

//speedlight:hotpath
func (f *pktFIFO) pop() queuedPkt {
	q := f.items[f.head]
	f.items[f.head].pkt = nil // unpin
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	} else if f.head >= 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		clearTail(f.items[n:])
		f.items = f.items[:n]
		f.head = 0
	}
	return q
}

func clearTail(s []queuedPkt) {
	for i := range s {
		s[i].pkt = nil
	}
}

// portQueue is one egress port's set of per-class FIFO queues with a
// single strict-priority transmitter: within a class order holds, but
// a higher class's packets overtake lower ones — exactly the CoS
// channel model of Section 4.1.
type portQueue struct {
	perCoS      []pktFIFO
	txScheduled bool
	drops       uint64
}

func (q *portQueue) length() int {
	n := 0
	for i := range q.perCoS {
		n += q.perCoS[i].len()
	}
	return n
}

// head returns the highest-priority non-empty class, or -1.
//
//speedlight:hotpath
func (q *portQueue) head() int {
	for cos := len(q.perCoS) - 1; cos >= 0; cos-- {
		if q.perCoS[cos].len() > 0 {
			return cos
		}
	}
	return -1
}

// EmuSwitch is one emulated switch: data plane, control plane, clock,
// and per-port egress queues.
type EmuSwitch struct {
	Node   topology.NodeID
	DP     *dataplane.Switch
	CP     *control.Plane
	Clock  *clock.Clock
	queues []*portQueue

	// dom is the switch's scheduling domain on the engine; proc is its
	// scheduling handle. All of this struct's mutable state is owned by
	// that domain: only its own events (or serialized global-domain
	// events) may touch it.
	dom  int
	proc sim.Proc

	cpBusy bool // notification processing loop active
	// cpService is the switch's per-notification service time — the
	// global Config.CPServiceTime unless CPServiceTimeFor overrides it.
	cpService dist.Dist

	// Churn state (see churn.go). down marks the switch out of the
	// fabric; gen is bumped on every down/up transition so in-flight
	// closure-free events armed against the old incarnation no-op
	// instead of touching flushed queues or a rebooted control plane;
	// linkDown marks administratively drained ports. All three are
	// written only from serialized global-domain events (workers
	// parked), so shard-context reads are race-free.
	down     bool
	gen      int64
	linkDown []bool
	rng      *rand.Rand
	// pkts counts this switch's wire arrivals (per-switch throughput).
	pkts *telemetry.Counter
	// ppool is the switch's packet free list (see packet.Pool): touched
	// only by this switch's domain events or with workers parked, and
	// balanced against other switches through the network's central
	// exchange.
	ppool packet.Pool
}

// QueueLen returns the occupancy of an egress queue in packets, summed
// over service classes.
func (s *EmuSwitch) QueueLen(port int) int { return s.queues[port].length() }

// QueueDrops returns packets dropped at a full egress queue.
func (s *EmuSwitch) QueueDrops(port int) uint64 { return s.queues[port].drops }

// syncWindow tracks the earliest and latest notification timestamps
// observed for one snapshot ID (the paper's synchronization metric,
// Section 8.1).
type syncWindow struct {
	min, max sim.Time
	count    int
	// first and last identify the earliest and latest contributing
	// notifications, for diagnosing stragglers.
	first, last SyncContributor
}

// SyncContributor identifies one notification that entered a snapshot's
// synchronization window.
type SyncContributor struct {
	Unit    dataplane.UnitID
	Channel int // -1 for a snapshot ID advance
	At      sim.Time
}

// Network is the emulated Speedlight deployment.
type Network struct {
	cfg Config
	eng sim.Sim
	// doms maps each switch to its scheduling domain (topology order,
	// starting at 1). The observer runs in its own domain right after
	// the switches; sim.GlobalDomain keeps only drivers, recovery
	// timers, and churn.
	doms map[topology.NodeID]int
	// gproc is the global domain's scheduling handle.
	gproc sim.Proc
	// obsDom/obsProc address the observer's domain: snapshot results,
	// snapstore ingest, invariant evaluation, and epoch-trace stamping
	// all execute there, off the coordinator's critical path.
	obsDom   int
	obsProc  sim.Proc
	topo     *topology.Topology
	fibs     map[topology.NodeID]*routing.FIB
	utilized map[topology.NodeID]map[[2]int]bool
	sws      map[topology.NodeID]*EmuSwitch
	obs      *observer.Observer
	done     []*observer.GlobalSnapshot
	// completed counts assembled global snapshots (atomic: health
	// probes read it concurrently with the global domain).
	completed atomic.Uint64
	// retried marks snapshots the observer has already retried once;
	// a repeat retry means recovery is not unsticking them.
	retried map[packet.SeqID]bool
	// syncMu guards syncs: notifications record windows from concurrent
	// shard workers.
	syncMu sync.Mutex
	syncs  map[packet.SeqID]*syncWindow
	gauges map[dataplane.UnitID]*counters.Gauge
	// wireDrops counts packets lost to injected link failures (atomic:
	// switch domains on different shards drop concurrently).
	wireDrops atomic.Uint64
	// churnDrops counts packets eaten by churn: arrivals at a down
	// switch, and transmissions onto a drained link (atomic, as
	// wireDrops).
	churnDrops atomic.Uint64
	// gateSets mirrors each unit's completion-gating channels, used to
	// filter synchronization recording to progress-relevant
	// notifications.
	gateSets map[dataplane.UnitID]map[int]bool

	// Telemetry handles; all nil (no-op) when cfg.Registry is nil.
	dpTel *dataplane.Telemetry
	cpTel *control.Telemetry
	tel   netTelemetry

	// Packet pooling: central is the exchange behind every switch's
	// free list; dpool is the driver/global-context pool (NewPacket,
	// global-domain deliveries).
	central *packet.Central
	dpool   packet.Pool

	// Cached closure-free callbacks (method values evaluate to a fresh
	// allocation each time, so they are bound once here). These carry
	// the hottest per-packet schedules: wire arrival, head-of-line
	// transmit, host delivery, and the CP notification loop.
	arriveFn        sim.CallFn
	txFn            sim.CallFn
	deliverLocalFn  sim.CallFn
	deliverGlobalFn sim.CallFn
	cpFn            sim.CallFn
}

// netTelemetry is the emulation harness's own metric set, covering the
// layers the protocol packages cannot see: egress queues, the wire,
// and assembled-snapshot quality.
type netTelemetry struct {
	syncSpreadUS   *telemetry.Histogram
	queueDrops     *telemetry.Counter
	queueHighWater *telemetry.Gauge
	wireDrops      *telemetry.Counter
	injected       *telemetry.Counter
	delivered      *telemetry.Counter
	switchPkts     *telemetry.CounterVec
}

func newNetTelemetry(reg *telemetry.Registry) netTelemetry {
	return netTelemetry{
		syncSpreadUS: reg.Histogram("speedlight_net_sync_spread_us",
			"snapshot synchronization spread, earliest to latest notification (microseconds)", telemetry.LatencyBucketsUS),
		queueDrops:     reg.Counter("speedlight_net_queue_drops_total", "packets dropped at full egress queues"),
		queueHighWater: reg.Gauge("speedlight_net_queue_high_water", "deepest egress queue occupancy"),
		wireDrops:      reg.Counter("speedlight_net_wire_drops_total", "packets lost to injected link failures"),
		injected:       reg.Counter("speedlight_net_packets_injected_total", "packets injected from hosts"),
		delivered:      reg.Counter("speedlight_net_packets_delivered_total", "packets delivered to hosts"),
		switchPkts:     reg.CounterVec("speedlight_net_switch_packets_total", "wire arrivals per switch", "switch"),
	}
}

// buildEngine picks the serial or sharded engine and assigns scheduling
// domains: switch i of the topology is domain i+1, and the observer
// runs in its own domain right after the switches (see observerDomain).
// sim.GlobalDomain keeps only what truly serializes: drivers, recovery
// timers, and churn. On the sharded engine the cross-shard channel set
// is declared per pair — each ordered shard pair gets the minimum
// latency of the switch links that actually cross it as its lookahead —
// so shards synchronize against their real neighbors instead of a
// fleet-wide horizon.
func buildEngine(cfg *Config) (sim.Sim, map[topology.NodeID]int, error) {
	doms := make(map[topology.NodeID]int, len(cfg.Topo.Switches))
	for i, sw := range cfg.Topo.Switches {
		doms[sw.ID] = i + 1
	}
	if cfg.Shards <= 1 {
		return sim.NewEngine(cfg.Seed), doms, nil
	}
	shard := make(map[topology.NodeID]int, len(doms))
	for i, sw := range cfg.Topo.Switches {
		s := i % cfg.Shards
		if cfg.ShardOf != nil {
			s = cfg.ShardOf(sw.ID)
			if s < 0 || s >= cfg.Shards {
				return nil, nil, fmt.Errorf("emunet: ShardOf(%d) = %d out of range [0,%d)", sw.ID, s, cfg.Shards)
			}
		}
		shard[sw.ID] = s
	}
	// Conservative lookahead: no cross-shard interaction may undercut
	// it. The only cross-shard sends the emulation performs are wire
	// hops, so the bound is the minimum latency of any switch-to-switch
	// link whose endpoints land on different shards.
	minCross := sim.Duration(-1)
	for _, sw := range cfg.Topo.Switches {
		for _, peer := range sw.Ports {
			if peer.Kind != topology.PeerSwitch || shard[sw.ID] == shard[peer.Node] {
				continue
			}
			l := sim.Duration(peer.Latency)
			if l <= 0 {
				return nil, nil, fmt.Errorf("emunet: link %d<->%d crosses shards with zero latency; sharded simulation needs positive cross-shard link latency", sw.ID, peer.Node)
			}
			if minCross < 0 || l < minCross {
				minCross = l
			}
		}
	}
	la := cfg.Lookahead
	switch {
	case la <= 0:
		la = minCross
		if la < 0 {
			// No link crosses shards; any lookahead is causally safe.
			la = sim.Millisecond
		}
	case minCross >= 0 && la > minCross:
		return nil, nil, fmt.Errorf("emunet: lookahead %d exceeds minimum cross-shard link latency %d", la, minCross)
	}
	p := sim.NewParallel(cfg.Seed, cfg.Shards, la)
	for _, sw := range cfg.Topo.Switches {
		p.Place(doms[sw.ID], shard[sw.ID])
	}
	// The observer domain follows the same modulo placement rule as the
	// switches (it is "domain len(switches)+1"), so its shard assignment
	// is stable as topologies grow.
	obsShard := len(cfg.Topo.Switches) % cfg.Shards
	p.Place(observerDomain(cfg.Topo), obsShard)

	// Declare the actual cross-shard channel set. Each ordered shard
	// pair's lookahead is the minimum latency among the switch links
	// whose sender lands on the pair's source shard and receiver on its
	// destination shard — wire hops are scheduled with the sending
	// port's latency, so that bound is exact, not merely conservative.
	type shardPair struct{ from, to int }
	pairMin := make(map[shardPair]sim.Duration)
	declare := func(from, to int, l sim.Duration) {
		if from == to {
			return
		}
		pr := shardPair{from, to}
		if cur, ok := pairMin[pr]; !ok || l < cur {
			pairMin[pr] = l
		}
	}
	for _, sw := range cfg.Topo.Switches {
		for _, peer := range sw.Ports {
			if peer.Kind == topology.PeerSwitch {
				declare(shard[sw.ID], shard[peer.Node], sim.Duration(peer.Latency))
			}
		}
	}
	// Every switch shard reports snapshot results to the observer's
	// shard; those sends are floored at ObserverMinLatency, which is
	// therefore the pair's lookahead.
	for _, sw := range cfg.Topo.Switches {
		declare(shard[sw.ID], obsShard, cfg.ObserverMinLatency)
	}
	links := make([]sim.ShardLink, 0, len(pairMin))
	for pr, l := range pairMin {
		links = append(links, sim.ShardLink{From: pr.from, To: pr.to, Lookahead: l})
	}
	sort.Slice(links, func(a, b int) bool {
		if links[a].From != links[b].From {
			return links[a].From < links[b].From
		}
		return links[a].To < links[b].To
	})
	p.SetShardLinks(links)
	return p, doms, nil
}

// observerDomain returns the scheduling domain that hosts the snapshot
// observer: the slot right after the last switch domain. Keeping the
// observer out of sim.GlobalDomain lets snapstore ingest, invariant
// evaluation, and epoch-trace stamping run on a shard worker instead of
// serializing on the coordinator.
func observerDomain(topo *topology.Topology) int { return len(topo.Switches) + 1 }

// New builds and wires the emulated network.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("emunet: nil topology")
	}
	cfg.setDefaults()
	eng, doms, err := buildEngine(&cfg)
	if err != nil {
		return nil, err
	}
	if p, ok := eng.(*sim.Parallel); ok && cfg.Registry != nil {
		// Publish per-shard barrier wait/work counters. The wall clock
		// arrives as an injected func so this package stays free of
		// direct time reads; the profiler observes rounds without
		// perturbing the deterministic schedule.
		p.EnableBarrierMetrics(cfg.Registry, telemetry.NowNs)
	}

	fibs, err := routing.ComputeFIBs(cfg.Topo)
	if err != nil {
		return nil, err
	}

	n := &Network{
		cfg:      cfg,
		eng:      eng,
		doms:     doms,
		gproc:    eng.Proc(sim.GlobalDomain),
		obsDom:   observerDomain(cfg.Topo),
		topo:     cfg.Topo,
		fibs:     fibs,
		utilized: routing.UtilizedPairs(cfg.Topo, fibs),
		sws:      make(map[topology.NodeID]*EmuSwitch),
		retried:  make(map[packet.SeqID]bool),
		syncs:    make(map[packet.SeqID]*syncWindow),
		gauges:   make(map[dataplane.UnitID]*counters.Gauge),
		gateSets: make(map[dataplane.UnitID]map[int]bool),
		dpTel:    dataplane.NewTelemetry(cfg.Registry),
		cpTel:    control.NewTelemetry(cfg.Registry),
		tel:      newNetTelemetry(cfg.Registry),
		central:  packet.NewCentral(),
	}
	n.obsProc = eng.Proc(n.obsDom)
	n.dpool = n.central.NewPool()
	n.arriveFn = n.arriveCall
	n.txFn = n.txCall
	n.deliverLocalFn = n.deliverLocalCall
	n.deliverGlobalFn = n.deliverGlobalCall
	n.cpFn = n.cpCall

	// Stamp the deployment parameters into the journal so offline
	// audits (doctor) recover them without side-channel configuration.
	if cfg.Journal != nil {
		cfg.Journal.Observer().Append(journal.Config(uint64(cfg.MaxID), cfg.WrapAround, cfg.ChannelState))
	}

	obs, err := observer.New(observer.Config{
		MaxID:        cfg.MaxID,
		WrapAround:   cfg.WrapAround,
		RetryAfter:   nonNeg(cfg.RetryAfter),
		ExcludeAfter: nonNeg(cfg.ExcludeAfter),
		Telemetry:    observer.NewTelemetry(cfg.Registry),
		Tracer:       cfg.Tracer,
		Journal:      cfg.Journal.Observer(),
		OnComplete: func(g *observer.GlobalSnapshot) {
			n.done = append(n.done, g)
			delete(n.retried, g.ID)
			n.completed.Add(1)
			var sync sim.Duration
			if d, ok := n.SyncSpread(g.ID); ok {
				sync = d
				n.tel.syncSpreadUS.Observe(d.Micros())
			}
			if !g.Consistent {
				n.anomaly(fmt.Sprintf("snapshot %d finalized inconsistent", g.ID), g.ID)
			} else if len(g.Excluded) > 0 {
				n.anomaly(fmt.Sprintf("snapshot %d finalized with %d device(s) excluded", g.ID, len(g.Excluded)), g.ID)
			}
			if st := n.cfg.Snapstore; st != nil {
				ep := st.Ingest(g, sync)
				st.RecordLag(n.completed.Load())
				if eng := n.cfg.Invariants; eng != nil {
					for _, viol := range eng.Eval(st.View(), ep) {
						n.anomaly(viol.String(), g.ID)
					}
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	n.obs = obs

	for _, swSpec := range cfg.Topo.Switches {
		if err := n.buildSwitch(swSpec); err != nil {
			return nil, err
		}
	}

	// Register snapshot-enabled switches with the observer and start
	// their clock discipline tickers, in topology order for
	// deterministic event sequencing. Each clock ticks in its own
	// switch's domain: the clock is switch state.
	for _, swSpec := range cfg.Topo.Switches {
		es := n.sws[swSpec.ID]
		if !cfg.SnapshotDisabled[swSpec.ID] {
			n.obs.Register(swSpec.ID, es.DP.UnitIDs())
		}
		es.proc.NewTicker(sim.Duration(es.Clock.SyncInterval()), func() {
			es.Clock.Sync(es.proc.Now())
		})
	}

	// Observer recovery ticker: global-domain, so it may touch any
	// switch's state (workers are parked while it runs).
	if cfg.RetryAfter > 0 || cfg.ExcludeAfter > 0 {
		n.gproc.NewTicker(sim.Millisecond, func() { n.handleTimeouts() })
	}

	return n, nil
}

func nonNeg(d sim.Duration) sim.Duration {
	if d < 0 {
		return 0
	}
	return d
}

func (n *Network) buildSwitch(spec *topology.Switch) error {
	cfg := n.cfg
	node := spec.ID
	es := &EmuSwitch{Node: node, dom: n.doms[node], rng: n.eng.NewRand()}
	es.proc = n.eng.Proc(es.dom)
	es.cpService = cfg.CPServiceTime
	if cfg.CPServiceTimeFor != nil {
		if d := cfg.CPServiceTimeFor(node); d != nil {
			es.cpService = d
		}
	}
	if n.tel.switchPkts != nil {
		es.pkts = n.tel.switchPkts.With(fmt.Sprint(node))
	}

	if err := n.provisionPlanes(es, spec); err != nil {
		return err
	}
	es.Clock = clock.New(cfg.Clock, n.eng.NewRand())

	es.queues = make([]*portQueue, len(spec.Ports))
	for i := range es.queues {
		es.queues[i] = &portQueue{perCoS: make([]pktFIFO, cfg.NumCoS)}
	}
	es.linkDown = make([]bool, len(spec.Ports))
	es.ppool = n.central.NewPool()
	n.sws[node] = es
	return nil
}

// provisionPlanes builds (or rebuilds) a switch's data and control
// planes: dataplane registers start zeroed, the forwarding config is
// pushed from the network's current FIBs, and completion gating is
// derived from the current utilized-pair map. Initial construction
// calls it from the driver; SetSwitchUp calls it from a global-domain
// event to model a reboot re-provisioning the device — in both
// contexts the engine's deterministic RNG draws land in the global
// total order, preserving serial-vs-sharded equivalence.
func (n *Network) provisionPlanes(es *EmuSwitch, spec *topology.Switch) error {
	cfg := n.cfg
	node := spec.ID

	edge := map[int]bool{}
	for p, peer := range spec.Ports {
		if peer.Kind == topology.PeerHost {
			edge[p] = true
		}
	}
	var balancer routing.Balancer = routing.ECMP{}
	if cfg.NewBalancer != nil {
		balancer = cfg.NewBalancer(node, n.eng.NewRand())
	}
	metrics := func(id dataplane.UnitID) core.Metric {
		if cfg.Metrics != nil {
			if m := cfg.Metrics(n, id); m != nil {
				return m
			}
		}
		return &counters.PacketCount{}
	}
	dp, err := dataplane.New(dataplane.Config{
		Node:          node,
		NumPorts:      len(spec.Ports),
		MaxID:         cfg.MaxID,
		WrapAround:    cfg.WrapAround,
		ChannelState:  cfg.ChannelState,
		NumCoS:        cfg.NumCoS,
		Metrics:       metrics,
		NotifCapacity: cfg.NotifCapacity,
		// Record synchronization windows at export time, while the
		// unit's unwrapped state still matches the notification. Only
		// progress-relevant notifications count: snapshot ID advances,
		// and last-seen advances on channels that gate completion
		// (structurally idle channels only ever advance via recovery
		// markers, long after the snapshot instant).
		OnNotify: func(notif dataplane.CPUNotification) {
			unit := es.DP.Unit(notif.Unit)
			if notif.SIDChanged() {
				n.recordSync(unit.CurrentSID(), notif.Exported, notif.Unit, -1)
			} else if notif.LastSeenChanged() && n.gateSets[notif.Unit][notif.Channel] {
				n.recordSync(unit.LastSeenUnwrapped(notif.Channel), notif.Exported, notif.Unit, notif.Channel)
			}
		},
		FIB:              n.fibs[node],
		Balancer:         balancer,
		EdgePorts:        edge,
		SnapshotDisabled: cfg.SnapshotDisabled[node],
		Telemetry:        n.dpTel,
		Journal:          cfg.Journal.For(int(node)),
	})
	if err != nil {
		return err
	}
	es.DP = dp

	baseGates := n.completionChannels(spec)
	recordingGates := func(id dataplane.UnitID) []int {
		chans := baseGates(id)
		set := make(map[int]bool, len(chans))
		for _, ch := range chans {
			set[ch] = true
		}
		n.gateSets[id] = set
		return chans
	}
	cp, err := control.New(control.Config{
		Switch:             dp,
		CompletionChannels: recordingGates,
		Telemetry:          n.cpTel,
		Journal:            cfg.Journal.For(int(node)),
		OnResult: func(res control.Result) {
			// The observer lives in its own domain: results cross the
			// network as switch-to-observer sends and land serialized in
			// that domain without touching the coordinator. The sampled
			// latency is floored at ObserverMinLatency, the declared
			// lookahead of every switch-shard-to-observer-shard pair.
			lat := sim.Duration(cfg.ObserverLatency.Sample(es.rng))
			if lat < cfg.ObserverMinLatency {
				lat = cfg.ObserverMinLatency
			}
			es.proc.Send(n.obsDom, lat, func() {
				n.obs.OnResult(res, n.obsProc.Now())
			})
		},
	})
	if err != nil {
		return err
	}
	es.CP = cp
	return nil
}

// completionChannels decides which upstream channels gate snapshot
// completion (channel-state variant), implementing the paper's
// Section 6 "removal of non-utilized upstream neighbors": switch-facing
// ingress units gate on their external channel; host-facing ingress
// units gate on nothing (hosts cannot carry markers); egress units gate
// on the internal channels some forwarding path actually uses (exact,
// from FIB path enumeration) plus their own port, which the initiation
// path refreshes every epoch.
func (n *Network) completionChannels(spec *topology.Switch) func(dataplane.UnitID) []int {
	numCoS := n.cfg.NumCoS
	return func(id dataplane.UnitID) []int {
		if id.Dir == dataplane.Ingress {
			if spec.Ports[id.Port].Kind == topology.PeerSwitch {
				chans := make([]int, numCoS)
				for c := range chans {
					chans[c] = c
				}
				return chans
			}
			return []int{}
		}
		used := n.utilized[spec.ID]
		var chans []int
		for p := range spec.Ports {
			if p != id.Port && !used[[2]int{p, id.Port}] {
				continue
			}
			for c := 0; c < numCoS; c++ {
				chans = append(chans, p*numCoS+c)
			}
		}
		sort.Ints(chans)
		return chans
	}
}

// Engine exposes the simulation engine for workload drivers and tests.
// Drivers run in the engine's global domain: callbacks they schedule
// directly on the engine are serialized with respect to every shard.
func (n *Network) Engine() sim.Sim { return n.eng }

// Proc returns a switch's scheduling handle. Events scheduled through
// it run in that switch's domain — on its shard, in deterministic
// order with the switch's own work. Use it for per-switch driver loops
// that must scale with shards (a driver on Engine() serializes), and
// as the clock source of metrics attached to the switch's units.
func (n *Network) Proc(node topology.NodeID) sim.Proc {
	dom, ok := n.doms[node]
	if !ok {
		panic(fmt.Sprintf("emunet: unknown switch %d", node))
	}
	return n.eng.Proc(dom)
}

// HostProc returns the scheduling handle of the switch a host hangs
// off — the domain an independent per-host traffic source should run
// in (see InjectFrom).
func (n *Network) HostProc(host topology.HostID) sim.Proc {
	h := n.topo.Host(host)
	if h == nil {
		panic(fmt.Sprintf("emunet: unknown host %d", host))
	}
	return n.sws[h.Node].proc
}

// Topo returns the network topology.
func (n *Network) Topo() *topology.Topology { return n.topo }

// Switch returns one emulated switch.
func (n *Network) Switch(node topology.NodeID) *EmuSwitch { return n.sws[node] }

// Unit returns a processing unit anywhere in the network.
func (n *Network) Unit(id dataplane.UnitID) *core.Unit {
	return n.sws[id.Node].DP.Unit(id)
}

// Gauge returns the queue-depth gauge registered for a unit, creating
// it on first use. Metric factories use this to wire egress queue depth
// into snapshots.
func (n *Network) Gauge(id dataplane.UnitID) *counters.Gauge {
	g, ok := n.gauges[id]
	if !ok {
		g = &counters.Gauge{}
		n.gauges[id] = g
	}
	return g
}

// Snapshots returns the global snapshots completed so far.
func (n *Network) Snapshots() []*observer.GlobalSnapshot { return n.done }

// CompletedEpochs returns how many global snapshots the observer has
// assembled. Safe from any goroutine; with Snapstore.Sealed it yields
// the store's ingestion lag for readiness probes.
func (n *Network) CompletedEpochs() uint64 { return n.completed.Load() }

// Journal returns the flight-recorder set the network was built with,
// or nil when journaling is disabled.
func (n *Network) Journal() *journal.Set { return n.cfg.Journal }

// EpochTraces reconstructs per-epoch causal traces (wavefront, span
// tree, critical path) from the journal. Nil when journaling is
// disabled. Driver context only — the reconstruction reads the merged
// journal.
func (n *Network) EpochTraces() []*epochtrace.EpochTrace {
	if n.cfg.Journal == nil {
		return nil
	}
	return epochtrace.Build(n.cfg.Journal.Events())
}

// BarrierProfile returns the sharded engine's cumulative per-shard
// work/wait split, or nil on a serial engine or when no Registry was
// configured. Driver context only.
func (n *Network) BarrierProfile() []sim.BarrierShardStats {
	if p, ok := n.eng.(*sim.Parallel); ok {
		return p.BarrierProfile()
	}
	return nil
}

// BlockedProfile returns the sharded engine's per-pair stall
// attribution in the epoch-trace rollup's wire form, most blocking
// waiter→holdup pair first. Nil on a serial engine or when no
// Registry was configured. Driver context only.
func (n *Network) BlockedProfile() []epochtrace.ShardBlocking {
	p, ok := n.eng.(*sim.Parallel)
	if !ok {
		return nil
	}
	prof := p.BlockedProfile()
	if len(prof) == 0 {
		return nil
	}
	out := make([]epochtrace.ShardBlocking, len(prof))
	for i, b := range prof {
		out[i] = epochtrace.ShardBlocking{Waiter: b.Waiter, Holdup: b.Holdup, WaitNs: b.WaitNs}
	}
	return out
}

// Audit replays the journal and verifies every snapshot's consistency
// invariants. Nil when journaling is disabled.
func (n *Network) Audit() *audit.Report {
	if n.cfg.Journal == nil {
		return nil
	}
	return audit.Run(n.cfg.Journal.Events(), audit.Config{
		MaxID:        uint64(n.cfg.MaxID),
		Wraparound:   n.cfg.WrapAround,
		ChannelState: n.cfg.ChannelState,
	})
}

// anomaly dumps the flight recorder to the OnAnomaly hook. It runs in
// the observer's domain (snapshot finalization) or the global domain
// (recovery timeouts). The journal tail it captures is built from
// per-slot atomic reads and merged deterministically, so reading it
// beside concurrently appending shards is safe; entries mid-publication
// on other shards may simply miss the dump, which a flight recorder
// tolerates.
//
//speedlight:shard
func (n *Network) anomaly(reason string, id packet.SeqID) {
	if n.cfg.OnAnomaly == nil {
		return
	}
	size := n.cfg.FlightRecorderSize
	if size <= 0 {
		size = 512
	}
	n.cfg.OnAnomaly(reason, id, n.cfg.Journal.Tail(size))
}

// Observer exposes the snapshot observer.
func (n *Network) Observer() *observer.Observer { return n.obs }

// Registry returns the telemetry registry the network was built with,
// or nil when telemetry is disabled.
func (n *Network) Registry() *telemetry.Registry { return n.cfg.Registry }

// Tracer returns the snapshot-lifecycle tracer, or nil when disabled.
func (n *Network) Tracer() *telemetry.Tracer { return n.cfg.Tracer }

// NotifDropsTotal sums dropped notifications across all switches.
func (n *Network) NotifDropsTotal() uint64 {
	var total uint64
	for _, es := range n.sws {
		total += es.DP.NotifDrops()
	}
	return total
}

// WireDrops returns packets lost to injected link loss.
func (n *Network) WireDrops() uint64 { return n.wireDrops.Load() }

// ChurnDrops returns packets eaten by fabric churn: arrivals at a down
// switch and transmissions onto a drained link.
func (n *Network) ChurnDrops() uint64 { return n.churnDrops.Load() }

// QueueDropsTotal sums packets dropped at full egress queues.
func (n *Network) QueueDropsTotal() uint64 {
	var total uint64
	for _, es := range n.sws {
		for p := range es.queues {
			total += es.queues[p].drops
		}
	}
	return total
}

// SyncSpread returns the synchronization of snapshot id: the difference
// between the earliest and latest data-plane notification timestamps
// carrying that ID (Section 8.1). The second result is false when no
// notifications for the ID were observed.
func (n *Network) SyncSpread(id packet.SeqID) (sim.Duration, bool) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	w, ok := n.syncs[id]
	if !ok || w.count == 0 {
		return 0, false
	}
	return w.max.Sub(w.min), true
}

// contributorLess is the deterministic tie-break for sync-window
// endpoints when two notifications carry the same timestamp: unit
// identity, then channel. Without it, which contributor "wins" a tied
// endpoint would depend on shard interleaving.
func contributorLess(a, b SyncContributor) bool {
	if a.Unit.Node != b.Unit.Node {
		return a.Unit.Node < b.Unit.Node
	}
	if a.Unit.Port != b.Unit.Port {
		return a.Unit.Port < b.Unit.Port
	}
	if a.Unit.Dir != b.Unit.Dir {
		return a.Unit.Dir < b.Unit.Dir
	}
	return a.Channel < b.Channel
}

// recordSync folds a notification timestamp into the snapshot's
// synchronization window. Called from switch domains on concurrent
// shards; everything it records is order-independent (min/max with
// deterministic tie-breaks, and a count).
func (n *Network) recordSync(id packet.SeqID, at sim.Time, unit dataplane.UnitID, channel int) {
	if debugSync != nil {
		debugSync(id, at, unit, channel)
	}
	if n.cfg.OnProgress != nil {
		n.cfg.OnProgress(id, at)
	}
	c := SyncContributor{Unit: unit, Channel: channel, At: at}
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	w, ok := n.syncs[id]
	if !ok {
		w = &syncWindow{min: at, max: at, first: c, last: c}
		n.syncs[id] = w
		w.count++
		return
	}
	if at < w.min || (at == w.min && contributorLess(c, w.first)) {
		w.min = at
		w.first = c
	}
	if at > w.max || (at == w.max && contributorLess(w.last, c)) {
		w.max = at
		w.last = c
	}
	w.count++
}

// debugSync, when non-nil, observes every sync record (tests only).
var debugSync func(id packet.SeqID, at sim.Time, unit dataplane.UnitID, channel int)

// SyncDetail returns the earliest and latest notifications contributing
// to a snapshot's synchronization window, for diagnosing stragglers.
func (n *Network) SyncDetail(id packet.SeqID) (first, last SyncContributor, ok bool) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	w, found := n.syncs[id]
	if !found || w.count == 0 {
		return SyncContributor{}, SyncContributor{}, false
	}
	return w.first, w.last, true
}

// serialization returns the transmission time of a packet on the link
// behind one of a switch's egress ports (per-link rates override the
// network default).
func (n *Network) serialization(es *EmuSwitch, port int, size uint32) sim.Duration {
	if size == 0 {
		size = 64
	}
	rate := n.cfg.LinkRateBps
	if peer := n.topo.Peer(es.Node, port); peer.RateBps > 0 {
		rate = peer.RateBps
	}
	return sim.DurationOfSeconds(float64(size) * 8 / rate)
}

// InjectFromHost delivers a packet from a host into its leaf switch at
// the current virtual time plus the host link latency. Call it from
// driver or global-domain context; per-host traffic sources that should
// scale with shards use InjectFrom with the host's own proc instead.
func (n *Network) InjectFromHost(host topology.HostID, pkt *packet.Packet) {
	n.InjectFrom(n.gproc, host, pkt)
}

// InjectFrom delivers a packet from a host into its leaf switch using
// the given scheduling handle. p must be either the global proc or the
// host's own switch proc (HostProc) — i.e. the domain the calling event
// runs in.
//speedlight:pool-transfer pkt
func (n *Network) InjectFrom(p sim.Proc, host topology.HostID, pkt *packet.Packet) {
	h := n.topo.Host(host)
	if h == nil {
		panic(fmt.Sprintf("emunet: unknown host %d", host))
	}
	pkt.SrcHost = uint32(host)
	n.tel.injected.Inc()
	if n.cfg.OnInject != nil {
		n.cfg.OnInject(pkt, host, p.Now())
	}
	es := n.sws[h.Node]
	p.SendCall(es.dom, sim.Duration(h.Latency), n.arriveFn, es, pkt, int64(h.Port))
}

// NewPacket returns a zeroed pool-owned packet for injection from
// driver or global-domain context. Ownership passes to the network at
// InjectFrom*; the packet is recycled at its terminal point (host
// delivery or any drop), so the caller — including OnInject/OnDeliver
// hooks — must not retain it past the hand-off. Packets built directly
// with &packet.Packet{...} remain outside the pool and are never
// recycled.
func (n *Network) NewPacket() *packet.Packet { return n.dpool.Get() }

// NewPacketFor is NewPacket for a per-host traffic source running in
// the host's own switch domain (InjectFrom with HostProc): the packet
// comes from that switch's pool, which the calling context owns.
func (n *Network) NewPacketFor(host topology.HostID) *packet.Packet {
	h := n.topo.Host(host)
	if h == nil {
		panic(fmt.Sprintf("emunet: unknown host %d", host))
	}
	return n.sws[h.Node].ppool.Get()
}

// arriveCall, txCall, deliverLocalCall, deliverGlobalCall and cpCall
// are the closure-free event callbacks behind the per-packet schedules
// (bound once into the *Fn fields at construction).
//speedlight:pool-transfer b
//speedlight:shard
func (n *Network) arriveCall(a, b any, i int64) {
	n.arrive(a.(*EmuSwitch), b.(*packet.Packet), int(i))
}

// arrive handles a packet arriving at a switch port from the wire.
// Runs in es's domain.
//
//speedlight:hotpath
//speedlight:pool-transfer pkt
func (n *Network) arrive(es *EmuSwitch, pkt *packet.Packet, port int) {
	if es.down || es.linkDown[port] {
		// The switch left the fabric (or the ingress link was drained)
		// while this packet was on the wire: the wire eats it. The Put
		// keeps teardown leak-free — every in-flight pooled packet
		// still reaches a pool.
		n.churnDrops.Add(1)
		es.ppool.Put(pkt)
		return
	}
	now := es.proc.Now()
	es.pkts.Inc()
	if topology.HostID(pkt.DstHost) == BroadcastHost {
		// Marker broadcast from a neighbor: refresh this port's external
		// channel, then die. Internal channels are refreshed by this
		// device's own CP-injected markers, so no re-flood is needed —
		// which also rules out flooding loops.
		es.DP.IngressOnly(pkt, port, now)
		es.ppool.Put(pkt)
		n.drainNotifs(es)
		return
	}
	res := es.DP.Ingress(pkt, port, now)
	n.drainNotifs(es)
	if res.Drop {
		es.ppool.Put(pkt)
		return
	}
	n.enqueue(es, pkt, res.EgressPort)
}

// enqueue places a packet into an egress queue, dropping at capacity,
// and starts the transmitter if idle.
//
//speedlight:hotpath
//speedlight:pool-transfer pkt
func (n *Network) enqueue(es *EmuSwitch, pkt *packet.Packet, port int) {
	q := es.queues[port]
	if q.length() >= n.cfg.QueueCapacity {
		q.drops++
		n.tel.queueDrops.Inc()
		es.ppool.Put(pkt)
		return
	}
	cos := int(pkt.CoS)
	if cos >= len(q.perCoS) {
		cos = len(q.perCoS) - 1
	}
	q.perCoS[cos].push(queuedPkt{pkt: pkt})
	n.tel.queueHighWater.SetMax(int64(q.length()))
	n.setDepthGauge(es, port)
	if !q.txScheduled {
		q.txScheduled = true
		n.scheduleTx(es, port)
	}
}

// scheduleTx arms the transmitter for the current head-of-line packet.
// The chosen class rides in the event (i = gen<<16 | port<<8 | cos):
// strict priority is decided when the transmitter is armed, and FIFO
// order within a class guarantees the class's head at fire time is the
// same packet that was priced here. The switch generation makes events
// armed before a churn teardown inert — after a down/up cycle the
// queues were flushed, so a stale pop would dequeue (or double-price)
// a packet the flush already recycled.
//
//speedlight:hotpath
func (n *Network) scheduleTx(es *EmuSwitch, port int) {
	q := es.queues[port]
	cos := q.head()
	if cos < 0 {
		q.txScheduled = false
		return
	}
	head := q.perCoS[cos].peek()
	es.proc.AfterCall(n.serialization(es, port, head.pkt.Size),
		n.txFn, es, nil, es.gen<<20|int64(port)<<8|int64(cos))
}

// txCall fires when the head-of-line packet finishes serializing: pop
// it, run egress, and re-arm for the next head. An event carrying a
// stale switch generation no-ops (see scheduleTx).
//
//speedlight:hotpath
//speedlight:shard
func (n *Network) txCall(a, _ any, i int64) {
	es := a.(*EmuSwitch)
	if i>>20 != es.gen {
		return
	}
	port, cos := int(i>>8)&0xfff, int(i&0xff)
	head := es.queues[port].perCoS[cos].pop()
	n.setDepthGauge(es, port)
	n.transmit(es, head.pkt, port)
	n.scheduleTx(es, port)
}

// transmit runs the egress unit and delivers the packet to the port's
// peer. Runs in es's domain; the wire hop to a neighboring switch is a
// cross-domain send whose latency is what the parallel engine's
// lookahead is derived from.
//
//speedlight:hotpath
//speedlight:pool-transfer pkt
func (n *Network) transmit(es *EmuSwitch, pkt *packet.Packet, port int) {
	now := es.proc.Now()
	isBroadcast := topology.HostID(pkt.DstHost) == BroadcastHost
	res := es.DP.Egress(pkt, port, now)
	n.drainNotifs(es)
	if res.Drop {
		es.ppool.Put(pkt)
		return
	}
	if isBroadcast {
		// Locally injected markers cross one wire hop to refresh the
		// neighbor's external channel; they are pointless toward hosts.
		// Like data, they are subject to injected wire loss — the next
		// recovery round resends them.
		peer := n.topo.Peer(es.Node, port)
		if peer.Kind != topology.PeerSwitch {
			es.ppool.Put(pkt)
			return
		}
		n.wireHop(es, pkt, port, peer)
		return
	}
	peer := n.topo.Peer(es.Node, port)
	switch peer.Kind {
	case topology.PeerSwitch:
		n.wireHop(es, pkt, port, peer)
	case topology.PeerHost:
		if res.StripHeader {
			pkt.HasSnap = false
			pkt.Snap = packet.SnapshotHeader{}
		}
		if n.cfg.OnDeliver != nil {
			// Serialize hook invocations (and their order) through the
			// global domain; the packet's pooled life ends in driver
			// context after the hook returns.
			es.proc.SendCall(sim.GlobalDomain, sim.Duration(peer.Latency),
				n.deliverGlobalFn, nil, pkt, int64(peer.Host))
		} else {
			es.proc.AfterCall(sim.Duration(peer.Latency),
				n.deliverLocalFn, es, pkt, 0)
		}
	default:
		// Egress onto an unwired port (PeerNone): the wire eats the
		// packet. Recycle it — before poolown, this path leaked the
		// pooled packet silently.
		es.ppool.Put(pkt)
	}
}

// deliverLocalCall is host delivery with no OnDeliver hook: count it
// and recycle the packet in the delivering switch's domain.
//
//speedlight:hotpath
//speedlight:pool-transfer b
//speedlight:shard
func (n *Network) deliverLocalCall(a, b any, _ int64) {
	n.tel.delivered.Inc()
	a.(*EmuSwitch).ppool.Put(b.(*packet.Packet))
}

// deliverGlobalCall is host delivery serialized through the global
// domain for the OnDeliver hook; the packet dies into the driver pool.
//
//speedlight:pool-transfer b
func (n *Network) deliverGlobalCall(_, b any, i int64) {
	pkt := b.(*packet.Packet)
	n.tel.delivered.Inc()
	n.cfg.OnDeliver(pkt, topology.HostID(uint32(i)), n.gproc.Now())
	n.dpool.Put(pkt)
}

// wireHop carries a packet across a switch-to-switch link, subject to
// injected loss. Runs in es's domain; arrival runs in the neighbor's.
//
//speedlight:hotpath
//speedlight:pool-transfer pkt
func (n *Network) wireHop(es *EmuSwitch, pkt *packet.Packet, port int, peer topology.Peer) {
	if es.linkDown[port] {
		// Administratively drained link: the wire is cut, so anything
		// the queue still pushes onto it is eaten deterministically
		// (no RNG draw — loss sampling stays aligned across engines).
		n.churnDrops.Add(1)
		es.ppool.Put(pkt)
		return
	}
	if n.cfg.LinkLossProb > 0 && es.rng.Float64() < n.cfg.LinkLossProb {
		n.wireDrops.Add(1)
		n.tel.wireDrops.Inc()
		es.ppool.Put(pkt)
		return
	}
	next := n.sws[peer.Node]
	es.proc.SendCall(next.dom, sim.Duration(peer.Latency),
		n.arriveFn, next, pkt, int64(peer.Port))
}

// setDepthGauge mirrors an egress queue's occupancy into the registered
// gauge, if any.
func (n *Network) setDepthGauge(es *EmuSwitch, port int) {
	id := dataplane.UnitID{Node: es.Node, Port: port, Dir: dataplane.Egress}
	if g, ok := n.gauges[id]; ok {
		g.Set(uint64(es.queues[port].length()))
	}
}

// drainNotifs moves data-plane notifications toward the switch CPU: if
// the control plane is idle, start its processing loop. The data
// plane's bounded queue is the socket buffer; the loop drains it one
// notification per service time, so a sustained notification rate above
// the service rate builds the queue up and eventually drops (Figure 10).
//
//speedlight:hotpath
func (n *Network) drainNotifs(es *EmuSwitch) {
	if es.cpBusy || es.DP.PendingNotifs() == 0 {
		return
	}
	es.cpBusy = true
	lat := sim.Duration(n.cfg.CPNotifLatency.Sample(es.rng))
	es.proc.AfterCall(lat, n.cpFn, es, nil, es.gen)
}

// cpCall dispatches the CP processing loop's closure-free events. The
// switch generation rides in i: a loop event armed before a churn
// teardown must not drive the rebooted control plane.
//
//speedlight:shard
func (n *Network) cpCall(a, _ any, i int64) {
	es := a.(*EmuSwitch)
	if i != es.gen {
		return
	}
	n.cpProcessOne(es)
}

// cpProcessOne handles one notification and reschedules itself while
// work remains.
func (n *Network) cpProcessOne(es *EmuSwitch) {
	notif, ok := es.DP.PopNotif()
	if !ok {
		es.cpBusy = false
		return
	}
	es.CP.HandleNotification(notif, es.proc.Now())
	svc := sim.Duration(es.cpService.Sample(es.rng))
	es.proc.AfterCall(svc, n.cpFn, es, nil, es.gen)
}

// ScheduleSnapshot asks the observer to start a snapshot at the given
// local-clock deadline on every control plane. Each control plane fires
// when its own clock reads the deadline — clock error plus scheduling
// jitter is exactly what the synchronization experiments measure.
func (n *Network) ScheduleSnapshot(localDeadline sim.Time) (packet.SeqID, error) {
	id, err := n.obs.Begin(n.eng.Now())
	if err != nil {
		return 0, err
	}
	for _, swSpec := range n.topo.Switches {
		if n.cfg.SnapshotDisabled[swSpec.ID] {
			continue
		}
		es := n.sws[swSpec.ID]
		if es.down {
			// Out of the fabric: unregistered from the observer, so the
			// snapshot neither initiates here nor waits for it.
			continue
		}
		trueAt := es.Clock.TrueAtLocal(localDeadline)
		if trueAt < n.eng.Now() {
			trueAt = n.eng.Now()
		}
		jitter := sim.Duration(n.cfg.InitiationLatency.Sample(es.rng))
		// The initiation runs in the switch's own domain.
		n.gproc.SendAt(es.dom, trueAt.Add(jitter), func() { n.initiate(es, id) })
	}
	return id, nil
}

// ScheduleSnapshotSingle is the single-initiator ablation: only the
// given switch's control plane initiates; every other device learns the
// new epoch from the snapshot IDs piggybacked on transit traffic, as in
// a classical single-initiator Chandy-Lamport run. Consistency is
// unaffected; what degrades is synchronization, which now includes the
// propagation time of the epoch through the network — the comparison
// that motivates the paper's multi-initiator design.
func (n *Network) ScheduleSnapshotSingle(node topology.NodeID, localDeadline sim.Time) (packet.SeqID, error) {
	id, err := n.obs.Begin(n.eng.Now())
	if err != nil {
		return 0, err
	}
	es, ok := n.sws[node]
	if !ok || n.cfg.SnapshotDisabled[node] || es.down {
		return 0, fmt.Errorf("emunet: switch %d cannot initiate", node)
	}
	trueAt := es.Clock.TrueAtLocal(localDeadline)
	if trueAt < n.eng.Now() {
		trueAt = n.eng.Now()
	}
	jitter := sim.Duration(n.cfg.InitiationLatency.Sample(es.rng))
	n.gproc.SendAt(es.dom, trueAt.Add(jitter), func() { n.initiate(es, id) })
	return id, nil
}

// initiate runs a control-plane snapshot initiation on one switch:
// every ingress unit processes the initiation message, which then
// follows the same egress queues as data traffic (FIFO order matters;
// Section 6). Runs in es's domain, or in the global domain during
// recovery (workers parked, so touching es is safe either way).
//
//speedlight:shard
func (n *Network) initiate(es *EmuSwitch, id packet.SeqID) {
	if es.down {
		// The switch left the fabric between scheduling and firing;
		// the observer's recovery machinery will exclude it (§6).
		return
	}
	inits := es.CP.Initiate(id, es.proc.Now())
	n.drainNotifs(es)
	for _, init := range inits {
		n.enqueue(es, init.Pkt, init.Port)
	}
}

// handleTimeouts drives the observer's retry/exclusion logic and relays
// recovery actions: re-initiation, a register poll to recover dropped
// notifications, and (in the channel-state variant) a marker broadcast
// to force ID propagation on idle channels.
//
//speedlight:global-only
func (n *Network) handleTimeouts() {
	now := n.gproc.Now()
	for _, act := range n.obs.CheckTimeouts(now) {
		if len(act.Retry) > 0 {
			// A single retry is routine §6 liveness (idle channels need
			// broadcast injection); a repeat means the snapshot is stuck.
			if n.retried[act.SnapshotID] {
				n.anomaly(fmt.Sprintf("snapshot %d stalled; retrying %d device(s)", act.SnapshotID, len(act.Retry)), act.SnapshotID)
			}
			n.retried[act.SnapshotID] = true
		}
		for _, node := range act.Retry {
			es := n.sws[node]
			if es.down {
				// Unreachable for re-initiation; the exclusion timer
				// keeps running and will eventually cut it out.
				continue
			}
			n.initiate(es, act.SnapshotID)
			es.CP.Poll(now)
			if n.cfg.ChannelState {
				n.injectMarkers(es)
			}
		}
	}
}

// injectMarkers injects one marker broadcast per ingress unit via the
// CPU pseudo-channel and floods it through the real egress queues: the
// FIFO queues guarantee any genuinely in-flight packets are seen first,
// so the marker's ID advance is truthful on every internal channel. Each
// egress copy then crosses one wire hop, refreshing the neighbors'
// external channels (Section 6 liveness).
func (n *Network) injectMarkers(es *EmuSwitch) {
	now := es.proc.Now()
	for port := 0; port < es.DP.NumPorts(); port++ {
		for cos := 0; cos < es.DP.NumCoS(); cos++ {
			m := &packet.Packet{DstHost: uint32(BroadcastHost), Size: 64, CoS: uint8(cos)}
			es.DP.IngressFromCP(m, port, now)
			n.drainNotifs(es)
			for e := 0; e < es.DP.NumPorts(); e++ {
				n.enqueue(es, m.Clone(), e)
			}
		}
	}
}

// RunFor advances the emulation.
func (n *Network) RunFor(d sim.Duration) { n.eng.RunFor(d) }

// SetDebugSync installs a test-only observer of sync records. The unit
// argument is passed as a fmt.Stringer to keep the hook signature loose.
func SetDebugSync(fn func(id packet.SeqID, at sim.Time, unit interface{ String() string }, channel int)) {
	if fn == nil {
		debugSync = nil
		return
	}
	debugSync = func(id packet.SeqID, at sim.Time, unit dataplane.UnitID, channel int) {
		fn(id, at, unit, channel)
	}
}
