package emunet

import (
	"math/rand"
	"testing"

	"speedlight/internal/clock"
	"speedlight/internal/core"
	"speedlight/internal/dataplane"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

func leafSpine(t *testing.T) *topology.LeafSpine {
	t.Helper()
	ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 3,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func newNet(t *testing.T, mod func(*Config)) *Network {
	t.Helper()
	ls := leafSpine(t)
	cfg := Config{
		Topo:         ls.Topology,
		Seed:         42,
		MaxID:        64,
		WrapAround:   true,
		ChannelState: false,
	}
	if mod != nil {
		mod(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// trafficGen injects a steady all-to-all packet stream.
func trafficGen(n *Network, periodPerHost sim.Duration) {
	eng := n.Engine()
	hosts := n.Topo().Hosts
	r := eng.NewRand()
	var seq uint64
	for _, h := range hosts {
		h := h
		eng.NewTicker(periodPerHost, func() {
			dst := hosts[r.Intn(len(hosts))]
			if dst.ID == h.ID {
				return
			}
			seq++
			n.InjectFromHost(h.ID, &packet.Packet{
				DstHost: uint32(dst.ID),
				SrcPort: uint16(1000 + h.ID),
				DstPort: 80,
				Proto:   6,
				Size:    1000,
				Seq:     seq,
			})
		})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestPacketDelivery(t *testing.T) {
	var delivered []*packet.Packet
	var deliveredTo []topology.HostID
	n := newNet(t, func(c *Config) {
		c.OnDeliver = func(p *packet.Packet, h topology.HostID, _ sim.Time) {
			delivered = append(delivered, p)
			deliveredTo = append(deliveredTo, h)
		}
	})
	// Host 0 (leaf 0) to host 3 (leaf 1): crosses the fabric.
	n.InjectFromHost(0, &packet.Packet{DstHost: 3, Size: 100, Proto: 6})
	n.RunFor(sim.Millisecond)
	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets", len(delivered))
	}
	if deliveredTo[0] != 3 {
		t.Errorf("delivered to %d", deliveredTo[0])
	}
	if delivered[0].HasSnap {
		t.Error("snapshot header not stripped before host delivery")
	}
	if delivered[0].SrcHost != 0 {
		t.Error("source host not stamped")
	}
}

func TestLocalDelivery(t *testing.T) {
	count := 0
	n := newNet(t, func(c *Config) {
		c.OnDeliver = func(*packet.Packet, topology.HostID, sim.Time) { count++ }
	})
	// Host 0 to host 1, same leaf.
	n.InjectFromHost(0, &packet.Packet{DstHost: 1, Size: 100})
	n.RunFor(sim.Millisecond)
	if count != 1 {
		t.Fatalf("delivered %d", count)
	}
}

func TestSnapshotCompletesNoChannelState(t *testing.T) {
	n := newNet(t, nil)
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(2 * sim.Millisecond)
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(20 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("completed %d snapshots", len(snaps))
	}
	g := snaps[0]
	if !g.Consistent {
		t.Error("snapshot inconsistent")
	}
	if len(g.Excluded) != 0 {
		t.Errorf("excluded: %v", g.Excluded)
	}
	// 2 leaves x 5 ports + 2 spines x 2 ports = 14 ports = 28 units.
	if len(g.Results) != 28 {
		t.Errorf("results = %d, want 28", len(g.Results))
	}
	// Some unit must have counted traffic.
	var total uint64
	for _, res := range g.Results {
		total += res.Value
	}
	if total == 0 {
		t.Error("all snapshot values zero despite traffic")
	}
}

func TestSnapshotCompletesWithChannelState(t *testing.T) {
	n := newNet(t, func(c *Config) { c.ChannelState = true })
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(2 * sim.Millisecond)
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(30 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("completed %d snapshots", len(snaps))
	}
	if !snaps[0].Consistent {
		t.Error("snapshot inconsistent")
	}
}

func TestCountersMonotoneAcrossSnapshots(t *testing.T) {
	n := newNet(t, nil)
	trafficGen(n, 10*sim.Microsecond)
	for i := 0; i < 5; i++ {
		n.RunFor(2 * sim.Millisecond)
		if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	n.RunFor(50 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 5 {
		t.Fatalf("completed %d of 5", len(snaps))
	}
	// Per unit, packet counters must be non-decreasing in snapshot order.
	last := map[dataplane.UnitID]uint64{}
	for _, g := range snaps {
		for id, res := range g.Results {
			if !res.Consistent {
				continue
			}
			if res.Value < last[id] {
				t.Errorf("unit %v: snapshot %d value %d < previous %d",
					id, g.ID, res.Value, last[id])
			}
			last[id] = res.Value
		}
	}
}

func TestSyncSpreadRecorded(t *testing.T) {
	n := newNet(t, nil)
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(sim.Millisecond)
	id, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	n.RunFor(20 * sim.Millisecond)
	spread, ok := n.SyncSpread(id)
	if !ok {
		t.Fatal("no sync window recorded")
	}
	if spread <= 0 {
		t.Errorf("spread = %d, want positive", spread)
	}
	// PTP-scale initiation: tens of microseconds at most.
	if spread > 200*sim.Microsecond {
		t.Errorf("spread = %v µs, implausibly large", spread.Micros())
	}
	if _, ok := n.SyncSpread(9999); ok {
		t.Error("unknown snapshot has a sync window")
	}
}

func TestChannelStateCompletesWithoutTraffic(t *testing.T) {
	// Liveness (Section 6): with zero data traffic, completion relies on
	// retries, register polls and marker broadcasts.
	n := newNet(t, func(c *Config) {
		c.ChannelState = true
		c.RetryAfter = 2 * sim.Millisecond
	})
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(40 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("completed %d snapshots without traffic", len(snaps))
	}
	if len(snaps[0].Excluded) != 0 {
		t.Errorf("devices excluded: %v", snaps[0].Excluded)
	}
}

func TestMarkersNeverReachHosts(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.ChannelState = true
		c.RetryAfter = sim.Millisecond
		c.OnDeliver = func(p *packet.Packet, h topology.HostID, _ sim.Time) {
			if topology.HostID(p.DstHost) == BroadcastHost {
				t.Errorf("marker broadcast delivered to host %d", h)
			}
		}
	})
	n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond))
	n.RunFor(30 * sim.Millisecond)
}

func TestNotificationDropRecovery(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.NotifCapacity = 2 // aggressive loss
		c.RetryAfter = 2 * sim.Millisecond
	})
	trafficGen(n, 20*sim.Microsecond)
	n.RunFor(sim.Millisecond)
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(40 * sim.Millisecond)
	if len(n.Snapshots()) != 1 {
		t.Fatalf("snapshot did not complete despite recovery (drops=%d)", n.NotifDropsTotal())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, []uint64) {
		n := newNet(t, nil)
		trafficGen(n, 10*sim.Microsecond)
		n.RunFor(sim.Millisecond)
		id, _ := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond))
		n.RunFor(20 * sim.Millisecond)
		var values []uint64
		if len(n.Snapshots()) > 0 {
			g := n.Snapshots()[0]
			for _, u := range n.Switch(0).DP.UnitIDs() {
				if r, ok := g.Results[u]; ok {
					values = append(values, r.Value)
				}
			}
		}
		spread, _ := n.SyncSpread(id)
		return uint64(spread), values
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 {
		t.Errorf("sync spreads differ: %d vs %d", s1, s2)
	}
	if len(v1) != len(v2) {
		t.Fatalf("value counts differ")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("value %d differs: %d vs %d", i, v1[i], v2[i])
		}
	}
}

func TestPartialDeployment(t *testing.T) {
	// Spine 1 (node 3) is snapshot-disabled: traffic through it must
	// still flow, headers must survive it, and snapshots must complete
	// among the other three switches.
	n := newNet(t, func(c *Config) {
		c.SnapshotDisabled = map[topology.NodeID]bool{3: true}
	})
	delivered := 0
	n.cfg.OnDeliver = func(*packet.Packet, topology.HostID, sim.Time) { delivered++ }
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(2 * sim.Millisecond)
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(30 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("completed %d snapshots", len(snaps))
	}
	g := snaps[0]
	if len(g.Excluded) != 0 {
		t.Errorf("excluded: %v", g.Excluded)
	}
	// 28 total units minus spine 1's 4 units.
	if len(g.Results) != 24 {
		t.Errorf("results = %d, want 24", len(g.Results))
	}
	if delivered == 0 {
		t.Error("no traffic delivered through partial deployment")
	}
	// The disabled switch's units must have stayed at epoch 0.
	for _, id := range n.Switch(3).DP.UnitIDs() {
		if sid := n.Unit(id).CurrentSID(); sid != 0 {
			t.Errorf("disabled switch unit %v advanced to %d", id, sid)
		}
	}
}

func TestQueueDepthGaugeMetric(t *testing.T) {
	maxSeen := uint64(0)
	n := newNet(t, func(c *Config) {
		c.Metrics = func(net *Network, id dataplane.UnitID) core.Metric {
			if id.Dir == dataplane.Egress {
				return net.Gauge(id)
			}
			return nil // default packet counter for ingress
		}
		// Slow links so queues build.
		c.LinkRateBps = 1e9
	})
	// Incast: everyone sends to host 0.
	for _, h := range n.Topo().Hosts {
		if h.ID == 0 {
			continue
		}
		h := h
		n.Engine().NewTicker(5*sim.Microsecond, func() {
			n.InjectFromHost(h.ID, &packet.Packet{DstHost: 0, Size: 1500, Proto: 6})
		})
	}
	probe := n.Engine().NewTicker(20*sim.Microsecond, func() {
		// Leaf 0 port 0 is host 0's egress.
		if v := n.Gauge(dataplane.UnitID{Node: 0, Port: 0, Dir: dataplane.Egress}).Read(); v > maxSeen {
			maxSeen = v
		}
	})
	n.RunFor(5 * sim.Millisecond)
	probe.Stop()
	if maxSeen == 0 {
		t.Error("queue depth gauge never rose during incast")
	}
}

func TestHotQueueDropsUnderOverload(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.LinkRateBps = 1e8 // 100 Mb/s: trivially overloaded
		c.QueueCapacity = 16
	})
	for _, h := range n.Topo().Hosts {
		if h.ID == 0 {
			continue
		}
		h := h
		n.Engine().NewTicker(2*sim.Microsecond, func() {
			n.InjectFromHost(h.ID, &packet.Packet{DstHost: 0, Size: 1500})
		})
	}
	n.RunFor(5 * sim.Millisecond)
	if n.QueueDropsTotal() == 0 {
		t.Error("no queue drops under gross overload")
	}
}

func TestFlowletBalancerOption(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.NewBalancer = func(_ topology.NodeID, r *rand.Rand) routing.Balancer {
			return routing.NewFlowlet(50*sim.Microsecond, r)
		}
	})
	count := 0
	n.cfg.OnDeliver = func(*packet.Packet, topology.HostID, sim.Time) { count++ }
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(2 * sim.Millisecond)
	if count == 0 {
		t.Error("no delivery with flowlet balancer")
	}
}

func TestPerfectClockTightSync(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.Clock = clock.Perfect()
		c.InitiationLatency = nil // default jitter still applies
	})
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(sim.Millisecond)
	id, _ := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond))
	n.RunFor(20 * sim.Millisecond)
	spread, ok := n.SyncSpread(id)
	if !ok {
		t.Fatal("no sync recorded")
	}
	// With perfect clocks only initiation jitter and propagation remain.
	if spread > 100*sim.Microsecond {
		t.Errorf("perfect-clock spread %v µs too large", spread.Micros())
	}
}

func TestSnapshotRateOverloadDropsNotifications(t *testing.T) {
	// Initiating far faster than the CP service rate must build up and
	// overflow the notification queue (the Figure 10 phenomenon).
	n := newNet(t, func(c *Config) {
		c.NotifCapacity = 32
		c.RetryAfter = -1 // isolate the effect
		c.ExcludeAfter = -1
	})
	trafficGen(n, 10*sim.Microsecond)
	tick := n.Engine().NewTicker(100*sim.Microsecond, func() { // 10 kHz
		n.ScheduleSnapshot(n.Engine().Now())
	})
	n.RunFor(40 * sim.Millisecond)
	tick.Stop()
	if n.NotifDropsTotal() == 0 {
		t.Error("no notification drops at 10 kHz snapshot rate")
	}
}

func TestSnapshotsSurviveLinkLoss(t *testing.T) {
	// Failure injection: 10% of every wire transmission is lost. The
	// protocol's loss resilience — IDs piggybacked on every packet,
	// re-initiation and register polls on timeout (Section 6) — must
	// still complete every snapshot, and counters must stay monotone.
	n := newNet(t, func(c *Config) {
		c.LinkLossProb = 0.10
		c.RetryAfter = 2 * sim.Millisecond
	})
	trafficGen(n, 5*sim.Microsecond)
	var ids []packet.SeqID
	for i := 0; i < 5; i++ {
		n.RunFor(2 * sim.Millisecond)
		if id, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err == nil {
			ids = append(ids, id)
		}
	}
	n.RunFor(60 * sim.Millisecond)
	if n.WireDrops() == 0 {
		t.Fatal("loss injection inactive")
	}
	if got := len(n.Snapshots()); got != len(ids) {
		t.Fatalf("completed %d of %d snapshots under 10%% loss (drops=%d)",
			got, len(ids), n.WireDrops())
	}
	last := map[dataplane.UnitID]uint64{}
	for _, g := range n.Snapshots() {
		for u, res := range g.Results {
			if !res.Consistent {
				continue
			}
			if res.Value < last[u] {
				t.Errorf("unit %v regressed under loss: %d -> %d", u, last[u], res.Value)
			}
			last[u] = res.Value
		}
	}
}

func TestChannelStateSurvivesLinkLoss(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.ChannelState = true
		c.LinkLossProb = 0.05
		c.RetryAfter = 2 * sim.Millisecond
	})
	trafficGen(n, 5*sim.Microsecond)
	n.RunFor(2 * sim.Millisecond)
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(60 * sim.Millisecond)
	if len(n.Snapshots()) != 1 {
		t.Fatalf("channel-state snapshot did not complete under loss (drops=%d)", n.WireDrops())
	}
}

func TestCoSPriorityOvertaking(t *testing.T) {
	// Strict priority: with a slow link and a backlog of best-effort
	// packets, a high-class packet injected later is delivered first.
	order := []uint8{}
	n := newNet(t, func(c *Config) {
		c.NumCoS = 2
		c.LinkRateBps = 1e8 // 100 Mb/s: 1500B takes 120 µs
		c.OnDeliver = func(p *packet.Packet, _ topology.HostID, _ sim.Time) {
			order = append(order, p.CoS)
		}
	})
	// Backlog of best-effort traffic host0 -> host1.
	for i := 0; i < 8; i++ {
		n.InjectFromHost(0, &packet.Packet{DstHost: 1, Size: 1500, SrcPort: uint16(i), Proto: 6})
	}
	// Let the first packet start transmitting, then inject high priority.
	n.RunFor(50 * sim.Microsecond)
	n.InjectFromHost(0, &packet.Packet{DstHost: 1, Size: 1500, SrcPort: 99, Proto: 6, CoS: 1})
	n.RunFor(10 * sim.Millisecond)
	if len(order) != 9 {
		t.Fatalf("delivered %d of 9", len(order))
	}
	// The high-class packet must not be last; it overtakes most of the
	// backlog (it cannot preempt the frame already on the wire).
	pos := -1
	for i, cos := range order {
		if cos == 1 {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Errorf("high-priority packet delivered at position %d of %d: %v", pos, len(order), order)
	}
}

func TestCoSSnapshotCompletesWithChannelState(t *testing.T) {
	// The per-class FIFO channels each need their own markers; the
	// initiation fan-out and marker injection must cover them all.
	n := newNet(t, func(c *Config) {
		c.NumCoS = 3
		c.ChannelState = true
		c.RetryAfter = 2 * sim.Millisecond
	})
	// Traffic across two classes (class 2 stays idle: markers cover it).
	eng := n.Engine()
	r := eng.NewRand()
	var nextSrc uint16
	hosts := n.Topo().Hosts
	eng.NewTicker(2*sim.Microsecond, func() {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src.ID == dst.ID {
			return
		}
		nextSrc++
		n.InjectFromHost(src.ID, &packet.Packet{
			DstHost: uint32(dst.ID),
			SrcPort: 1000 + nextSrc%40000,
			DstPort: 80,
			Proto:   6,
			Size:    500,
			CoS:     uint8(nextSrc % 2),
		})
	})
	n.RunFor(2 * sim.Millisecond)
	if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(60 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("completed %d snapshots with 3 classes", len(snaps))
	}
	if !snaps[0].Consistent {
		t.Error("snapshot inconsistent")
	}
	if len(snaps[0].Excluded) != 0 {
		t.Errorf("excluded: %v", snaps[0].Excluded)
	}
}

func TestCoSCountersStillMonotone(t *testing.T) {
	n := newNet(t, func(c *Config) { c.NumCoS = 2 })
	eng := n.Engine()
	var i uint16
	eng.NewTicker(5*sim.Microsecond, func() {
		i++
		n.InjectFromHost(0, &packet.Packet{
			DstHost: 3, SrcPort: 1000 + i, Proto: 6, Size: 800, CoS: uint8(i % 2),
		})
	})
	last := map[dataplane.UnitID]uint64{}
	for round := 0; round < 4; round++ {
		n.RunFor(2 * sim.Millisecond)
		if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	n.RunFor(40 * sim.Millisecond)
	if len(n.Snapshots()) != 4 {
		t.Fatalf("completed %d of 4", len(n.Snapshots()))
	}
	for _, g := range n.Snapshots() {
		for u, res := range g.Results {
			if res.Consistent && res.Value < last[u] {
				t.Errorf("unit %v regressed", u)
			}
			last[u] = res.Value
		}
	}
}

func TestFatTreeSnapshot(t *testing.T) {
	// A k=4 fat tree: 20 switches, 16 hosts, 160 processing units. The
	// snapshot must assemble consistently across the three tiers.
	ft, err := topology.NewFatTree(topology.FatTreeConfig{
		K:                 4,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Topo: ft.Topology, Seed: 5, MaxID: 128, WrapAround: true})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod all-to-all traffic.
	eng := n.Engine()
	r := eng.NewRand()
	var seq uint16
	for _, h := range ft.Hosts {
		h := h
		eng.NewTicker(10*sim.Microsecond, func() {
			dst := ft.Hosts[r.Intn(len(ft.Hosts))]
			if dst.ID == h.ID {
				return
			}
			seq++
			n.InjectFromHost(h.ID, &packet.Packet{
				DstHost: uint32(dst.ID), SrcPort: 1000 + seq, DstPort: 80,
				Proto: 6, Size: 700,
			})
		})
	}
	n.RunFor(2 * sim.Millisecond)
	if _, err := n.ScheduleSnapshot(eng.Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(30 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("completed %d snapshots on the fat tree", len(snaps))
	}
	g := snaps[0]
	if !g.Consistent {
		t.Error("fat-tree snapshot inconsistent")
	}
	// 20 switches x 4 ports x 2 directions.
	if len(g.Results) != 160 {
		t.Errorf("results = %d, want 160", len(g.Results))
	}
	var total uint64
	for _, res := range g.Results {
		total += res.Value
	}
	if total == 0 {
		t.Error("all-zero fat-tree snapshot")
	}
}

func TestPerLinkRates(t *testing.T) {
	// Host links at 1 Gb/s, fabric at 10 Gb/s: the slow host egress
	// link dominates delivery time for a back-to-back burst.
	b := topology.NewBuilder()
	s0 := b.AddSwitch(2)
	s1 := b.AddSwitch(2)
	b.AttachHostRated(s0, 0, sim.Microsecond, 1e9)
	b.AttachHostRated(s1, 0, sim.Microsecond, 1e9)
	b.ConnectRated(s0, 1, s1, 1, sim.Microsecond, 1e10)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var lastAt sim.Time
	n, err := New(Config{
		Topo: topo, Seed: 1,
		OnDeliver: func(_ *packet.Packet, _ topology.HostID, at sim.Time) { lastAt = at },
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 10
	for i := 0; i < N; i++ {
		n.InjectFromHost(0, &packet.Packet{DstHost: 1, Size: 1250, SrcPort: uint16(i), Proto: 6})
	}
	n.RunFor(sim.Millisecond)
	// 1250B at 1 Gb/s = 10 µs per packet on the host link; ten packets
	// take ~100 µs. At the fabric's 10 Gb/s they'd take ~10 µs.
	if lastAt < sim.Time(90*sim.Microsecond) {
		t.Errorf("burst drained in %v µs: host link rate ignored", lastAt.Micros())
	}
	if lastAt > sim.Time(200*sim.Microsecond) {
		t.Errorf("burst took %v µs: serialization model off", lastAt.Micros())
	}
}

func TestOnInjectHook(t *testing.T) {
	count := 0
	n := newNet(t, func(c *Config) {
		c.OnInject = func(p *packet.Packet, h topology.HostID, at sim.Time) {
			count++
			if h != 0 || p.DstHost != 3 {
				t.Errorf("hook saw %d->%d", h, p.DstHost)
			}
		}
	})
	for i := 0; i < 7; i++ {
		n.InjectFromHost(0, &packet.Packet{DstHost: 3, Size: 100, SrcPort: uint16(i)})
	}
	if count != 7 {
		t.Errorf("hook fired %d times", count)
	}
}

func TestLargeFatTreeCampaign(t *testing.T) {
	// A k=6 fat tree: 45 switches, 54 hosts, 540 processing units, and
	// a 20-snapshot campaign under all-to-all traffic — the simulator
	// at a scale well beyond the paper's testbed.
	if testing.Short() {
		t.Skip("large fabric")
	}
	ft, err := topology.NewFatTree(topology.FatTreeConfig{
		K:                 6,
		HostLinkLatency:   sim.Microsecond,
		FabricLinkLatency: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Topo: ft.Topology, Seed: 6, MaxID: 256, WrapAround: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Engine()
	r := eng.NewRand()
	var seq uint16
	for _, h := range ft.Hosts {
		h := h
		eng.NewTicker(20*sim.Microsecond, func() {
			dst := ft.Hosts[r.Intn(len(ft.Hosts))]
			if dst.ID == h.ID {
				return
			}
			seq++
			n.InjectFromHost(h.ID, &packet.Packet{
				DstHost: uint32(dst.ID), SrcPort: 1000 + seq, DstPort: 80,
				Proto: 6, Size: 600,
			})
		})
	}
	n.RunFor(2 * sim.Millisecond)
	const rounds = 20
	for i := 0; i < rounds; i++ {
		n.RunFor(sim.Millisecond)
		if _, err := n.ScheduleSnapshot(eng.Now().Add(500 * sim.Microsecond)); err != nil {
			t.Fatal(err)
		}
	}
	n.RunFor(60 * sim.Millisecond)
	snaps := n.Snapshots()
	if len(snaps) != rounds {
		t.Fatalf("completed %d of %d", len(snaps), rounds)
	}
	for _, g := range snaps {
		if len(g.Results) != 540 {
			t.Fatalf("snapshot %d covered %d units, want 540", g.ID, len(g.Results))
		}
		if !g.Consistent {
			t.Errorf("snapshot %d inconsistent", g.ID)
		}
	}
	// Synchronization stays microsecond-scale even at 45 devices.
	worst := sim.Duration(0)
	for _, g := range snaps {
		if d, ok := n.SyncSpread(g.ID); ok && d > worst {
			worst = d
		}
	}
	if worst <= 0 || worst > 200*sim.Microsecond {
		t.Errorf("worst sync %v µs out of range", worst.Micros())
	}
}
