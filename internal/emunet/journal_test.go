package emunet

import (
	"fmt"
	"testing"

	"speedlight/internal/audit"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// verdictByID indexes an audit report by snapshot ID.
func verdictByID(t *testing.T, rep *audit.Report) map[packet.SeqID]audit.Verdict {
	t.Helper()
	if rep == nil {
		t.Fatal("nil audit report (journal not wired?)")
	}
	out := make(map[packet.SeqID]audit.Verdict, len(rep.Verdicts))
	for _, v := range rep.Verdicts {
		out[v.SnapshotID] = v
	}
	return out
}

// TestAuditCleanRunConsistent: an unperturbed journaled campaign must
// audit all-Consistent with zero auditor/observer disagreements and no
// flight-recorder dumps.
func TestAuditCleanRunConsistent(t *testing.T) {
	anomalies := 0
	n := newNet(t, func(c *Config) {
		c.Journal = journal.NewSet(0)
		c.OnAnomaly = func(string, packet.SeqID, []journal.Event) { anomalies++ }
	})
	trafficGen(n, 20*sim.Microsecond)
	n.RunFor(sim.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
		n.RunFor(5 * sim.Millisecond)
	}
	rep := n.Audit()
	byID := verdictByID(t, rep)
	if len(byID) != 3 {
		t.Fatalf("audited %d snapshots, want 3", len(byID))
	}
	for id, v := range byID {
		if v.Kind != audit.Consistent {
			t.Errorf("snapshot %d: %s (%s), want CONSISTENT", id, v.Kind, v.Cause)
		}
	}
	if rep.Disagreements != 0 {
		t.Errorf("clean run reported %d auditor/observer disagreements", rep.Disagreements)
	}
	if rep.Truncated {
		t.Error("clean run reported a truncated journal")
	}
	if anomalies != 0 {
		t.Errorf("clean run fired %d anomaly dumps", anomalies)
	}
}

// TestAuditNotifDropIncomplete: with the notification socket squeezed
// and all recovery disabled, a snapshot sticks forever; the auditor
// must call it Incomplete, name the stuck units, and produce the
// dropped notifications as the witness chain.
func TestAuditNotifDropIncomplete(t *testing.T) {
	n := newNet(t, func(c *Config) {
		c.Journal = journal.NewSet(0)
		c.NotifCapacity = 2
		c.RetryAfter = -1   // disable recovery: the fault must stick
		c.ExcludeAfter = -1 // and no device gets cut loose either
	})
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(sim.Millisecond)
	id, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	n.RunFor(40 * sim.Millisecond)
	if drops := n.NotifDropsTotal(); drops == 0 {
		t.Fatal("fault injection failed: no notifications dropped")
	}
	if len(n.Snapshots()) != 0 {
		t.Skip("snapshot completed despite drops; fault did not land on the critical notification")
	}
	v, ok := verdictByID(t, n.Audit())[id]
	if !ok {
		t.Fatalf("no verdict for snapshot %d", id)
	}
	if v.Kind != audit.Incomplete {
		t.Fatalf("snapshot %d: %s (%s), want INCOMPLETE", id, v.Kind, v.Cause)
	}
	if len(v.Stuck) == 0 {
		t.Error("incomplete verdict names no stuck units")
	}
	foundDrop := false
	for _, w := range v.Witness {
		if w.Kind == journal.KindNotifDrop {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Errorf("witness chain has no dropped notification: %v", v.Witness)
	}
	if v.ObserverSeen {
		t.Error("observer claims to have finalized a stuck snapshot")
	}
}

// TestAuditSkippedIDInconsistent: two back-to-back single-initiator
// snapshots make every remote unit jump its snapshot ID straight past
// the first one (the paper's Figure 7 skipped-ID hazard). In
// channel-state mode that cut's in-flight accounting is unrecoverable,
// so the auditor must rule the skipped snapshot Inconsistent with the
// jumping Record as witness — and, because the observer finalizes it
// (by exclusion) without noticing, flag the disagreement and fire the
// flight recorder.
func TestAuditSkippedIDInconsistent(t *testing.T) {
	var dumps [][]journal.Event
	n := newNet(t, func(c *Config) {
		c.Journal = journal.NewSet(0)
		c.ChannelState = true
		c.RetryAfter = -1
		c.ExcludeAfter = 10 * sim.Millisecond
		c.OnAnomaly = func(_ string, _ packet.SeqID, dump []journal.Event) {
			dumps = append(dumps, dump)
		}
	})
	trafficGen(n, 10*sim.Microsecond)
	n.RunFor(sim.Millisecond)

	// Same deadline, one initiator: id2's markers leave switch 0 before
	// any id1 marker reaches the rest of the fabric, so remote units
	// record 0 -> 2.
	deadline := n.Engine().Now().Add(sim.Millisecond)
	id1, err := n.ScheduleSnapshotSingle(0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := n.ScheduleSnapshotSingle(0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	n.RunFor(50 * sim.Millisecond)

	byID := verdictByID(t, n.Audit())
	v1, ok := byID[id1]
	if !ok {
		t.Fatalf("no verdict for skipped snapshot %d", id1)
	}
	if v1.Kind != audit.Inconsistent {
		t.Fatalf("skipped snapshot %d: %s (%s), want INCONSISTENT", id1, v1.Kind, v1.Cause)
	}
	// The witness must contain the concrete jumping record.
	foundJump := false
	for _, w := range v1.Witness {
		if w.Kind == journal.KindRecord && w.OldID < id1 && id1 < w.NewID {
			foundJump = true
		}
	}
	if !foundJump {
		t.Errorf("no jumping Record in witness chain: %v", v1.Witness)
	}
	// The observer finalized id1 by excluding the silent devices and
	// believed the survivors — the auditor catching what the observer
	// missed is exactly the defect this report exists to surface.
	if v1.ObserverSeen && v1.ObserverConsistent && !v1.Disagreement {
		t.Error("observer called it consistent but no disagreement flagged")
	}
	if v1.ObserverSeen && len(dumps) == 0 {
		t.Error("snapshot finalized with exclusions but flight recorder never fired")
	}
	if v2, ok := byID[id2]; ok && v2.Kind == audit.Inconsistent {
		t.Errorf("follow-up snapshot %d ruled inconsistent: %s", id2, v2.Cause)
	}
}

// TestAuditConformanceDeterministic runs the seed scenario twice with
// the same seed and asserts the audits are byte-for-byte identical and
// all-Consistent: the journal and auditor must not perturb or be
// perturbed by the emulation.
func TestAuditConformanceDeterministic(t *testing.T) {
	run := func() (string, *audit.Report) {
		n := newNet(t, func(c *Config) {
			c.Journal = journal.NewSet(0)
			c.ChannelState = true
		})
		trafficGen(n, 10*sim.Microsecond)
		n.RunFor(sim.Millisecond)
		for i := 0; i < 3; i++ {
			if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
				t.Fatal(err)
			}
			n.RunFor(5 * sim.Millisecond)
		}
		// Drain: channel-state completion may ride the recovery timers.
		n.RunFor(20 * sim.Millisecond)
		rep := n.Audit()
		var sb []byte
		for _, ev := range n.Journal().Events() {
			sb = append(sb, ev.String()...)
			sb = append(sb, '\n')
		}
		return string(sb), rep
	}
	j1, r1 := run()
	j2, r2 := run()
	if j1 != j2 {
		t.Fatal("journals differ across identical seeded runs")
	}
	if len(r1.Verdicts) != len(r2.Verdicts) {
		t.Fatalf("verdict counts differ: %d vs %d", len(r1.Verdicts), len(r2.Verdicts))
	}
	for i := range r1.Verdicts {
		a, b := r1.Verdicts[i], r2.Verdicts[i]
		if a.SnapshotID != b.SnapshotID || a.Kind != b.Kind || a.Cause != b.Cause {
			t.Errorf("verdict %d differs: %+v vs %+v", i, a, b)
		}
		if a.Kind != audit.Consistent {
			t.Errorf("seed scenario snapshot %d: %s (%s), want CONSISTENT", a.SnapshotID, a.Kind, a.Cause)
		}
	}
	if r1.Disagreements != 0 || r2.Disagreements != 0 {
		t.Errorf("seed scenario reported disagreements: %d, %d", r1.Disagreements, r2.Disagreements)
	}
}

// BenchmarkEmunetThroughput measures emulation throughput with the
// flight recorder off and on; the journal's change-gated atomic-append
// rings must stay within 5% of the bare run. Compare the variants in
// separate processes (`-bench journal=false`, then `-bench
// journal=true`) — sharing a process skews the second run by a few
// percent of GC/heap noise. Measured on the reference container:
// ~2% overhead.
func BenchmarkEmunetThroughput(b *testing.B) {
	for _, journaled := range []bool{false, true} {
		b.Run(fmt.Sprintf("journal=%v", journaled), func(b *testing.B) {
			ls, err := topology.NewLeafSpine(topology.LeafSpineConfig{
				Leaves: 2, Spines: 2, HostsPerLeaf: 3,
				HostLinkLatency:   sim.Microsecond,
				FabricLinkLatency: sim.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{
				Topo:       ls.Topology,
				Seed:       42,
				MaxID:      64,
				WrapAround: true,
			}
			if journaled {
				cfg.Journal = journal.NewSet(0)
			}
			n, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			trafficGen(n, 2*sim.Microsecond)
			n.RunFor(sim.Millisecond) // warm up
			if _, err := n.ScheduleSnapshot(n.Engine().Now().Add(sim.Millisecond)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.RunFor(100 * sim.Microsecond)
			}
		})
	}
}
