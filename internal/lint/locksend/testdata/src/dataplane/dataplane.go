// Package dataplane is a golden-test stand-in for a locksend-scoped
// package (scope base "dataplane").
package dataplane

import (
	"net"
	"sync"
	"time"
)

type queue struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (q *queue) sendUnderLock() {
	q.mu.Lock()
	q.ch <- 1 // want `channel send while holding a sync lock`
	q.mu.Unlock()
}

func (q *queue) sendUnderDeferredLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- 1 // want `channel send while holding a sync lock`
}

func (q *queue) sendUnderRLock() {
	q.rw.RLock()
	defer q.rw.RUnlock()
	q.ch <- 1 // want `channel send while holding a sync lock`
}

func (q *queue) netWriteUnderLock(conn net.Conn, buf []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	conn.Write(buf) // want `net Write while holding a sync lock`
}

func (q *queue) sleepUnderLock() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding a sync lock`
	q.mu.Unlock()
}

func (q *queue) blockingSelectUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `select without default while holding a sync lock`
	case v := <-q.ch:
		_ = v
	}
}

func (q *queue) sendAfterUnlock() {
	q.mu.Lock()
	v := 1
	q.mu.Unlock()
	q.ch <- v // lock released: fine
}

func (q *queue) nonBlockingSendUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- 1: // governed by the default: never blocks
	default:
	}
}

func (q *queue) handoffToGoroutine(conn net.Conn, buf []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		conn.Write(buf) // separate goroutine: not under this critical section
		q.ch <- 1
	}()
}

func (q *queue) netWriteOutsideLock(conn net.Conn, buf []byte) {
	q.mu.Lock()
	n := len(buf)
	q.mu.Unlock()
	_ = n
	conn.Write(buf) // lock released: fine
}
