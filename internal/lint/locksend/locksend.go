// Package locksend flags blocking operations performed while holding a
// sync mutex in the data-plane-facing packages.
//
// The paper's feasibility argument (§5) is that per-packet snapshot
// work fits a switch pipeline: bounded, non-blocking steps. The Go
// model of that discipline is "never block while holding a lock" — a
// channel send, network write, or sleep under a mutex can stall every
// packet behind it and, in live mode, deadlock against the reader
// goroutine. locksend performs an intraprocedural scan of dataplane,
// live, and wire: between a Lock/RLock and its Unlock (including
// deferred unlocks, which hold to function end) it flags channel sends,
// selects without a default, net reads/writes, and time.Sleep.
package locksend

import (
	"go/ast"
	"go/types"
	"strings"

	"speedlight/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flag channel sends, net I/O, and sleeps while holding a sync.Mutex/RWMutex " +
		"in dataplane, live, and wire (non-blocking data-plane discipline)",
	Run: run,
}

var scoped = map[string]bool{
	"dataplane": true,
	"live":      true,
	"wire":      true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scoped[analysis.PkgScope(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				scanFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// scanFunc walks one function body in source order, tracking how many
// sync locks are held. Function literals get a fresh scan: they run on
// their own goroutine's schedule, not under the enclosing critical
// section at definition time.
func scanFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	held := 0
	// Sends in a select's comm clauses are governed by the select
	// (flagged there if it has no default), not as bare sends.
	commSends := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			scanFunc(pass, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function end, so
			// the counter must not see the Unlock call itself.
			if kind := syncLockKind(pass.TypesInfo, n.Call); kind == lockRelease {
				return false
			}
			return true
		case *ast.CallExpr:
			switch syncLockKind(pass.TypesInfo, n) {
			case lockAcquire:
				held++
			case lockRelease:
				if held > 0 {
					held--
				}
			}
			if held > 0 {
				checkBlockingCall(pass, n)
			}
		case *ast.SendStmt:
			if held > 0 && !commSends[n] {
				pass.Reportf(n.Arrow,
					"channel send while holding a sync lock: sends can block indefinitely; buffer outside the critical section")
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				if c, ok := clause.(*ast.CommClause); ok {
					if send, ok := c.Comm.(*ast.SendStmt); ok {
						commSends[send] = true
					}
				}
			}
			if held > 0 && !hasDefault(n) {
				pass.Reportf(n.Select,
					"select without default while holding a sync lock: this blocks the critical section")
			}
		}
		return true
	})
}

type lockKind int

const (
	notLock lockKind = iota
	lockAcquire
	lockRelease
)

// syncLockKind classifies a call as a sync package Lock/RLock,
// Unlock/RUnlock, or neither.
func syncLockKind(info *types.Info, call *ast.CallExpr) lockKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notLock
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return notLock
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return notLock
}

// checkBlockingCall flags calls that can block: net connection
// reads/writes and time.Sleep.
func checkBlockingCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "net":
		if strings.HasPrefix(fn.Name(), "Write") || strings.HasPrefix(fn.Name(), "Read") {
			pass.Reportf(call.Pos(),
				"net %s while holding a sync lock: network I/O can stall the critical section",
				fn.Name())
		}
	case "time":
		if fn.Name() == "Sleep" {
			pass.Reportf(call.Pos(),
				"time.Sleep while holding a sync lock: sleeping in a critical section stalls the data plane")
		}
	}
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}
