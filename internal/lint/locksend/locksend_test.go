package locksend_test

import (
	"testing"

	"speedlight/internal/lint/linttest"
	"speedlight/internal/lint/locksend"
)

func TestLockSend(t *testing.T) {
	linttest.Run(t, locksend.Analyzer, "dataplane")
}
