// Package dataplane seeds lockorder's golden violations: a missing
// unlock on an early-return path, a guaranteed self-deadlock, and a
// lock-order cycle seen both directly and through a call summary —
// plus the blessed shapes (defer, branch-unlock, conditional pairs)
// that must stay quiet.
package dataplane

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

type R struct{ mu sync.RWMutex }

// ---- violations ----

// earlyReturnHold is the Lock; if err { return } bug class: the guard
// path exits with the mutex still held.
func earlyReturnHold(d *D, fail bool) int {
	d.mu.Lock()
	if fail {
		return 0 // want `lock d.mu is still held on this return path`
	}
	d.mu.Unlock()
	return 1
}

// relock acquires the same instance twice on a straight line.
func relock(d *D) {
	d.mu.Lock()
	d.mu.Lock() // want `Lock of d.mu while it is already held: guaranteed self-deadlock`
	d.mu.Unlock()
	d.mu.Unlock()
}

// lockAB and lockBA together close a two-class cycle: each inner
// acquisition is an edge, and each edge sees the reverse path.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock order cycle: dataplane.B.mu acquired while dataplane.A.mu is held, but the reverse order also exists`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock order cycle: dataplane.A.mu acquired while dataplane.B.mu is held, but the reverse order also exists`
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockDthenC orders D before C inline; lockCthenCallD orders C before
// D through helperLockD's acquire summary. The cycle is reported at
// both the inline edge and the call site that carries the summary.
func lockDthenC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `lock order cycle: dataplane.C.mu acquired while dataplane.D.mu is held, but the reverse order also exists`
	c.mu.Unlock()
	d.mu.Unlock()
}

func helperLockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockCthenCallD(c *C, d *D) {
	c.mu.Lock()
	helperLockD(d) // want `lock order cycle: dataplane.D.mu acquired while dataplane.C.mu is held \(through call to helperLockD\)`
	c.mu.Unlock()
}

// ---- blessed paths: no findings ----

// deferUnlock discharges the exit obligation at every return.
func deferUnlock(d *D, n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n == 0 {
		return 0
	}
	return n
}

// branchUnlock releases explicitly on both paths — the TakeSnapshot
// shape.
func branchUnlock(d *D, drop bool) int {
	d.mu.Lock()
	if drop {
		d.mu.Unlock()
		return 0
	}
	d.mu.Unlock()
	return 1
}

// condPair only ever locks and unlocks under the same guard: the
// must-join keeps the held-set empty, so neither check may fire.
func condPair(d *D, b bool) {
	if b {
		d.mu.Lock()
	}
	if b {
		d.mu.Unlock()
	}
}

// rwReaders pairs RLock with RUnlock.
func rwReaders(r *R) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return 7
}

// goroutineFresh starts a goroutine that takes the same lock: the
// literal runs with a fresh held-set, so this is nesting-free.
func goroutineFresh(d *D) {
	d.mu.Lock()
	go func() {
		d.mu.Lock()
		d.mu.Unlock()
	}()
	d.mu.Unlock()
}

// consistentOrder repeats the A-then-B order elsewhere: edges without a
// reverse path are not cycles.
func consistentOrder(a *A, b *B2) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

type B2 struct{ mu sync.Mutex }
