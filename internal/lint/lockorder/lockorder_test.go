package lockorder_test

import (
	"testing"

	"speedlight/internal/lint/linttest"
	"speedlight/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "dataplane")
}
