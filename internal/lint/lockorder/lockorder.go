// Package lockorder proves two locking properties of the protocol
// packages (dataplane, live, wire, sim, snapstore, emunet, packet)
// on the CFG:
//
//  1. Unlock-on-every-path: a mutex acquired in a function must be
//     released (explicitly or by defer) on every return path. This
//     extends locksend's syntactic hold check to full path sensitivity
//     — the Lock; if err { return } early-exit bug class.
//
//  2. Acyclic acquisition order: acquiring lock B while holding lock A
//     adds the edge A→B to a package-level acquisition graph; lock
//     classes are (owner type, field) pairs, and edges propagate
//     interprocedurally through same-package calls via per-function
//     transitive acquire summaries. Any cycle is a potential deadlock
//     and is reported at the edge that closes it. Re-acquiring the
//     same mutex instance while it is must-held is reported
//     immediately as a self-deadlock.
//
// The held-set is a must analysis (intersection join): a lock is
// "held" at a point only if every path to that point acquired it, so
// both checks only fire on certainties, never on one branch of a
// conditional lock. Two limitations are deliberate: distinct instances
// of the same lock class are not ordered against each other (ordering
// within a class needs a runtime rank, not a static one), and a defer
// registered conditionally still discharges the exit obligation.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"speedlight/internal/lint/analysis"
	"speedlight/internal/lint/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "prove unlock-on-every-path and an acyclic lock-acquisition order " +
		"across the protocol packages (path-sensitive, defer-aware, with " +
		"interprocedural same-package acquire summaries)",
	Run: run,
}

// scoped lists the packages whose locking discipline the snapshot
// protocol's correctness argument depends on.
var scoped = map[string]bool{
	"dataplane": true,
	"live":      true,
	"wire":      true,
	"sim":       true,
	"snapstore": true,
	"emunet":    true,
	"packet":    true,
}

// lockKey is one held lock: class is the type-level identity used for
// ordering edges ("wire.Deployment.obsMu"); instance adds the receiver
// expression so re-acquire detection does not confuse two values of
// the same type ("d.obsMu").
type lockKey struct{ class, instance string }

func (k lockKey) encode() string { return k.class + "\x00" + k.instance }

func decodeKey(s string) lockKey {
	if i := strings.IndexByte(s, 0); i >= 0 {
		return lockKey{class: s[:i], instance: s[i+1:]}
	}
	return lockKey{class: s, instance: s}
}

// edge is one observed acquisition ordering: to was acquired while
// from was held.
type edge struct {
	from, to string
	pos      token.Pos
	viaCall  string // callee name when the edge crosses a call summary
}

// fnInfo is the per-function summary feeding the interprocedural pass.
type fnInfo struct {
	name     string
	acquires map[string]bool // lock classes acquired directly
	calls    []callSite
}

type callSite struct {
	callee *types.Func
	held   []lockKey
	pos    token.Pos
}

type checker struct {
	pass  *analysis.Pass
	fns   map[*types.Func]*fnInfo
	order []*types.Func // deterministic iteration
	edges []edge
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scoped[analysis.PkgScope(pass.Pkg.Path())] {
		return nil, nil
	}
	c := &checker{pass: pass, fns: map[*types.Func]*fnInfo{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvName(fd) + "." + name
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			info := c.analyzeBody(fd.Body, name)
			if fn != nil {
				c.fns[fn] = info
				c.order = append(c.order, fn)
			}
			// Function literals hold no locks from the enclosing
			// frame when they run (goroutines, callbacks): analyze
			// each with a fresh held-set.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.analyzeBody(lit.Body, name+".func")
					return false
				}
				return true
			})
		}
	}
	c.interprocedural()
	c.reportCycles()
	return nil, nil
}

func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// analyzeBody runs the must-held fixpoint over one body, reports
// per-function findings, and returns the interprocedural summary.
func (c *checker) analyzeBody(body *ast.BlockStmt, fname string) *fnInfo {
	cfg := flow.Build(body)
	info := &fnInfo{name: fname, acquires: map[string]bool{}}

	// Deferred unlocks discharge the exit obligation for their
	// instance on every path.
	deferUnlocked := map[string]bool{}
	for _, d := range cfg.Defers {
		if kind, recv := syncLockKind(c.pass.TypesInfo, d.Call); kind == "Unlock" || kind == "RUnlock" {
			deferUnlocked[c.key(fname, recv).encode()] = true
		}
	}

	tr := func(b *flow.Block, in flow.Fact) flow.Fact {
		held, _ := in.(flow.MustSet)
		if held == nil {
			held = flow.MustSet{}
		}
		for _, n := range b.Nodes {
			held = c.node(nil, held, n, fname)
		}
		return held
	}
	res, err := flow.Forward(cfg, flow.MustLattice, flow.MustSet{}, tr)
	if err != nil {
		return info
	}
	// Reporting pass with converged facts; this is also where the
	// summary (direct acquires, call sites with held-sets) is built,
	// exactly once per node.
	for _, b := range cfg.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held, _ := in.(flow.MustSet)
		if held == nil {
			held = flow.MustSet{}
		}
		for _, n := range b.Nodes {
			held = c.node(info, held, n, fname)
		}
	}
	for _, t := range cfg.Terminators() {
		out, ok := res.Out[t]
		if !ok {
			continue
		}
		held, _ := out.(flow.MustSet)
		pos := cfg.End
		for i := len(t.Nodes) - 1; i >= 0; i-- {
			if r, ok := t.Nodes[i].(*ast.ReturnStmt); ok {
				pos = r.Pos()
				break
			}
		}
		for _, enc := range held.Sorted() {
			if deferUnlocked[enc] {
				continue
			}
			k := decodeKey(enc)
			c.pass.Reportf(pos, "lock %s is still held on this return path: missing Unlock (or defer it at the acquire)", k.instance)
		}
	}
	return info
}

// node interprets one CFG node over the must-held set. info is nil
// during the fixpoint; when non-nil (reporting pass) diagnostics are
// emitted and the summary is populated.
func (c *checker) node(info *fnInfo, held flow.MustSet, n ast.Node, fname string) flow.MustSet {
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false // analyzed separately with a fresh held-set
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, recv := syncLockKind(c.pass.TypesInfo, call)
		switch kind {
		case "Lock", "RLock":
			k := c.key(fname, recv)
			enc := k.encode()
			if held[enc] && info != nil {
				c.pass.Reportf(call.Pos(), "%s of %s while it is already held: guaranteed self-deadlock", kind, k.instance)
			}
			if info != nil {
				info.acquires[k.class] = true
				for _, henc := range held.Sorted() {
					h := decodeKey(henc)
					if h.class != k.class {
						c.edges = append(c.edges, edge{from: h.class, to: k.class, pos: call.Pos()})
					}
				}
			}
			held = held.With(enc)
		case "Unlock", "RUnlock":
			held = held.Without(c.key(fname, recv).encode())
		default:
			if info != nil && len(held) > 0 {
				if fn := calleeFunc(c.pass.TypesInfo, call); fn != nil && fn.Pkg() == c.pass.Pkg {
					var hs []lockKey
					for _, henc := range held.Sorted() {
						hs = append(hs, decodeKey(henc))
					}
					info.calls = append(info.calls, callSite{callee: fn, held: hs, pos: call.Pos()})
				}
			}
		}
		return true
	})
	return held
}

// key derives the lock identity from the receiver expression of a
// Lock/Unlock call: (owner type, field) for field mutexes, package
// name for package-level mutexes, function-scoped for locals.
func (c *checker) key(fname string, recv ast.Expr) lockKey {
	recv = ast.Unparen(recv)
	instance := types.ExprString(recv)
	switch x := recv.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
			return lockKey{class: c.pass.Pkg.Name() + "." + obj.Name(), instance: instance}
		}
		return lockKey{class: fname + "." + x.Name, instance: instance}
	case *ast.SelectorExpr:
		if tv, ok := c.pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return lockKey{class: c.pass.Pkg.Name() + "." + n.Obj().Name() + "." + x.Sel.Name, instance: instance}
			}
		}
	}
	return lockKey{class: c.pass.Pkg.Name() + "." + instance, instance: instance}
}

// interprocedural folds callee acquire summaries into caller-side
// ordering edges: holding A across a call that (transitively) acquires
// B is the same hazard as holding A while locking B inline.
func (c *checker) interprocedural() {
	trans := map[*types.Func]map[string]bool{}
	for fn, info := range c.fns {
		t := map[string]bool{}
		for cl := range info.acquires {
			t[cl] = true
		}
		trans[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range c.order {
			info := c.fns[fn]
			for _, cs := range info.calls {
				callee, ok := trans[cs.callee]
				if !ok {
					continue
				}
				for cl := range callee {
					if !trans[fn][cl] {
						trans[fn][cl] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range c.order {
		for _, cs := range c.fns[fn].calls {
			callee, ok := trans[cs.callee]
			if !ok {
				continue
			}
			var acquired []string
			for cl := range callee {
				acquired = append(acquired, cl)
			}
			sort.Strings(acquired)
			for _, h := range cs.held {
				for _, cl := range acquired {
					if cl != h.class {
						c.edges = append(c.edges, edge{from: h.class, to: cl, pos: cs.pos, viaCall: cs.callee.Name()})
					}
				}
			}
		}
	}
}

// reportCycles finds every acquisition edge that participates in a
// cycle of the class-level graph and reports it (deduplicated, in
// position order).
func (c *checker) reportCycles() {
	adj := map[string]map[string]bool{}
	for _, e := range c.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for m := range adj[n] {
				if m == to {
					return true
				}
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	sort.Slice(c.edges, func(i, j int) bool { return c.edges[i].pos < c.edges[j].pos })
	seen := map[string]bool{}
	for _, e := range c.edges {
		id := e.from + "->" + e.to
		if seen[id] || !reaches(e.to, e.from) {
			continue
		}
		seen[id] = true
		via := ""
		if e.viaCall != "" {
			via = " (through call to " + e.viaCall + ")"
		}
		c.pass.Reportf(e.pos, "lock order cycle: %s acquired while %s is held%s, but the reverse order also exists — potential deadlock", e.to, e.from, via)
	}
}

// calleeFunc resolves the statically-called function, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// syncLockKind classifies a call as one of the four sync.Mutex /
// sync.RWMutex lock operations and returns the receiver expression.
func syncLockKind(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", nil
	}
	if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", nil
	}
	return fn.Name(), sel.X
}
