// Package journalctor forbids constructing journal.Event values by
// composite literal outside package journal.
//
// The flight recorder's audit pass (paper §3–4: every protocol
// transition must leave a checkable trace) relies on Event invariants —
// kind-specific field combinations, sentinel ports/channels — that only
// the constructors in journal/events.go establish. A hand-rolled
// literal can produce an event the auditor misreads or silently skips,
// so literals are confined to the defining package.
package journalctor

import (
	"go/ast"
	"go/types"

	"speedlight/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "journalctor",
	Doc: "flag journal.Event composite literals outside package journal; " +
		"use the constructors in events.go so audit invariants hold",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if analysis.PkgScope(pass.Pkg.Path()) == "journal" {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if isJournalEvent(pass.TypesInfo.Types[lit].Type) {
				pass.Reportf(lit.Pos(),
					"journal.Event composite literal outside package journal: use the constructors in events.go so the audit chain stays checkable")
			}
			return true
		})
	}
	return nil, nil
}

func isJournalEvent(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == "Event" && analysis.PkgScope(obj.Pkg().Path()) == "journal"
}
