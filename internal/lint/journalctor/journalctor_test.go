package journalctor_test

import (
	"testing"

	"speedlight/internal/lint/journalctor"
	"speedlight/internal/lint/linttest"
)

func TestJournalCtor(t *testing.T) {
	linttest.Run(t, journalctor.Analyzer, "app", "journal")
}
