// Package app exercises journalctor outside the defining package.
package app

import "journal"

func bad() journal.Event {
	return journal.Event{Kind: 2} // want `journal\.Event composite literal`
}

func badPtr() *journal.Event {
	return &journal.Event{} // want `journal\.Event composite literal`
}

func badNested() []journal.Event {
	return []journal.Event{{Kind: 3}} // want `journal\.Event composite literal`
}

func good() []journal.Event {
	ev := journal.Record(2, 7)
	chain := []journal.Event{ev, journal.Initiate(1)} // a witness chain of constructed events is fine
	var empty []journal.Event                         // so is an empty slice
	return append(empty, chain...)
}
