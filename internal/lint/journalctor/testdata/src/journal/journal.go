// Package journal is a golden-test stand-in for speedlight's journal
// package: Event literals are legal here and only here.
package journal

type Event struct {
	Kind  int
	Seq   uint64
	Value uint64
}

func Record(kind int, value uint64) Event {
	return Event{Kind: kind, Value: value} // the constructors are the blessed literals
}

func Initiate(value uint64) Event {
	return Event{Kind: 1, Value: value}
}
