// Package linttest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over golden packages under the analyzer's testdata/src directory and
// checks reported diagnostics against // want comments.
//
// Layout, mirroring analysistest:
//
//	<analyzer>/testdata/src/<pkg>/<files>.go
//
// Each directory under src is one package whose import path is its
// bare directory name; testdata packages may import each other by that
// name (e.g. a fake "packet" package) and may import the standard
// library, which is resolved through `go list -export`.
//
// Expectations are comments of the form
//
//	expr // want "regexp"
//	expr // want "first" "second"
//
// where each quoted (or backquoted) string is a regular expression that
// must match a diagnostic reported on that line. Diagnostics without a
// matching want, and wants without a matching diagnostic, fail the
// test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"speedlight/internal/lint/analysis"
	"speedlight/internal/lint/driver"
)

// Run analyzes the named testdata packages (directories under
// testdata/src relative to the calling test) with a and compares
// diagnostics against // want expectations. Dependencies between
// testdata packages are loaded automatically; pkgs only names the
// packages whose diagnostics are checked.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := newWorld(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		cp, err := w.check(pkg)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", pkg, err)
		}
		findings, err := driver.RunAnalyzers(cp, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		checkExpectations(t, w.fset, cp.Files, findings)
	}
}

// world loads and caches testdata packages plus stdlib export data.
type world struct {
	root    string
	fset    *token.FileSet
	checked map[string]*driver.CheckedPackage
	parsed  map[string][]*ast.File

	stdExports map[string]string // stdlib import path -> export file
	stdMap     map[string]string // vendored-path mapping from go list
}

func newWorld(root string) (*world, error) {
	return &world{
		root:    root,
		fset:    token.NewFileSet(),
		checked: make(map[string]*driver.CheckedPackage),
		parsed:  make(map[string][]*ast.File),
	}, nil
}

// parse parses all files of one testdata package.
func (w *world) parse(pkg string) ([]*ast.File, error) {
	if files, ok := w.parsed[pkg]; ok {
		return files, nil
	}
	dir := filepath.Join(w.root, pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := driver.ParseFile(w.fset, filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	w.parsed[pkg] = files
	return files, nil
}

// isLocal reports whether path names a testdata package directory.
func (w *world) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(w.root, path))
	return err == nil && st.IsDir()
}

// check type-checks one testdata package, loading local and stdlib
// dependencies on demand.
func (w *world) check(pkg string) (*driver.CheckedPackage, error) {
	if cp, ok := w.checked[pkg]; ok {
		return cp, nil
	}
	files, err := w.parse(pkg)
	if err != nil {
		return nil, err
	}
	// Resolve imports first so the importer below only ever sees
	// packages that are already checked (testdata) or listed (stdlib).
	var std []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if w.isLocal(path) {
				if _, err := w.check(path); err != nil {
					return nil, err
				}
			} else {
				std = append(std, path)
			}
		}
	}
	if err := w.ensureStdExports(std); err != nil {
		return nil, err
	}
	info := driver.NewTypesInfo()
	conf := types.Config{Importer: (*worldImporter)(w)}
	p, err := conf.Check(pkg, w.fset, files, info)
	if err != nil {
		return nil, err
	}
	cp := &driver.CheckedPackage{Fset: w.fset, Files: files, Pkg: p, Info: info}
	w.checked[pkg] = cp
	return cp, nil
}

// ensureStdExports makes export data available for the given stdlib
// packages (and their dependencies) via one `go list -export` call per
// new batch.
func (w *world) ensureStdExports(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := w.stdExports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	listed, err := driver.GoList(missing)
	if err != nil {
		return err
	}
	if w.stdExports == nil {
		w.stdExports = make(map[string]string)
		w.stdMap = make(map[string]string)
	}
	for _, p := range listed {
		if p.Export != "" {
			w.stdExports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			w.stdMap[from] = to
		}
	}
	return nil
}

// worldImporter resolves imports during testdata type checking:
// testdata packages come from the checked cache, everything else from
// stdlib export data.
type worldImporter world

func (wi *worldImporter) Import(path string) (*types.Package, error) {
	return wi.ImportFrom(path, "", 0)
}

func (wi *worldImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	w := (*world)(wi)
	if cp, ok := w.checked[path]; ok {
		return cp.Pkg, nil
	}
	if w.isLocal(path) {
		return nil, fmt.Errorf("testdata package %q imported before being checked", path)
	}
	imp := driver.ExportImporter(w.fset, w.stdMap, w.stdExports)
	return imp.ImportFrom(path, dir, mode)
}

// expectation is one // want regexp at a file position.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts // want expectations from the files' comments.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want: %v", pos, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pat,
					})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of Go string literals ("..." or
// `...`) separated by spaces.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected string literal at %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated string in %q", s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}

// checkExpectations matches diagnostics against wants and reports both
// kinds of mismatch.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, findings []driver.Finding) {
	t.Helper()
	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range findings {
		pos := fset.Position(d.Pos)
		matched := false
		for _, wt := range wants {
			if wt.met || wt.file != pos.Filename || wt.line != pos.Line {
				continue
			}
			if wt.re.MatchString(d.Message) {
				wt.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, wt := range wants {
		if !wt.met {
			t.Errorf("%s:%d: no diagnostic matching %q", wt.file, wt.line, wt.raw)
		}
	}
}
