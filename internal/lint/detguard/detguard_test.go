package detguard_test

import (
	"testing"

	"speedlight/internal/lint/detguard"
	"speedlight/internal/lint/linttest"
)

func TestDetGuard(t *testing.T) {
	linttest.Run(t, detguard.Analyzer, "core", "app")
}
