// Package detguard keeps the deterministic packages deterministic.
//
// Speedlight's conformance story (ROADMAP: seeded simulation runs must
// replay bit-identically, and the ideal-algorithm differential oracle
// depends on it) requires that protocol and simulation code never read
// ambient entropy. detguard flags, inside the deterministic packages:
//
//   - time.Now / time.Since — wall-clock reads; use the sim clock or an
//     injected now() func.
//   - package-level math/rand and math/rand/v2 functions — the global
//     generator is seeded from runtime entropy; use a seeded *rand.Rand.
//   - map iteration that appends to a slice which is never sorted in the
//     same function — Go randomizes map order, so the slice's order
//     leaks nondeterminism into output.
package detguard

import (
	"go/ast"
	"go/types"

	"speedlight/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detguard",
	Doc: "flag wall-clock reads, global math/rand use, and unsorted map iteration " +
		"in the deterministic packages (core, dataplane, sim, emunet, control, observer)",
	Run: run,
}

// deterministic lists the package scope bases detguard applies to.
var deterministic = map[string]bool{
	"core":      true,
	"dataplane": true,
	"sim":       true,
	"emunet":    true,
	"control":   true,
	"observer":  true,
}

// seededCtors are the math/rand functions that build an explicitly
// seeded generator — the blessed path.
var seededCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !deterministic[analysis.PkgScope(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue // tests may time themselves and seed ad hoc
		}
		checkEntropyUses(pass, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrder(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// checkEntropyUses flags references to wall-clock and global-rand
// functions anywhere in the file.
func checkEntropyUses(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(id.Pos(),
					"time.%s in deterministic package: read the sim clock or an injected now() instead",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are fine
			}
			if !seededCtors[fn.Name()] {
				pass.Reportf(id.Pos(),
					"global rand.%s in deterministic package: draw from a seeded *rand.Rand so runs replay",
					fn.Name())
			}
		}
		return true
	})
}

// checkMapOrder flags `for k := range m` loops that append to a local
// slice never passed to a sort call within the same function.
func checkMapOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	type suspect struct {
		loop  *ast.RangeStmt
		slice types.Object
	}
	var suspects []suspect

	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[loop.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
				return true
			}
			dst, ok := asg.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[dst]; obj != nil {
				suspects = append(suspects, suspect{loop: loop, slice: obj})
			} else if obj := pass.TypesInfo.Defs[dst]; obj != nil {
				suspects = append(suspects, suspect{loop: loop, slice: obj})
			}
			return true
		})
		return true
	})

	for _, s := range suspects {
		if !sortedInFunc(pass, body, s.slice) {
			pass.Reportf(s.loop.For,
				"map iteration order feeds %s without a sort in this function: Go randomizes map order, so output order is nondeterministic",
				s.slice.Name())
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedInFunc reports whether the function body contains a call into
// package sort or slices whose arguments reference obj.
func sortedInFunc(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
