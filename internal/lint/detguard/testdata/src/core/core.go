// Package core is a golden-test stand-in for a deterministic
// speedlight package (scope base "core").
package core

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic package`
}

func globalDraw() int {
	return rand.Intn(6) // want `global rand\.Intn in deterministic package`
}

func seededDraw(r *rand.Rand) int {
	return r.Intn(6) // methods on an explicit seeded generator are fine
}

func newGenerator(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // the seeded constructors are the blessed path
}

func unsortedKeys(m map[int]uint64) []int {
	var out []int
	for k := range m { // want `map iteration order feeds out without a sort`
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[int]uint64) []int {
	var out []int
	for k := range m { // sorted below: deterministic
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sumValues(m map[int]uint64) uint64 {
	var total uint64
	for _, v := range m { // order-insensitive fold: no slice is built
		total += v
	}
	return total
}
