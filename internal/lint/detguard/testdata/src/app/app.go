// Package app is outside the deterministic scope: the same calls that
// detguard flags in core are legal here.
package app

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // app is not a deterministic package
}

func globalDraw() int {
	return rand.Intn(6)
}
