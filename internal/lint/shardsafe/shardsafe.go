// Package shardsafe is the compile-time twin of sim.Parallel's runtime
// causality panics: code reachable from a shard worker entry point must
// not touch state or APIs that only the serialized GlobalDomain may.
//
// Entry points are declared with //speedlight:shard on the event
// callbacks a parallel worker fires (the emunet arrive/tx/deliver
// trampolines, Parallel's own worker loop). From those roots shardsafe
// walks the same-package static call graph and, in every reachable
// function, flags:
//
//   - writes to package-level mutable state (assignment, ++/--, or
//     delete on a package-level variable): shard workers run
//     concurrently, and the repo's single-writer discipline reserves
//     package state for the global domain (reads are allowed — config
//     flags like CalendarQueue are set before Run);
//
//   - calls to functions marked //speedlight:global-only (anomaly
//     detection, timeout handling — logic that must observe a total
//     event order);
//
//   - calls to the engine-facing sim API (methods on sim.Sim,
//     sim.Engine, or sim.Parallel: Now, Rand, Schedule, After, Cancel,
//     NewTicker, Run, ...): worker code must go through its sim.Proc,
//     whose Send/SendCall/SendAt methods are the blessed cross-shard
//     handoff that the runtime routes through per-pair SPSC rings;
//
//   - direct touches of the engine's shard table or global queue (the
//     sim Parallel fields named shards / global): a worker owns exactly
//     one shard, and every cross-shard or shard-to-global event must
//     travel a pair ring — pushing into another shard's queue directly
//     bypasses the ring protocol's ordering and memory-publication
//     guarantees. The handful of functions that ARE the handoff
//     protocol (sendAt's routing switch, the home-shard lookup) declare
//     themselves with //speedlight:shard-handoff, which exempts them
//     from this one rule while the others still apply.
//
// The call graph is intraprocedural per package and purely static:
// calls through function values or interfaces other than the sim API
// are not followed (the event-callback indirection is exactly what the
// //speedlight:shard marks pin down). Each finding names the entry
// point that makes the function shard-reachable so the path is
// auditable.
package shardsafe

import (
	"go/ast"
	"go/types"
	"sort"

	"speedlight/internal/lint/analysis"
	"speedlight/internal/lint/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "prove code reachable from //speedlight:shard worker entry points " +
		"does not write package-level state, call //speedlight:global-only " +
		"functions, or use the engine API outside the blessed Proc send path",
	Run: run,
}

// handoffFields are the sim.Parallel fields only the coordinator (or a
// //speedlight:shard-handoff function) may touch from shard-reachable
// code: the shard table and the global domain's queue state.
var handoffFields = map[string]bool{"shards": true, "global": true}

// globalOnlyAPI are the sim engine methods reserved for the global
// domain / driver; Proc's methods (Send, SendCall, SendAt, Schedule,
// After, Cancel, NewTicker on the Proc interface) are the blessed
// worker-side path and are never flagged.
var globalOnlyAPI = map[string]bool{
	"Now": true, "Rand": true, "NewRand": true,
	"Schedule": true, "After": true, "Cancel": true, "NewTicker": true,
	"Run": true, "RunUntil": true, "RunFor": true,
	"Fired": true, "Pending": true,
}

// engineRecv are the sim receiver types whose methods form the
// global-side engine API.
var engineRecv = map[string]bool{"Sim": true, "Engine": true, "Parallel": true}

type fnNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	name    string
	shard   bool // //speedlight:shard
	global  bool // //speedlight:global-only
	handoff bool // //speedlight:shard-handoff
}

func run(pass *analysis.Pass) (interface{}, error) {
	nodes := map[*types.Func]*fnNode{}
	var order []*fnNode
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvName(fd) + "." + name
			}
			n := &fnNode{fn: fn, decl: fd, name: name}
			_, n.shard = flow.Directive(fd.Doc, "shard")
			_, n.global = flow.Directive(fd.Doc, "global-only")
			_, n.handoff = flow.Directive(fd.Doc, "shard-handoff")
			nodes[fn] = n
			order = append(order, n)
		}
	}

	// Same-package call graph: a reference to a function (called or
	// taken as a value) makes it reachable.
	succs := map[*fnNode][]*fnNode{}
	for _, n := range order {
		seen := map[*fnNode]bool{}
		ast.Inspect(n.decl.Body, func(sub ast.Node) bool {
			id, ok := sub.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if callee, ok := nodes[fn]; ok && !seen[callee] {
				seen[callee] = true
				succs[n] = append(succs[n], callee)
			}
			return true
		})
	}

	// Reachability from shard entries, remembering one witness entry
	// per function for the diagnostic.
	entryFor := map[*fnNode]string{}
	var queue []*fnNode
	for _, n := range order {
		if n.shard {
			entryFor[n] = n.name
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range succs[n] {
			if _, ok := entryFor[s]; !ok {
				entryFor[s] = entryFor[n]
				queue = append(queue, s)
			}
		}
	}

	// Deterministic order: declaration order of reachable functions.
	var reachable []*fnNode
	for _, n := range order {
		if _, ok := entryFor[n]; ok {
			reachable = append(reachable, n)
		}
	}
	sort.SliceStable(reachable, func(i, j int) bool {
		return reachable[i].decl.Pos() < reachable[j].decl.Pos()
	})

	for _, n := range reachable {
		check(pass, nodes, n, entryFor[n])
	}
	return nil, nil
}

// check flags the three violation classes inside one shard-reachable
// function.
func check(pass *analysis.Pass, nodes map[*types.Func]*fnNode, n *fnNode, entry string) {
	via := ""
	if n.name != entry {
		via = " (reachable from //speedlight:shard entry " + entry + ")"
	} else {
		via = " (//speedlight:shard entry point)"
	}
	ast.Inspect(n.decl.Body, func(sub ast.Node) bool {
		switch s := sub.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if v := pkgLevelTarget(pass, lhs); v != nil {
					pass.Reportf(lhs.Pos(), "shard-reachable %s writes package-level %s%s: shard workers run concurrently; route mutations through a GlobalDomain event", n.name, v.Name(), via)
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelTarget(pass, s.X); v != nil {
				pass.Reportf(s.Pos(), "shard-reachable %s writes package-level %s%s: shard workers run concurrently; route mutations through a GlobalDomain event", n.name, v.Name(), via)
			}
		case *ast.CallExpr:
			if id, ok := builtinIdent(pass, s); ok && id == "delete" && len(s.Args) > 0 {
				if v := pkgLevelTarget(pass, s.Args[0]); v != nil {
					pass.Reportf(s.Pos(), "shard-reachable %s writes package-level %s%s: shard workers run concurrently; route mutations through a GlobalDomain event", n.name, v.Name(), via)
				}
			}
			fn := calleeFunc(pass.TypesInfo, s)
			if fn == nil {
				return true
			}
			if callee, ok := nodes[fn]; ok && callee.global {
				pass.Reportf(s.Pos(), "shard-reachable %s calls //speedlight:global-only %s%s: this logic needs the total event order of the global domain", n.name, callee.name, via)
			}
			if isEngineAPI(fn) {
				pass.Reportf(s.Pos(), "shard-reachable %s calls sim engine API %s%s: worker code must use its Proc (Send/SendCall/SendAt) so the runtime can route across shards", n.name, fn.Name(), via)
			}
		case *ast.SelectorExpr:
			if n.handoff {
				return true
			}
			if f := handoffField(pass, s); f != "" {
				pass.Reportf(s.Pos(), "shard-reachable %s touches Parallel.%s directly%s: cross-shard events must travel the pair ring handoff (pushRing), not another shard's queue; blessed implementations declare //speedlight:shard-handoff", n.name, f, via)
			}
		}
		return true
	})
}

// handoffField reports whether sel reads one of sim.Parallel's
// coordinator-owned fields (the shard table or the global shard),
// returning the field name when it does.
func handoffField(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	if !handoffFields[sel.Sel.Name] {
		return ""
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil {
		return ""
	}
	if analysis.PkgScope(v.Pkg().Path()) != "sim" {
		return ""
	}
	return v.Name()
}

// pkgLevelTarget resolves an assignment target to the package-level
// variable it mutates, if any: a bare package var, or an index/field/
// deref rooted at one (writing p.X or m[k] mutates the shared object
// the package var names).
func pkgLevelTarget(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Only follow when the base is a package-level var in
			// this package (pkg.Var.Field); a selector on a local
			// (es.sw.state) is the local's object graph, not ours.
			e = x.X
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[x].(*types.Var)
			if !ok || v.IsField() {
				return nil
			}
			if v.Parent() == pass.Pkg.Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isEngineAPI reports whether fn is a global-side method of the sim
// engine (receiver Sim/Engine/Parallel in package sim).
func isEngineAPI(fn *types.Func) bool {
	if fn.Pkg() == nil || analysis.PkgScope(fn.Pkg().Path()) != "sim" {
		return false
	}
	if !globalOnlyAPI[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return engineRecv[n.Obj().Name()]
	}
	return false
}

func builtinIdent(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
