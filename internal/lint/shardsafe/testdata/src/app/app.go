// Package app seeds shardsafe's golden violations: package-state
// writes, //speedlight:global-only calls, and engine-API calls from
// shard-reachable code, plus the blessed Proc path and global-domain
// code that must stay quiet.
package app

import "sim"

var drops int

var seen = map[int]bool{}

var debug bool

type state struct{ n int }

type worker struct {
	s    *sim.Sim
	proc sim.Proc
	st   *state
}

// ---- violations ----

// arriveCall mutates a package counter from inside a worker.
//
//speedlight:shard
func (w *worker) arriveCall(a, b interface{}, i int64) {
	drops++ // want `shard-reachable worker.arriveCall writes package-level drops`
	w.bump(int(i))
}

// bump is only dangerous because arriveCall makes it shard-reachable.
func (w *worker) bump(k int) {
	seen[k] = true  // want `shard-reachable worker.bump writes package-level seen`
	delete(seen, k) // want `shard-reachable worker.bump writes package-level seen`
}

// txCall reaches for global-domain logic and the engine clock.
//
//speedlight:shard
func (w *worker) txCall(a, b interface{}, i int64) {
	w.anomaly(i)      // want `calls //speedlight:global-only worker.anomaly`
	if w.s.Now() > 0 { // want `calls sim engine API Now`
		w.st.n++
	}
}

// anomaly must observe the total event order of the global domain.
//
//speedlight:global-only
func (w *worker) anomaly(i int64) {}

// ---- blessed paths: no findings ----

// deliverCall stays inside the worker's own object graph and crosses
// shards only through its Proc.
//
//speedlight:shard
func (w *worker) deliverCall(a, b interface{}, i int64) {
	w.proc.SendCall(1, 0, nil, a, b, i)
	w.proc.After(5)
	w.st.n++ // local object graph, not package state
	if debug { // reading package config is fine
		w.st.n = 0
	}
}

// driver is global-domain code: the same writes and engine calls are
// legal here because nothing marks it shard-reachable.
func driver(w *worker) {
	drops = 0
	w.s.Schedule(3)
	w.s.Run()
}
