// parallel.go fakes the sharded engine's coordinator-owned state —
// the shard table and the global shard — so the ring-handoff rule has
// a same-scope surface to exercise: shard-reachable code must route
// cross-shard events through the blessed //speedlight:shard-handoff
// functions, never into another shard's queue directly.
package sim

type event struct{ at Time }

type evRing struct{ slots []*event }

func (r *evRing) tryPush(ev *event) bool {
	if len(r.slots) > 0 {
		return false
	}
	r.slots = append(r.slots, ev)
	return true
}

type pshard struct {
	q    []*event
	ring *evRing
}

func (sh *pshard) push(ev *event) { sh.q = append(sh.q, ev) }

// Parallel mirrors the real engine's coordinator-owned fields.
type Parallel struct {
	shards []*pshard
	global *pshard
}

// epochLoop is a worker entry: it owns exactly its argument shard, so
// reaching into the shard table or the global queue is a direct
// cross-shard send outside the ring.
//
//speedlight:shard
func (p *Parallel) epochLoop(sh *pshard, tgt int) {
	p.shards[tgt].push(&event{}) // want `shard-reachable Parallel.epochLoop touches Parallel.shards directly`
	p.global.push(&event{})      // want `shard-reachable Parallel.epochLoop touches Parallel.global directly`
	p.pushRing(sh, &event{})
	sh.push(&event{}) // own shard: fine
}

// route is only dangerous because epochLoop could make it reachable;
// nothing does, so its table access stays quiet (global-domain code).
func (p *Parallel) route(tgt int, ev *event) { p.shards[tgt].push(ev) }

// pushRing is the handoff protocol itself: exempt from the table rule
// by declaration, still subject to every other check.
//
//speedlight:shard-handoff
func (p *Parallel) pushRing(sh *pshard, ev *event) {
	if !sh.ring.tryPush(ev) {
		p.shards[0].push(ev) // blessed: the handoff owns this routing
	}
}
