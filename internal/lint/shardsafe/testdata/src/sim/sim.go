// Package sim fakes the engine surface shardsafe discriminates on:
// Sim's methods are the global-side API, Proc's are the blessed
// worker-side handoff.
package sim

type Time int64

type Duration int64

type CallFn func(a, b interface{}, i int64)

type Proc interface {
	Send(dst int, at Time)
	SendCall(dst int, at Time, fn CallFn, a, b interface{}, i int64)
	After(d Duration)
}

type Sim struct{ now Time }

func (s *Sim) Now() Time        { return s.now }
func (s *Sim) Schedule(at Time) {}
func (s *Sim) Run()             {}
func (s *Sim) Rand() int64      { return 0 }
