package shardsafe_test

import (
	"testing"

	"speedlight/internal/lint/linttest"
	"speedlight/internal/lint/shardsafe"
)

func TestShardSafe(t *testing.T) {
	linttest.Run(t, shardsafe.Analyzer, "app", "sim")
}
