package analysis

import "testing"

func TestPkgScope(t *testing.T) {
	cases := []struct {
		path, want string
	}{
		{"speedlight/internal/core", "core"},
		{"speedlight/internal/core [speedlight/internal/core.test]", "core"},
		{"speedlight/internal/core.test", "core.test"},
		{"core", "core"},
		{"core [core.test]", "core"},
	}
	for _, c := range cases {
		if got := PkgScope(c.path); got != c.want {
			t.Errorf("PkgScope(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}
