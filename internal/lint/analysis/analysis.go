// Package analysis is a self-contained reimplementation of the subset
// of golang.org/x/tools/go/analysis that Speedlight's analyzers need.
//
// The repository builds hermetically from the standard library alone,
// so the x/tools module is not available; this package mirrors its
// Analyzer/Pass/Diagnostic surface closely enough that the analyzers in
// internal/lint would port to the upstream framework with only an
// import change. Facts, SSA, and the Requires graph are deliberately
// omitted: every Speedlight analyzer is a single-package syntax+types
// pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic prefix name.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgScope returns the last element of a package import path with any
// test-variant suffix removed: both
// "speedlight/internal/core [speedlight/internal/core.test]" and
// "speedlight/internal/core" scope to "core". Analyzers use it to match
// the protocol packages their rules apply to, which also makes the
// rules hold for the single-element fake packages under testdata.
func PkgScope(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	if i := strings.LastIndex(importPath, "/"); i >= 0 {
		importPath = importPath[i+1:]
	}
	return importPath
}

// IsTestFile reports whether the file's position belongs to a _test.go
// file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go")
}
