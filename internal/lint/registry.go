// Package lint collects Speedlight's protocol-invariant analyzers.
//
// Each analyzer encodes one rule from the Synchronized Network
// Snapshots paper (SIGCOMM 2018) as a compile-time check; see
// DESIGN.md's "Static analysis" section for the mapping. The suite is
// built into cmd/speedlightvet and run in CI via `go vet -vettool`.
package lint

import (
	"speedlight/internal/lint/analysis"
	"speedlight/internal/lint/detguard"
	"speedlight/internal/lint/hotalloc"
	"speedlight/internal/lint/journalctor"
	"speedlight/internal/lint/lockorder"
	"speedlight/internal/lint/locksend"
	"speedlight/internal/lint/poolown"
	"speedlight/internal/lint/shardsafe"
	"speedlight/internal/lint/wrappedcmp"
)

// Analyzers returns the full speedlightvet suite in deterministic
// order: the syntactic single-pass checks first, then the
// CFG/dataflow analyzers built on internal/lint/flow.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wrappedcmp.Analyzer,
		journalctor.Analyzer,
		detguard.Analyzer,
		locksend.Analyzer,
		hotalloc.Analyzer,
		poolown.Analyzer,
		lockorder.Analyzer,
		shardsafe.Analyzer,
	}
}
