// Package app seeds poolown's golden violations and blessed-path
// negatives against the fake packet pool and sim Proc surface.
package app

import (
	"packet"
	"sim"
)

type node struct {
	pool *packet.Pool
	proc sim.Proc
}

type box struct{ pkt *packet.Packet }

// ---- violations ----

// useAfterPut mirrors the exact pattern the pool's runtime generation
// check panics on: read after the value went back to the free list.
func (n *node) useAfterPut() int {
	pkt := n.pool.Get()
	n.pool.Put(pkt)
	return pkt.Size // want `use of pooled value pkt after Put`
}

// conditionalPut releases on one branch only: the later read is a
// use-after-free on the drop path and a leak on the other.
func (n *node) conditionalPut(drop bool) int {
	pkt := n.pool.Get()
	if drop {
		n.pool.Put(pkt)
	}
	return pkt.Size // want `use of pooled value pkt after Put` `pooled value pkt may leak on this return path`
}

// doublePut frees twice when the retry branch already ran.
func (n *node) doublePut(retry bool) {
	pkt := n.pool.Get()
	if retry {
		n.pool.Put(pkt)
	}
	n.pool.Put(pkt) // want `double Put of pooled value pkt`
}

// leakOnEarlyReturn is the early-return audit case: the guard path
// exits while still owning the packet.
func (n *node) leakOnEarlyReturn(limit int) {
	pkt := n.pool.Get()
	if limit == 0 {
		return // want `pooled value pkt may leak on this return path`
	}
	pkt.Size = limit
	n.pool.Put(pkt)
}

// leakInLoop leaks one packet per skipped iteration.
func (n *node) leakInLoop(k int) {
	for i := 0; i < k; i++ {
		pkt := n.pool.Get()
		if i%2 == 0 {
			continue
		}
		n.pool.Put(pkt)
	}
} // want `pooled value pkt may leak on this return path`

// discard drops the owned result on the floor.
func (n *node) discard() {
	n.pool.Get() // want `result of pooled Get discarded`
}

// useAfterHandoffPut hands a released value to the blessed path.
func (n *node) useAfterHandoffPut(fn sim.CallFn) {
	pkt := n.pool.Get()
	n.pool.Put(pkt)
	n.proc.SendCall(0, 5, fn, nil, pkt, 0) // want `use of pooled value pkt after Put`
}

// transferLeak takes ownership via the directive but forgets the
// terminal on the error path — checked on the callee side too.
//
//speedlight:pool-transfer pkt
func (n *node) transferLeak(pkt *packet.Packet, ok bool) {
	if !ok {
		return // want `pooled value pkt may leak on this return path`
	}
	n.pool.Put(pkt)
}

// ---- blessed paths: no findings ----

// putOnEveryPath is the straight-line discipline.
func (n *node) putOnEveryPath(v int) {
	pkt := n.pool.Get()
	pkt.Size = v
	n.pool.Put(pkt)
}

// handoff transfers ownership through the blessed SendCall path.
func (n *node) handoff(fn sim.CallFn) {
	pkt := n.pool.Get()
	n.proc.SendCall(0, 5, fn, nil, pkt, 0)
}

// escapeReturn moves ownership to the caller.
func (n *node) escapeReturn() *packet.Packet {
	pkt := n.pool.Get()
	pkt.Size = 1
	return pkt
}

// escapeStore moves ownership into longer-lived storage.
func (n *node) escapeStore(b *box) {
	pkt := n.pool.Get()
	b.pkt = pkt
}

// escapeLiteral embeds the value in a composite literal the caller
// owns (the queuedPkt pattern).
func (n *node) escapeLiteral() box {
	pkt := n.pool.Get()
	return box{pkt: pkt}
}

// deferPut discharges the obligation at every exit.
func (n *node) deferPut(deep bool) int {
	pkt := n.pool.Get()
	defer n.pool.Put(pkt)
	if deep {
		return 2 * pkt.Size
	}
	return pkt.Size
}

// consumePkt declares the ownership transfer both sides rely on.
//
//speedlight:pool-transfer pkt
func (n *node) consumePkt(pkt *packet.Packet) {
	n.pool.Put(pkt)
}

// viaTransfer hands off through the directive-marked callee.
func (n *node) viaTransfer() {
	pkt := n.pool.Get()
	n.consumePkt(pkt)
}

// deliverAssert mirrors deliverGlobalCall: ownership follows the type
// assertion out of the interface box, then terminates at Put.
//
//speedlight:pool-transfer b
func (n *node) deliverAssert(b interface{}) {
	pkt := b.(*packet.Packet)
	pkt.Size = 0
	n.pool.Put(pkt)
}

// deliverDirect mirrors deliverLocalCall: the release unwraps the
// assertion in place.
//
//speedlight:pool-transfer b
func (n *node) deliverDirect(b interface{}) {
	n.pool.Put(b.(*packet.Packet))
}

// panicPath owes nothing on the assertion-failure path.
func (n *node) panicPath(ok bool) {
	pkt := n.pool.Get()
	if !ok {
		panic("corrupt")
	}
	n.pool.Put(pkt)
}

// loopPerIteration gets and puts inside the loop body.
func (n *node) loopPerIteration(k int) {
	for i := 0; i < k; i++ {
		pkt := n.pool.Get()
		pkt.Size = i
		n.pool.Put(pkt)
	}
}

// poolUnchecked opts out — the pool's own panic tests violate the
// discipline on purpose.
//
//speedlight:pool-unchecked
func (n *node) poolUnchecked() {
	pkt := n.pool.Get()
	n.pool.Put(pkt)
	n.pool.Put(pkt)
	_ = pkt.Size
}
