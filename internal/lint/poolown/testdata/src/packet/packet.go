// Package packet is a miniature of internal/packet for the poolown
// goldens: a pooled value with the Get/Put ownership surface.
package packet

// Packet is the pooled value.
type Packet struct {
	Size int
	Data []byte
}

// Pool mirrors internal/packet.Pool's free-list surface.
type Pool struct{ free []*Packet }

// Get hands out a packet the caller owns.
func (p *Pool) Get() *Packet {
	n := len(p.free)
	if n == 0 {
		return &Packet{}
	}
	pk := p.free[n-1]
	p.free = p.free[:n-1]
	return pk
}

// Put returns a packet to the free list; the caller's reference is
// dead afterwards.
func (p *Pool) Put(pk *Packet) {
	p.free = append(p.free, pk)
}
