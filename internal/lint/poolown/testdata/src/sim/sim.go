// Package sim is a miniature of internal/sim for the poolown goldens:
// the blessed Proc handoff surface and the pooled event free list.
package sim

// CallFn mirrors the closure-free callback shape.
type CallFn func(a, b interface{}, c uint64)

// Proc is the worker-side scheduling surface; its Send family is the
// blessed ownership handoff for pooled payloads.
type Proc interface {
	Send(dom int, delay int64, v interface{})
	SendCall(dom int, delay int64, fn CallFn, a, b interface{}, c uint64)
	AfterCall(delay int64, fn CallFn, a, b interface{}, c uint64)
}

// Event is the pooled event.
type Event struct {
	when int64
	gen  uint32
}

type eventPool struct{ free []*Event }

//speedlight:hotpath
func (p *eventPool) get() *Event {
	n := len(p.free)
	if n == 0 {
		return &Event{}
	}
	ev := p.free[n-1]
	p.free = p.free[:n-1]
	return ev
}

//speedlight:hotpath
func (p *eventPool) put(ev *Event) {
	ev.gen++
	p.free = append(p.free, ev)
}
