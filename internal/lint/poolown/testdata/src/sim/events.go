package sim

// Handle mirrors the generation-counted handle of internal/sim.
type Handle struct {
	ev  *Event
	gen uint32
}

type engine struct {
	pool eventPool
	q    []*Event
}

// push takes ownership of the event, the evq.push pattern.
//
//speedlight:pool-transfer ev
func (e *engine) push(ev *Event) {
	e.q = append(e.q, ev)
}

// schedule is the clean Engine.schedule shape: get, fill, push
// (ownership transfer), then read fields for the handle — reads after
// a consume are fine, the queue owns the storage but the generation
// snapshot is taken before any recycling can happen.
func (e *engine) schedule(when int64) Handle {
	ev := e.pool.get()
	ev.when = when
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// staleRead mirrors the exact pattern the runtime generation check
// panics on ("stale Handle ... use after free"): the event goes back
// to the pool and is then dereferenced.
func (e *engine) staleRead() uint32 {
	ev := e.pool.get()
	e.pool.put(ev)
	return ev.gen // want `use of pooled value ev after Put`
}

// dropOnGuard leaks the event when the guard trips.
func (e *engine) dropOnGuard(bad bool) {
	ev := e.pool.get()
	if bad {
		return // want `pooled value ev may leak on this return path`
	}
	e.push(ev)
}

// putTwice double-frees when retried.
func (e *engine) putTwice(retry bool) {
	ev := e.pool.get()
	if retry {
		e.pool.put(ev)
	}
	e.pool.put(ev) // want `double Put of pooled value ev`
}

// ---- SPSC ring handoff (PR 10) ----

// ring mirrors sim.evRing: tryPush is the write-once cell crossing of
// the sharded engine.
type ring struct {
	slots []*Event
	full  bool
}

// tryPush is a pool-transfer-cell: call sites consume exactly like a
// pool-transfer, but the body is exempt from Owned-at-entry — on the
// full path ownership snaps back to the caller, whose retry/stash loop
// is where the obligation is checked. Without the -cell variant the
// `return false` path below would be a false-positive leak.
//
//speedlight:pool-transfer-cell ev
func (r *ring) tryPush(ev *Event) bool {
	if r.full {
		return false
	}
	r.slots = append(r.slots, ev)
	return true
}

// pushRing is the checked side of the cell protocol: owned at entry,
// discharged through the cell on the fast path and the stash queue on
// the full path.
//
//speedlight:pool-transfer ev
func (e *engine) pushRing(r *ring, ev *Event) {
	if r.tryPush(ev) {
		return
	}
	e.push(ev)
}

// sendCross discharges a fresh event through the blessed cell: the
// call site consumes, so no leak is reported.
func (e *engine) sendCross(r *ring) {
	ev := e.pool.get()
	r.tryPush(ev)
}

// crossOutsideRing hands the event to nothing on the early return —
// the direct-send-outside-the-ring shape poolown still catches.
func (e *engine) crossOutsideRing(r *ring, skip bool) {
	ev := e.pool.get()
	if skip {
		return // want `pooled value ev may leak on this return path`
	}
	r.tryPush(ev)
}
