package sim

// Handle mirrors the generation-counted handle of internal/sim.
type Handle struct {
	ev  *Event
	gen uint32
}

type engine struct {
	pool eventPool
	q    []*Event
}

// push takes ownership of the event, the evq.push pattern.
//
//speedlight:pool-transfer ev
func (e *engine) push(ev *Event) {
	e.q = append(e.q, ev)
}

// schedule is the clean Engine.schedule shape: get, fill, push
// (ownership transfer), then read fields for the handle — reads after
// a consume are fine, the queue owns the storage but the generation
// snapshot is taken before any recycling can happen.
func (e *engine) schedule(when int64) Handle {
	ev := e.pool.get()
	ev.when = when
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// staleRead mirrors the exact pattern the runtime generation check
// panics on ("stale Handle ... use after free"): the event goes back
// to the pool and is then dereferenced.
func (e *engine) staleRead() uint32 {
	ev := e.pool.get()
	e.pool.put(ev)
	return ev.gen // want `use of pooled value ev after Put`
}

// dropOnGuard leaks the event when the guard trips.
func (e *engine) dropOnGuard(bad bool) {
	ev := e.pool.get()
	if bad {
		return // want `pooled value ev may leak on this return path`
	}
	e.push(ev)
}

// putTwice double-frees when retried.
func (e *engine) putTwice(retry bool) {
	ev := e.pool.get()
	if retry {
		e.pool.put(ev)
	}
	e.pool.put(ev) // want `double Put of pooled value ev`
}
