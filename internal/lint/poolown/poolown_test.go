package poolown_test

import (
	"testing"

	"speedlight/internal/lint/linttest"
	"speedlight/internal/lint/poolown"
)

func TestPoolOwn(t *testing.T) {
	linttest.Run(t, poolown.Analyzer, "app", "sim")
}
