// Package poolown proves the linear-ownership discipline of pooled
// values (DESIGN.md §9) path-sensitively at compile time.
//
// PR 5 replaced GC-managed packet and event lifetimes with explicit
// free lists: packet.Pool.Get / Network.NewPacket hand out a value the
// caller *owns*, and every owned value must reach exactly one terminal
// on every control-flow path — a Put back to its pool, a blessed
// handoff that transfers ownership (the sim Send/Schedule family,
// emunet injection, a //speedlight:pool-transfer callee), or an escape
// into longer-lived storage (returned, stored in a field/slice/map,
// captured by a closure, sent on a channel). The runtime enforces this
// with generation checks and "use after free" panics; poolown enforces
// it on the CFG before the code ever runs.
//
// On top of the internal/lint/flow engine it runs a forward may
// analysis whose lattice tracks each pooled local through
// {Owned, Released, Consumed, Escaped} and reports:
//
//   - use-after-Put: any read of a value that was Put on some path to
//     the use — the compile-time twin of the pool's generation panic;
//   - double-Put: a Put reached while a previous Put may already have
//     run;
//   - leak: a return path on which the value is still Owned (no Put,
//     handoff, or escape) — the early-return leaks PR 5's audit hunted
//     by hand;
//   - discarded origin: calling Get for its side effect only.
//
// Ownership transfer across function boundaries is declared, not
// guessed: a same-package callee that takes over an argument marks the
// parameter with
//
//	//speedlight:pool-transfer <param> [<param>...]
//
// which both consumes the argument at every call site and makes the
// parameter Owned-at-entry inside the callee, so the obligation is
// checked on both sides of the call. The SPSC ring handoff (sim.evRing,
// PR 10) uses the variant
//
//	//speedlight:pool-transfer-cell <param> [<param>...]
//
// for try-style cell pushes: call sites consume exactly like
// pool-transfer (the push is the sanctioned cross-shard crossing), but
// the callee body is exempt from Owned-at-entry — a failed tryPush
// returns ownership to the caller, a protocol the path-insensitive
// lattice cannot express, so the cell write itself is trusted and the
// caller's retry/stash loop carries the checked obligation. Deliberate
// violations (the pool's own panic tests) opt out per function with
// //speedlight:pool-unchecked.
//
// Known approximations, all conservative for real findings: aliasing a
// tracked value (p := pkt) stops tracking both; a deferred Put
// discharges the leak obligation but is not checked against a second
// explicit Put; panic-terminated paths owe nothing.
package poolown

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"speedlight/internal/lint/analysis"
	"speedlight/internal/lint/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolown",
	Doc: "prove linear ownership of pooled packet/event values: every Get reaches " +
		"exactly one Put, blessed handoff, or escape on every path; flag " +
		"use-after-Put, double-Put, and leak-on-early-return",
	Run: run,
}

// Abstract states (a may-bitset: a value can be Owned on one inbound
// path and Released on another).
const (
	stOwned flow.Abs = 1 << iota
	stReleased
	stConsumed
	stEscaped
)

// blessedConsumers lists cross-package calls that take ownership of any
// pooled argument, keyed by package scope then function/method name.
// These are the sanctioned handoff points of DESIGN.md §9: the sim
// scheduling family owns events/payloads it enqueues, emunet injection
// owns the injected packet, and container/heap.Push stores its value.
var blessedConsumers = map[string]map[string]bool{
	"sim": {
		"Send": true, "SendAt": true, "SendCall": true,
		"Schedule": true, "ScheduleCall": true,
		"After": true, "AfterCall": true,
	},
	"emunet": {"InjectFrom": true, "InjectFromHost": true},
	"heap":   {"Push": true},
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:     pass,
		transfer: map[*types.Func][]int{},
	}
	// Pass 1: collect //speedlight:pool-transfer (and the ring-cell
	// variant) signatures so call sites anywhere in the package consume
	// the right argument slots.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, ok := flow.Directive(fd.Doc, "pool-transfer")
			if !ok {
				args, ok = flow.Directive(fd.Doc, "pool-transfer-cell")
			}
			if !ok {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			c.transfer[fn] = transferIndexes(fn, strings.Fields(args))
		}
	}
	// Pass 2: analyze every function body (and every function literal
	// as its own context).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, unchecked := flow.Directive(fd.Doc, "pool-unchecked"); unchecked {
				continue
			}
			var owned []types.Object
			if args, ok := flow.Directive(fd.Doc, "pool-transfer"); ok {
				owned = paramObjects(pass, fd, strings.Fields(args))
			}
			c.analyze(fd.Body, owned)
			for _, lit := range funcLits(fd.Body) {
				c.analyze(lit.Body, nil)
			}
		}
	}
	return nil, nil
}

// transferIndexes maps the directive's parameter names to their
// positions in the signature.
func transferIndexes(fn *types.Func, names []string) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Params().Len(); i++ {
		for _, name := range names {
			if sig.Params().At(i).Name() == name {
				idx = append(idx, i)
			}
		}
	}
	return idx
}

// paramObjects resolves the directive's parameter names to their
// types.Objects so the callee body starts with them Owned.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl, names []string) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			for _, name := range names {
				if id.Name == name {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						out = append(out, obj)
					}
				}
			}
		}
	}
	return out
}

// funcLits collects every function literal under body, including nested
// ones (each is analyzed as an independent context; captured pooled
// values are treated as escaped at the capture site).
func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

type checker struct {
	pass     *analysis.Pass
	transfer map[*types.Func][]int // pool-transfer param positions
}

// fnAnalysis is the per-function state of one dataflow run.
type fnAnalysis struct {
	c         *checker
	cfg       *flow.CFG
	deferPut  map[types.Object]bool
	reporting bool
	seen      map[token.Pos]map[string]bool
}

func (c *checker) analyze(body *ast.BlockStmt, ownedParams []types.Object) {
	fa := &fnAnalysis{
		c:        c,
		cfg:      flow.Build(body),
		deferPut: map[types.Object]bool{},
		seen:     map[token.Pos]map[string]bool{},
	}
	// Deferred Puts discharge the leak obligation at every exit.
	for _, d := range fa.cfg.Defers {
		if fn := c.calleeFunc(d.Call); c.isRelease(fn) && len(d.Call.Args) == 1 {
			if obj := identObj(c.pass, d.Call.Args[0]); obj != nil {
				fa.deferPut[obj] = true
			}
		}
	}
	var entry flow.Env
	for _, obj := range ownedParams {
		entry = entry.Set(obj, stOwned)
	}
	tr := func(b *flow.Block, in flow.Fact) flow.Fact {
		env, _ := in.(flow.Env)
		for _, n := range b.Nodes {
			env = fa.node(env, n)
		}
		return env
	}
	res, err := flow.Forward(fa.cfg, flow.EnvLattice, entry, tr)
	if err != nil {
		return // non-convergence: stay silent rather than guess
	}
	// Reporting pass over the converged facts: each block once, then
	// the leak check at every non-panic exit.
	fa.reporting = true
	for _, b := range fa.cfg.Blocks {
		in, ok := res.In[b]
		if !ok && b != fa.cfg.Entry {
			continue // unreachable
		}
		if b == fa.cfg.Entry {
			in = entry
		}
		env, _ := in.(flow.Env)
		for _, n := range b.Nodes {
			env = fa.node(env, n)
		}
	}
	for _, t := range fa.cfg.Terminators() {
		out, ok := res.Out[t]
		if !ok {
			continue
		}
		env, _ := out.(flow.Env)
		fa.leakCheck(env, t)
	}
}

// leakCheck reports every value still (possibly) Owned at a return.
func (fa *fnAnalysis) leakCheck(env flow.Env, t *flow.Block) {
	pos := fa.cfg.End
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		if r, ok := t.Nodes[i].(*ast.ReturnStmt); ok {
			pos = r.Pos()
			break
		}
	}
	type leak struct {
		name string
		pos  token.Pos
	}
	var leaks []leak
	for obj, st := range env {
		if st&stOwned != 0 && !fa.deferPut[obj] {
			leaks = append(leaks, leak{obj.Name(), pos})
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].name < leaks[j].name })
	for _, l := range leaks {
		fa.report(l.pos, "pooled value %s may leak on this return path: no Put, blessed handoff, or escape", l.name)
	}
}

// report emits a diagnostic once per (position, message) pair; the
// transfer function runs many times during the fixpoint but only the
// reporting pass calls through here.
func (fa *fnAnalysis) report(pos token.Pos, format string, args ...interface{}) {
	if !fa.reporting {
		return
	}
	msgs := fa.seen[pos]
	if msgs == nil {
		msgs = map[string]bool{}
		fa.seen[pos] = msgs
	}
	key := format
	if msgs[key] {
		return
	}
	msgs[key] = true
	fa.c.pass.Reportf(pos, format, args...)
}

// ---- transfer function ----

// node interprets one CFG node over the environment.
func (fa *fnAnalysis) node(env flow.Env, n ast.Node) flow.Env {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return fa.assign(env, n)
	case *ast.DeclStmt:
		return fa.declStmt(env, n)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			env = fa.escapeOrWalk(env, r)
		}
		return env
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if fn := fa.c.calleeFunc(call); fa.c.isOrigin(fn) {
				fa.report(call.Pos(), "result of pooled %s discarded: the value leaks immediately", fn.Name())
			}
		}
		return fa.expr(env, n.X)
	case *ast.DeferStmt:
		// Arguments are evaluated here; the (pre-collected) release
		// effect applies at exits, so no state change now.
		env = fa.expr(env, n.Call.Fun)
		for _, a := range n.Call.Args {
			if obj, id := trackedIn(fa.c.pass, env, a); obj != nil {
				fa.useCheck(env, id)
				continue
			}
			env = fa.expr(env, a)
		}
		return env
	case *ast.SendStmt:
		env = fa.expr(env, n.Chan)
		return fa.escapeOrWalk(env, n.Value)
	case *ast.GoStmt:
		env = fa.expr(env, n.Call.Fun)
		for _, a := range n.Call.Args {
			env = fa.escapeOrWalk(env, a)
		}
		return env
	case *ast.IncDecStmt:
		return fa.expr(env, n.X)
	case *ast.BranchStmt:
		return env
	case ast.Expr:
		return fa.expr(env, n)
	case ast.Stmt:
		// Conservative fallback for statement forms with no explicit
		// ownership semantics: check uses only.
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := sub.(*ast.Ident); ok {
				fa.useCheck(env, id)
			}
			return true
		})
		return env
	}
	return env
}

// assign interprets assignment forms: origin tracking, aliasing,
// type-assert ownership transfer, and stores (escapes).
func (fa *fnAnalysis) assign(env flow.Env, a *ast.AssignStmt) flow.Env {
	if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
		return fa.assignOne(env, a.Lhs[0], a.Rhs[0])
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Rhs {
			env = fa.assignOne(env, a.Lhs[i], a.Rhs[i])
		}
		return env
	}
	// Multi-value call/comma-ok: walk the sources, untrack the targets.
	for _, r := range a.Rhs {
		env = fa.expr(env, r)
	}
	for _, l := range a.Lhs {
		if lid, ok := l.(*ast.Ident); ok {
			if obj := defOrUse(fa.c.pass, lid); obj != nil {
				env = env.Set(obj, 0)
			}
		} else {
			env = fa.expr(env, l)
		}
	}
	return env
}

func (fa *fnAnalysis) assignOne(env flow.Env, lhs, rhs ast.Expr) flow.Env {
	lid, lhsIsIdent := lhs.(*ast.Ident)
	if !lhsIsIdent {
		// Store into a field/slot: the stored value escapes.
		env = fa.expr(env, lhs)
		return fa.escapeOrWalk(env, rhs)
	}
	// pkt := pool.Get(...)
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if fn := fa.c.calleeFunc(call); fa.c.isOrigin(fn) {
			env = fa.call(env, call)
			if obj := defOrUse(fa.c.pass, lid); isLocalVar(fa.c.pass, obj) {
				// A := in a loop body rebinds a fresh variable each
				// iteration (the back edge carries the old state);
				// only a plain = assignment can overwrite a live one.
				if _, isDef := fa.c.pass.TypesInfo.Defs[lid]; !isDef && env.Get(obj)&stOwned != 0 {
					fa.report(lhs.Pos(), "pooled value %s overwritten while still owned: the previous value leaks", lid.Name)
				}
				return env.Set(obj, stOwned)
			}
			return env
		}
	}
	// p := pkt — aliasing defeats linear tracking; drop both.
	if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if robj := lookupTracked(fa.c.pass, env, rid); robj != nil {
			fa.useCheck(env, rid)
			env = env.Set(robj, stEscaped)
			if obj := defOrUse(fa.c.pass, lid); obj != nil {
				env = env.Set(obj, stEscaped)
			}
			return env
		}
	}
	// pkt := b.(*packet.Packet) — ownership follows the assertion
	// (the deliverGlobalCall trampoline pattern).
	if ta, ok := ast.Unparen(rhs).(*ast.TypeAssertExpr); ok && ta.Type != nil {
		if rid, ok := ast.Unparen(ta.X).(*ast.Ident); ok {
			if robj := lookupTracked(fa.c.pass, env, rid); robj != nil {
				fa.useCheck(env, rid)
				st := env.Get(robj)
				env = env.Set(robj, 0)
				if obj := defOrUse(fa.c.pass, lid); obj != nil {
					return env.Set(obj, st)
				}
				return env
			}
		}
	}
	env = fa.expr(env, rhs)
	if obj := defOrUse(fa.c.pass, lid); obj != nil && env.Get(obj) != 0 {
		env = env.Set(obj, 0) // overwritten by an untracked value
	}
	return env
}

// declStmt handles `var pkt = pool.Get()` like the := form.
func (fa *fnAnalysis) declStmt(env flow.Env, d *ast.DeclStmt) flow.Env {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok {
		return env
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Names) == len(vs.Values) {
			for i := range vs.Names {
				env = fa.assignOne(env, vs.Names[i], vs.Values[i])
			}
			continue
		}
		for _, v := range vs.Values {
			env = fa.expr(env, v)
		}
	}
	return env
}

// escapeOrWalk marks a directly-named tracked value as Escaped (it
// moved into storage the analysis cannot see: a return value, channel,
// goroutine, composite literal, field) after checking the use is live;
// any other expression is walked normally.
func (fa *fnAnalysis) escapeOrWalk(env flow.Env, e ast.Expr) flow.Env {
	if obj, id := trackedIn(fa.c.pass, env, e); obj != nil {
		fa.useCheck(env, id)
		return env.Set(obj, stEscaped)
	}
	return fa.expr(env, e)
}

// expr walks an expression, checking uses and applying call effects.
func (fa *fnAnalysis) expr(env flow.Env, e ast.Expr) flow.Env {
	switch e := e.(type) {
	case nil:
		return env
	case *ast.Ident:
		fa.useCheck(env, e)
		return env
	case *ast.CallExpr:
		return fa.call(env, e)
	case *ast.ParenExpr:
		return fa.expr(env, e.X)
	case *ast.SelectorExpr:
		return fa.expr(env, e.X)
	case *ast.StarExpr:
		return fa.expr(env, e.X)
	case *ast.UnaryExpr:
		return fa.expr(env, e.X)
	case *ast.BinaryExpr:
		env = fa.expr(env, e.X)
		return fa.expr(env, e.Y)
	case *ast.IndexExpr:
		env = fa.expr(env, e.X)
		return fa.expr(env, e.Index)
	case *ast.IndexListExpr:
		env = fa.expr(env, e.X)
		for _, i := range e.Indices {
			env = fa.expr(env, i)
		}
		return env
	case *ast.SliceExpr:
		env = fa.expr(env, e.X)
		env = fa.expr(env, e.Low)
		env = fa.expr(env, e.High)
		return fa.expr(env, e.Max)
	case *ast.TypeAssertExpr:
		return fa.expr(env, e.X)
	case *ast.KeyValueExpr:
		return fa.expr(env, e.Value)
	case *ast.CompositeLit:
		// Embedding a pooled value in a literal hands it to whatever
		// owns the literal (queuedPkt{pkt: pkt}, Handle{ev: ev}).
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			env = fa.escapeOrWalk(env, v)
		}
		return env
	case *ast.FuncLit:
		// Captured pooled values escape into the closure; the literal
		// body is analyzed as its own function.
		var captured []types.Object
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := lookupTracked(fa.c.pass, env, id); obj != nil {
					captured = append(captured, obj)
				}
			}
			return true
		})
		for _, obj := range captured {
			env = env.Set(obj, stEscaped)
		}
		return env
	default:
		return env
	}
}

// call applies one call's ownership effects: Put releases, blessed or
// pool-transfer callees consume, everything else borrows.
func (fa *fnAnalysis) call(env flow.Env, call *ast.CallExpr) flow.Env {
	env = fa.expr(env, call.Fun)

	// append(dst, pkt) moves the value into the destination slice —
	// the evq/mailbox push pattern; other builtins only borrow.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fa.c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			for i, arg := range call.Args {
				if b.Name() == "append" && i > 0 {
					env = fa.escapeOrWalk(env, arg)
				} else {
					env = fa.expr(env, arg)
				}
			}
			return env
		}
	}

	fn := fa.c.calleeFunc(call)

	if fa.c.isRelease(fn) && len(call.Args) == 1 {
		if obj, id := trackedIn(fa.c.pass, env, call.Args[0]); obj != nil {
			if env.Get(obj)&stReleased != 0 {
				fa.report(call.Pos(), "double Put of pooled value %s: already returned to the pool on a path reaching here", id.Name)
			}
			return env.Set(obj, stReleased)
		}
		return fa.expr(env, call.Args[0])
	}

	consume := fa.c.consumedArgs(fn, len(call.Args))
	for i, arg := range call.Args {
		if obj, id := trackedIn(fa.c.pass, env, arg); obj != nil {
			fa.useCheck(env, id)
			if consume[i] {
				env = env.Set(obj, stConsumed)
			}
			continue
		}
		env = fa.expr(env, arg)
	}
	return env
}

// useCheck flags a read of a value that may already be back in the
// pool — the compile-time form of the generation-check panic.
func (fa *fnAnalysis) useCheck(env flow.Env, id *ast.Ident) {
	obj := fa.c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	if env.Get(obj)&stReleased != 0 {
		fa.report(id.Pos(), "use of pooled value %s after Put: the pool may have recycled it (use after free)", id.Name)
	}
}

// ---- callee classification ----

// calleeFunc resolves the function or method a call statically invokes.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isOrigin reports whether fn mints a pooled value the caller owns.
func (c *checker) isOrigin(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	scope, recv := analysis.PkgScope(fn.Pkg().Path()), recvTypeName(fn)
	switch scope {
	case "packet":
		return recv == "Pool" && fn.Name() == "Get"
	case "sim":
		return recv == "eventPool" && fn.Name() == "get"
	case "emunet":
		return recv == "Network" && (fn.Name() == "NewPacket" || fn.Name() == "NewPacketFor")
	}
	return false
}

// isRelease reports whether fn returns its argument to a pool.
func (c *checker) isRelease(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	scope, recv := analysis.PkgScope(fn.Pkg().Path()), recvTypeName(fn)
	switch scope {
	case "packet":
		return recv == "Pool" && fn.Name() == "Put"
	case "sim":
		return recv == "eventPool" && fn.Name() == "put"
	}
	return false
}

// consumedArgs returns which argument positions fn takes ownership of:
// every position for a blessed cross-package consumer, the directive's
// named positions for a //speedlight:pool-transfer callee.
func (c *checker) consumedArgs(fn *types.Func, nargs int) map[int]bool {
	if fn == nil {
		return nil
	}
	out := map[int]bool{}
	if idx, ok := c.transfer[fn]; ok {
		for _, i := range idx {
			out[i] = true
			// A variadic or trailing transfer param consumes the rest.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() && i == sig.Params().Len()-1 {
				for j := i; j < nargs; j++ {
					out[j] = true
				}
			}
		}
		return out
	}
	if fn.Pkg() != nil {
		scope := analysis.PkgScope(fn.Pkg().Path())
		if blessedConsumers[scope][fn.Name()] {
			for i := 0; i < nargs; i++ {
				out[i] = true
			}
			return out
		}
	}
	return nil
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ---- environment lookups ----

// identObj resolves an argument expression (through parens and type
// assertions) to the object of a plain identifier, if it is one.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

// trackedIn resolves e to a tracked identifier, unwrapping parens and
// type assertions (pool.Put(b.(*packet.Packet)) releases b).
func trackedIn(pass *analysis.Pass, env flow.Env, e ast.Expr) (types.Object, *ast.Ident) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil && env.Get(obj) != 0 {
				return obj, x
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// lookupTracked returns the tracked object a use-identifier refers to.
func lookupTracked(pass *analysis.Pass, env flow.Env, id *ast.Ident) types.Object {
	obj := pass.TypesInfo.Uses[id]
	if obj != nil && env.Get(obj) != 0 {
		return obj
	}
	return nil
}

// defOrUse resolves an identifier in either defining (:=) or assigning
// (=) position.
func defOrUse(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// isLocalVar reports whether obj is a function-local variable — the
// only kind poolown tracks (package-level pooled state is owned by a
// subsystem, not a path).
func isLocalVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return obj.Parent() != pass.Pkg.Scope()
}
