// Package core is a golden-test stand-in for speedlight's core
// package: Wrap and Unwrap are the blessed crossings; anything else in
// the package plays by the normal rules.
package core

import "packet"

func Wrap(id packet.SeqID, maxID uint32, wrapAround bool) packet.WireID {
	if wrapAround {
		return packet.WireID(uint64(id) % uint64(maxID)) // blessed: no diagnostic
	}
	return packet.WireID(id) // blessed: no diagnostic
}

func Unwrap(wire packet.WireID, ref packet.SeqID, maxID uint32, wrapAround bool) packet.SeqID {
	if !wrapAround {
		return packet.SeqID(wire) // blessed: no diagnostic
	}
	_ = ref
	_ = maxID
	return 0
}

// helper is NOT named wrap/unwrap, so it gets no exemption even though
// it lives in core.
func helper(w packet.WireID) uint64 {
	return uint64(w) // want `conversion out of wrapped wire ID`
}
