// Package packet is a golden-test stand-in for speedlight's packet
// package: same type names, same blessed accessors. wrappedcmp trusts
// the whole package, so none of the conversions below may be flagged.
package packet

type WireID uint32

func (w WireID) Raw() uint32 { return uint32(w) }

func WireIDFromRaw(v uint32) WireID { return WireID(v) }

type SeqID uint64
