// Package app exercises wrappedcmp outside the blessed packages.
package app

import (
	"core"
	"packet"
)

func compare(a, b packet.WireID) bool {
	if a < b { // want `< on wrapped wire ID`
		return true
	}
	if a >= b { // want `>= on wrapped wire ID`
		return false
	}
	return a == b // equality is always safe on wire IDs
}

func arithmetic(a, b packet.WireID) packet.WireID {
	c := a + 1 // want `\+ on wrapped wire ID`
	c = a - b  // want `- on wrapped wire ID`
	c++        // want `\+\+ on wrapped wire ID`
	c += 1     // want `\+= on wrapped wire ID`
	return c
}

func conversions(a packet.WireID, s packet.SeqID) {
	_ = uint32(a)        // want `conversion out of wrapped wire ID`
	_ = packet.SeqID(a)  // want `conversion out of wrapped wire ID`
	_ = packet.WireID(s) // want `conversion into wrapped wire ID`
	_ = uint16(s)        // want `narrowing conversion of snapshot SeqID`
	_ = uint32(s)        // want `narrowing conversion of snapshot SeqID`
}

func blessedPaths(s packet.SeqID, raw uint32) packet.SeqID {
	w := core.Wrap(s, 64, true)      // calling the blessed wrapper is the intended path
	u := core.Unwrap(w, s, 64, true) // as is unwrapping
	u += packet.SeqID(uint64(s))     // SeqID arithmetic and uint64 widening are free
	_ = uint64(s)                    // widening out of SeqID is free
	_ = packet.SeqID(42)             // untyped constants may enter either domain
	_ = packet.WireID(7)             // including the wire domain
	_ = packet.WireIDFromRaw(raw)    // codec-boundary constructor, a call not a cast
	_ = w.Raw()                      // codec-boundary accessor
	_ = core.Wrap(u, 64, true) == w  // equality on wire IDs is fine
	return u
}
