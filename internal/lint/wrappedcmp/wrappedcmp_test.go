package wrappedcmp_test

import (
	"testing"

	"speedlight/internal/lint/linttest"
	"speedlight/internal/lint/wrappedcmp"
)

func TestWrappedCmp(t *testing.T) {
	linttest.Run(t, wrappedcmp.Analyzer, "app", "core", "packet")
}
