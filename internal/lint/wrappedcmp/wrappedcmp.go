// Package wrappedcmp flags arithmetic, ordering, and conversions on
// wrapped wire snapshot IDs performed outside the blessed wrap/unwrap
// helpers.
//
// packet.WireID is a k-bit serial number (paper §5.3): after rollover,
// < and > on raw wire values give the wrong answer, and casting between
// wire and sequence space without reference-point arithmetic silently
// re-introduces the ambiguity the typed IDs exist to prevent. The only
// code allowed to move between the two spaces is package packet itself
// (the type's home) and the Wrap/Unwrap functions in package core.
package wrappedcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"speedlight/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wrappedcmp",
	Doc: "flag relational/arithmetic ops and raw conversions on wrapped wire IDs " +
		"outside core.Wrap/core.Unwrap (serial-number rollover safety, paper §5.3)",
	Run: run,
}

// isWireID reports whether t (or its alias target) is the named type
// WireID defined in a package whose scope base is "packet".
func isWireID(t types.Type) bool { return isPacketNamed(t, "WireID") }

// isSeqID likewise matches packet.SeqID.
func isSeqID(t types.Type) bool { return isPacketNamed(t, "SeqID") }

func isPacketNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && analysis.PkgScope(obj.Pkg().Path()) == "packet"
}

// isBlessedFunc reports whether decl is one of the wrap/unwrap
// functions in package core that are allowed to convert between wire
// and sequence space.
func isBlessedFunc(pkgScope string, decl *ast.FuncDecl) bool {
	if pkgScope != "core" {
		return false
	}
	switch decl.Name.Name {
	case "wrap", "unwrap", "Wrap", "Unwrap":
		return true
	}
	return false
}

// narrowInt reports whether t's underlying type is an integer narrower
// than 64 bits (or of unspecified platform width other than int/uint,
// which are 64-bit on all supported targets).
func narrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32,
		types.Uint8, types.Uint16, types.Uint32, types.Uintptr:
		return true
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	scope := analysis.PkgScope(pass.Pkg.Path())
	if scope == "packet" {
		// The defining package implements Raw/WireIDFromRaw and the
		// codecs; it is trusted in full.
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isBlessedFunc(scope, fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, body ast.Node) {
	typeOf := func(e ast.Expr) types.Type { return pass.TypesInfo.Types[e].Type }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !ordersOrComputes(n.Op) {
				return true
			}
			if isWireID(typeOf(n.X)) || isWireID(typeOf(n.Y)) {
				pass.Reportf(n.OpPos,
					"%s on wrapped wire ID: unwrap with core.Unwrap before comparing or computing (rollover makes raw wire math wrong)",
					n.Op)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if isWireID(typeOf(lhs)) {
					pass.Reportf(n.TokPos,
						"%s on wrapped wire ID: wire IDs are opaque outside core.Wrap/Unwrap", n.Tok)
				}
			}
		case *ast.IncDecStmt:
			if isWireID(typeOf(n.X)) {
				pass.Reportf(n.TokPos,
					"%s on wrapped wire ID: advance the unwrapped SeqID and re-wrap with core.Wrap", n.Tok)
			}
		case *ast.CallExpr:
			checkConversion(pass, n)
		}
		return true
	})
}

// ordersOrComputes reports whether op is an ordered comparison or an
// arithmetic/bitwise operator. == and != are always safe on WireID.
func ordersOrComputes(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	arg := call.Args[0]
	argTV := pass.TypesInfo.Types[arg]
	src := argTV.Type

	// Untyped constants carry no wire/sequence history; converting one
	// into either ID space is how literals enter the system.
	if argTV.Value != nil {
		return
	}

	switch {
	case isWireID(dst) && !isWireID(src):
		pass.Reportf(call.Pos(),
			"conversion into wrapped wire ID outside core.Wrap: use core.Wrap (or packet.WireIDFromRaw at a codec boundary)")
	case isWireID(src) && !isWireID(dst):
		pass.Reportf(call.Pos(),
			"conversion out of wrapped wire ID outside core.Unwrap: use core.Unwrap (or WireID.Raw at a codec boundary)")
	case isSeqID(src) && narrowInt(dst):
		pass.Reportf(call.Pos(),
			"narrowing conversion of snapshot SeqID to %s discards rollover history: wrap with core.Wrap instead",
			dst)
	}
}
