package flow

import (
	"fmt"
	"go/types"
	"sort"
)

// Fact is an abstract state attached to a program point. nil means
// "unreachable / not yet computed" (⊥); Join(nil, f) must return f.
type Fact any

// Lattice supplies the join semantics for a forward analysis. Join
// must be monotone and Equal must be a true equivalence, or the
// fixpoint will hit the iteration cap and Forward reports an error.
type Lattice struct {
	Join  func(a, b Fact) Fact
	Equal func(a, b Fact) bool
}

// Transfer maps a block's entry fact to its exit fact. It must not
// mutate in; copy-on-write Facts (see Env) make that cheap.
type Transfer func(b *Block, in Fact) Fact

// Flow holds the converged entry/exit facts per block.
type Flow struct {
	In  map[*Block]Fact
	Out map[*Block]Fact
}

// Forward runs a worklist fixpoint over the CFG. entry seeds the
// Entry block; every other block starts at ⊥ (nil). The iteration
// budget is generous (each block can be revisited ~4× the lattice
// height any sane client needs) but hard: a non-converging lattice
// returns an error instead of hanging the build.
func Forward(c *CFG, lat Lattice, entry Fact, tr Transfer) (*Flow, error) {
	f := &Flow{In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	f.In[c.Entry] = entry

	work := make([]*Block, 0, len(c.Blocks))
	inWork := make([]bool, len(c.Blocks)+1)
	push := func(b *Block) {
		if b.Index < len(inWork) && !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	push(c.Entry)

	budget := 64*len(c.Blocks) + 256
	for len(work) > 0 {
		if budget--; budget < 0 {
			return nil, fmt.Errorf("flow: fixpoint did not converge in %d steps over %d blocks", 64*len(c.Blocks)+256, len(c.Blocks))
		}
		b := work[0]
		work = work[1:]
		if b.Index < len(inWork) {
			inWork[b.Index] = false
		}

		in := f.In[b]
		if b != c.Entry {
			in = nil
			for _, p := range b.Preds {
				in = lat.Join(in, f.Out[p])
			}
			f.In[b] = in
		}
		if in == nil && b != c.Entry {
			continue // unreachable so far
		}
		out := tr(b, in)
		if old, ok := f.Out[b]; !ok || !lat.Equal(old, out) {
			f.Out[b] = out
			for _, s := range b.Succs {
				if s != c.Exit {
					push(s)
				}
			}
		}
	}
	// Exit fact: join of terminator outs (computed lazily by clients
	// that need it; most check per-terminator instead).
	return f, nil
}

// ---- May-analysis environment: object -> state bitset ----

// Abs is a bitset of abstract states a tracked value may be in along
// some path reaching this point (a union/may analysis).
type Abs uint8

// Env maps tracked objects to their may-state. Envs are persistent:
// Set returns a copy, so facts from different paths never alias.
// A nil Env is a valid empty environment.
type Env map[types.Object]Abs

// Get returns the state bitset for o (0 when untracked).
func (e Env) Get(o types.Object) Abs { return e[o] }

// Set returns a copy of e with o set to s. s == 0 deletes o.
func (e Env) Set(o types.Object, s Abs) Env {
	n := make(Env, len(e)+1)
	for k, v := range e {
		n[k] = v
	}
	if s == 0 {
		delete(n, o)
	} else {
		n[o] = s
	}
	return n
}

// EnvLattice is the union-join lattice over Env facts.
var EnvLattice = Lattice{
	Join: func(a, b Fact) Fact {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		ea, eb := a.(Env), b.(Env)
		n := make(Env, len(ea)+len(eb))
		for k, v := range ea {
			n[k] = v
		}
		for k, v := range eb {
			n[k] |= v
		}
		return n
	},
	Equal: func(a, b Fact) bool {
		if a == nil || b == nil {
			return a == nil && b == nil
		}
		ea, eb := a.(Env), b.(Env)
		if len(ea) != len(eb) {
			return false
		}
		for k, v := range ea {
			if eb[k] != v {
				return false
			}
		}
		return true
	},
}

// ---- Must-analysis set: intersection of string facts ----

// MustSet is a set of facts that hold on *every* path reaching a
// point (e.g. "lock X is held"). Join is intersection; nil is ⊥
// (unreachable), which joins as identity — distinct from the empty
// set, which means "reachable, nothing held".
type MustSet map[string]bool

// With returns a copy of m with k added.
func (m MustSet) With(k string) MustSet {
	n := make(MustSet, len(m)+1)
	for s := range m {
		n[s] = true
	}
	n[k] = true
	return n
}

// Without returns a copy of m with k removed.
func (m MustSet) Without(k string) MustSet {
	n := make(MustSet, len(m))
	for s := range m {
		if s != k {
			n[s] = true
		}
	}
	return n
}

// Sorted returns the members in deterministic order for reporting.
func (m MustSet) Sorted() []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// MustLattice is the intersection-join lattice over MustSet facts.
var MustLattice = Lattice{
	Join: func(a, b Fact) Fact {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		ma, mb := a.(MustSet), b.(MustSet)
		n := MustSet{}
		for k := range ma {
			if mb[k] {
				n[k] = true
			}
		}
		return n
	},
	Equal: func(a, b Fact) bool {
		if a == nil || b == nil {
			return a == nil && b == nil
		}
		ma, mb := a.(MustSet), b.(MustSet)
		if len(ma) != len(mb) {
			return false
		}
		for k := range ma {
			if !mb[k] {
				return false
			}
		}
		return true
	},
}
