package flow

import (
	"go/ast"
	"strings"
)

// Directive scans a doc comment for a //speedlight:<name> directive and
// returns its argument string (the rest of the line, trimmed). The
// second result reports whether the directive is present at all, so
// argument-less directives are distinguishable from absent ones.
//
// Directives in use across the tree:
//
//	//speedlight:hotpath                     (hotalloc, hotgate)
//	//speedlight:pool-transfer <param>...    (poolown: callee takes ownership)
//	//speedlight:pool-transfer-cell <param>... (poolown: write-once cell push;
//	                                         consumes at call sites, body exempt)
//	//speedlight:pool-unchecked              (poolown: deliberate violations)
//	//speedlight:shard-handoff               (shardsafe: blessed cross-shard
//	                                         handoff implementation)
//	//speedlight:shard                       (shardsafe: worker entry point)
//	//speedlight:global-only                 (shardsafe: GlobalDomain-only API)
//	//speedlight:allocgate <name>...         (hotgate: test covers these hot paths)
func Directive(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//speedlight:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, prefix) {
			continue
		}
		rest := text[len(prefix):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // longer directive name, e.g. pool-transfer vs pool
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}
