package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseBody parses a function-body snippet into its *ast.BlockStmt.
// Snippets may reference undeclared identifiers; CFG construction is
// purely syntactic, so no type checking is needed.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func blockByKind(t *testing.T, c *CFG, kind string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no block of kind %q in:\n%s", kind, c.Dump())
	return nil
}

// TestCFGShapes pins the exact block structure Build produces for each
// control construct the analyzers rely on. The dump format is one line
// per block in creation order (Exit last): "b0(entry) -> b1, b2".
func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			name: "if/else with join",
			body: `
	if c {
		x = 1
	} else {
		x = 2
	}
	x = 3
`,
			want: `b0(entry) -> b1, b2
b1(if.then) -> b3
b2(if.else) -> b3
b3(implicit.return) -> b4
b4(exit)
`,
		},
		{
			name: "if with early return",
			// The then-branch terminates, so control continues from the
			// condition block straight into the join.
			body: `
	if c {
		return
	}
	x = 1
`,
			want: `b0(entry) -> b1, b2
b1(return) -> b3
b2(implicit.return) -> b3
b3(exit)
`,
		},
		{
			name: "for with post, continue, break",
			// continue targets the post block, break targets the loop
			// join; both leave a join block behind for the dead branch.
			body: `
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		if i == 5 {
			break
		}
		x = i
	}
	x = 9
`,
			want: `b0(entry) -> b1
b1(for.head) -> b2, b4
b2(implicit.return) -> b9
b3(for.post) -> b1
b4(for.body) -> b5, b6
b5(if.then) -> b3
b6(join) -> b7, b8
b7(if.then) -> b2
b8(join) -> b3
b9(exit)
`,
		},
		{
			name: "range loop",
			body: `
	for _, v := range xs {
		use(v)
	}
`,
			want: `b0(entry) -> b1
b1(range.head) -> b2, b3
b2(implicit.return) -> b4
b3(range.body) -> b1
b4(exit)
`,
		},
		{
			name: "switch with fallthrough and default",
			// With a default clause the head has no direct edge to the
			// join; fallthrough wires case 1 into case 2.
			body: `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
`,
			want: `b0(entry) -> b2, b3, b4
b1(implicit.return) -> b5
b2(switch.case) -> b3
b3(switch.case) -> b1
b4(switch.case) -> b1
b5(exit)
`,
		},
		{
			name: "switch without default",
			// No default: the head gets a no-case-matched edge to the
			// join, appended after the case edges.
			body: `
	switch x {
	case 1:
		a()
	case 2:
		b()
	}
`,
			want: `b0(entry) -> b2, b3, b1
b1(implicit.return) -> b4
b2(switch.case) -> b1
b3(switch.case) -> b1
b4(exit)
`,
		},
		{
			name: "labeled break out of nested loops",
			// break outer must skip the inner loop's break target and
			// land on the outer loop's join (b2).
			body: `
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if stop {
				break outer
			}
		}
	}
	done()
`,
			want: `b0(entry) -> b1
b1(for.head) -> b2, b4
b2(implicit.return) -> b11
b3(for.post) -> b1
b4(for.body) -> b5
b5(for.head) -> b6, b8
b6(join) -> b3
b7(for.post) -> b5
b8(for.body) -> b9, b10
b9(if.then) -> b2
b10(join) -> b7
b11(exit)
`,
		},
		{
			name: "panic path and defer",
			// panic terminates its block with an Exit edge but is
			// excluded from Terminators (checked separately below).
			body: `
	defer cleanup()
	if bad {
		panic("x")
	}
	return
`,
			want: `b0(entry) -> b1, b2
b1(panic) -> b3
b2(return) -> b3
b3(exit)
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Build(parseBody(t, tt.body))
			if got := c.Dump(); got != tt.want {
				t.Errorf("CFG shape mismatch\ngot:\n%s\nwant:\n%s", got, tt.want)
			}
		})
	}
}

// TestDefersAndTerminators checks the two exit-path views analyzers
// use: Defers collects defer statements in source order, and
// Terminators returns normal-return Exit predecessors only — a panic
// block reaches Exit but must not be treated as a leak-check point.
func TestDefersAndTerminators(t *testing.T) {
	c := Build(parseBody(t, `
	defer cleanup()
	defer done()
	if bad {
		panic("x")
	}
	return
`))
	if len(c.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(c.Defers))
	}
	panicBlk := blockByKind(t, c, "panic")
	terms := c.Terminators()
	if len(terms) != 1 || terms[0].Kind != "return" {
		t.Fatalf("Terminators() = %v, want exactly one return block", terms)
	}
	found := false
	for _, p := range c.Exit.Preds {
		if p == panicBlk {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic block is not an Exit predecessor")
	}
}

// TestMustJoinAtMerge runs a must-analysis over a diamond: a fact added
// on both branches survives the join, a fact added on one branch does
// not. This is the semantics lockorder depends on for held-lock sets.
func TestMustJoinAtMerge(t *testing.T) {
	c := Build(parseBody(t, `
	if c {
		x = 1
	} else {
		x = 2
	}
	return
`))
	tr := func(b *Block, in Fact) Fact {
		m, _ := in.(MustSet)
		switch b.Kind {
		case "if.then":
			return m.With("both").With("then-only")
		case "if.else":
			return m.With("both")
		}
		return in
	}
	f, err := Forward(c, MustLattice, MustSet{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	join := blockByKind(t, c, "return")
	got, _ := f.In[join].(MustSet)
	if want := []string{"both"}; len(got) != 1 || !got["both"] {
		t.Fatalf("In(join) = %v, want %v", got.Sorted(), want)
	}
}

// TestEnvUnionAtMerge runs the may-analysis over the same diamond: the
// abstract state at the join is the union of the per-branch bitsets.
// This is the semantics poolown depends on for ownership states.
func TestEnvUnionAtMerge(t *testing.T) {
	obj := types.NewVar(token.NoPos, nil, "x", nil)
	c := Build(parseBody(t, `
	if c {
		x = 1
	} else {
		x = 2
	}
	return
`))
	tr := func(b *Block, in Fact) Fact {
		e, _ := in.(Env)
		switch b.Kind {
		case "if.then":
			return e.Set(obj, 1)
		case "if.else":
			return e.Set(obj, 2)
		}
		return in
	}
	f, err := Forward(c, EnvLattice, Env{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	join := blockByKind(t, c, "return")
	env, _ := f.In[join].(Env)
	if got := env.Get(obj); got != 3 {
		t.Fatalf("In(join)[x] = %b, want union 11b", got)
	}
}

// TestFixpointTerminatesOnPathologicalNest builds a worst-case nest —
// labeled loops with cross-level continue/break, a switch with
// fallthrough dispatch, and a forward goto — and checks the worklist
// converges well within its budget with a real (finite-height) lattice.
func TestFixpointTerminatesOnPathologicalNest(t *testing.T) {
	c := Build(parseBody(t, `
outer:
	for i := 0; i < n; i++ {
	mid:
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				switch k {
				case 0:
					continue mid
				case 1:
					break outer
				default:
					if k > j {
						goto done
					}
				}
				for m := 0; m < k; m++ {
					if m == 1 {
						continue outer
					}
				}
			}
		}
	}
done:
	x = 1
`))
	tr := func(b *Block, in Fact) Fact {
		m, _ := in.(MustSet)
		return m.With(b.Kind)
	}
	f, err := Forward(c, MustLattice, MustSet{}, tr)
	if err != nil {
		t.Fatalf("fixpoint did not converge on pathological nest: %v", err)
	}
	reached := 0
	for range f.Out {
		reached++
	}
	if reached < len(c.Blocks)/2 {
		t.Fatalf("only %d of %d blocks reached a fact; CFG wired wrong?\n%s",
			reached, len(c.Blocks), c.Dump())
	}
}

// TestFixpointBudgetError feeds Forward a deliberately non-converging
// lattice (Equal is never true) over a loop and checks it reports the
// budget error instead of hanging.
func TestFixpointBudgetError(t *testing.T) {
	c := Build(parseBody(t, `
	for {
		x = 1
	}
`))
	bad := Lattice{
		Join:  func(a, b Fact) Fact { return 1 },
		Equal: func(a, b Fact) bool { return false },
	}
	tr := func(b *Block, in Fact) Fact { return 1 }
	_, err := Forward(c, bad, 0, tr)
	if err == nil || !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("Forward = %v, want non-convergence error", err)
	}
}
