// Package flow is a stdlib-only intraprocedural control-flow and
// dataflow engine for the speedlightvet analyzers. It builds a
// basic-block CFG from a function body (go/ast only, no SSA) and runs
// forward fixpoint dataflow over it with pluggable lattices.
//
// The engine is deliberately small: it models exactly the control
// constructs the ownership/locking analyzers need (branches, loops,
// switch/select, labeled break/continue, goto, defer, panic/return
// termination) and approximates everything else conservatively. It is
// not a general-purpose optimizer substrate; it is the minimum machine
// needed to prove DESIGN.md §9's linear-ownership and lock-pairing
// contracts path-sensitively.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is a maximal straight-line run of statements. Nodes holds the
// statements and branch-condition expressions in execution order; for
// composite statements only the parts evaluated *in this block* appear
// (an if's condition, a switch's tag), never the nested bodies, so a
// transfer function can ast.Inspect each node without double-visiting.
type Block struct {
	Index int
	// Kind labels why the block exists: "entry", "exit", "body",
	// "if.then", "if.else", "for.head", "for.body", "for.post",
	// "range.head", "range.body", "switch.case", "select.comm",
	// "join", "return", "panic", "implicit.return", "unreachable".
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// CFG is the control-flow graph of one function body. Exit is a
// synthetic empty block; every return, panic and fall-off-the-end path
// has an edge to it. Defers collects defer statements in source order
// (their calls run at every exit; dataflow clients apply them when
// interpreting facts at Exit-predecessor blocks).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
	// End is the closing brace of the body, used as the report
	// position for facts that hold at an implicit return.
	End token.Pos
}

// builder carries the loop/label context while walking statements.
// cur == nil means the walker is in dead code (after return/branch);
// statements there still get blocks so positions stay reportable, but
// with no predecessors they stay at ⊥ during dataflow.
type builder struct {
	cfg    *CFG
	cur    *Block
	brk    []*target // innermost-last break targets
	cont   []*target // innermost-last continue targets
	labels map[string]*labelInfo
	gotos  []pendingGoto
}

type target struct {
	label string
	block *Block
}

type labelInfo struct {
	block *Block // first block of the labeled statement (goto target)
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG for a function body. It never fails: any
// construct it does not model precisely is appended to the current
// block and treated as straight-line code.
func Build(body *ast.BlockStmt) *CFG {
	c := &CFG{End: body.Rbrace}
	b := &builder{cfg: c, labels: map[string]*labelInfo{}}
	c.Entry = b.newBlock("entry")
	c.Exit = &Block{Kind: "exit"}
	b.cur = c.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		// Fall off the end of the body: an implicit return.
		b.cur.Kind = retKind(b.cur.Kind, "implicit.return")
		b.edge(b.cur, c.Exit)
	}
	// Resolve forward gotos now that all labels are known.
	for _, g := range b.gotos {
		if li, ok := b.labels[g.label]; ok && li.block != nil {
			b.edge(g.from, li.block)
		} else {
			// Unresolvable (malformed source): treat as exit.
			b.edge(g.from, c.Exit)
		}
	}
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

// retKind upgrades a block's kind to a terminating kind without
// clobbering a more specific one already set.
func retKind(cur, k string) string {
	if cur == "return" || cur == "panic" {
		return cur
	}
	return k
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes kind the current block, linking from the previous
// current block if control can fall through into it.
func (b *builder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		// Dead code after return/branch: give it an unreachable
		// block so every node lives somewhere.
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt walks one statement. label is the pending label when the
// statement is the body of an *ast.LabeledStmt.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Loop/switch labels are consumed by the inner statement;
		// plain labeled statements become goto targets.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.stmt(s.Stmt, s.Label.Name)
		default:
			blk := b.startBlock("body")
			b.labels[s.Label.Name] = &labelInfo{block: blk}
			b.stmt(s.Stmt, "")
		}

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Kind = "return"
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		b.switchStmt(s, label)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.DeferStmt:
		// Arguments are evaluated here; the call runs at exits.
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			if b.cur != nil {
				b.cur.Kind = "panic"
				b.edge(b.cur, b.cfg.Exit)
				b.cur = nil
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Send, Go, Decl, ...: straight-line.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		b.add(s)
		b.jump(b.brk, name)
	case token.CONTINUE:
		b.add(s)
		b.jump(b.cont, name)
	case token.GOTO:
		b.add(s)
		if b.cur != nil {
			if li, ok := b.labels[name]; ok && li.block != nil {
				b.edge(b.cur, li.block)
			} else {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: name})
			}
			b.cur = nil
		}
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt (the clause's last
		// statement); record the node, keep the block open so the
		// caller can wire the edge to the next clause.
		b.add(s)
	}
}

// jump links the current block to the innermost (or labeled) target in
// stack and marks control dead.
func (b *builder) jump(stack []*target, label string) {
	if b.cur == nil {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			b.edge(b.cur, stack[i].block)
			b.cur = nil
			return
		}
	}
	// No target (malformed or break out of select-only context we
	// didn't model): exit conservatively.
	b.edge(b.cur, b.cfg.Exit)
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	condBlk := b.cur
	if condBlk == nil {
		condBlk = b.startBlock("unreachable")
	}

	thenBlk := b.newBlock("if.then")
	b.edge(condBlk, thenBlk)
	b.cur = thenBlk
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		elseBlk := b.newBlock("if.else")
		b.edge(condBlk, elseBlk)
		b.cur = elseBlk
		b.stmt(s.Else, "")
		elseEnd = b.cur
	}

	if !hasElse {
		// cond-false falls through to the join.
		if thenEnd == nil {
			// then returned/branched: control continues from cond.
			b.cur = condBlk
			b.startBlock("join")
			return
		}
		join := b.newBlock("join")
		b.edge(condBlk, join)
		b.edge(thenEnd, join)
		b.cur = join
		return
	}
	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	join := b.newBlock("join")
	b.edge(thenEnd, join)
	b.edge(elseEnd, join)
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.startBlock("for.head")
	if s.Cond != nil {
		b.add(s.Cond)
	}

	exit := b.newBlock("join")
	if s.Cond != nil {
		b.edge(head, exit) // condition false
	}

	// continue goes to the post block (or head when absent).
	var post *Block
	contTarget := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		contTarget = post
	}

	b.brk = append(b.brk, &target{label: label, block: exit})
	b.cont = append(b.cont, &target{label: label, block: contTarget})

	body := b.newBlock("for.body")
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, contTarget)
	}

	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.startBlock("range.head")
	// The ranged expression (and key/value binding) is evaluated at
	// the head; represent it with the X expression so clients see the
	// use without re-walking the body.
	b.add(s.X)

	exit := b.newBlock("join")
	b.edge(head, exit) // range exhausted

	b.brk = append(b.brk, &target{label: label, block: exit})
	b.cont = append(b.cont, &target{label: label, block: head})

	body := b.newBlock("range.body")
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}

	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.startBlock("unreachable")
	}

	exit := b.newBlock("join")
	b.brk = append(b.brk, &target{label: label, block: exit})

	var clauses []*ast.CaseClause
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("switch.case")
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are evaluated while dispatching.
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			if fallsThrough(cc.Body) && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, exit)
			}
			b.cur = nil
		}
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = exit
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	// Assign is `x := y.(type)` or bare `y.(type)`; it carries the
	// scrutinized expression and no body, so it is safe to append.
	b.add(s.Assign)
	head := b.cur
	if head == nil {
		head = b.startBlock("unreachable")
	}

	exit := b.newBlock("join")
	b.brk = append(b.brk, &target{label: label, block: exit})

	hasDefault := false
	var ends []*Block
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("switch.case")
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		if b.cur != nil {
			ends = append(ends, b.cur)
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for _, e := range ends {
		b.edge(e, exit)
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = exit
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.startBlock("unreachable")
	}
	exit := b.newBlock("join")
	b.brk = append(b.brk, &target{label: label, block: exit})

	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock("select.comm")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, exit)
		}
	}
	if !any {
		// `select {}` blocks forever.
		b.edge(head, b.cfg.Exit)
	}
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = exit
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isPanicCall reports whether e is a call to the builtin panic. It is
// syntactic (no type info needed at CFG-build time): a bare `panic(...)`
// identifier call. Shadowed local functions named panic are vanishingly
// rare and only make the CFG conservative in the wrong direction for
// dead code, never for reachable paths.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Terminators returns the predecessor blocks of Exit that represent a
// normal return (explicit or implicit), excluding panics — the blocks
// at which leak/held-lock facts must be checked.
func (c *CFG) Terminators() []*Block {
	var out []*Block
	for _, b := range c.Exit.Preds {
		if b.Kind != "panic" {
			out = append(out, b)
		}
	}
	return out
}

// Dump renders the CFG in a compact single-line-per-block format used
// by the shape tests: "b0(entry) -> b1,b2".
func (c *CFG) Dump() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d(%s)", b.Index, b.Kind)
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for i, s := range b.Succs {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
