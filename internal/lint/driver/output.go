package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"speedlight/internal/lint/analysis"
)

// printGitHub writes one GitHub Actions workflow command per finding:
// the runner turns these into inline PR annotations.
func printGitHub(fset *token.FileSet, findings []Finding) {
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		fmt.Printf("::error file=%s,line=%d,col=%d,title=speedlightvet/%s::%s\n",
			relPath(pos.Filename), pos.Line, pos.Column, f.Analyzer, ghEscape(f.Message))
	}
}

// ghEscape encodes the characters the workflow-command grammar
// reserves in message data.
func ghEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// SARIF 2.1.0, the minimal subset code-scanning upload consumes: one
// run, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// printSARIF writes the findings as one SARIF document.
func printSARIF(w io.Writer, fset *token.FileSet, analyzers []*analysis.Analyzer, findings []Finding) error {
	var rules []sarifRule
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{} // serialize as [], not null, when clean
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(pos.Filename))},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "speedlightvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath shortens name relative to the working directory when it can.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
