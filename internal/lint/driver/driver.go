// Package driver runs Speedlight's analyzers, speaking the protocols
// the go command expects of a vet tool. It is a standard-library
// replacement for golang.org/x/tools/go/analysis/unitchecker plus a
// small `go list`-based loader for standalone invocations.
//
// A single binary built from cmd/speedlightvet serves four call shapes:
//
//	speedlightvet -V=full          # build-cache tool ID (go vet handshake)
//	speedlightvet -flags           # supported analyzer flags (go vet handshake)
//	speedlightvet <unit>.cfg       # one compilation unit (go vet -vettool)
//	speedlightvet ./...            # standalone: load, check, report
package driver

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"speedlight/internal/lint/analysis"
)

// Main dispatches on the invocation shape and exits with the
// appropriate status: 0 clean, 1 operational failure, 2 diagnostics.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "speedlightvet"
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion(progname)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer exposes flags; an empty JSON list tells the go
		// command there is nothing to forward.
		fmt.Println("[]")
		os.Exit(0)
	}
	format := "text"
	rest := args[:0]
	for _, a := range args {
		if strings.HasPrefix(a, "-format=") {
			format = strings.TrimPrefix(a, "-format=")
			continue
		}
		rest = append(rest, a)
	}
	args = rest
	switch format {
	case "text", "github", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "%s: unknown -format %q (want text, github, or sarif)\n", progname, format)
		os.Exit(1)
	}
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s [-V=full | -flags | -format=text|github|sarif] [unit.cfg | packages...]\n", progname)
		os.Exit(1)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := runUnit(args[0], analyzers)
		exitWith(diags, err)
	}
	diags, err := runStandalone(args, analyzers, format)
	exitWith(diags, err)
}

func exitWith(diags int, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if diags > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion emulates the `-V=full` contract from cmd/go's buildid
// check: the line must read "<name> version devel ... buildID=<hex>"
// so the go command can fingerprint the tool for vet result caching.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// Finding is one diagnostic tagged with the analyzer that produced it,
// so output formats (SARIF rule IDs, annotation titles) can name the
// rule.
type Finding struct {
	Analyzer string
	analysis.Diagnostic
}

// RunAnalyzers applies every analyzer to one checked package and
// returns the findings sorted by position.
func RunAnalyzers(cp *CheckedPackage, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      cp.Fset,
			Files:     cp.Files,
			Pkg:       cp.Pkg,
			TypesInfo: cp.Info,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{Analyzer: a.Name, Diagnostic: d})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

func printDiagnostics(fset *token.FileSet, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(f.Pos), f.Message)
	}
}

// runStandalone loads the named package patterns through the go
// command — test variants included, so _test.go files are held to the
// same discipline — and checks every non-dependency package.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, format string) (int, error) {
	listed, err := GoList(append([]string{"-test"}, patterns...))
	if err != nil {
		return 0, err
	}
	packageFile := make(map[string]string)
	hasVariant := make(map[string]bool) // base paths covered by a test variant
	for _, p := range listed {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.ForTest != "" && !strings.Contains(p.ImportPath, "_test [") {
			hasVariant[p.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	var all []Finding
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue // the internal test variant analyzes a superset
		}
		if p.Error != nil {
			return 0, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			continue // cgo units need the compiler's generated sources
		}
		var files []string
		for _, name := range p.GoFiles {
			files = append(files, absJoin(p.Dir, name))
		}
		if len(files) == 0 {
			continue
		}
		imp := ExportImporter(fset, p.ImportMap, packageFile)
		cp, err := TypeCheck(fset, p.ImportPath, files, imp, "")
		if err != nil {
			return 0, err
		}
		findings, err := RunAnalyzers(cp, analyzers)
		if err != nil {
			return 0, err
		}
		all = append(all, findings...)
	}
	switch format {
	case "github":
		printGitHub(fset, all)
	case "sarif":
		if err := printSARIF(os.Stdout, fset, analyzers, all); err != nil {
			return 0, err
		}
	default:
		printDiagnostics(fset, all)
	}
	return len(all), nil
}

// ParseFile parses one file with comments (analyzers read directives).
func ParseFile(fset *token.FileSet, name string) (*ast.File, error) {
	return parser.ParseFile(fset, name, nil, parser.ParseComments)
}
