package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"speedlight/internal/lint/analysis"
)

// vetConfig mirrors the JSON the go command writes to $WORK/.../vet.cfg
// for each compilation unit when invoked as `go vet -vettool=...`.
// Field names must match cmd/go/internal/work's vetConfig exactly.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	GoVersion string

	SucceedOnTypecheckFailure bool

	VetxOnly    bool
	VetxOutput  string
	PackageVetx map[string]string
}

// runUnit analyzes one compilation unit described by a vet.cfg file.
// It must always write the VetxOutput file — even empty — because the
// go command treats a missing output as tool failure and caches on it.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, fmt.Errorf("writing vetx output: %w", err)
		}
	}
	if cfg.VetxOnly {
		// Dependencies are analyzed only for facts, which this driver
		// does not implement; the (empty) vetx file is all cmd/go needs.
		return 0, nil
	}
	fset := token.NewFileSet()
	var files []string
	for _, name := range cfg.GoFiles {
		files = append(files, absJoin(cfg.Dir, name))
	}
	imp := ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	cp, err := TypeCheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := RunAnalyzers(cp, analyzers)
	if err != nil {
		return 0, err
	}
	printDiagnostics(fset, diags)
	return len(diags), nil
}
