package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// ListedPackage is the subset of `go list -json` output the driver
// consumes.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Export     string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// GoList runs `go list -export -deps -json` over the patterns and
// returns every listed package. Export data is compiled as a side
// effect, giving the type checker gc export files for all dependencies.
func GoList(patterns []string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter builds a types importer that resolves import paths
// through importMap (identity when absent) and reads gc export data
// from packageFile. Both the unitchecker vet.cfg and `go list -export`
// provide exactly these two tables.
func ExportImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// TypeCheck parses and type-checks one package from source, resolving
// imports via the provided importer. It returns the syntax, package,
// and filled-in type info.
func TypeCheck(fset *token.FileSet, importPath string, goFiles []string, imp types.Importer, goVersion string) (*CheckedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := ParseFile(fset, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &CheckedPackage{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// CheckedPackage is one fully type-checked package ready for analysis.
type CheckedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewTypesInfo allocates a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	out, err := exec.Command("go", "env", "GOARCH").Output()
	if err != nil {
		return "amd64"
	}
	return string(bytes.TrimSpace(out))
}

// absJoin resolves name against dir unless it is already absolute.
func absJoin(dir, name string) string {
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(dir, name)
}
