// Package hot exercises the //speedlight:hotpath marker.
package hot

import "fmt"

// OnPacket stands in for a per-packet pipeline stage.
//
//speedlight:hotpath
func OnPacket(n int, label string) string {
	s := fmt.Sprintf("pkt %d", n) // want `fmt\.Sprintf in //speedlight:hotpath function`
	s = s + label                 // want `string concatenation in //speedlight:hotpath function`
	m := map[int]int{}            // want `map literal in //speedlight:hotpath function`
	counts := []int{1, 2}         // want `slice literal in //speedlight:hotpath function`
	_ = m
	_ = counts
	if n < 0 {
		panic(fmt.Sprintf("bad packet %d", n)) // assertion path is cold: exempt
	}
	return s
}

// coldFormat is unmarked: the same allocations are fine.
func coldFormat(n int) string {
	return fmt.Sprintf("cold %d", n)
}

// Advance does allocation-free work on the hot path.
//
//speedlight:hotpath
func Advance(a, b uint64) uint64 {
	const tag = "x" + "y" // constant-folded concat costs nothing
	_ = tag
	return a + b
}
