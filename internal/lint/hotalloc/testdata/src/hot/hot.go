// Package hot exercises the //speedlight:hotpath marker.
package hot

import (
	"fmt"
	"sync"
)

// OnPacket stands in for a per-packet pipeline stage.
//
//speedlight:hotpath
func OnPacket(n int, label string) string {
	s := fmt.Sprintf("pkt %d", n) // want `fmt\.Sprintf in //speedlight:hotpath function`
	s = s + label                 // want `string concatenation in //speedlight:hotpath function`
	m := map[int]int{}            // want `map literal in //speedlight:hotpath function`
	counts := []int{1, 2}         // want `slice literal in //speedlight:hotpath function`
	_ = m
	_ = counts
	if n < 0 {
		panic(fmt.Sprintf("bad packet %d", n)) // assertion path is cold: exempt
	}
	return s
}

// coldFormat is unmarked: the same allocations are fine.
func coldFormat(n int) string {
	return fmt.Sprintf("cold %d", n)
}

// Advance does allocation-free work on the hot path.
//
//speedlight:hotpath
func Advance(a, b uint64) uint64 {
	const tag = "x" + "y" // constant-folded concat costs nothing
	_ = tag
	return a + b
}

// Schedule stands in for the event-scheduling hot path: builtin
// allocation, closures, and boxed pooling are all flagged.
//
//speedlight:hotpath
func Schedule(n int) {
	buf := make([]byte, n) // want `make in //speedlight:hotpath function`
	_ = buf
	p := new(int) // want `new in //speedlight:hotpath function`
	_ = p
	ev := &event{at: n} // want `pointer composite literal in //speedlight:hotpath function`
	_ = ev
	fn := func() { _ = n } // want `function literal in //speedlight:hotpath function`
	fn()
	var sp sync.Pool
	got := sp.Get() // want `sync\.Pool Get in //speedlight:hotpath function`
	sp.Put(got)     // want `sync\.Pool Put in //speedlight:hotpath function`
}

// event is a stand-in pooled object.
type event struct {
	at    int
	state uint8
}

// pool is a stand-in per-context free list.
type pool struct {
	free []*event
}

// Get is the blessed pooled fast path: popping a plain free list and
// resetting the object in place allocates nothing. This case pins the
// pattern the analyzer must keep accepting — free-list pop, value
// (non-pointer) composite literal reset, index/slice expressions.
//
//speedlight:hotpath
func (p *pool) Get() *event {
	n := len(p.free)
	if n == 0 {
		return p.refill()
	}
	ev := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*ev = event{state: 1} // value literal: no heap allocation
	return ev
}

// Append is the blessed append-codec fast path: appending into a
// caller-provided buffer with byte operands allocates nothing (growth
// beyond capacity is the caller's sizing bug, not this function's
// allocation).
//
//speedlight:hotpath
func Append(dst []byte, port int, payload byte) []byte {
	return append(dst, 0x01, byte(port>>8), byte(port), payload)
}

// refill is the unmarked cold path backing Get: batch allocation is
// fine here.
func (p *pool) refill() *event {
	block := make([]event, 8)
	for i := range block {
		p.free = append(p.free, &block[i])
	}
	ev := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return ev
}
