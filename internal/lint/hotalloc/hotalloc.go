// Package hotalloc flags allocating expressions in functions marked as
// per-packet hot paths.
//
// The paper's data-plane model executes snapshot bookkeeping on every
// packet at line rate; the Go port keeps those paths allocation-free so
// simulated and emulated throughput numbers reflect the algorithm, not
// the garbage collector. A function opts in with a
//
//	//speedlight:hotpath
//
// directive in its doc comment. Inside a marked function hotalloc
// flags fmt formatting calls, non-constant string concatenation,
// map/slice composite literals, make and new builtins, pointer
// composite literals (&T{...}), function literals (closure creation),
// and any use of sync.Pool — pooling on marked paths must go through
// the repo's plain per-context free lists (internal/packet.Pool, the
// sim event pool), whose Get/Put are unsynchronized slice operations
// with explicit ownership, not sync.Pool's escape-prone interface
// boxing. Arguments to panic are exempt: a failing assertion is
// already off the hot path. Cold fallbacks (batch refills, block
// growth) belong in separate unmarked functions.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"speedlight/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag fmt calls, string concatenation, map/slice literals, make/new, " +
		"pointer literals, closures, and sync.Pool use inside functions marked " +
		"//speedlight:hotpath (per-packet allocation-free discipline)",
	Run: run,
}

// fmtAllocs are the fmt functions that always allocate.
var fmtAllocs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Fprintf":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHot(pass, fd.Body)
		}
	}
	return nil, nil
}

// isHotPath reports whether the function's doc comment carries the
// //speedlight:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//speedlight:hotpath") {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pass.TypesInfo, n) {
				return false // assertion failure path is cold
			}
			if name, ok := builtinName(pass.TypesInfo, n); ok {
				switch name {
				case "make":
					pass.Reportf(n.Pos(),
						"make in //speedlight:hotpath function allocates per packet: preallocate or pool the storage")
				case "new":
					pass.Reportf(n.Pos(),
						"new in //speedlight:hotpath function allocates per packet: preallocate or pool the storage")
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"fmt.%s in //speedlight:hotpath function allocates per packet: format off the hot path",
						fn.Name())
				}
				if isSyncPoolMethod(pass.TypesInfo, sel) {
					pass.Reportf(n.Pos(),
						"sync.Pool %s in //speedlight:hotpath function: use the per-context free lists (interface boxing escapes)",
						sel.Sel.Name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"function literal in //speedlight:hotpath function allocates a closure per packet: use a cached CallFn")
			return false // don't double-report the closure's body
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"pointer composite literal in //speedlight:hotpath function heap-allocates per packet: take cells from a pool")
					return false // the literal itself would be re-flagged below
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() != "+" {
				return true
			}
			tv := pass.TypesInfo.Types[n]
			if tv.Type == nil || tv.Value != nil {
				return true // constant-folded concat costs nothing at run time
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(n.OpPos,
					"string concatenation in //speedlight:hotpath function allocates per packet")
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(),
					"map literal in //speedlight:hotpath function allocates per packet")
			case *types.Slice:
				pass.Reportf(n.Pos(),
					"slice literal in //speedlight:hotpath function allocates per packet")
			}
		}
		return true
	})
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	name, ok := builtinName(info, call)
	return ok && name == "panic"
}

// builtinName returns the name of the builtin a call invokes, if any.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

// isSyncPoolMethod reports whether sel names a method on sync.Pool
// (directly or through a pointer).
func isSyncPoolMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
