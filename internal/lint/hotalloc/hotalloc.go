// Package hotalloc flags allocating expressions in functions marked as
// per-packet hot paths.
//
// The paper's data-plane model executes snapshot bookkeeping on every
// packet at line rate; the Go port keeps those paths allocation-free so
// simulated and emulated throughput numbers reflect the algorithm, not
// the garbage collector. A function opts in with a
//
//	//speedlight:hotpath
//
// directive in its doc comment. Inside a marked function hotalloc
// flags fmt formatting calls, non-constant string concatenation, and
// map/slice composite literals. Arguments to panic are exempt: a
// failing assertion is already off the hot path.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"speedlight/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag fmt calls, string concatenation, and map/slice literals inside " +
		"functions marked //speedlight:hotpath (per-packet allocation-free discipline)",
	Run: run,
}

// fmtAllocs are the fmt functions that always allocate.
var fmtAllocs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Fprintf":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHot(pass, fd.Body)
		}
	}
	return nil, nil
}

// isHotPath reports whether the function's doc comment carries the
// //speedlight:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//speedlight:hotpath") {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pass.TypesInfo, n) {
				return false // assertion failure path is cold
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"fmt.%s in //speedlight:hotpath function allocates per packet: format off the hot path",
						fn.Name())
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() != "+" {
				return true
			}
			tv := pass.TypesInfo.Types[n]
			if tv.Type == nil || tv.Value != nil {
				return true // constant-folded concat costs nothing at run time
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(n.OpPos,
					"string concatenation in //speedlight:hotpath function allocates per packet")
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(),
					"map literal in //speedlight:hotpath function allocates per packet")
			case *types.Slice:
				pass.Reportf(n.Pos(),
					"slice literal in //speedlight:hotpath function allocates per packet")
			}
		}
		return true
	})
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
