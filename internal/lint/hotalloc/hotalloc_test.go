package hotalloc_test

import (
	"testing"

	"speedlight/internal/lint/hotalloc"
	"speedlight/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hot")
}
