package dataplane

import (
	"testing"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/topology"
)

func TestIngressOnlyProcessesWithoutForwarding(t *testing.T) {
	s := testSwitch(t, nil)
	// A marker-style packet without a route: IngressOnly must still run
	// the unit and tag the internal channel.
	pkt := &packet.Packet{DstHost: 0xFFFFFFFF, Size: 64}
	s.IngressOnly(pkt, 1, 0)
	if !pkt.HasSnap {
		t.Fatal("header not added")
	}
	if pkt.Snap.Channel != 1 {
		t.Errorf("channel = %d, want ingress port 1", pkt.Snap.Channel)
	}
	m := s.Port(1).IngressUnit.Metric().(*counters.PacketCount)
	if m.Read() != 1 {
		t.Errorf("counter = %d, want 1 (markers are real traffic)", m.Read())
	}
	// With a header already present, the epoch it carries is processed.
	adv := &packet.Packet{
		DstHost: 0xFFFFFFFF, Size: 64,
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeData, ID: 5},
	}
	s.IngressOnly(adv, 1, 0)
	if got := s.Port(1).IngressUnit.CurrentSID(); got != 5 {
		t.Errorf("sid = %d, want 5", got)
	}
}

func TestIngressFromCPUsesCPChannel(t *testing.T) {
	s := testSwitch(t, nil)
	ing := s.Port(2).IngressUnit
	pkt := &packet.Packet{DstHost: 0xFFFFFFFF, Size: 64}
	s.IngressFromCP(pkt, 2, 0)
	// The CP channel's last-seen entry moved; the external one did not
	// (the CPU must not forge the upstream neighbor's progress).
	if got := ing.LastSeenUnwrapped(ing.Config().CPChannel); got != 0 {
		// Epoch 0 carried; no advance expected, but the channel was the
		// CP one — verify by advancing the unit first.
		t.Logf("lastSeen[cp] = %d", got)
	}
	s.InitiateIngress(3, 2, 0)
	fresh := &packet.Packet{DstHost: 0xFFFFFFFF, Size: 64}
	s.IngressFromCP(fresh, 2, 0)
	if fresh.Snap.ID != 3 {
		t.Errorf("CP-injected packet stamped %d, want current epoch 3", fresh.Snap.ID)
	}
	if got := ing.LastSeenUnwrapped(0); got != 0 {
		t.Errorf("external lastSeen = %d: CP injection forged upstream progress", got)
	}
	if fresh.Snap.Channel != 2 {
		t.Errorf("channel = %d, want 2", fresh.Snap.Channel)
	}
}

func TestStampCPEgress(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := &packet.Packet{DstHost: 0xFFFFFFFF, Size: 64}
	s.StampCPEgress(pkt, 1)
	if !pkt.HasSnap {
		t.Fatal("header not added")
	}
	if int(pkt.Snap.Channel) != s.NumPorts()*s.NumCoS() {
		t.Errorf("channel = %d, want CPU pseudo-channel %d", pkt.Snap.Channel, s.NumPorts()*s.NumCoS())
	}
	// The egress unit accepts it on the CPU channel without advancing.
	res := s.Egress(pkt, 1, 0)
	if res.Drop {
		t.Error("CPU-injected data packet dropped")
	}
}

func TestSnapshotDisabledForwarding(t *testing.T) {
	s, err := New(Config{
		Node: 7, NumPorts: 3, MaxID: 16,
		SnapshotDisabled: true,
		Metrics:          func(UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node: 7, Version: 1,
			NextHops: map[topology.HostID][]int{10: {2}},
		},
		Balancer: routing.ECMP{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A packet with an existing header passes untouched.
	pkt := &packet.Packet{
		DstHost: 10,
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeData, ID: 9, Channel: 4},
	}
	res := s.Ingress(pkt, 0, 0)
	if res.Drop || res.EgressPort != 2 {
		t.Fatalf("forwarding broken: %+v", res)
	}
	if egr := s.Egress(pkt, 2, 0); egr.Drop || egr.StripHeader {
		t.Errorf("disabled egress touched the packet: %+v", egr)
	}
	if pkt.Snap.ID != 9 || pkt.Snap.Channel != 4 {
		t.Errorf("header mutated in partial deployment: %+v", pkt.Snap)
	}
	if s.Port(0).IngressUnit.CurrentSID() != 0 {
		t.Error("disabled switch advanced its snapshot state")
	}
	// Unroutable drops; recirculation also takes the plain path.
	if res := s.Ingress(&packet.Packet{DstHost: 99}, 0, 0); !res.Drop {
		t.Error("unroutable not dropped")
	}
	s2, err := New(Config{
		Node: 8, NumPorts: 2, MaxID: 16,
		SnapshotDisabled: true, Recirculation: true,
		Metrics: func(UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node: 8, Version: 1,
			NextHops: map[topology.HostID][]int{10: {1}},
		},
		Balancer: routing.ECMP{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rp := &packet.Packet{DstHost: 10, HasSnap: true}
	if res := s2.Recirculate(rp, 0, 0); res.Drop || res.EgressPort != 1 {
		t.Errorf("disabled recirculation forwarding: %+v", res)
	}
}

func TestAccessors(t *testing.T) {
	s := testSwitch(t, nil)
	if s.NumCoS() != 1 {
		t.Errorf("NumCoS = %d", s.NumCoS())
	}
	if s.Config().Node != 1 {
		t.Errorf("Config().Node = %d", s.Config().Node)
	}
	if Egress.String() != "egress" || Ingress.String() != "ingress" {
		t.Error("Direction strings")
	}
}
