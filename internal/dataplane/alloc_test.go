package dataplane

import (
	"testing"

	"speedlight/internal/packet"
)

// TestPipelineSteadyStateAllocs: a full per-packet switch traversal —
// ingress (edge header add and forward-only), egress, recirculation,
// the CP pseudo-channel, and the notification queue — must not
// allocate once the per-unit metric table is warm. This is the
// dataplane half of the zero-allocation contract; the per-unit state
// machine is gated separately in core.
//
//speedlight:allocgate dataplane.Switch.Ingress dataplane.Switch.forwardOnly dataplane.Switch.Egress
//speedlight:allocgate dataplane.Switch.Recirculate dataplane.Switch.IngressOnly dataplane.Switch.IngressFromCP
//speedlight:allocgate dataplane.Switch.StampCPEgress dataplane.Switch.journalUnit dataplane.Switch.pushNotif dataplane.Switch.PopNotif
func TestPipelineSteadyStateAllocs(t *testing.T) {
	s := testSwitch(t, func(cfg *Config) { cfg.Recirculation = true })
	pkt := &packet.Packet{DstHost: 10, Size: 100}
	cycle := func() {
		pkt.HasSnap = false
		pkt.Snap = packet.SnapshotHeader{}
		res := s.Ingress(pkt, 0, 0) // edge port: header add
		if !res.Drop {
			s.Egress(pkt, res.EgressPort, 0)
		}
		res = s.Ingress(pkt, 2, 0) // fabric port: forward-only
		if !res.Drop {
			s.Recirculate(pkt, res.EgressPort, 0)
		}
		s.IngressOnly(pkt, 1, 0)
		s.IngressFromCP(pkt, 0, 0)
		s.StampCPEgress(pkt, 0)
		for {
			if _, ok := s.PopNotif(); !ok {
				break
			}
		}
	}
	for i := 0; i < 512; i++ {
		pkt.SrcPort = uint16(i)
		cycle()
	}
	if n := testing.AllocsPerRun(1000, cycle); n != 0 {
		t.Fatalf("switch pipeline allocates %v allocs/op, want 0", n)
	}
}
