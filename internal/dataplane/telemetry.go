package dataplane

import "speedlight/internal/telemetry"

// Telemetry is the data plane's metric set. All fields are optional:
// nil counters are no-ops (the telemetry package's
// zero-overhead-when-disabled contract), so a zero Telemetry — or a
// nil Config.Telemetry, which New replaces with one — disables
// instrumentation without branching beyond a nil check per update.
//
// One Telemetry may be shared by every switch of a network; all
// updates are atomic.
type Telemetry struct {
	// PacketsIngress and PacketsEgress count processing-unit
	// traversals (the per-packet hot path).
	PacketsIngress *telemetry.Counter
	PacketsEgress  *telemetry.Counter
	// NotifsGenerated counts notifications exported toward the CPU;
	// NotifsDropped counts those lost at the full notification queue
	// (the raw-socket buffer of Section 7.2).
	NotifsGenerated *telemetry.Counter
	NotifsDropped   *telemetry.Counter
	// NotifQueueHighWater tracks the deepest the CPU notification
	// queue has been.
	NotifQueueHighWater *telemetry.Gauge
	// Recirculations counts packets re-entering ingress via the
	// recirculation channel (footnote 2).
	Recirculations *telemetry.Counter
	// Rollovers counts snapshot-ID wire wraparounds observed in
	// exported notifications (Section 5.3).
	Rollovers *telemetry.Counter
	// Markers counts control-plane marker packets processed
	// (IngressOnly and IngressFromCP, the Section 6 liveness path).
	Markers *telemetry.Counter
	// Initiations counts initiation messages run through ingress units
	// (one per port per Initiate call, Section 6).
	Initiations *telemetry.Counter
}

// NewTelemetry registers the data-plane metric families on reg and
// returns the resolved handles. A nil registry yields all-nil (no-op)
// metrics.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	return &Telemetry{
		PacketsIngress:      reg.Counter("speedlight_dp_packets_ingress_total", "packets processed by ingress units"),
		PacketsEgress:       reg.Counter("speedlight_dp_packets_egress_total", "packets processed by egress units"),
		NotifsGenerated:     reg.Counter("speedlight_dp_notifs_generated_total", "notifications exported to the switch CPU"),
		NotifsDropped:       reg.Counter("speedlight_dp_notifs_dropped_total", "notifications dropped at the full CPU queue"),
		NotifQueueHighWater: reg.Gauge("speedlight_dp_notif_queue_high_water", "deepest CPU notification queue occupancy"),
		Recirculations:      reg.Counter("speedlight_dp_recirculations_total", "packets recirculated through ingress"),
		Rollovers:           reg.Counter("speedlight_dp_rollovers_total", "snapshot ID wire wraparounds observed"),
		Markers:             reg.Counter("speedlight_dp_markers_total", "control-plane marker packets processed"),
		Initiations:         reg.Counter("speedlight_dp_initiations_total", "initiation messages processed at ingress units"),
	}
}

// nopTelemetry backs switches configured without telemetry; its nil
// fields make every update a no-op.
var nopTelemetry = &Telemetry{}
