package dataplane

import (
	"testing"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/topology"
)

func testSwitch(t *testing.T, mod func(*Config)) *Switch {
	t.Helper()
	cfg := Config{
		Node:         1,
		NumPorts:     4,
		MaxID:        64,
		WrapAround:   true,
		ChannelState: true,
		Metrics:      func(UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node:    1,
			Version: 1,
			NextHops: map[topology.HostID][]int{
				10: {2},
				11: {2, 3},
			},
		},
		Balancer:  routing.ECMP{},
		EdgePorts: map[int]bool{0: true},
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumPorts: 0}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := New(Config{NumPorts: 2}); err == nil {
		t.Error("missing metric factory accepted")
	}
}

func TestHeaderAddedAtEdge(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := &packet.Packet{DstHost: 10, Size: 100}
	res := s.Ingress(pkt, 0, 0)
	if res.Drop {
		t.Fatal("packet dropped")
	}
	if !pkt.HasSnap {
		t.Fatal("header not added")
	}
	if pkt.Snap.Type != packet.TypeData {
		t.Error("wrong header type")
	}
	if pkt.Snap.ID != 0 {
		t.Errorf("added header ID = %d, want current unit epoch 0", pkt.Snap.ID)
	}
	if res.EgressPort != 2 {
		t.Errorf("egress port = %d, want 2", res.EgressPort)
	}
	if pkt.Snap.Channel != 0 {
		t.Errorf("channel = %d, want ingress port 0", pkt.Snap.Channel)
	}
}

func TestHeaderAddedCarriesCurrentEpoch(t *testing.T) {
	s := testSwitch(t, nil)
	// Advance port 0's ingress unit to epoch 3 via initiation.
	_ = s.InitiateIngress(3, 0, 0)
	pkt := &packet.Packet{DstHost: 10}
	s.Ingress(pkt, 0, 0)
	if pkt.Snap.ID != 3 {
		t.Errorf("added header ID = %d, want 3", pkt.Snap.ID)
	}
}

func TestIngressDropsUnroutable(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := &packet.Packet{DstHost: 99}
	if res := s.Ingress(pkt, 0, 0); !res.Drop {
		t.Error("unroutable packet not dropped")
	}
	s2 := testSwitch(t, func(c *Config) { c.FIB = nil })
	if res := s2.Ingress(&packet.Packet{DstHost: 10}, 0, 0); !res.Drop {
		t.Error("switch without FIB should drop")
	}
}

func TestChannelRewrittenAcrossSwitch(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := &packet.Packet{DstHost: 10}
	res := s.Ingress(pkt, 3, 0)
	if pkt.Snap.Channel != 3 {
		t.Fatalf("after ingress channel = %d, want 3", pkt.Snap.Channel)
	}
	egr := s.Egress(pkt, res.EgressPort, 0)
	if egr.Drop {
		t.Fatal("data packet dropped at egress")
	}
	if pkt.Snap.Channel != 0 {
		t.Errorf("on-wire channel = %d, want 0 (external)", pkt.Snap.Channel)
	}
	if egr.StripHeader {
		t.Error("non-edge egress should not strip")
	}
}

func TestEdgeEgressStrips(t *testing.T) {
	s := testSwitch(t, func(c *Config) {
		c.FIB.NextHops[10] = []int{0} // host behind edge port 0
	})
	pkt := &packet.Packet{DstHost: 10}
	res := s.Ingress(pkt, 2, 0)
	if res.EgressPort != 0 {
		t.Fatalf("egress port = %d", res.EgressPort)
	}
	egr := s.Egress(pkt, 0, 0)
	if !egr.StripHeader {
		t.Error("edge egress must strip the header")
	}
}

func TestInitiationPath(t *testing.T) {
	s := testSwitch(t, nil)
	pkts := s.InitiateIngress(1, 2, 100)
	if len(pkts) != 1 {
		t.Fatalf("initiations = %d, want 1 per CoS", len(pkts))
	}
	pkt := pkts[0]
	if pkt.Snap.Type != packet.TypeInitiation {
		t.Fatal("wrong packet type")
	}
	if got := s.Port(2).IngressUnit.CurrentSID(); got != 1 {
		t.Errorf("ingress sid = %d, want 1", got)
	}
	if pkt.Snap.Channel != 2 {
		t.Errorf("initiation channel = %d, want ingress port 2", pkt.Snap.Channel)
	}
	egr := s.Egress(pkt, 2, 101)
	if !egr.Drop {
		t.Error("initiation must be dropped after egress processing")
	}
	if got := s.Port(2).EgressUnit.CurrentSID(); got != 1 {
		t.Errorf("egress sid = %d, want 1", got)
	}
}

func TestInitiationNotCounted(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := s.InitiateIngress(1, 0, 0)[0]
	s.Egress(pkt, 0, 0)
	ingM := s.Port(0).IngressUnit.Metric().(*counters.PacketCount)
	egrM := s.Port(0).EgressUnit.Metric().(*counters.PacketCount)
	if ingM.Read() != 0 || egrM.Read() != 0 {
		t.Errorf("initiation counted: ingress=%d egress=%d", ingM.Read(), egrM.Read())
	}
}

func TestNotificationsQueuedWithTimestamp(t *testing.T) {
	s := testSwitch(t, nil)
	s.InitiateIngress(1, 0, 500)
	n, ok := s.PopNotif()
	if !ok {
		t.Fatal("no notification queued")
	}
	if n.Exported != 500 {
		t.Errorf("timestamp = %d", n.Exported)
	}
	if n.Unit != (UnitID{1, 0, Ingress}) {
		t.Errorf("unit = %v", n.Unit)
	}
	if n.NewSID != 1 {
		t.Errorf("NewSID = %d", n.NewSID)
	}
	if _, ok := s.PopNotif(); ok {
		t.Error("queue should be empty")
	}
}

func TestNotificationOverflowDrops(t *testing.T) {
	s := testSwitch(t, func(c *Config) { c.NotifCapacity = 2 })
	for i := packet.SeqID(1); i <= 5; i++ {
		s.InitiateIngress(core.Wrap(i, 64, true), 0, 0)
	}
	if s.PendingNotifs() != 2 {
		t.Errorf("pending = %d, want 2", s.PendingNotifs())
	}
	if s.NotifDrops() != 3 {
		t.Errorf("drops = %d, want 3", s.NotifDrops())
	}
}

func TestNoNotificationForSteadyTraffic(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := &packet.Packet{DstHost: 10}
	s.Ingress(pkt, 0, 0)
	s.PopNotif() // possibly one from the header add? There should be none.
	p2 := &packet.Packet{DstHost: 10}
	s.Ingress(p2, 0, 0)
	if s.PendingNotifs() != 0 {
		t.Errorf("steady traffic produced %d notifications", s.PendingNotifs())
	}
}

func TestUnitAccessors(t *testing.T) {
	s := testSwitch(t, nil)
	ids := s.UnitIDs()
	if len(ids) != 8 {
		t.Fatalf("unit count = %d", len(ids))
	}
	for _, id := range ids {
		if s.Unit(id) == nil {
			t.Errorf("unit %v missing", id)
		}
	}
	if s.Node() != 1 || s.NumPorts() != 4 {
		t.Error("accessors wrong")
	}
	if (UnitID{1, 2, Ingress}).String() != "sw1/p2/ingress" {
		t.Errorf("UnitID string = %s", UnitID{1, 2, Ingress})
	}
	defer func() {
		if recover() == nil {
			t.Error("foreign unit access did not panic")
		}
	}()
	s.Unit(UnitID{Node: 9, Port: 0, Dir: Ingress})
}

func TestEgressChannelRangePanics(t *testing.T) {
	s := testSwitch(t, nil)
	pkt := &packet.Packet{
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeData, ID: 0, Channel: 99},
	}
	defer func() {
		if recover() == nil {
			t.Error("bad egress channel did not panic")
		}
	}()
	s.Egress(pkt, 0, 0)
}

// instrumentedCount wraps a packet counter and records, per snapshot
// epoch, how many in-flight packets were absorbed into the unit's
// channel state. The protocol's conservation invariant is per hop:
//
//	downstream.snap(i) == upstream.snap(i) - upstream.absorbed(i)
//
// because a unit's recorded value is its own pre-cut count plus the
// in-flights absorbed from ITS upstream channel (which passed the
// upstream unit pre-cut but this unit post-cut).
type instrumentedCount struct {
	inner    counters.PacketCount
	unit     func() *core.Unit
	absorbed map[packet.SeqID]uint64
}

func (m *instrumentedCount) Read() uint64            { return m.inner.Read() }
func (m *instrumentedCount) Update(p *packet.Packet) { m.inner.Update(p) }
func (m *instrumentedCount) Absorb(v uint64, p *packet.Packet) uint64 {
	m.absorbed[m.unit().CurrentSID()]++
	return m.inner.Absorb(v, p)
}

// TestEndToEndTwoSwitchConsistency wires two switches back to back with
// FIFO queues and checks the per-hop packet-count conservation invariant
// for every complete snapshot across the full four-unit pipeline:
// host -> sw1.in0 -> sw1.out1 -> wire -> sw2.in1 -> sw2.out0 -> host.
func TestEndToEndTwoSwitchConsistency(t *testing.T) {
	metrics := map[UnitID]*instrumentedCount{}
	switches := map[topology.NodeID]*Switch{}
	mkSwitch := func(node topology.NodeID, nextHop int) *Switch {
		s, err := New(Config{
			Node:         node,
			NumPorts:     2,
			MaxID:        64,
			WrapAround:   true,
			ChannelState: true,
			Metrics: func(id UnitID) core.Metric {
				m := &instrumentedCount{
					absorbed: map[packet.SeqID]uint64{},
					unit: func() *core.Unit {
						return switches[id.Node].Unit(id)
					},
				}
				metrics[id] = m
				return m
			},
			FIB: &routing.FIB{
				Node:     node,
				Version:  1,
				NextHops: map[topology.HostID][]int{10: {nextHop}},
			},
			Balancer: routing.ECMP{},
			EdgePorts: map[int]bool{
				0: node == 2, // host hangs off switch 2 port 0
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		switches[node] = s
		return s
	}
	// Host -> sw1 port0 -> sw1 port1 -> wire -> sw2 port1 -> sw2 port0 -> host.
	sw1 := mkSwitch(1, 1)
	sw2 := mkSwitch(2, 0)

	// FIFO queues: sw1's egress queue (between ingress and egress unit)
	// and the wire between the switches, plus sw2's internal queue.
	type queued struct {
		pkt  *packet.Packet
		port int
	}
	var q1, wire, q2 []queued

	epoch := packet.SeqID(0)
	send := func() {
		p := &packet.Packet{DstHost: 10, Size: 100}
		res := sw1.Ingress(p, 0, 0)
		if res.Drop {
			t.Fatal("drop at sw1")
		}
		q1 = append(q1, queued{p, res.EgressPort})
	}
	moveQ1 := func() {
		if len(q1) == 0 {
			return
		}
		item := q1[0]
		q1 = q1[1:]
		res := sw1.Egress(item.pkt, item.port, 0)
		if !res.Drop {
			wire = append(wire, item)
		}
	}
	moveWire := func() {
		if len(wire) == 0 {
			return
		}
		item := wire[0]
		wire = wire[1:]
		res := sw2.Ingress(item.pkt, 1, 0)
		if res.Drop {
			t.Fatal("drop at sw2")
		}
		q2 = append(q2, queued{item.pkt, res.EgressPort})
	}
	moveQ2 := func() {
		if len(q2) == 0 {
			return
		}
		item := q2[0]
		q2 = q2[1:]
		sw2.Egress(item.pkt, item.port, 0)
	}
	initiate := func() {
		epoch++
		for _, sw := range []*Switch{sw1, sw2} {
			for p := 0; p < 2; p++ {
				ip := sw.InitiateIngress(core.Wrap(epoch, 64, true), p, 0)[0]
				switch {
				case sw == sw1 && p == 0:
					q1 = append(q1, queued{ip, p})
				case sw == sw2 && p == 1:
					q2 = append(q2, queued{ip, p})
				default:
					// Ports without data traffic in this test: deliver
					// directly (their queues are always empty).
					sw.Egress(ip, p, 0)
				}
			}
		}
	}

	// Interleave activity, completing each epoch before the next
	// initiation (the smooth regime; inconsistent cases are covered by
	// core tests).
	for round := 0; round < 30; round++ {
		for i := 0; i < 5; i++ {
			send()
		}
		for i := 0; i < 3; i++ {
			moveQ1()
			moveWire()
		}
		initiate()
		// Drain everything so the epoch completes.
		for len(q1) > 0 || len(wire) > 0 || len(q2) > 0 {
			moveQ1()
			moveWire()
			moveQ2()
		}
		// Push fresh traffic through so last-seen arrays advance.
		send()
		for len(q1) > 0 || len(wire) > 0 || len(q2) > 0 {
			moveQ1()
			moveWire()
			moveQ2()
		}
	}

	// Per-hop conservation along the path. Each downstream unit's
	// recorded value must equal the upstream unit's value minus what the
	// upstream itself absorbed from *its* channel (those packets are in
	// the upstream's snapshot but crossed the upstream's cut in flight,
	// not on this hop).
	path := []UnitID{
		{1, 0, Ingress},
		{1, 1, Egress},
		{2, 1, Ingress},
		{2, 0, Egress},
	}
	checked := 0
	for i := packet.SeqID(1); i <= epoch; i++ {
		for h := 1; h < len(path); h++ {
			up, down := path[h-1], path[h]
			uv, uok := switches[up.Node].Unit(up).RegSnapshot(i)
			dv, dok := switches[down.Node].Unit(down).RegSnapshot(i)
			if !uok || !dok {
				continue
			}
			want := uv - metrics[up].absorbed[i]
			if dv != want {
				t.Errorf("snapshot %d hop %v->%v: downstream %d, want %d (upstream %d minus %d absorbed)",
					i, up, down, dv, want, uv, metrics[up].absorbed[i])
			}
			checked++
		}
	}
	if checked < int(epoch)*2 {
		t.Fatalf("only %d hop-invariants checked for %d epochs — test lost its teeth", checked, epoch)
	}
}
