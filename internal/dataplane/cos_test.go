package dataplane

import (
	"testing"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/topology"
)

func cosSwitch(t *testing.T, numCoS int) *Switch {
	t.Helper()
	s, err := New(Config{
		Node:         1,
		NumPorts:     4,
		NumCoS:       numCoS,
		MaxID:        64,
		WrapAround:   true,
		ChannelState: true,
		Metrics:      func(UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node: 1, Version: 1,
			NextHops: map[topology.HostID][]int{10: {2}},
		},
		Balancer:  routing.ECMP{},
		EdgePorts: map[int]bool{0: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCoSChannelLayout(t *testing.T) {
	s := cosSwitch(t, 3)
	ing := s.Port(0).IngressUnit
	// Ingress: 3 external CoS channels + CPU.
	if got := ing.Config().NumChannels; got != 4 {
		t.Errorf("ingress channels = %d, want 4", got)
	}
	if got := ing.Config().CPChannel; got != 3 {
		t.Errorf("ingress CP channel = %d, want 3", got)
	}
	// Egress: 4 ports x 3 classes + CPU.
	egr := s.Port(0).EgressUnit
	if got := egr.Config().NumChannels; got != 13 {
		t.Errorf("egress channels = %d, want 13", got)
	}
	if got := egr.Config().CPChannel; got != 12 {
		t.Errorf("egress CP channel = %d, want 12", got)
	}
}

func TestCoSRejectsTooManyClasses(t *testing.T) {
	_, err := New(Config{
		Node: 1, NumPorts: 2, NumCoS: 17, MaxID: 8,
		Metrics: func(UnitID) core.Metric { return &counters.PacketCount{} },
	})
	if err == nil {
		t.Error("17 classes accepted (header carries 4 bits)")
	}
}

func TestCoSInternalChannelTagging(t *testing.T) {
	s := cosSwitch(t, 3)
	for _, tc := range []struct {
		port int
		cos  uint8
		want uint16
	}{
		{0, 0, 0},
		{0, 2, 2},
		{3, 1, 10},
		{1, 9, 5}, // out-of-range class clamps to the top class
	} {
		pkt := &packet.Packet{DstHost: 10, CoS: tc.cos}
		s.Ingress(pkt, tc.port, 0)
		if pkt.Snap.Channel != tc.want {
			t.Errorf("port %d cos %d: channel = %d, want %d",
				tc.port, tc.cos, pkt.Snap.Channel, tc.want)
		}
	}
}

func TestCoSInitiationsPerClass(t *testing.T) {
	s := cosSwitch(t, 3)
	pkts := s.InitiateIngress(1, 2, 0)
	if len(pkts) != 3 {
		t.Fatalf("initiations = %d, want one per class", len(pkts))
	}
	for cos, pkt := range pkts {
		if pkt.CoS != uint8(cos) {
			t.Errorf("initiation %d CoS = %d", cos, pkt.CoS)
		}
		if want := uint16(2*3 + cos); pkt.Snap.Channel != want {
			t.Errorf("initiation %d channel = %d, want %d", cos, pkt.Snap.Channel, want)
		}
		// Each must be consumable by the egress unit.
		if res := s.Egress(pkt, 2, 0); !res.Drop {
			t.Errorf("initiation %d not dropped at egress", cos)
		}
	}
	// Every (port 2, class) channel of the egress unit advanced.
	egr := s.Port(2).EgressUnit
	for cos := 0; cos < 3; cos++ {
		if got := egr.LastSeenUnwrapped(2*3 + cos); got != 1 {
			t.Errorf("egress lastSeen[(2,%d)] = %d, want 1", cos, got)
		}
	}
}

// TestCoSClassesAreIndependentFIFOChannels verifies the Section 4.1
// model: a lower class's in-flight packet interleaving behind a higher
// class's epoch advance is accounted exactly, per channel.
func TestCoSClassesAreIndependentFIFOChannels(t *testing.T) {
	s := cosSwitch(t, 2)
	egr := s.Port(2).EgressUnit

	// Two class-0 and one class-1 packets through ingress 0, epoch 0.
	mk := func(cos uint8) *packet.Packet {
		p := &packet.Packet{DstHost: 10, CoS: cos}
		s.Ingress(p, 0, 0)
		return p
	}
	p0a, p0b, p1 := mk(0), mk(0), mk(1)

	// The initiations reach the egress before the queued data (the
	// priority transmitter let them overtake within their own class);
	// classes 0 and 1 are separate channels, so FIFO is not violated.
	for _, ip := range s.InitiateIngress(1, 0, 0) {
		s.Egress(ip, 2, 0)
	}
	for _, ip := range s.InitiateIngress(1, 2, 0) {
		s.Egress(ip, 2, 0)
	}
	if v, ok := egr.RegSnapshot(1); !ok || v != 0 {
		t.Fatalf("egress snapshot = (%d,%v), want (0,true)", v, ok)
	}
	// The data packets arrive after the epoch advanced: in-flight on
	// their respective class channels, absorbed into the snapshot.
	s.Egress(p0a, 2, 0)
	s.Egress(p0b, 2, 0)
	s.Egress(p1, 2, 0)
	if v, _ := egr.RegSnapshot(1); v != 3 {
		t.Errorf("after absorbing in-flights: snapshot = %d, want 3", v)
	}
}
