package dataplane

import (
	"testing"

	"speedlight/internal/core"
	"speedlight/internal/counters"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/topology"
)

func recircSwitch(t *testing.T) *Switch {
	t.Helper()
	s, err := New(Config{
		Node:          1,
		NumPorts:      2,
		Recirculation: true,
		MaxID:         64,
		WrapAround:    true,
		ChannelState:  true,
		Metrics:       func(UnitID) core.Metric { return &counters.PacketCount{} },
		FIB: &routing.FIB{
			Node: 1, Version: 1,
			NextHops: map[topology.HostID][]int{10: {1}},
		},
		Balancer: routing.ECMP{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecirculationChannelLayout(t *testing.T) {
	s := recircSwitch(t)
	ing := s.Port(0).IngressUnit
	// 1 external CoS channel + recirc + CPU.
	if got := ing.Config().NumChannels; got != 3 {
		t.Errorf("ingress channels = %d, want 3", got)
	}
	if got := ing.Config().CPChannel; got != 2 {
		t.Errorf("CP channel = %d, want 2", got)
	}
	if got := s.ingressRecircChannel(); got != 1 {
		t.Errorf("recirc channel = %d, want 1", got)
	}
}

func TestRecirculatePanicsWhenDisabled(t *testing.T) {
	s := testSwitch(t, nil)
	defer func() {
		if recover() == nil {
			t.Error("Recirculate on a non-recirculating switch did not panic")
		}
	}()
	s.Recirculate(&packet.Packet{HasSnap: true}, 0, 0)
}

func TestRecirculatedPacketCountedTwice(t *testing.T) {
	s := recircSwitch(t)
	pkt := &packet.Packet{DstHost: 10, Size: 100}
	res := s.Ingress(pkt, 0, 0)
	if res.Drop {
		t.Fatal("drop")
	}
	s.Egress(pkt, res.EgressPort, 0)
	// The pipeline decides to recirculate (e.g. a second lookup).
	res = s.Recirculate(pkt, res.EgressPort, 0)
	if res.Drop {
		t.Fatal("recirculated packet dropped")
	}
	s.Egress(pkt, res.EgressPort, 0)

	ing0 := s.Port(0).IngressUnit.Metric().(*counters.PacketCount)
	ing1 := s.Port(1).IngressUnit.Metric().(*counters.PacketCount)
	egr1 := s.Port(1).EgressUnit.Metric().(*counters.PacketCount)
	if ing0.Read() != 1 {
		t.Errorf("port0 ingress = %d, want 1", ing0.Read())
	}
	if ing1.Read() != 1 {
		t.Errorf("port1 ingress (recirc) = %d, want 1", ing1.Read())
	}
	if egr1.Read() != 2 {
		t.Errorf("port1 egress = %d, want 2 (both passes)", egr1.Read())
	}
}

func TestRecirculationCarriesEpochAndAbsorbsInFlight(t *testing.T) {
	s := recircSwitch(t)
	ing1 := s.Port(1).IngressUnit

	// An old-epoch packet completes egress processing at port 1, about
	// to recirculate.
	old := &packet.Packet{DstHost: 10, Size: 100}
	res := s.Ingress(old, 0, 0)
	s.Egress(old, res.EgressPort, 0)

	// Meanwhile the ingress unit of port 1 advances to epoch 1 via the
	// CPU; the recirculating packet (still epoch 0) becomes in-flight
	// on the recirculation channel.
	s.InitiateIngress(1, 1, 0)
	if v, ok := ing1.RegSnapshot(1); !ok || v != 0 {
		t.Fatalf("snapshot at recirc ingress = (%d,%v)", v, ok)
	}
	s.Recirculate(old, 1, 0)
	if v, _ := ing1.RegSnapshot(1); v != 1 {
		t.Errorf("in-flight recirculated packet not absorbed: snapshot = %d", v)
	}
	// The in-flight packet was stamped before the epoch advanced, so
	// the recirculation channel's last-seen entry stays at 0 ...
	if got := ing1.LastSeenUnwrapped(s.ingressRecircChannel()); got != 0 {
		t.Errorf("recirc lastSeen = %d, want 0 (packet carried the old epoch)", got)
	}
	// ... until a packet that egressed after the advance recirculates.
	// (First let the egress unit itself advance: the earlier initiation
	// only reached the ingress unit.)
	for _, ip := range s.InitiateIngress(1, 0, 0) {
		s.Egress(ip, 1, 0)
	}
	fresh := &packet.Packet{DstHost: 10, Size: 100}
	res = s.Ingress(fresh, 0, 0)
	s.Egress(fresh, res.EgressPort, 0) // egress stamps the current epoch
	s.Recirculate(fresh, 1, 0)
	if got := ing1.LastSeenUnwrapped(s.ingressRecircChannel()); got != 1 {
		t.Errorf("recirc lastSeen = %d, want 1 after a fresh-epoch recirculation", got)
	}
}

func TestRecirculationEpochPropagation(t *testing.T) {
	// A new epoch reaches the egress unit first (via another port's
	// traffic); a recirculating packet then carries it into the ingress
	// unit — initiation path (2) of Figure 6, through the recirc channel.
	s := recircSwitch(t)
	pkt := &packet.Packet{DstHost: 10, Size: 100}
	res := s.Ingress(pkt, 0, 0)

	// Egress port 1 learns epoch 3 from the CPU path of port 1's
	// initiation before our packet egresses.
	for _, ip := range s.InitiateIngress(3, 1, 0) {
		s.Egress(ip, 1, 0)
	}
	// Our packet egresses (stamped with epoch 3 on the way out) and
	// recirculates into port 1's ingress unit, advancing it.
	s.Egress(pkt, res.EgressPort, 0)
	if pkt.Snap.ID != 3 {
		t.Fatalf("egress stamp = %d, want 3", pkt.Snap.ID)
	}
	before := s.Port(1).IngressUnit.CurrentSID()
	if before != 3 {
		// Already advanced by its own initiation; use port 0 instead to
		// observe propagation: recirculate into port 0.
		s.Recirculate(pkt, 0, 0)
		if got := s.Port(0).IngressUnit.CurrentSID(); got != 3 {
			t.Errorf("recirculation did not propagate the epoch: sid = %d", got)
		}
	}
}
