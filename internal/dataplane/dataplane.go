// Package dataplane models a Speedlight-enabled switch data plane: per
// port, an ingress and an egress processing unit (core.Unit), forwarding
// with pluggable load balancing, snapshot header insertion and removal
// at the network edge, the control-plane initiation path
// (CPU→ingress→egress, Section 6), and the bounded, lossy notification
// channel to the switch CPU (Section 7.2).
//
// The package is runtime-agnostic: it owns no clocks or queues. The
// emulation harnesses decide when packets arrive, when egress units run
// (after queueing), and when the CPU drains notifications; they pass
// virtual time in only so notifications can be timestamped, mirroring
// the paper's synchronization measurement (Section 8.1).
package dataplane

import (
	"fmt"

	"speedlight/internal/core"
	"speedlight/internal/journal"
	"speedlight/internal/packet"
	"speedlight/internal/routing"
	"speedlight/internal/sim"
	"speedlight/internal/topology"
)

// WireID is the wrapped on-wire / in-register snapshot ID, re-exported
// from package packet so data-plane callers can name the domain type
// without a second import. See packet.WireID for the comparison rules
// the wrappedcmp analyzer enforces.
type WireID = packet.WireID

// SeqID is the unwrapped snapshot sequence number, re-exported from
// package packet.
type SeqID = packet.SeqID

// Direction distinguishes ingress from egress processing units.
type Direction int

const (
	// Ingress is the receive-side processing unit of a port.
	Ingress Direction = iota
	// Egress is the transmit-side processing unit of a port.
	Egress
)

func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// UnitID names one processing unit in the network.
type UnitID struct {
	Node topology.NodeID
	Port int
	Dir  Direction
}

func (u UnitID) String() string {
	return fmt.Sprintf("sw%d/p%d/%s", u.Node, u.Port, u.Dir)
}

// CPUNotification is a data-plane notification annotated with its
// origin and export time, as delivered to the switch CPU.
type CPUNotification struct {
	Unit UnitID
	core.Notification
	// Exported is the virtual time the data plane emitted the
	// notification.
	Exported sim.Time
}

// MetricFactory builds the snapshot target metric for one processing
// unit. Factories let experiments choose what to measure per unit
// (packet counters, EWMA interarrival, queue depth gauges, ...).
type MetricFactory func(id UnitID) core.Metric

// Config describes one switch's data plane.
type Config struct {
	Node     topology.NodeID
	NumPorts int

	// NumCoS is the number of Class-of-Service levels. Each class is an
	// independent FIFO logical channel in the snapshot model (Section
	// 4.1): an ingress unit has one external channel per class, an
	// egress unit one channel per (ingress port, class) pair. Zero
	// means 1 (no service classes).
	NumCoS int

	// Recirculation adds the footnote-2 internal channel: a packet that
	// finishes egress processing may re-enter the same port's ingress
	// unit (P4 recirculate). The channel is modeled exactly like any
	// other FIFO logical channel, with its own last-seen entry.
	Recirculation bool

	// Snapshot protocol parameters shared by all units.
	MaxID        uint32
	WrapAround   bool
	ChannelState bool

	// Metrics builds each unit's snapshot target. Required.
	Metrics MetricFactory

	// NotifCapacity bounds the CPU notification queue; further
	// notifications are dropped (and counted), modelling the raw-socket
	// receive buffer of Section 7.2. Zero means a default of 4096.
	NotifCapacity int

	// OnNotify, when set, observes every notification synchronously at
	// export time, before queueing and possible drops. Emulations use
	// it to timestamp protocol progress the way the paper's Section 8.1
	// experiment tags notifications in the data plane.
	OnNotify func(CPUNotification)

	// FIB and Balancer control forwarding. Both required for switches
	// that forward (pure unit tests may omit them and drive units
	// directly).
	FIB      *routing.FIB
	Balancer routing.Balancer

	// EdgePorts marks ports that face hosts: the snapshot header is
	// added on ingress and stripped on egress there (partial
	// deployment, Sections 5.1 and 10).
	EdgePorts map[int]bool

	// SnapshotDisabled turns the switch into a plain forwarder for
	// partial deployment (Section 10): packets are routed but snapshot
	// headers pass through untouched, preserving in-flight epoch
	// information for the snapshot-enabled devices downstream.
	SnapshotDisabled bool

	// Telemetry receives the switch's metric updates. Nil disables
	// instrumentation (every update degrades to one nil check). The
	// same Telemetry may be shared across switches.
	Telemetry *Telemetry

	// Journal receives this switch's protocol events (unit records,
	// absorbs, marker and notification activity) for the flight
	// recorder. Nil disables journaling at the cost of one nil check
	// per packet.
	Journal *journal.Journal
}

// Port holds the two processing units of one switch port.
type Port struct {
	IngressUnit *core.Unit
	EgressUnit  *core.Unit
}

// Switch is one switch's data plane.
type Switch struct {
	cfg   Config
	ports []*Port
	tel   *Telemetry
	jr    *journal.Journal

	// notifs is a head-indexed FIFO (pops advance notifHead instead of
	// re-slicing, so steady state queues without allocating; the buffer
	// compacts when the dead prefix dominates).
	notifs     []CPUNotification
	notifHead  int
	notifDrops uint64
	notifCap   int
}

// New builds a switch data plane.
func New(cfg Config) (*Switch, error) {
	if cfg.NumPorts < 1 {
		return nil, fmt.Errorf("dataplane: switch %d has %d ports", cfg.Node, cfg.NumPorts)
	}
	if cfg.Metrics == nil {
		return nil, fmt.Errorf("dataplane: switch %d missing metric factory", cfg.Node)
	}
	cap := cfg.NotifCapacity
	if cap <= 0 {
		cap = 4096
	}
	if cfg.NumCoS <= 0 {
		cfg.NumCoS = 1
	}
	if cfg.NumCoS > 16 {
		return nil, fmt.Errorf("dataplane: NumCoS %d exceeds the header's 4-bit class space", cfg.NumCoS)
	}
	s := &Switch{cfg: cfg, notifCap: cap, tel: cfg.Telemetry, jr: cfg.Journal}
	if s.tel == nil {
		s.tel = nopTelemetry
	}
	for p := 0; p < cfg.NumPorts; p++ {
		// An ingress unit's upstream channels are the external
		// neighbor's CoS sub-channels, optionally the recirculation
		// channel from the port's own egress unit, and the CPU
		// pseudo-channel.
		ingChans := cfg.NumCoS + 1
		if cfg.Recirculation {
			ingChans++
		}
		ingCfg := core.Config{
			MaxID:        cfg.MaxID,
			WrapAround:   cfg.WrapAround,
			ChannelState: cfg.ChannelState,
			NumChannels:  ingChans,
			CPChannel:    ingChans - 1,
		}
		// An egress unit's upstream neighbors are the (ingress port,
		// class) sub-channels of every port, plus the CPU.
		egrCfg := core.Config{
			MaxID:        cfg.MaxID,
			WrapAround:   cfg.WrapAround,
			ChannelState: cfg.ChannelState,
			NumChannels:  cfg.NumPorts*cfg.NumCoS + 1,
			CPChannel:    cfg.NumPorts * cfg.NumCoS,
		}
		ing, err := core.NewUnit(ingCfg, cfg.Metrics(UnitID{cfg.Node, p, Ingress}))
		if err != nil {
			return nil, err
		}
		egr, err := core.NewUnit(egrCfg, cfg.Metrics(UnitID{cfg.Node, p, Egress}))
		if err != nil {
			return nil, err
		}
		s.ports = append(s.ports, &Port{IngressUnit: ing, EgressUnit: egr})
	}
	return s, nil
}

// ingressChannel returns the ingress-unit channel for a packet's class.
func (s *Switch) ingressChannel(cos uint8) int {
	c := int(cos)
	if c >= s.cfg.NumCoS {
		c = s.cfg.NumCoS - 1
	}
	return c
}

// internalChannel returns the egress-unit channel for a packet arriving
// from an ingress port on a class.
func (s *Switch) internalChannel(port int, cos uint8) uint16 {
	c := int(cos)
	if c >= s.cfg.NumCoS {
		c = s.cfg.NumCoS - 1
	}
	return uint16(port*s.cfg.NumCoS + c)
}

// ingressCPChannel is the CPU pseudo-channel index at ingress units
// (always the last channel).
func (s *Switch) ingressCPChannel() int {
	if s.cfg.Recirculation {
		return s.cfg.NumCoS + 1
	}
	return s.cfg.NumCoS
}

// ingressRecircChannel is the recirculation channel index at ingress
// units, or -1 when recirculation is disabled.
func (s *Switch) ingressRecircChannel() int {
	if !s.cfg.Recirculation {
		return -1
	}
	return s.cfg.NumCoS
}

// NumCoS returns the switch's class-of-service count.
func (s *Switch) NumCoS() int { return s.cfg.NumCoS }

// Node returns the switch's node ID.
func (s *Switch) Node() topology.NodeID { return s.cfg.Node }

// NumPorts returns the switch's port count.
func (s *Switch) NumPorts() int { return s.cfg.NumPorts }

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Port returns the processing units of a port.
func (s *Switch) Port(p int) *Port { return s.ports[p] }

// Unit returns the processing unit named by id, which must belong to
// this switch.
func (s *Switch) Unit(id UnitID) *core.Unit {
	if id.Node != s.cfg.Node {
		panic(fmt.Sprintf("dataplane: unit %v not on switch %d", id, s.cfg.Node))
	}
	if id.Dir == Ingress {
		return s.ports[id.Port].IngressUnit
	}
	return s.ports[id.Port].EgressUnit
}

// UnitIDs lists every processing unit of this switch.
func (s *Switch) UnitIDs() []UnitID {
	out := make([]UnitID, 0, 2*s.cfg.NumPorts)
	for p := 0; p < s.cfg.NumPorts; p++ {
		out = append(out, UnitID{s.cfg.Node, p, Ingress}, UnitID{s.cfg.Node, p, Egress})
	}
	return out
}

// journalDir converts a dataplane direction to its journal form.
func journalDir(d Direction) journal.Dir {
	if d == Ingress {
		return journal.DirIngress
	}
	return journal.DirEgress
}

// journalUnit records the protocol transitions one OnPacket call
// produced: the unit advancing its epoch (and any rollover), last-seen
// movement, and in-flight absorption. Called unconditionally on the
// hot path; with no journal attached it is a single nil check. Note
// absorbs can occur without a notification-worthy change (a second
// in-flight packet on an already-seen channel), which is why this does
// not piggyback on pushNotif.
//
//speedlight:hotpath
func (s *Switch) journalUnit(port int, dir Direction, n *core.Notification, now sim.Time) {
	if s.jr == nil {
		return
	}
	sw := int(s.cfg.Node)
	d := journalDir(dir)
	if n.NewSIDU != n.OldSIDU {
		s.jr.Append(journal.Record(int64(now), sw, port, d, n.Channel, n.OldSIDU, n.NewSIDU, n.WireID))
		if core.RolledOver(n.OldSID, n.NewSID) {
			s.jr.Append(journal.Rollover(int64(now), sw, port, d, n.OldSIDU, n.NewSIDU))
		}
	}
	if n.NewSeenU != n.OldSeenU {
		s.jr.Append(journal.LastSeen(int64(now), sw, port, d, n.Channel, n.OldSeenU, n.NewSeenU))
	}
	if n.Absorbed {
		s.jr.Append(journal.Absorb(int64(now), sw, port, d, n.Channel, n.PacketSID, n.NewSIDU))
	}
	if n.AbsorbMissed {
		s.jr.Append(journal.AbsorbMiss(int64(now), sw, port, d, n.Channel, n.PacketSID, n.NewSIDU))
	}
}

// pushNotif appends a notification, dropping it if the CPU queue is
// full. Without channel state the last-seen machinery is compiled out
// (the "-" items of Section 5.2), so only snapshot ID changes are
// exported.
//
//speedlight:hotpath
func (s *Switch) pushNotif(n CPUNotification) {
	if !s.cfg.ChannelState && !n.SIDChanged() {
		return
	}
	s.tel.NotifsGenerated.Inc()
	if s.jr != nil {
		s.jr.Append(journal.NotifGenerated(int64(n.Exported), int(s.cfg.Node), n.Unit.Port, journalDir(n.Unit.Dir), n.NewSIDU))
	}
	if n.SIDChanged() && core.RolledOver(n.OldSID, n.NewSID) {
		s.tel.Rollovers.Inc()
	}
	if s.cfg.OnNotify != nil {
		s.cfg.OnNotify(n)
	}
	if len(s.notifs)-s.notifHead >= s.notifCap {
		s.notifDrops++
		s.tel.NotifsDropped.Inc()
		if s.jr != nil {
			s.jr.Append(journal.NotifDropped(int64(n.Exported), int(s.cfg.Node), n.Unit.Port, journalDir(n.Unit.Dir), n.NewSIDU))
		}
		return
	}
	s.notifs = append(s.notifs, n)
	s.tel.NotifQueueHighWater.SetMax(int64(len(s.notifs) - s.notifHead))
}

// PopNotif removes and returns the oldest pending notification.
//
//speedlight:hotpath
func (s *Switch) PopNotif() (CPUNotification, bool) {
	if s.notifHead == len(s.notifs) {
		return CPUNotification{}, false
	}
	n := s.notifs[s.notifHead]
	s.notifHead++
	if s.notifHead == len(s.notifs) {
		s.notifs = s.notifs[:0]
		s.notifHead = 0
	} else if s.notifHead >= 64 && s.notifHead*2 >= len(s.notifs) {
		kept := copy(s.notifs, s.notifs[s.notifHead:])
		s.notifs = s.notifs[:kept]
		s.notifHead = 0
	}
	return n, true
}

// PendingNotifs returns the number of queued notifications.
func (s *Switch) PendingNotifs() int { return len(s.notifs) - s.notifHead }

// NotifDrops returns how many notifications were dropped at the full
// CPU queue.
func (s *Switch) NotifDrops() uint64 { return s.notifDrops }

// IngressResult is the outcome of ingress processing.
type IngressResult struct {
	// EgressPort is the chosen output port.
	EgressPort int
	// Drop is set when the packet has no route.
	Drop bool
}

// Ingress processes a packet arriving from the wire (or from a host, on
// an edge port) at the given port and selects its egress port. The
// packet's snapshot header is added if absent and its Channel field is
// rewritten to the ingress port number — the upstream neighbor
// identifier the egress unit will use (Section 5.1).
//
//speedlight:hotpath
func (s *Switch) Ingress(pkt *packet.Packet, port int, now sim.Time) IngressResult {
	s.tel.PacketsIngress.Inc()
	if s.cfg.SnapshotDisabled {
		return s.forwardOnly(pkt, now)
	}
	if !pkt.HasSnap {
		// First snapshot-enabled device on the path: add the header,
		// carrying this unit's current epoch so that edge traffic
		// neither initiates nor appears in-flight.
		pkt.HasSnap = true
		pkt.Snap = packet.SnapshotHeader{
			Type: packet.TypeData,
			ID:   s.ports[port].IngressUnit.RegCurrentSID(),
		}
	}
	ch := s.ingressChannel(pkt.CoS)
	pkt.Snap.Channel = uint16(ch)
	notif, changed := s.ports[port].IngressUnit.OnPacket(pkt, ch)
	s.journalUnit(port, Ingress, &notif, now)
	if changed {
		s.pushNotif(CPUNotification{
			Unit:         UnitID{s.cfg.Node, port, Ingress},
			Notification: notif,
			Exported:     now,
		})
	}

	// Forwarding lookup.
	if s.cfg.FIB == nil || s.cfg.Balancer == nil {
		return IngressResult{Drop: true}
	}
	group := s.cfg.FIB.Ports(topology.HostID(pkt.DstHost))
	if len(group) == 0 {
		return IngressResult{Drop: true}
	}
	out := s.cfg.Balancer.Pick(pkt, group, now)

	// Tag the packet with its upstream (ingress port, class) channel
	// for the egress unit's last-seen array.
	pkt.Snap.Channel = s.internalChannel(port, pkt.CoS)
	return IngressResult{EgressPort: out}
}

// forwardOnly routes a packet without snapshot processing (partial
// deployment).
//
//speedlight:hotpath
func (s *Switch) forwardOnly(pkt *packet.Packet, now sim.Time) IngressResult {
	if s.cfg.FIB == nil || s.cfg.Balancer == nil {
		return IngressResult{Drop: true}
	}
	group := s.cfg.FIB.Ports(topology.HostID(pkt.DstHost))
	if len(group) == 0 {
		return IngressResult{Drop: true}
	}
	return IngressResult{EgressPort: s.cfg.Balancer.Pick(pkt, group, now)}
}

// EgressResult is the outcome of egress processing.
type EgressResult struct {
	// StripHeader is set when the next hop is a host: the caller must
	// clear the snapshot header before delivery.
	StripHeader bool
	// Drop is set for control messages that terminate here (initiation
	// packets are consumed at egress, Section 6).
	Drop bool
}

// Egress processes a packet leaving through the given port, after any
// queueing. The packet's Channel field identifies the ingress port it
// came from (or the CPU pseudo-channel, for control-plane-injected
// traffic). On edge ports the caller must strip the header afterwards,
// as instructed by the result.
//
//speedlight:hotpath
func (s *Switch) Egress(pkt *packet.Packet, port int, now sim.Time) EgressResult {
	s.tel.PacketsEgress.Inc()
	if s.cfg.SnapshotDisabled {
		return EgressResult{}
	}
	channel := int(pkt.Snap.Channel)
	if channel < 0 || channel > s.cfg.NumPorts*s.cfg.NumCoS {
		panic(fmt.Sprintf("dataplane: egress channel %d out of range on switch %d", channel, s.cfg.Node))
	}
	notif, changed := s.ports[port].EgressUnit.OnPacket(pkt, channel)
	s.journalUnit(port, Egress, &notif, now)
	if changed {
		s.pushNotif(CPUNotification{
			Unit:         UnitID{s.cfg.Node, port, Egress},
			Notification: notif,
			Exported:     now,
		})
	}
	if pkt.Snap.Type == packet.TypeInitiation {
		// Initiations travel CPU→ingress→egress and are then dropped.
		return EgressResult{Drop: true}
	}
	// On the wire to the next device, the receiving ingress unit
	// derives its channel from the packet's class; the field itself is
	// cleared.
	pkt.Snap.Channel = 0
	if s.cfg.EdgePorts[port] {
		return EgressResult{StripHeader: true}
	}
	return EgressResult{}
}

// Recirculate re-enters a packet into a port's ingress unit on the
// recirculation channel after its egress processing (footnote 2 of the
// paper: recirculation is just another FIFO logical channel). The
// caller must preserve per-channel order: recirculated packets re-enter
// in the order they left the egress unit. The packet is counted again
// by the ingress metric — it really does traverse the pipeline twice —
// and a fresh forwarding decision is returned.
//
//speedlight:hotpath
func (s *Switch) Recirculate(pkt *packet.Packet, port int, now sim.Time) IngressResult {
	if !s.cfg.Recirculation {
		panic(fmt.Sprintf("dataplane: switch %d has no recirculation channel", s.cfg.Node))
	}
	s.tel.Recirculations.Inc()
	s.tel.PacketsIngress.Inc()
	if s.cfg.SnapshotDisabled {
		return s.forwardOnly(pkt, now)
	}
	ch := s.ingressRecircChannel()
	pkt.Snap.Channel = uint16(ch)
	notif, changed := s.ports[port].IngressUnit.OnPacket(pkt, ch)
	s.journalUnit(port, Ingress, &notif, now)
	if changed {
		s.pushNotif(CPUNotification{
			Unit:         UnitID{s.cfg.Node, port, Ingress},
			Notification: notif,
			Exported:     now,
		})
	}
	if s.cfg.FIB == nil || s.cfg.Balancer == nil {
		return IngressResult{Drop: true}
	}
	group := s.cfg.FIB.Ports(topology.HostID(pkt.DstHost))
	if len(group) == 0 {
		return IngressResult{Drop: true}
	}
	out := s.cfg.Balancer.Pick(pkt, group, now)
	pkt.Snap.Channel = s.internalChannel(port, pkt.CoS)
	return IngressResult{EgressPort: out}
}

// InitiationPacket builds the control plane's initiation message for a
// snapshot ID (already wrapped to the wire form by the caller's control
// plane).
func InitiationPacket(wireID WireID) *packet.Packet {
	return &packet.Packet{
		HasSnap: true,
		Snap:    packet.SnapshotHeader{Type: packet.TypeInitiation, ID: wireID},
	}
}

// IngressOnly runs a packet through a port's ingress unit without a
// forwarding lookup. Emulations use it for traffic that bypasses the
// FIB, such as the marker broadcasts the control plane injects to force
// snapshot ID propagation when data traffic is absent (Section 6,
// liveness).
//
//speedlight:hotpath
func (s *Switch) IngressOnly(pkt *packet.Packet, port int, now sim.Time) {
	s.tel.Markers.Inc()
	s.tel.PacketsIngress.Inc()
	if !pkt.HasSnap {
		pkt.HasSnap = true
		pkt.Snap = packet.SnapshotHeader{
			Type: packet.TypeData,
			ID:   s.ports[port].IngressUnit.RegCurrentSID(),
		}
	}
	ch := s.ingressChannel(pkt.CoS)
	pkt.Snap.Channel = uint16(ch)
	notif, changed := s.ports[port].IngressUnit.OnPacket(pkt, ch)
	if s.jr != nil {
		s.jr.Append(journal.MarkerReceived(int64(now), int(s.cfg.Node), port, ch, notif.PacketSID))
	}
	s.journalUnit(port, Ingress, &notif, now)
	if changed {
		s.pushNotif(CPUNotification{
			Unit:         UnitID{s.cfg.Node, port, Ingress},
			Notification: notif,
			Exported:     now,
		})
	}
	pkt.Snap.Channel = s.internalChannel(port, pkt.CoS)
}

// IngressFromCP runs a control-plane-injected packet through a port's
// ingress unit on the CPU pseudo-channel — the same path initiations
// take (Figure 6), but for arbitrary CP traffic such as the marker
// broadcasts of Section 6. The header is added if missing, carrying the
// unit's current epoch; afterwards the packet is tagged with the
// ingress port for egress-unit processing. Injecting on the CPU channel
// (rather than the external one) matters: it must not forge the
// upstream neighbor's progress in the last-seen array.
//
//speedlight:hotpath
func (s *Switch) IngressFromCP(pkt *packet.Packet, port int, now sim.Time) {
	s.tel.Markers.Inc()
	s.tel.PacketsIngress.Inc()
	if !pkt.HasSnap {
		pkt.HasSnap = true
		pkt.Snap = packet.SnapshotHeader{
			Type: packet.TypeData,
			ID:   s.ports[port].IngressUnit.RegCurrentSID(),
		}
	}
	notif, changed := s.ports[port].IngressUnit.OnPacket(pkt, s.ingressCPChannel())
	if s.jr != nil {
		s.jr.Append(journal.MarkerSent(int64(now), int(s.cfg.Node), port, notif.PacketSID, int(pkt.CoS)))
	}
	s.journalUnit(port, Ingress, &notif, now)
	if changed {
		s.pushNotif(CPUNotification{
			Unit:         UnitID{s.cfg.Node, port, Ingress},
			Notification: notif,
			Exported:     now,
		})
	}
	pkt.Snap.Channel = s.internalChannel(port, pkt.CoS)
}

// StampCPEgress prepares a control-plane-injected packet for the CPU
// egress path ("not shown" in the paper's Figure 5): the packet will
// enter the egress unit on the CPU pseudo-channel, carrying the current
// snapshot ID so it neither initiates nor appears in flight.
//
//speedlight:hotpath
func (s *Switch) StampCPEgress(pkt *packet.Packet, port int) {
	if !pkt.HasSnap {
		pkt.HasSnap = true
		pkt.Snap = packet.SnapshotHeader{
			Type: packet.TypeData,
			ID:   s.ports[port].EgressUnit.RegCurrentSID(),
		}
	}
	pkt.Snap.Channel = uint16(s.cfg.NumPorts * s.cfg.NumCoS)
}

// InitiateIngress runs a control-plane initiation message through a
// port's ingress unit (step CPU→ingress of Figure 6). It returns one
// initiation packet per class of service, which the caller must pass
// through the port's egress path — through the same per-class FIFO
// queues as data traffic, or the egress unit could see an initiation
// ahead of older in-flight packets. One marker per FIFO channel is
// exactly what the snapshot algorithm requires (Section 4.1's CoS
// sub-channels are independent FIFO channels).
func (s *Switch) InitiateIngress(wireID WireID, port int, now sim.Time) []*packet.Packet {
	s.tel.Initiations.Inc()
	pkt := InitiationPacket(wireID)
	notif, changed := s.ports[port].IngressUnit.OnPacket(pkt, s.ingressCPChannel())
	s.journalUnit(port, Ingress, &notif, now)
	if changed {
		s.pushNotif(CPUNotification{
			Unit:         UnitID{s.cfg.Node, port, Ingress},
			Notification: notif,
			Exported:     now,
		})
	}
	out := make([]*packet.Packet, s.cfg.NumCoS)
	for cos := 0; cos < s.cfg.NumCoS; cos++ {
		cp := pkt.Clone()
		cp.CoS = uint8(cos)
		cp.Snap.Channel = s.internalChannel(port, uint8(cos))
		out[cos] = cp
		if s.jr != nil {
			// One initiation marker per CoS FIFO channel heads for the
			// egress path — exactly the per-channel marker the snapshot
			// algorithm requires (Section 4.1).
			s.jr.Append(journal.MarkerSent(int64(now), int(s.cfg.Node), port, notif.PacketSID, cos))
		}
	}
	return out
}
