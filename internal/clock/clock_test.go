package clock

import (
	"math"
	"math/rand"
	"testing"

	"speedlight/internal/dist"
	"speedlight/internal/sim"
)

func TestPerfectClock(t *testing.T) {
	c := New(Perfect(), rand.New(rand.NewSource(1)))
	for _, tm := range []sim.Time{0, 1000, 5 * sim.Time(sim.Second)} {
		if got := c.Read(tm); got != tm {
			t.Errorf("Read(%d) = %d", tm, got)
		}
		if got := c.TrueAtLocal(tm); got != tm {
			t.Errorf("TrueAtLocal(%d) = %d", tm, got)
		}
	}
}

func TestOffsetApplied(t *testing.T) {
	cfg := Config{
		SyncInterval:   sim.Second,
		ResidualOffset: dist.Constant{V: 5000}, // +5 µs fast
		DriftPPM:       dist.Constant{V: 0},
	}
	c := New(cfg, rand.New(rand.NewSource(1)))
	if got := c.Read(1000); got != 6000 {
		t.Errorf("Read = %d, want 6000", got)
	}
	// Local reads 5 µs ahead, so local target T is reached 5 µs early.
	if got := c.TrueAtLocal(100_000); got != 95_000 {
		t.Errorf("TrueAtLocal = %d, want 95000", got)
	}
}

func TestDriftAccumulates(t *testing.T) {
	cfg := Config{
		SyncInterval:   sim.Second,
		ResidualOffset: dist.Constant{V: 0},
		DriftPPM:       dist.Constant{V: 10}, // 10 ppm fast
	}
	c := New(cfg, rand.New(rand.NewSource(1)))
	// After 1 second of true time, a 10 ppm clock gained 10 µs.
	trueNow := sim.Time(sim.Second)
	if got := c.OffsetAt(trueNow); math.Abs(got-10_000) > 1 {
		t.Errorf("OffsetAt(1s) = %v ns, want ~10000", got)
	}
	if got := c.Read(trueNow); got != trueNow+10_000 {
		t.Errorf("Read(1s) = %d", got)
	}
}

func TestSyncResetsOffset(t *testing.T) {
	cfg := Config{
		SyncInterval:   sim.Second,
		ResidualOffset: dist.Constant{V: 100},
		DriftPPM:       dist.Constant{V: 50},
	}
	c := New(cfg, rand.New(rand.NewSource(1)))
	later := sim.Time(2 * sim.Second)
	before := c.OffsetAt(later)
	c.Sync(later)
	after := c.OffsetAt(later)
	if math.Abs(after-100) > 1e-9 {
		t.Errorf("offset after sync = %v, want 100", after)
	}
	if before <= after {
		t.Errorf("sync did not reduce accumulated offset: %v -> %v", before, after)
	}
}

func TestTrueAtLocalInverse(t *testing.T) {
	// Read(TrueAtLocal(x)) == x (within a nanosecond) for drifting clocks.
	cfg := Config{
		SyncInterval:   sim.Second,
		ResidualOffset: dist.Normal{Mu: 0, Sigma: 2000},
		DriftPPM:       dist.Normal{Mu: 0, Sigma: 5},
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		c := New(cfg, r)
		local := sim.Time(r.Int63n(int64(10 * sim.Second)))
		trueT := c.TrueAtLocal(local)
		back := c.Read(trueT)
		if d := int64(back - local); d < -1 || d > 1 {
			t.Fatalf("round-trip error %d ns (local=%d)", d, local)
		}
	}
}

func TestPTPOffsetsAreMicrosecondScale(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var worst float64
	for i := 0; i < 1000; i++ {
		c := New(PTP(), r)
		off := math.Abs(c.OffsetAt(0))
		if off > worst {
			worst = off
		}
	}
	if worst > 10_000 { // 10 µs
		t.Errorf("PTP residual offset %v ns too large", worst)
	}
	if worst < 100 { // all below 0.1 µs would be unrealistically good
		t.Errorf("PTP residual offsets suspiciously tiny (max %v ns)", worst)
	}
}

func TestNTPWorseThanPTP(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	spread := func(cfg Config) float64 {
		var sum float64
		for i := 0; i < 500; i++ {
			c := New(cfg, r)
			sum += math.Abs(c.OffsetAt(0))
		}
		return sum / 500
	}
	ptp := spread(PTP())
	ntp := spread(NTPLAN())
	if ntp < 50*ptp {
		t.Errorf("NTP (%v) should be orders of magnitude worse than PTP (%v)", ntp, ptp)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := New(PTP(), rand.New(rand.NewSource(5)))
	b := New(PTP(), rand.New(rand.NewSource(5)))
	for i := sim.Time(0); i < 10; i++ {
		if a.Read(i*1000) != b.Read(i*1000) {
			t.Fatal("same-seed clocks diverge")
		}
	}
}

func TestSyncIntervalAccessor(t *testing.T) {
	c := New(PTP(), rand.New(rand.NewSource(6)))
	if c.SyncInterval() != sim.Second {
		t.Errorf("SyncInterval = %d", c.SyncInterval())
	}
}
