// Package clock models per-device clocks synchronized by a protocol such
// as PTP, as used by Speedlight control planes to agree on snapshot
// initiation times.
//
// A Clock tracks an offset from true (simulation) time plus a frequency
// error (drift). A periodic synchronization event re-disciplines the
// clock, drawing a fresh residual offset and drift from configured
// distributions. The defaults are calibrated to the paper's setting: PTP
// within a rack-scale deployment leaves residual offsets on the order of
// single microseconds, while a good LAN NTP accuracy is about 1 ms
// (Section 2.1).
package clock

import (
	"math/rand"

	"speedlight/internal/dist"
	"speedlight/internal/sim"
)

// Config describes the discipline quality of a synchronized clock.
type Config struct {
	// SyncInterval is the time between synchronization rounds in true
	// time. ptp4l defaults to roughly one round per second.
	SyncInterval sim.Duration
	// ResidualOffset is the offset from true time, in nanoseconds,
	// remaining immediately after a synchronization round.
	ResidualOffset dist.Dist
	// DriftPPM is the frequency error drawn after each synchronization
	// round, in parts per million. Commodity oscillators are within
	// tens of ppm; a disciplined clock's effective drift is far lower.
	DriftPPM dist.Dist
}

// PTP returns a configuration representative of ptp4l/phc2sys on a
// datacenter LAN: ~1 s sync interval, residual offsets of a few
// microseconds, and sub-ppm disciplined drift.
func PTP() Config {
	return Config{
		SyncInterval:   1 * sim.Second,
		ResidualOffset: dist.Normal{Mu: 0, Sigma: 1500}, // 1.5 µs
		DriftPPM:       dist.Normal{Mu: 0, Sigma: 0.5},
	}
}

// NTPLAN returns a configuration representative of good LAN NTP: ~1 ms
// accuracy (the paper's Section 2.1 comparison point).
func NTPLAN() Config {
	return Config{
		SyncInterval:   16 * sim.Second,
		ResidualOffset: dist.Normal{Mu: 0, Sigma: 500_000}, // 0.5 ms
		DriftPPM:       dist.Normal{Mu: 0, Sigma: 20},
	}
}

// Perfect returns a configuration with no offset and no drift, useful in
// tests that want to isolate protocol behaviour from clock error.
func Perfect() Config {
	return Config{
		SyncInterval:   1 * sim.Second,
		ResidualOffset: dist.Constant{V: 0},
		DriftPPM:       dist.Constant{V: 0},
	}
}

// Clock is one device's local clock. It is driven in true (simulation)
// time: the owner calls Sync at each synchronization round and Read /
// TrueAtLocal to convert between local and true time.
type Clock struct {
	cfg      Config
	r        *rand.Rand
	offsetNS float64  // offset from true time at lastSync, ns
	driftPPM float64  // current frequency error
	lastSync sim.Time // true time of last discipline round
}

// New creates a clock with the given configuration and randomness. The
// initial offset and drift are drawn as if a synchronization round had
// just completed at true time 0.
func New(cfg Config, r *rand.Rand) *Clock {
	c := &Clock{cfg: cfg, r: r}
	c.Sync(0)
	return c
}

// Sync runs a synchronization round at the given true time, redrawing
// the residual offset and drift.
func (c *Clock) Sync(trueNow sim.Time) {
	c.offsetNS = c.cfg.ResidualOffset.Sample(c.r)
	c.driftPPM = c.cfg.DriftPPM.Sample(c.r)
	c.lastSync = trueNow
}

// SyncInterval returns the configured time between discipline rounds.
func (c *Clock) SyncInterval() sim.Duration { return c.cfg.SyncInterval }

// OffsetAt returns the clock's offset from true time, in nanoseconds, at
// the given true time: offset + drift accumulated since the last sync.
func (c *Clock) OffsetAt(trueNow sim.Time) float64 {
	elapsed := float64(trueNow - c.lastSync)
	return c.offsetNS + c.driftPPM*1e-6*elapsed
}

// Read returns the local clock reading at the given true time.
func (c *Clock) Read(trueNow sim.Time) sim.Time {
	return trueNow + sim.Time(c.OffsetAt(trueNow))
}

// TrueAtLocal returns the true time at which the local clock will read
// localTarget, assuming no synchronization round occurs in between.
func (c *Clock) TrueAtLocal(localTarget sim.Time) sim.Time {
	// local = true + offset + drift*(true - lastSync)
	// => true = (local - offset + drift*lastSync) / (1 + drift)
	d := c.driftPPM * 1e-6
	num := float64(localTarget) - c.offsetNS + d*float64(c.lastSync)
	return sim.Time(num / (1 + d))
}
