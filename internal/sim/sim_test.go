package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeDurationHelpers(t *testing.T) {
	tm := Time(0).Add(5 * Microsecond)
	if tm != 5000 {
		t.Errorf("Add = %d", tm)
	}
	if d := Time(7000).Sub(Time(2000)); d != 5*Microsecond {
		t.Errorf("Sub = %d", d)
	}
	if Time(1500).Micros() != 1.5 {
		t.Error("Micros conversion")
	}
	if Time(2_500_000).Millis() != 2.5 {
		t.Error("Millis conversion")
	}
	if (2 * Second).Seconds() != 2 {
		t.Error("Seconds conversion")
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Error("Duration Micros conversion")
	}
	if DurationOfSeconds(0.5) != 500*Millisecond {
		t.Error("DurationOfSeconds")
	}
	if DurationOfMicros(2.5) != 2500 {
		t.Error("DurationOfMicros")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	// Events at the same instant fire in insertion order.
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(-5, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("negative After should fire immediately")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(Handle{})
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	var later Handle
	later = e.Schedule(20, func() { fired = true })
	e.Schedule(10, func() { e.Cancel(later) })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 12 {
		t.Errorf("Now = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.RunFor(8)
	if len(fired) != 4 || e.Now() != 20 {
		t.Errorf("after RunFor: fired=%v now=%d", fired, e.Now())
	}
}

func TestRunUntilAdvancesEvenWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("Now = %d", e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	var log []Time
	e.Schedule(10, func() {
		log = append(log, e.Now())
		e.After(5, func() { log = append(log, e.Now()) })
	})
	e.Run()
	if len(log) != 2 || log[0] != 10 || log[1] != 15 {
		t.Errorf("log = %v", log)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tk *Ticker
	tk = e.NewTicker(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(1000)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %d, want %d", i, ticks[i], want[i])
		}
	}
}

func TestTickerStopBeforeFirstFire(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tk := e.NewTicker(10, func() { count++ })
	tk.Stop()
	e.RunUntil(100)
	if count != 0 {
		t.Errorf("stopped ticker fired %d times", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	e.NewTicker(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		r := e.NewRand()
		var log []Time
		var step func()
		step = func() {
			log = append(log, e.Now())
			if len(log) < 100 {
				e.After(Duration(1+r.Intn(1000)), step)
			}
		}
		e.After(1, step)
		e.Run()
		return log
	}
	a := run(42)
	b := run(42)
	c := run(43)
	if len(a) != len(b) {
		t.Fatal("same-seed runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at %d", i)
		}
	}
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// Property: however events are scheduled, they fire in non-decreasing
// time order.
func TestMonotoneFiringProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		e := NewEngine(seed)
		var fired []Time
		for _, d := range raw {
			at := Time(d)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewRandStreamsIndependent(t *testing.T) {
	e := NewEngine(7)
	r1 := e.NewRand()
	r2 := e.NewRand()
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Int63() == r2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("substreams look identical (%d collisions)", same)
	}
	_ = rand.Int // keep import honest
}

func TestPendingCountsOnlyLive(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	e.Cancel(ev1)
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}
