// Package sim implements the deterministic discrete-event simulation
// engines that drive Speedlight's emulated networks.
//
// The paper evaluated Speedlight on a hardware testbed for small
// topologies and in simulation for large ones (its Figure 11). Without a
// Tofino, this repository runs every experiment on the engines here.
// Two implementations share one contract (the Sim interface):
//
//   - Engine: the serial reference — a classic event-heap simulator
//     with virtual nanosecond time and fully seeded randomness.
//   - Parallel (parallel.go): a conservatively synchronized sharded
//     engine that partitions simulation domains across worker
//     goroutines and executes barrier rounds bounded by a link-latency
//     lookahead.
//
// Determinism contract. Every event carries a tie-break key
// (time, src, seq): src is the scheduling domain and seq a per-domain
// counter incremented in that domain's own (deterministic) execution
// order. Because the key depends only on virtual time and on the
// scheduling domain's logical history — never on goroutine
// interleaving, shard count, or GOMAXPROCS — both engines order
// same-time events identically, and a given seed produces the identical
// run on either engine at any shard count. See DESIGN.md, "Parallel
// simulation and the determinism contract".
//
// Memory discipline. Events are pooled: each execution context (the
// serial engine; each shard of the parallel engine) keeps a free list,
// and a fired or cancelled event returns to the popping context's list.
// Schedulers hand out generation-counted Handles instead of raw event
// pointers, so a stale handle (one whose event has already been
// recycled) is detected at Cancel time and panics instead of corrupting
// an unrelated event. The *Call scheduling variants (ScheduleCall,
// AfterCall, SendCall) carry their arguments inside the pooled event,
// so the hottest emulation paths schedule without allocating a closure.
// See DESIGN.md, "Memory management and hot paths".
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a float64 number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a float64 number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// DurationOfSeconds converts a float64 second count to a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationOfMicros converts a float64 microsecond count to a Duration.
func DurationOfMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// GlobalDomain is the serializing domain: events owned by it execute
// with exclusive access to the whole simulation (on the Parallel engine
// they run between rounds, with every worker parked). Drivers,
// observers and anything that touches more than one domain's state
// belong here. It is also the domain of every event scheduled through
// an engine's legacy top-level Schedule/After methods.
const GlobalDomain = 0

// maxTime is the sentinel "no event" time.
const maxTime = Time(1<<63 - 1)

// CallFn is the closure-free event callback form: the scheduling site
// stores its arguments in the pooled event (two pointer-shaped values
// and one integer), so scheduling captures no heap state. Package-level
// functions and cached method values convert to CallFn without
// allocating.
type CallFn func(a, b any, i int64)

// Event is a scheduled callback. Events are pooled and recycled after
// they fire; outside this package they are referred to only through
// generation-counted Handles.
type Event struct {
	at Time
	// src and seq are the determinism key: the scheduling domain and
	// its per-domain schedule counter. Ties at one instant resolve by
	// (src, seq), which both engines compute identically.
	src int32
	seq uint64
	// owner is the domain whose state the callback touches; it decides
	// which shard executes the event on the Parallel engine.
	owner int32
	// Exactly one of fn and cfn is set: fn is the legacy closure form,
	// cfn the closure-free form with its arguments stored alongside.
	fn  func()
	cfn CallFn
	a   any
	b   any
	i   int64

	index    int // queue index, -1 while in a mailbox or once popped
	canceled bool
	// gen counts reuses: it is incremented every time the event leaves
	// a free list, invalidating handles to its previous life. pooled
	// marks the event as sitting in a free list (fired or cancelled,
	// not yet reused).
	gen    uint64
	pooled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// fire invokes the event's callback.
//
//speedlight:hotpath
func (e *Event) fire() {
	if e.cfn != nil {
		e.cfn(e.a, e.b, e.i)
		return
	}
	e.fn()
}

// Handle refers to a scheduled event. It stays valid after the event
// fires — cancelling a fired event is a no-op — but only until the
// engine recycles the event for a new schedule: cancelling through a
// handle that outlived its event panics, turning a use-after-free into
// a caught bug instead of a silently cancelled stranger. The zero
// Handle is valid and cancels as a no-op.
type Handle struct {
	ev  *Event
	gen uint64
}

// At returns the virtual time the event was scheduled for. It must only
// be inspected while the handle is live (before the event is recycled).
func (h Handle) At() Time {
	if h.ev == nil {
		return 0
	}
	return h.ev.at
}

// checkGen panics when the handle's event has been recycled.
func (h Handle) checkGen() {
	if h.ev.gen != h.gen {
		panic("sim: Cancel through a stale Handle: the event already fired and was recycled for a new schedule (use after free)")
	}
}

// eventPool is one execution context's free list of events. It is
// deliberately not a sync.Pool: each pool is owned by a single
// execution context (the serial engine, one shard, or the parallel
// coordinator), so get and put are plain slice operations with no
// synchronization and no per-P caching behavior to reason about.
type eventPool struct {
	free []*Event
}

//speedlight:hotpath
func (p *eventPool) get() *Event {
	n := len(p.free)
	if n == 0 {
		return newPoolEvent()
	}
	ev := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	ev.gen++ // invalidate handles to the previous life
	ev.pooled = false
	ev.canceled = false
	ev.index = -1
	return ev
}

// newPoolEvent is the pool's cold allocation path, kept out of the
// hot-path functions so the hotalloc analyzer can bless get.
func newPoolEvent() *Event {
	return &Event{index: -1}
}

//speedlight:hotpath
func (p *eventPool) put(ev *Event) {
	// Drop callback and argument references so pooled events don't pin
	// dead objects.
	ev.fn = nil
	ev.cfn = nil
	ev.a = nil
	ev.b = nil
	ev.pooled = true
	p.free = append(p.free, ev)
}

// eventLess is the engines' total event order: (time, src domain,
// per-domain sequence).
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// eventHeap orders events by (time, src domain, per-domain sequence).
type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is the contract shared by the serial Engine and the Parallel
// sharded engine. Emulations program against it so a network can run on
// either engine unchanged; the conformance tests prove the two produce
// identical journals, audits and snapshots from one seed.
type Sim interface {
	// Now returns the current virtual time of the driver context. On
	// the Parallel engine it is only meaningful between Run* calls and
	// inside GlobalDomain events; domain code must use its Proc's Now.
	Now() Time
	// Rand returns the engine's main random stream (driver context
	// only — never from inside a non-global domain's events).
	Rand() *rand.Rand
	// NewRand returns a fresh stream seeded from the engine, for a
	// component that wants randomness independent of interleaving.
	NewRand() *rand.Rand
	// Proc returns the scheduling handle of one domain. Proc(GlobalDomain)
	// is the driver/observer context.
	Proc(domain int) Proc
	// Schedule, After, Cancel and NewTicker are conveniences for
	// Proc(GlobalDomain); see Proc for the context rules.
	Schedule(at Time, fn func()) Handle
	After(d Duration, fn func()) Handle
	Cancel(h Handle)
	NewTicker(period Duration, fn func()) *Ticker
	// Run executes events until none remain.
	Run()
	// RunUntil executes events with time <= t, then sets the clock to t.
	RunUntil(t Time)
	// RunFor advances the simulation by d from the current time.
	RunFor(d Duration)
	// Fired returns the total number of events executed so far.
	Fired() uint64
	// Pending returns the number of scheduled, uncancelled events.
	Pending() int
}

// Proc is one domain's scheduling handle. A domain is a logical thread
// of the simulation (one emulated switch, say): its events run in a
// single deterministic order, and everything it schedules is keyed by
// the domain's own counter, independent of goroutine interleaving.
//
// Context rule: a Proc may only be used from its own domain's executing
// events, from GlobalDomain events, or from the driver between Run*
// calls — never from another domain's events. The serial Engine cannot
// tell the difference; the Parallel engine's determinism depends on it.
type Proc interface {
	// Domain returns the domain this handle schedules as.
	Domain() int
	// Now returns the domain's current virtual time: the executing
	// event's timestamp inside the domain, the global time otherwise.
	Now() Time
	// Schedule runs fn at time at in this domain. Scheduling in the
	// past panics: it always indicates a logic error.
	Schedule(at Time, fn func()) Handle
	// After runs fn d after Now in this domain. Negative d clamps to 0.
	After(d Duration, fn func()) Handle
	// Send schedules fn in another domain, d after Now. On the Parallel
	// engine a send between different shards must satisfy the lookahead
	// (d at least the configured inter-shard lookahead) or it panics
	// with a causality violation.
	Send(owner int, d Duration, fn func()) Handle
	// SendAt is Send with an absolute time.
	SendAt(owner int, at Time, fn func()) Handle
	// ScheduleCall, AfterCall and SendCall are the closure-free forms
	// of Schedule, After and Send: fn must be a package-level function
	// or a cached method value, and its arguments travel inside the
	// pooled event, so the call site allocates nothing.
	ScheduleCall(at Time, fn CallFn, a, b any, i int64) Handle
	AfterCall(d Duration, fn CallFn, a, b any, i int64) Handle
	SendCall(owner int, d Duration, fn CallFn, a, b any, i int64) Handle
	// Cancel suppresses a scheduled event of this domain. Cancelling an
	// already-fired (or already-cancelled) event whose Event has not
	// been recycled yet is a no-op; cancelling through a handle whose
	// event has been recycled panics (use-after-free detection).
	Cancel(h Handle)
	// NewTicker schedules fn every period in this domain, first firing
	// one period from Now.
	NewTicker(period Duration, fn func()) *Ticker
}

// Engine is the serial reference implementation of Sim: a single
// event queue drained by one logical thread of control. It is not safe
// for concurrent use.
type Engine struct {
	now     Time
	q       evq
	domSeq  []uint64 // per-domain schedule counters (the seq key)
	pool    eventPool
	rng     *rand.Rand
	seedSrc *rand.Rand // derives seeds for component substreams
	fired   uint64
}

var _ Sim = (*Engine)(nil)

// NewEngine returns an engine whose randomness derives entirely from
// seed. Two engines built with the same seed and driven by the same
// logic produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{
		q:   newEvq(),
		rng: rand.New(rand.NewSource(seed)),
		// The xor only decorrelates the substream-seed source from
		// the main RNG stream.
		seedSrc: rand.New(rand.NewSource(seed ^ 0x5eed_11a7)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's main random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand returns a fresh random stream seeded from the engine, for a
// component that wants randomness independent of event interleaving.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.seedSrc.Int63()))
}

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	e.q.forEach(func(ev *Event) {
		if !ev.canceled {
			n++
		}
	})
	return n
}

// nextSeq returns the per-domain sequence counter value for dom and
// advances it, growing the counter table on first use of a domain.
func (e *Engine) nextSeq(dom int) uint64 {
	for len(e.domSeq) <= dom {
		e.domSeq = append(e.domSeq, 0)
	}
	s := e.domSeq[dom]
	e.domSeq[dom]++
	return s
}

// Proc returns the scheduling handle of one domain.
func (e *Engine) Proc(domain int) Proc {
	if domain < 0 {
		panic(fmt.Sprintf("sim: negative domain %d", domain))
	}
	return engineProc{e: e, dom: domain}
}

// schedule is the common path: an event scheduled by domain src to run
// in domain owner. Exactly one of fn and cfn must be set.
//
//speedlight:hotpath
func (e *Engine) schedule(src, owner int, at Time, fn func(), cfn CallFn, a, b any, i int64) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := e.pool.get()
	ev.at = at
	ev.src = int32(src)
	ev.seq = e.nextSeq(src)
	ev.owner = int32(owner)
	ev.fn = fn
	ev.cfn = cfn
	ev.a = a
	ev.b = b
	ev.i = i
	e.q.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// Schedule runs fn at virtual time at in the global domain. Scheduling
// in the past panics: it always indicates a logic error in the
// simulation.
func (e *Engine) Schedule(at Time, fn func()) Handle {
	return e.schedule(GlobalDomain, GlobalDomain, at, fn, nil, nil, nil, 0)
}

// After runs fn d after the current time. Negative d schedules for now.
func (e *Engine) After(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel suppresses a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op while its Event object has not
// been reused; once the engine has recycled the event for a new
// schedule, Cancel panics (see Handle).
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil {
		return
	}
	h.checkGen()
	if ev.pooled || ev.canceled {
		return // already fired or already cancelled: no-op
	}
	ev.canceled = true
	if ev.index >= 0 {
		e.q.remove(ev)
		e.pool.put(ev)
	}
}

// Step executes the next event, advancing virtual time. It returns false
// when no events remain.
//
//speedlight:hotpath
func (e *Engine) Step() bool {
	for {
		ev := e.q.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			e.pool.put(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fire()
		e.pool.put(ev)
		return true
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// peek returns the time of the next uncancelled event.
func (e *Engine) peek() (Time, bool) {
	for {
		ev := e.q.peek()
		if ev == nil {
			return 0, false
		}
		if ev.canceled {
			e.q.pop()
			e.pool.put(ev)
			continue
		}
		return ev.at, true
	}
}

// NewTicker schedules fn every period in the global domain, first
// firing one period from now.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	return e.Proc(GlobalDomain).NewTicker(period, fn)
}

// engineProc is the serial engine's Proc: every domain shares the one
// queue and clock; only the (src, seq) key differs.
type engineProc struct {
	e   *Engine
	dom int
}

func (p engineProc) Domain() int { return p.dom }
func (p engineProc) Now() Time   { return p.e.now }

func (p engineProc) Schedule(at Time, fn func()) Handle {
	return p.e.schedule(p.dom, p.dom, at, fn, nil, nil, nil, 0)
}

func (p engineProc) After(d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return p.e.schedule(p.dom, p.dom, p.e.now.Add(d), fn, nil, nil, nil, 0)
}

func (p engineProc) Send(owner int, d Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return p.e.schedule(p.dom, owner, p.e.now.Add(d), fn, nil, nil, nil, 0)
}

func (p engineProc) SendAt(owner int, at Time, fn func()) Handle {
	return p.e.schedule(p.dom, owner, at, fn, nil, nil, nil, 0)
}

func (p engineProc) ScheduleCall(at Time, fn CallFn, a, b any, i int64) Handle {
	return p.e.schedule(p.dom, p.dom, at, nil, fn, a, b, i)
}

func (p engineProc) AfterCall(d Duration, fn CallFn, a, b any, i int64) Handle {
	if d < 0 {
		d = 0
	}
	return p.e.schedule(p.dom, p.dom, p.e.now.Add(d), nil, fn, a, b, i)
}

func (p engineProc) SendCall(owner int, d Duration, fn CallFn, a, b any, i int64) Handle {
	if d < 0 {
		d = 0
	}
	return p.e.schedule(p.dom, owner, p.e.now.Add(d), nil, fn, a, b, i)
}

func (p engineProc) Cancel(h Handle) { p.e.Cancel(h) }

func (p engineProc) NewTicker(period Duration, fn func()) *Ticker {
	return newTicker(p, period, fn)
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
// The callback runs in the domain of the Proc that created the ticker.
type Ticker struct {
	p      Proc
	period Duration
	fn     func()
	h      Handle
	stop   bool
}

func newTicker(p Proc, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{p: p, period: period, fn: fn}
	t.arm()
	return t
}

// tickerTick is the shared closure-free ticker callback: the Ticker
// itself travels as the event argument, so re-arming every period
// allocates nothing.
func tickerTick(a, _ any, _ int64) {
	t := a.(*Ticker)
	if t.stop {
		return
	}
	t.fn()
	if !t.stop {
		t.arm()
	}
}

//speedlight:hotpath
func (t *Ticker) arm() {
	t.h = t.p.AfterCall(t.period, tickerTick, t, nil, 0)
}

// Stop cancels the ticker. The callback will not fire again. Stop must
// be called from the ticker's own domain context (or the driver), and
// is idempotent.
func (t *Ticker) Stop() {
	if t.stop {
		return
	}
	t.stop = true
	t.p.Cancel(t.h)
}
