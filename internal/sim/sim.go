// Package sim implements the deterministic discrete-event simulation
// engines that drive Speedlight's emulated networks.
//
// The paper evaluated Speedlight on a hardware testbed for small
// topologies and in simulation for large ones (its Figure 11). Without a
// Tofino, this repository runs every experiment on the engines here.
// Two implementations share one contract (the Sim interface):
//
//   - Engine: the serial reference — a classic event-heap simulator
//     with virtual nanosecond time and fully seeded randomness.
//   - Parallel (parallel.go): a conservatively synchronized sharded
//     engine that partitions simulation domains across worker
//     goroutines and executes barrier rounds bounded by a link-latency
//     lookahead.
//
// Determinism contract. Every event carries a tie-break key
// (time, src, seq): src is the scheduling domain and seq a per-domain
// counter incremented in that domain's own (deterministic) execution
// order. Because the key depends only on virtual time and on the
// scheduling domain's logical history — never on goroutine
// interleaving, shard count, or GOMAXPROCS — both engines order
// same-time events identically, and a given seed produces the identical
// run on either engine at any shard count. See DESIGN.md, "Parallel
// simulation and the determinism contract".
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a float64 number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a float64 number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// DurationOfSeconds converts a float64 second count to a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationOfMicros converts a float64 microsecond count to a Duration.
func DurationOfMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// GlobalDomain is the serializing domain: events owned by it execute
// with exclusive access to the whole simulation (on the Parallel engine
// they run between rounds, with every worker parked). Drivers,
// observers and anything that touches more than one domain's state
// belong here. It is also the domain of every event scheduled through
// an engine's legacy top-level Schedule/After methods.
const GlobalDomain = 0

// maxTime is the sentinel "no event" time.
const maxTime = Time(1<<63 - 1)

// Event is a scheduled callback. Events are single-shot; cancel with
// Cancel before they fire to suppress them.
type Event struct {
	at Time
	// src and seq are the determinism key: the scheduling domain and
	// its per-domain schedule counter. Ties at one instant resolve by
	// (src, seq), which both engines compute identically.
	src int32
	seq uint64
	// owner is the domain whose state the callback touches; it decides
	// which shard executes the event on the Parallel engine.
	owner    int32
	fn       func()
	index    int // heap index, -1 while in a mailbox or once popped
	canceled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// eventHeap orders events by (time, src domain, per-domain sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is the contract shared by the serial Engine and the Parallel
// sharded engine. Emulations program against it so a network can run on
// either engine unchanged; the conformance tests prove the two produce
// identical journals, audits and snapshots from one seed.
type Sim interface {
	// Now returns the current virtual time of the driver context. On
	// the Parallel engine it is only meaningful between Run* calls and
	// inside GlobalDomain events; domain code must use its Proc's Now.
	Now() Time
	// Rand returns the engine's main random stream (driver context
	// only — never from inside a non-global domain's events).
	Rand() *rand.Rand
	// NewRand returns a fresh stream seeded from the engine, for a
	// component that wants randomness independent of interleaving.
	NewRand() *rand.Rand
	// Proc returns the scheduling handle of one domain. Proc(GlobalDomain)
	// is the driver/observer context.
	Proc(domain int) Proc
	// Schedule, After, Cancel and NewTicker are conveniences for
	// Proc(GlobalDomain); see Proc for the context rules.
	Schedule(at Time, fn func()) *Event
	After(d Duration, fn func()) *Event
	Cancel(ev *Event)
	NewTicker(period Duration, fn func()) *Ticker
	// Run executes events until none remain.
	Run()
	// RunUntil executes events with time <= t, then sets the clock to t.
	RunUntil(t Time)
	// RunFor advances the simulation by d from the current time.
	RunFor(d Duration)
	// Fired returns the total number of events executed so far.
	Fired() uint64
	// Pending returns the number of scheduled, uncancelled events.
	Pending() int
}

// Proc is one domain's scheduling handle. A domain is a logical thread
// of the simulation (one emulated switch, say): its events run in a
// single deterministic order, and everything it schedules is keyed by
// the domain's own counter, independent of goroutine interleaving.
//
// Context rule: a Proc may only be used from its own domain's executing
// events, from GlobalDomain events, or from the driver between Run*
// calls — never from another domain's events. The serial Engine cannot
// tell the difference; the Parallel engine's determinism depends on it.
type Proc interface {
	// Domain returns the domain this handle schedules as.
	Domain() int
	// Now returns the domain's current virtual time: the executing
	// event's timestamp inside the domain, the global time otherwise.
	Now() Time
	// Schedule runs fn at time at in this domain. Scheduling in the
	// past panics: it always indicates a logic error.
	Schedule(at Time, fn func()) *Event
	// After runs fn d after Now in this domain. Negative d clamps to 0.
	After(d Duration, fn func()) *Event
	// Send schedules fn in another domain, d after Now. On the Parallel
	// engine a send between different shards must satisfy the lookahead
	// (d at least the configured inter-shard lookahead) or it panics
	// with a causality violation.
	Send(owner int, d Duration, fn func()) *Event
	// SendAt is Send with an absolute time.
	SendAt(owner int, at Time, fn func()) *Event
	// Cancel suppresses a scheduled event of this domain. Cancelling an
	// already-fired or already-cancelled event is a no-op.
	Cancel(ev *Event)
	// NewTicker schedules fn every period in this domain, first firing
	// one period from Now.
	NewTicker(period Duration, fn func()) *Ticker
}

// Engine is the serial reference implementation of Sim: a single
// event heap drained by one logical thread of control. It is not safe
// for concurrent use.
type Engine struct {
	now     Time
	events  eventHeap
	domSeq  []uint64 // per-domain schedule counters (the seq key)
	rng     *rand.Rand
	seedSrc *rand.Rand // derives seeds for component substreams
	fired   uint64
}

var _ Sim = (*Engine)(nil)

// NewEngine returns an engine whose randomness derives entirely from
// seed. Two engines built with the same seed and driven by the same
// logic produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
		// The xor only decorrelates the substream-seed source from
		// the main RNG stream.
		seedSrc: rand.New(rand.NewSource(seed ^ 0x5eed_11a7)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's main random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand returns a fresh random stream seeded from the engine, for a
// component that wants randomness independent of event interleaving.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.seedSrc.Int63()))
}

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// nextSeq returns the per-domain sequence counter value for dom and
// advances it, growing the counter table on first use of a domain.
func (e *Engine) nextSeq(dom int) uint64 {
	for len(e.domSeq) <= dom {
		e.domSeq = append(e.domSeq, 0)
	}
	s := e.domSeq[dom]
	e.domSeq[dom]++
	return s
}

// Proc returns the scheduling handle of one domain.
func (e *Engine) Proc(domain int) Proc {
	if domain < 0 {
		panic(fmt.Sprintf("sim: negative domain %d", domain))
	}
	return engineProc{e: e, dom: domain}
}

// schedule is the common path: an event scheduled by domain src to run
// in domain owner.
func (e *Engine) schedule(src, owner int, at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := &Event{at: at, src: int32(src), seq: e.nextSeq(src), owner: int32(owner), fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Schedule runs fn at virtual time at in the global domain. Scheduling
// in the past panics: it always indicates a logic error in the
// simulation.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.schedule(GlobalDomain, GlobalDomain, at, fn)
}

// After runs fn d after the current time. Negative d schedules for now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel suppresses a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
}

// Step executes the next event, advancing virtual time. It returns false
// when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// peek returns the time of the next uncancelled event.
func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// NewTicker schedules fn every period in the global domain, first
// firing one period from now.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	return e.Proc(GlobalDomain).NewTicker(period, fn)
}

// engineProc is the serial engine's Proc: every domain shares the one
// heap and clock; only the (src, seq) key differs.
type engineProc struct {
	e   *Engine
	dom int
}

func (p engineProc) Domain() int { return p.dom }
func (p engineProc) Now() Time   { return p.e.now }

func (p engineProc) Schedule(at Time, fn func()) *Event {
	return p.e.schedule(p.dom, p.dom, at, fn)
}

func (p engineProc) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return p.e.schedule(p.dom, p.dom, p.e.now.Add(d), fn)
}

func (p engineProc) Send(owner int, d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return p.e.schedule(p.dom, owner, p.e.now.Add(d), fn)
}

func (p engineProc) SendAt(owner int, at Time, fn func()) *Event {
	return p.e.schedule(p.dom, owner, at, fn)
}

func (p engineProc) Cancel(ev *Event) { p.e.Cancel(ev) }

func (p engineProc) NewTicker(period Duration, fn func()) *Ticker {
	return newTicker(p, period, fn)
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
// The callback runs in the domain of the Proc that created the ticker.
type Ticker struct {
	p      Proc
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

func newTicker(p Proc, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{p: p, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.p.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels the ticker. The callback will not fire again. Stop must
// be called from the ticker's own domain context (or the driver).
func (t *Ticker) Stop() {
	t.stop = true
	t.p.Cancel(t.ev)
}
