// Package sim implements the deterministic discrete-event simulation
// engine that drives Speedlight's emulated networks.
//
// The paper evaluated Speedlight on a hardware testbed for small
// topologies and in simulation for large ones (its Figure 11). Without a
// Tofino, this repository runs every experiment on the engine here: a
// classic event-heap simulator with virtual nanosecond time and fully
// seeded randomness, so that any run is reproducible bit-for-bit from its
// seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a float64 number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a float64 number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// DurationOfSeconds converts a float64 second count to a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationOfMicros converts a float64 microsecond count to a Duration.
func DurationOfMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Event is a scheduled callback. Events are single-shot; cancel with
// Engine.Cancel before they fire to suppress them.
type Event struct {
	at       Time
	seq      uint64 // insertion order; breaks ties deterministically
	fn       func()
	index    int // heap index, -1 once popped or cancelled
	canceled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. It is not safe for concurrent
// use; a simulation is a single logical thread of control that the
// engine advances event by event.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	seedSrc *rand.Rand // derives seeds for component substreams
	fired   uint64
}

// NewEngine returns an engine whose randomness derives entirely from
// seed. Two engines built with the same seed and driven by the same
// logic produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
		// The xor only decorrelates the substream-seed source from
		// the main RNG stream.
		seedSrc: rand.New(rand.NewSource(seed ^ 0x5eed_11a7)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's main random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand returns a fresh random stream seeded from the engine, for a
// component that wants randomness independent of event interleaving.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.seedSrc.Int63()))
}

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Schedule runs fn at virtual time at. Scheduling in the past panics:
// it always indicates a logic error in the simulation.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After runs fn d after the current time. Negative d schedules for now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel suppresses a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
}

// Step executes the next event, advancing virtual time. It returns false
// when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// peek returns the time of the next uncancelled event.
func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker struct {
	e      *Engine
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, first firing one period from now.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{e: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.e.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels the ticker. The callback will not fire again.
func (t *Ticker) Stop() {
	t.stop = true
	t.e.Cancel(t.ev)
}
