package sim

import "testing"

// TestCalendarQueueSteadyStateAllocs: the opt-in calendar queue must
// meet the same zero-allocation contract as the binary heap on the
// pooled scheduling path. The warm-up walks the whole bucket ring so
// every bucket's backing slice exists before measurement.
//
//speedlight:allocgate sim.calQueue.push sim.calQueue.pop sim.calQueue.peek
func TestCalendarQueueSteadyStateAllocs(t *testing.T) {
	withCalendarQueue(t, func() {
		e := NewEngine(1)
		p := e.Proc(GlobalDomain)
		var sink int64
		fn := CallFn(func(_, _ any, i int64) { sink += i })
		for i := 0; i < 8192; i++ {
			p.AfterCall(1, fn, nil, nil, 1)
			e.Step()
		}
		avg := testing.AllocsPerRun(1000, func() {
			p.AfterCall(1, fn, nil, nil, 1)
			e.Step()
		})
		if avg != 0 {
			t.Errorf("calendar-queue AfterCall+Step allocates %v allocs/op, want 0", avg)
		}
		_ = sink
	})
}

// TestParallelSteadyStateAllocs: the sharded engine's schedule/drain
// cycle — parProc.sendAt into the shard's own queue, one single-shard
// round processed inline on the coordinator — must not allocate.
//
//speedlight:allocgate sim.Parallel.process sim.parProc.sendAt
func TestParallelSteadyStateAllocs(t *testing.T) {
	p := NewParallel(1, 2, 100)
	pr := p.Proc(1)
	var sink int64
	fn := CallFn(func(_, _ any, i int64) { sink += i })
	for i := 0; i < 256; i++ {
		pr.AfterCall(1, fn, nil, nil, 1)
		p.RunFor(2)
	}
	avg := testing.AllocsPerRun(1000, func() {
		pr.AfterCall(1, fn, nil, nil, 1)
		p.RunFor(2)
	})
	if avg != 0 {
		t.Errorf("parallel AfterCall+RunFor allocates %v allocs/op, want 0", avg)
	}
	_ = sink
}
