package sim

import (
	"fmt"
	"testing"
)

// TestHeapTieBreakOrder: events at the same instant order by
// (src domain, per-domain sequence) — global first, then domains
// ascending, insertion order within a domain — on both engines.
func TestHeapTieBreakOrder(t *testing.T) {
	type schedule struct {
		dom int
		tag string
	}
	cases := []struct {
		name   string
		scheds []schedule
		want   []string
	}{
		{
			name:   "insertion order within one domain",
			scheds: []schedule{{0, "a"}, {0, "b"}, {0, "c"}},
			want:   []string{"a", "b", "c"},
		},
		{
			name:   "domains ascending regardless of insertion",
			scheds: []schedule{{3, "d3"}, {1, "d1"}, {2, "d2"}},
			want:   []string{"d1", "d2", "d3"},
		},
		{
			name:   "global beats switch domains",
			scheds: []schedule{{2, "sw"}, {0, "glob"}},
			want:   []string{"glob", "sw"},
		},
		{
			name:   "interleaved domains keep per-domain FIFO",
			scheds: []schedule{{2, "b1"}, {1, "a1"}, {2, "b2"}, {1, "a2"}},
			want:   []string{"a1", "a2", "b1", "b2"},
		},
	}
	// The parallel engine runs single-shard here: cross-shard events at
	// the same instant execute concurrently (their global wall order is
	// undefined; only per-domain order and key-sorted merges are), so
	// observing the heap's total (at, src, seq) order requires every
	// domain on one shard.
	engines := map[string]func() Sim{
		"serial":   func() Sim { return NewEngine(1) },
		"parallel": func() Sim { return NewParallel(1, 1, 10) },
	}
	for _, engName := range []string{"serial", "parallel"} {
		mk := engines[engName]
		for _, tc := range cases {
			t.Run(engName+"/"+tc.name, func(t *testing.T) {
				eng := mk()
				var got []string
				for _, s := range tc.scheds {
					tag := s.tag
					eng.Proc(s.dom).Schedule(100, func() { got = append(got, tag) })
				}
				eng.Run()
				if fmt.Sprint(got) != fmt.Sprint(tc.want) {
					t.Errorf("fired %v, want %v", got, tc.want)
				}
			})
		}
	}
}

// TestCancelAlreadyFired: cancelling an event after it fired is a
// harmless no-op on both engines, and does not disturb accounting.
func TestCancelAlreadyFired(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Sim
	}{
		{"serial", func() Sim { return NewEngine(1) }},
		{"parallel", func() Sim { return NewParallel(1, 2, 10) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := tc.mk()
			fired := 0
			ev := eng.Schedule(10, func() { fired++ })
			eng.Schedule(20, func() {})
			eng.Run()
			eng.Cancel(ev)
			eng.Cancel(ev)
			if fired != 1 {
				t.Errorf("fired %d times", fired)
			}
			if n := eng.Fired(); n != 2 {
				t.Errorf("Fired = %d, want 2", n)
			}
			if n := eng.Pending(); n != 0 {
				t.Errorf("Pending = %d, want 0", n)
			}
			// The engine must still schedule and run normally afterwards.
			again := false
			eng.After(5, func() { again = true })
			eng.Run()
			if !again {
				t.Error("engine wedged after late Cancel")
			}
		})
	}
}

// TestTickerCancelRearm: a stopped ticker stays stopped; a replacement
// ticker armed afterwards (including from inside the stopping callback)
// takes over cleanly.
func TestTickerCancelRearm(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Sim
	}{
		{"serial", func() Sim { return NewEngine(1) }},
		{"parallel", func() Sim { return NewParallel(1, 2, 10) }},
	} {
		t.Run(tc.name+"/stop then rearm from driver", func(t *testing.T) {
			eng := tc.mk()
			var first, second []Time
			tk := eng.NewTicker(10, func() { first = append(first, eng.Now()) })
			eng.RunUntil(25) // fires at 10, 20
			tk.Stop()
			tk.Stop() // double-stop is a no-op
			eng.NewTicker(7, func() { second = append(second, eng.Now()) })
			eng.RunUntil(50)
			if len(first) != 2 {
				t.Errorf("first ticker fired %v, want ticks at 10, 20", first)
			}
			// Re-armed at 25, period 7: 32, 39, 46.
			want := []Time{32, 39, 46}
			if fmt.Sprint(second) != fmt.Sprint(want) {
				t.Errorf("second ticker fired %v, want %v", second, want)
			}
		})
		t.Run(tc.name+"/rearm from inside callback", func(t *testing.T) {
			eng := tc.mk()
			var ticks []Time
			var tk *Ticker
			tk = eng.NewTicker(10, func() {
				ticks = append(ticks, eng.Now())
				if len(ticks) == 2 {
					tk.Stop()
					// Re-arm with a new cadence from within the firing
					// callback — the replacement starts from "now".
					tk = eng.NewTicker(3, func() {
						ticks = append(ticks, eng.Now())
						if len(ticks) >= 4 {
							tk.Stop()
						}
					})
				}
			})
			eng.RunUntil(100)
			want := []Time{10, 20, 23, 26}
			if fmt.Sprint(ticks) != fmt.Sprint(want) {
				t.Errorf("ticks = %v, want %v", ticks, want)
			}
		})
	}
}

// TestRunUntilBoundary: events exactly at the RunUntil bound fire;
// events one tick later do not; the clock lands exactly on the bound.
func TestRunUntilBoundary(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Sim
	}{
		{"serial", func() Sim { return NewEngine(1) }},
		{"parallel", func() Sim { return NewParallel(1, 2, 10) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := tc.mk()
			var fired []Time
			for _, at := range []Time{99, 100, 100, 101} {
				at := at
				eng.Schedule(at, func() { fired = append(fired, at) })
			}
			eng.RunUntil(100)
			if fmt.Sprint(fired) != fmt.Sprint([]Time{99, 100, 100}) {
				t.Errorf("fired = %v, want [99 100 100]", fired)
			}
			if eng.Now() != 100 {
				t.Errorf("Now = %d, want 100", eng.Now())
			}
			if eng.Pending() != 1 {
				t.Errorf("Pending = %d, want 1", eng.Pending())
			}
			// An event scheduled *at* the current bound fires on the next
			// boundary run.
			eng.Schedule(100, func() { fired = append(fired, 100) })
			eng.RunUntil(100)
			if len(fired) != 4 {
				t.Errorf("event at current time did not fire on re-run: %v", fired)
			}
		})
	}
}
