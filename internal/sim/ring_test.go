package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestEvRingWraparound walks the ring across its index mask several
// laps: slot reuse must never reorder or drop events, and the
// full/empty boundary conditions must be exact at every lap offset.
func TestEvRingWraparound(t *testing.T) {
	r := newEvRing(4)
	if len(r.slots) != 4 {
		t.Fatalf("newEvRing(4) capacity = %d, want 4", len(r.slots))
	}
	evs := make([]*Event, 7)
	for i := range evs {
		evs[i] = &Event{i: int64(i)}
	}
	// Offset the indexes by a different amount each lap so every slot
	// sees the boundary.
	next := 0
	for lap := 0; lap < 13; lap++ {
		burst := 1 + lap%3
		for k := 0; k < burst; k++ {
			if !r.tryPush(evs[(next+k)%len(evs)]) {
				t.Fatalf("lap %d: push %d failed below capacity", lap, k)
			}
		}
		for k := 0; k < burst; k++ {
			got := r.tryPop()
			want := evs[(next+k)%len(evs)]
			if got != want {
				t.Fatalf("lap %d: pop %d = %v, want event %d", lap, k, got, want.i)
			}
		}
		next = (next + burst) % len(evs)
		if !r.empty() {
			t.Fatalf("lap %d: ring not empty after symmetric drain", lap)
		}
	}
}

// TestEvRingFullEmptyEdges exercises the capacity boundary: a full
// ring rejects pushes without blocking or overwriting, and frees
// exactly one slot per pop.
func TestEvRingFullEmptyEdges(t *testing.T) {
	r := newEvRing(2)
	a, b, c := &Event{i: 1}, &Event{i: 2}, &Event{i: 3}
	if r.tryPop() != nil {
		t.Fatal("pop on empty ring returned an event")
	}
	if !r.tryPush(a) || !r.tryPush(b) {
		t.Fatal("pushes below capacity failed")
	}
	if r.tryPush(c) {
		t.Fatal("push on full ring succeeded")
	}
	if got := r.tryPop(); got != a {
		t.Fatalf("first pop = %v, want a", got)
	}
	if !r.tryPush(c) {
		t.Fatal("push after freeing one slot failed")
	}
	if got := r.tryPop(); got != b {
		t.Fatalf("second pop = %v, want b", got)
	}
	if got := r.tryPop(); got != c {
		t.Fatalf("third pop = %v, want c", got)
	}
	if !r.empty() || r.tryPop() != nil {
		t.Fatal("drained ring not empty")
	}
}

// ringFloodLogs runs a two-shard ping/echo flood at the given ring
// capacity and returns the delivery logs of both sides. The flood
// outruns any small ring, forcing the producers through the
// backpressure slow path (drain-own-inbound, then retry).
func ringFloodLogs(t *testing.T, ringCap int) (right, left []int64) {
	t.Helper()
	p := NewParallel(42, 2, 10)
	p.ringCap = ringCap
	a, b := p.Proc(1), p.Proc(2)
	var sinkR, sinkL, burst, echo CallFn
	sinkR = func(_, _ any, i int64) { right = append(right, int64(b.Now())*1_000_000+i) }
	sinkL = func(_, _ any, i int64) { left = append(left, int64(a.Now())*1_000_000+i) }
	echo = func(_, _ any, i int64) { b.SendCall(1, 10, sinkL, nil, nil, i) }
	burst = func(_, _ any, i int64) {
		for k := int64(0); k < 3; k++ {
			a.SendCall(2, Duration(10+k), sinkR, nil, nil, i*8+k)
		}
		if i%4 == 0 {
			a.SendCall(2, 10, echo, nil, nil, i)
		}
	}
	for i := 0; i < 200; i++ {
		a.ScheduleCall(Time(1+i), burst, nil, nil, int64(i))
	}
	p.RunUntil(5000)
	return right, left
}

// TestRingBackpressureDeterminism floods a capacity-2 ring pair and
// checks both that nothing is lost under sustained backpressure and
// that the delivery order is byte-identical to an uncontended run:
// the slow path may change *when* events cross, never *what order*
// they execute in.
func TestRingBackpressureDeterminism(t *testing.T) {
	tinyR, tinyL := ringFloodLogs(t, 2)
	bigR, bigL := ringFloodLogs(t, 1024)
	if len(tinyR) != 600 || len(tinyL) != 50 {
		t.Fatalf("flood delivered %d/%d events, want 600/50", len(tinyR), len(tinyL))
	}
	if fmt.Sprint(tinyR) != fmt.Sprint(bigR) || fmt.Sprint(tinyL) != fmt.Sprint(bigL) {
		t.Fatal("delivery order differs between ring capacities 2 and 1024")
	}
}

// TestRingHandoffAllocs gates the cross-shard handoff hot path at zero
// allocations per event: push into the pair ring, drain on the
// consumer side, fire, recycle — in both directions so the two shard
// pools stay balanced and the steady state is genuine.
//
//speedlight:allocgate sim.evRing.tryPush sim.evRing.tryPop sim.Parallel.pushRing sim.Parallel.processBatch
func TestRingHandoffAllocs(t *testing.T) {
	p := NewParallel(1, 2, 10)
	_, _ = p.Proc(1), p.Proc(2)
	p.finalize()
	sh0, sh1 := p.shards[0], p.shards[1]
	r01, r10 := sh0.out[1].ring, sh1.out[0].ring
	var sink int64
	fn := CallFn(func(_, _ any, i int64) { sink += i })
	at := Time(0)
	hop := func(src, dst *pshard, r *evRing, tgt int) {
		at++
		ev := src.pool.get()
		ev.at = at
		ev.src = int32(src.idx + 1)
		ev.owner = int32(dst.idx + 1)
		ev.cfn = fn
		ev.i = 1
		p.pushRing(src, r, ev, tgt)
		p.drainRing(dst, r)
		p.processBatch(dst, maxTime, 8)
	}
	for i := 0; i < 512; i++ {
		hop(sh0, sh1, r01, 1)
		hop(sh1, sh0, r10, 0)
	}
	avg := testing.AllocsPerRun(1000, func() {
		hop(sh0, sh1, r01, 1)
		hop(sh1, sh0, r10, 0)
	})
	if avg != 0 {
		t.Errorf("ring handoff allocates %v allocs/op, want 0", avg)
	}
	_ = sink
}

// TestSetShardLinksValidation covers the declared-link API's guard
// rails: bad links panic at declaration, duplicates keep the smallest
// lookahead, and late declarations are rejected.
func TestSetShardLinksValidation(t *testing.T) {
	mustPanic := func(name, frag string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if !strings.Contains(fmt.Sprint(r), frag) {
				t.Fatalf("%s: panic %q does not mention %q", name, r, frag)
			}
		}()
		f()
	}
	p := NewParallel(1, 2, 10)
	mustPanic("range", "out of range", func() {
		p.SetShardLinks([]ShardLink{{From: -1, To: 1, Lookahead: 1}})
	})
	mustPanic("range-high", "out of range", func() {
		p.SetShardLinks([]ShardLink{{From: 0, To: 2, Lookahead: 1}})
	})
	mustPanic("self", "self shard link", func() {
		p.SetShardLinks([]ShardLink{{From: 1, To: 1, Lookahead: 1}})
	})
	mustPanic("negative", "negative lookahead", func() {
		p.SetShardLinks([]ShardLink{{From: 0, To: 1, Lookahead: -1}})
	})

	// Duplicates keep the min: a delay-5 send is legal under the
	// 4-tick duplicate, and would violate the pair clock under the
	// 10-tick one.
	p2 := NewParallel(1, 2, 10)
	a, b := p2.Proc(1), p2.Proc(2)
	p2.SetShardLinks([]ShardLink{
		{From: 0, To: 1, Lookahead: 10},
		{From: 0, To: 1, Lookahead: 4},
		{From: 1, To: 0, Lookahead: 4},
	})
	var got []int64
	sink := CallFn(func(_, _ any, i int64) { got = append(got, i) })
	cross := CallFn(func(_, _ any, i int64) { a.SendCall(2, 5, sink, nil, nil, i) })
	a.ScheduleCall(1, cross, nil, nil, 7)
	_ = b
	p2.RunUntil(100)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("delay-5 send under duplicate min-4 link: got %v, want [7]", got)
	}
	mustPanic("late", "after the first Run", func() {
		p2.SetShardLinks([]ShardLink{{From: 0, To: 1, Lookahead: 1}})
	})
}

// TestUndeclaredPairPanics proves a send on a pair outside the
// declared link set fails loudly instead of silently racing: the
// topology-derived link set is a contract, and placement drift that
// routes traffic over an undeclared pair is a bug.
func TestUndeclaredPairPanics(t *testing.T) {
	p := NewParallel(1, 2, 10)
	a, b := p.Proc(1), p.Proc(2)
	p.SetShardLinks([]ShardLink{{From: 0, To: 1, Lookahead: 10}})
	var rogue, fwd CallFn
	rogue = func(_, _ any, i int64) { b.SendCall(1, 10, rogue, nil, nil, i) }
	fwd = func(_, _ any, i int64) { a.SendCall(2, 10, rogue, nil, nil, i) }
	a.ScheduleCall(1, fwd, nil, nil, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("undeclared 1->0 send did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "outside the declared shard-link set") {
			t.Fatalf("panic %q does not name the undeclared pair", r)
		}
	}()
	p.RunUntil(100)
}
